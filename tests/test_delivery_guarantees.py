"""End-to-end delivery guarantees: acks, resume, dedup, exactly-once.

The acked transfer protocol turns the at-least-once wire (retransmit
everything unacked after reconnect) into exactly-once delivery via the
ISM's per-source admission watermark.  These tests pin each layer: the
wire messages, the EXS outbox, the manager's dedup, the socket runtime's
ack/resume handshake, and — via hypothesis — idempotence of the dedup
under arbitrary realistic retransmit interleavings.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from tests.conftest import wait_until

from repro.clocksync.clocks import CorrectedClock
from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.records import EventRecord, FieldType
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.runtime.exs_proc import ExsOutbox, ExsProcess
from repro.runtime.ism_proc import IsmServer
from repro.util.timebase import now_micros
from repro.wire import protocol
from repro.wire.tcp import MessageListener, connect



# ----------------------------------------------------------------------
# wire messages
# ----------------------------------------------------------------------

class TestAckProtocol:
    def test_ack_roundtrip(self):
        msg = protocol.Ack(exs_id=7, up_to_seq=12345)
        assert protocol.decode_message(protocol.encode_message(msg)) == msg

    def test_hello_reply_roundtrip(self):
        msg = protocol.HelloReply(exs_id=3, last_seq=99)
        assert protocol.decode_message(protocol.encode_message(msg)) == msg
        fresh = protocol.HelloReply(exs_id=3, last_seq=-1)
        assert protocol.decode_message(protocol.encode_message(fresh)) == fresh

    def test_heartbeat_roundtrip(self):
        msg = protocol.Heartbeat(exs_id=5)
        assert protocol.decode_message(protocol.encode_message(msg)) == msg

    def test_hello_wants_ack_roundtrip(self):
        msg = protocol.Hello(exs_id=1, node_id=2, wants_ack=True)
        assert protocol.decode_message(protocol.encode_message(msg)) == msg

    def test_hello_without_wants_ack_is_legacy_bytes(self):
        # The trailing capability word is only emitted when set, so a
        # plain Hello stays byte-identical to the original wire format.
        legacy = protocol.encode_message(protocol.Hello(exs_id=1, node_id=2))
        flagged = protocol.encode_message(
            protocol.Hello(exs_id=1, node_id=2, wants_ack=True)
        )
        assert len(flagged) == len(legacy) + 4
        decoded = protocol.decode_message(legacy)
        assert decoded.wants_ack is False


# ----------------------------------------------------------------------
# the EXS outbox
# ----------------------------------------------------------------------

class TestExsOutbox:
    def test_cumulative_ack_releases_prefix(self):
        box = ExsOutbox(depth=8)
        for seq in range(5):
            box.append(seq, b"p%d" % seq)
        assert box.unacked == 5
        assert box.ack(2) == 3
        assert box.pending_seqs() == [3, 4]
        assert box.ack(10) == 2
        assert box.unacked == 0
        assert box.acked_batches == 5

    def test_stale_ack_is_noop(self):
        box = ExsOutbox()
        box.append(5, b"x")
        assert box.ack(4) == 0
        assert box.unacked == 1

    def test_full_backpressure_flag(self):
        box = ExsOutbox(depth=2)
        box.append(0, b"a")
        assert not box.full
        box.append(1, b"b")
        assert box.full

    def test_seqs_must_increase(self):
        box = ExsOutbox()
        box.append(3, b"a")
        with pytest.raises(ValueError):
            box.append(3, b"dup")

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            ExsOutbox(depth=0)


# ----------------------------------------------------------------------
# manager-side dedup and resume state
# ----------------------------------------------------------------------

def _batch(seq: int, *, exs_id: int = 1, value: int | None = None):
    record = EventRecord(
        event_id=1,
        timestamp=1_000 + seq,
        field_types=(FieldType.X_INT,),
        values=(seq if value is None else value,),
        node_id=1,
    )
    return protocol.Batch(exs_id=exs_id, seq=seq, records=(record,))


def _manager():
    sink = CollectingConsumer()
    manager = InstrumentationManager(
        IsmConfig(sorter=SorterConfig(initial_frame_us=0)), [sink]
    )
    manager.register_source(1, 1)
    return manager, sink


class TestManagerDedup:
    def test_retransmit_of_admitted_batch_is_dropped(self):
        manager, sink = _manager()
        manager.on_batch(_batch(0), now=0)
        manager.on_batch(_batch(1), now=0)
        manager.on_batch(_batch(1), now=0)  # retransmit
        manager.on_batch(_batch(0), now=0)  # older retransmit
        manager.tick(now=10**9)
        assert [r.values[0] for r in sink.records] == [0, 1]
        assert manager.stats.duplicate_batches == 2
        assert manager.stats.records_deduped == 2
        assert manager.stats.records_received == 2
        assert manager.stats.seq_gaps == 0

    def test_admitted_seq_tracks_watermark(self):
        manager, _ = _manager()
        assert manager.admitted_seq(1) is None
        manager.on_batch(_batch(0), now=0)
        assert manager.admitted_seq(1) == 0
        manager.on_batch(_batch(3), now=0)  # gap: still admitted
        assert manager.admitted_seq(1) == 3
        assert manager.stats.seq_gaps == 1

    def test_dedup_is_per_source(self):
        manager, sink = _manager()
        manager.register_source(2, 2)
        manager.on_batch(_batch(0, exs_id=1), now=0)
        manager.on_batch(_batch(0, exs_id=2), now=0)
        manager.tick(now=10**9)
        assert len(sink.records) == 2
        assert manager.stats.duplicate_batches == 0

    def test_resume_state_roundtrip(self):
        manager, _ = _manager()
        manager.on_batch(_batch(0), now=0)
        manager.on_batch(_batch(1), now=0)
        state = manager.resume_state()
        assert state == {1: 1}

        successor, sink = _manager()
        successor.load_resume_state(state)
        assert successor.admitted_seq(1) == 1
        successor.on_batch(_batch(1), now=0)  # retransmit across restart
        successor.on_batch(_batch(2), now=0)
        successor.tick(now=10**9)
        assert [r.values[0] for r in sink.records] == [2]
        assert successor.stats.duplicate_batches == 1

    def test_load_resume_state_never_regresses(self):
        manager, _ = _manager()
        manager.on_batch(_batch(5), now=0)
        manager.load_resume_state({1: 3})
        assert manager.admitted_seq(1) == 5


# ----------------------------------------------------------------------
# property: dedup is idempotent under realistic retransmit interleavings
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.data())
def test_dedup_exactly_once_under_retransmit_interleavings(data):
    """Any sequence of sessions, each resuming from at-or-before the
    ack watermark and replaying a contiguous run of batches, delivers
    every batch exactly once and in order.

    The constraint mirrors the real transport: batches flow FIFO per
    connection and a reconnecting EXS retransmits from ``ack + 1`` (or
    earlier, when the ack itself was lost) — it never invents a gap.
    """
    n_batches = data.draw(st.integers(min_value=1, max_value=16), label="n")
    manager, sink = _manager()

    admitted = -1  # highest admitted seq, mirrors manager._admitted
    sessions = 0
    while admitted < n_batches - 1 and sessions < 64:
        sessions += 1
        # A session resumes no later than right past the watermark …
        start = data.draw(
            st.integers(min_value=max(0, admitted - 2), max_value=admitted + 1),
            label="start",
        )
        # … and sends a contiguous run (possibly cut short mid-stream).
        end = data.draw(
            st.integers(min_value=start, max_value=n_batches), label="end"
        )
        for seq in range(start, end):
            manager.on_batch(_batch(seq), now=0)
        admitted = max(admitted, end - 1)
    # Termination guard: deliver whatever a bounded adversary left over.
    for seq in range(admitted + 1, n_batches):
        manager.on_batch(_batch(seq), now=0)

    manager.tick(now=10**9)
    assert [r.values[0] for r in sink.records] == list(range(n_batches))
    assert manager.stats.records_received == n_batches
    assert manager.stats.seq_gaps == 0


# ----------------------------------------------------------------------
# socket runtime: ack flow, resume handshake, stall deadline
# ----------------------------------------------------------------------

def _make_lis(n_capacity: int = 10_000):
    ring = ring_for_records(n_capacity)
    sensor = Sensor(ring, node_id=1)
    exs = ExternalSensor(
        1,
        1,
        ring,
        CorrectedClock(now_micros),
        ExsConfig(batch_max_records=16, flush_timeout_us=1_000),
    )
    return sensor, exs


class TestAckedSocketPath:
    def test_acks_drain_the_outbox(self):
        sensor, exs = _make_lis()
        manager, sink = _manager()
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)

        for k in range(200):
            sensor.notice_ints(1, k)

        proc = ExsProcess(exs, connect(host, port), select_timeout_s=0.002)
        exs_thread = threading.Thread(target=proc.run, daemon=True)
        exs_thread.start()
        try:
            server.serve(duration_s=10.0, until_records=200)
            # Give the last ack one more pump to reach the EXS.
            deadline = time.monotonic() + 5.0
            while proc.outbox.unacked and time.monotonic() < deadline:
                server.serve(duration_s=0.05)
        finally:
            proc.stop()
            exs_thread.join(timeout=10)
            listener.close()
        assert manager.stats.records_received == 200
        assert proc.outbox.unacked == 0
        assert proc.outbox.acked_batches > 0
        assert manager.stats.duplicate_batches == 0

    def test_ack_timeout_forces_disconnect(self):
        """A peer that accepts batches but never acks is declared hung."""
        sensor, exs = _make_lis()
        listener = MessageListener()
        host, port = listener.address
        # A "server" that reads nothing and never writes: the EXS must
        # give up on its own ack deadline rather than wait forever.
        accepted = []
        release_server = threading.Event()

        def silent_server():
            conn = listener.accept(timeout=5.0)
            if conn is not None:
                accepted.append(conn)
                release_server.wait(10.0)  # hung peer until the test ends

        server_thread = threading.Thread(target=silent_server, daemon=True)
        server_thread.start()

        for k in range(50):
            sensor.notice_ints(1, k)
        proc = ExsProcess(
            exs,
            connect(host, port),
            select_timeout_s=0.002,
            ack_timeout_s=0.3,
            hello_reply_timeout_s=0.1,
        )
        t0 = time.monotonic()
        proc.run()  # returns once the ack deadline trips
        elapsed = time.monotonic() - t0
        assert elapsed < 5.0
        assert proc.outbox.unacked > 0  # nothing was ever acked
        release_server.set()
        server_thread.join(timeout=5)
        listener.close()
        for conn in accepted:
            conn.close()

    def test_resume_retransmits_into_restarted_ism_exactly_once(self):
        """Kill the server mid-stream; the reconnect resumes and the
        manager's watermark dedupes the overlap."""
        sensor, exs = _make_lis()
        manager, sink = _manager()
        listener = MessageListener()
        host, port = listener.address

        from repro.runtime.exs_proc import ReconnectingExs

        runner = ReconnectingExs(
            exs,
            host,
            port,
            select_timeout_s=0.002,
            max_attempts=100,
            backoff_s=0.01,
            max_backoff_s=0.05,
            ack_timeout_s=1.0,
        )
        thread = threading.Thread(target=runner.run, daemon=True)
        thread.start()
        try:
            for k in range(150):
                sensor.notice_ints(1, k)
            server = IsmServer(manager, listener)
            server.serve(duration_s=10.0, until_records=150)
            assert manager.stats.records_received == 150

            # Hard restart on the same port; the manager (and its
            # watermark) survives, as in a warm ISM failover.
            listener.close()
            for conn in list(server.connections.values()):
                conn.close()  # the crash takes the accepted sockets too
            # Wait until the runner has noticed the outage: its reconnect
            # attempt against the closed port fails.
            wait_until(lambda: runner.failed_attempts >= 1)
            for k in range(150, 300):
                sensor.notice_ints(1, k)
            listener = MessageListener(host, port)
            server = IsmServer(manager, listener)
            server.serve(duration_s=10.0, until_records=300)

            assert manager.stats.records_received == 300
            values = sorted(r.values[0] for r in sink.records)
            assert values == list(range(300))
        finally:
            runner.stop()
            thread.join(timeout=10)
            listener.close()
