"""Equivalence proofs for the staged ISM ingestion pipeline.

The staged pipeline (batched framing, bulk sort, batch CRE, bulk delivery)
is an *optimization*, not a semantic change: every batch entry point must
produce the identical record sequence — order and bytes — as its
per-record spelling.  These tests pit the two spellings against each other
under randomized interleavings, overload (``max_held``), both growth
signals, and causal (tachyon / CRE-override) traffic.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import native
from repro.core.consumers import (
    CollectingConsumer,
    MemoryBufferConsumer,
    PiclFileConsumer,
    QueuedConsumer,
)
from repro.core.cre import CausalMatcher
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.records import EventRecord, FieldType
from repro.core.sorting import OnlineSorter, SorterConfig
from repro.picl.format import PiclWriter
from repro.wire import protocol


def _plain(event_id: int, ts: int, node_id: int = 0) -> EventRecord:
    return EventRecord(
        event_id=event_id,
        timestamp=ts,
        field_types=(FieldType.X_INT, FieldType.X_INT),
        values=(event_id, 7),
        node_id=node_id,
    )


def _reason(event_id: int, ts: int, rid: int) -> EventRecord:
    return EventRecord(
        event_id=event_id,
        timestamp=ts,
        field_types=(FieldType.X_REASON,),
        values=(rid,),
    )


def _conseq(event_id: int, ts: int, rid: int) -> EventRecord:
    return EventRecord(
        event_id=event_id,
        timestamp=ts,
        field_types=(FieldType.X_CONSEQ,),
        values=(rid,),
    )


# ----------------------------------------------------------------------
# sorter: push_many / extract_ready_batch ≡ per-record push / extract
# ----------------------------------------------------------------------

_sorter_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.integers(min_value=0, max_value=3),  # exs_id
            st.lists(  # batch timestamps
                st.integers(min_value=0, max_value=500_000),
                min_size=1,
                max_size=12,
            ),
            st.integers(min_value=0, max_value=60_000),  # dt before the op
        ),
        st.tuples(
            st.just("extract"),
            st.integers(min_value=0, max_value=120_000),  # dt before the op
        ),
    ),
    min_size=1,
    max_size=25,
)


@pytest.mark.parametrize("growth_signal", ["arrival", "watermark"])
@pytest.mark.parametrize("max_held", [4, 100_000])
@settings(max_examples=50, deadline=None)
@given(ops=_sorter_ops)
def test_push_many_extract_equivalent_to_per_record(
    growth_signal: str, max_held: int, ops
) -> None:
    """Same releases, same adapted frame, same stats — any interleaving."""
    config = SorterConfig(
        initial_frame_us=10_000,
        growth_signal=growth_signal,
        max_held=max_held,
        decay_lambda=0.5,
    )
    per_record = OnlineSorter(config)
    batched = OnlineSorter(config)
    now = 1_000_000
    event_id = 0
    for op in ops:
        if op[0] == "push":
            _, exs_id, timestamps, dt = op
            now += dt
            records = []
            for ts in timestamps:
                event_id += 1
                records.append(_plain(event_id, ts, node_id=exs_id))
            for record in records:
                per_record.push(exs_id, record, now)
            batched.push_many(exs_id, records, now)
        else:
            now += op[1]
            assert per_record.extract(now) == batched.extract_ready_batch(now)
        assert per_record.frame_us == batched.frame_us
        assert per_record.held == batched.held
    assert per_record.flush(now) == batched.flush(now)
    for attr in ("pushed", "released", "forced", "out_of_order"):
        assert getattr(per_record.stats, attr) == getattr(batched.stats, attr)


# ----------------------------------------------------------------------
# full manager: batched tick/flush/delivery ≡ per-record component loop
# ----------------------------------------------------------------------

_NODE = 7

_causal_batches = st.lists(  # one entry per Batch message
    st.tuples(
        st.integers(min_value=0, max_value=1),  # exs_id
        st.lists(
            st.tuples(
                st.sampled_from(["plain", "reason", "conseq"]),
                st.integers(min_value=0, max_value=200_000),  # timestamp
                st.integers(min_value=1, max_value=3),  # causal id pool
            ),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=50_000),  # dt before delivery
    ),
    min_size=1,
    max_size=12,
)


def _build_records(specs) -> list[EventRecord]:
    records = []
    for i, (kind, ts, rid) in enumerate(specs):
        if kind == "reason":
            records.append(_reason(1000 + i, ts, rid))
        elif kind == "conseq":
            records.append(_conseq(2000 + i, ts, rid))
        else:
            records.append(_plain(3000 + i, ts))
    return records


def _reference_delivery(batches) -> list[EventRecord]:
    """The per-record spelling of the whole pipeline, component by
    component: push → extract → cre.process → expire, one record at a
    time, with the node stamped through the validated copy constructor."""
    config = IsmConfig(expire_interval_us=0)
    sorter = OnlineSorter(config.sorter)
    cre = CausalMatcher(config.cre)
    delivered: list[EventRecord] = []
    now = 1_000_000
    for exs_id in (0, 1):
        sorter.add_source(exs_id)
    for exs_id, specs, dt in batches:
        now += dt
        for record in _build_records(specs):
            sorter.push(exs_id, record.with_node(_NODE), now)
        for record in sorter.extract(now):
            delivered.extend(cre.process(record, now))
        delivered.extend(cre.expire(now))
    for record in sorter.flush(now):
        delivered.extend(cre.process(record, now))
    delivered.extend(cre.expire(now + config.cre.timeout_us + 1))
    return delivered


@pytest.mark.parametrize("delivery_batch", [1, 3, 1024])
@settings(max_examples=40, deadline=None)
@given(batches=_causal_batches)
def test_manager_batched_delivery_equivalent(delivery_batch: int, batches) -> None:
    """End-to-end: same records, same order, same consumer bytes."""
    collected = CollectingConsumer()
    memory = MemoryBufferConsumer()
    picl_stream = io.StringIO()
    picl = PiclFileConsumer(picl_stream)
    manager = InstrumentationManager(
        config=IsmConfig(expire_interval_us=0, delivery_batch=delivery_batch),
        consumers=[collected, memory, picl],
    )
    for exs_id in (0, 1):
        manager.register_source(exs_id, _NODE)
    now = 1_000_000
    seqs = {0: 0, 1: 0}
    for exs_id, specs, dt in batches:
        now += dt
        batch = protocol.Batch(
            exs_id=exs_id, seq=seqs[exs_id], records=tuple(_build_records(specs))
        )
        seqs[exs_id] += 1
        manager.on_batch(batch, now)
        manager.tick(now)
    manager.flush(now)

    expected = _reference_delivery(batches)
    assert collected.records == expected
    assert bytes(memory.buffer) == b"".join(
        native.pack_record(r) for r in expected
    )
    ref_stream = io.StringIO()
    PiclWriter(ref_stream).write_all(expected)
    assert picl_stream.getvalue() == ref_stream.getvalue()
    assert manager.stats.records_delivered == len(expected)


# ----------------------------------------------------------------------
# PICL batch write: byte identity
# ----------------------------------------------------------------------

def test_picl_write_all_byte_identical() -> None:
    records = [_plain(i, 1_000 * i) for i in range(1, 40)] + [
        _reason(99, 50_000, 1),
        _conseq(100, 60_000, 1),
    ]
    one_by_one = io.StringIO()
    writer = PiclWriter(one_by_one)
    for record in records:
        writer.write(record)
    batched = io.StringIO()
    batch_writer = PiclWriter(batched)
    batch_writer.write_all(records)
    assert batched.getvalue() == one_by_one.getvalue()
    assert batch_writer.lines_written == writer.lines_written == len(records)
    empty = io.StringIO()
    PiclWriter(empty).write_all([])
    assert empty.getvalue() == ""


# ----------------------------------------------------------------------
# QueuedConsumer: ordering, error surfacing, close semantics
# ----------------------------------------------------------------------

class _ExplodingConsumer:
    def __init__(self) -> None:
        self.closed = False

    def deliver(self, record: EventRecord) -> None:
        raise RuntimeError("sink is broken")

    def close(self) -> None:
        self.closed = True


def test_queued_consumer_preserves_order_and_counts() -> None:
    inner = CollectingConsumer()
    queued = QueuedConsumer(inner, max_queued_batches=4)
    records = [_plain(i, 10 * i) for i in range(1, 101)]
    for start in range(0, len(records), 7):
        queued.deliver_many(records[start : start + 7])
    queued.deliver(_plain(999, 99_999))
    queued.close()
    assert inner.records == records + [_plain(999, 99_999)]
    assert queued.delivered == len(records) + 1


def test_queued_consumer_surfaces_worker_error_on_next_delivery() -> None:
    inner = _ExplodingConsumer()
    queued = QueuedConsumer(inner, max_queued_batches=4)
    queued.deliver_many([_plain(1, 100)])
    with pytest.raises(RuntimeError, match="sink is broken"):
        # The worker hit the error asynchronously; poll until it surfaces.
        for _ in range(1000):
            queued.deliver_many([_plain(2, 200)])
    try:
        queued.close()
    except RuntimeError:
        pass  # a batch queued while polling may have failed too
    assert inner.closed


def test_queued_consumer_rejects_use_after_close() -> None:
    queued = QueuedConsumer(CollectingConsumer())
    queued.close()
    queued.close()  # idempotent
    with pytest.raises(RuntimeError):
        queued.deliver(_plain(1, 100))


def test_queued_consumer_validates_bound() -> None:
    with pytest.raises(ValueError):
        QueuedConsumer(CollectingConsumer(), max_queued_batches=0)


def test_manager_delivers_through_queued_consumer() -> None:
    inner = CollectingConsumer()
    queued = QueuedConsumer(inner)
    manager = InstrumentationManager(
        config=IsmConfig(expire_interval_us=0), consumers=[queued]
    )
    manager.register_source(1, _NODE)
    records = tuple(_plain(i, 100 * i, node_id=_NODE) for i in range(1, 51))
    manager.on_batch(protocol.Batch(exs_id=1, seq=0, records=records), 1_000_000)
    manager.flush(2_000_000)
    manager.close()
    assert inner.records == list(records)


# ----------------------------------------------------------------------
# batched framing: recv_frames slices every frame per wakeup
# ----------------------------------------------------------------------

def test_recv_frames_returns_all_buffered_frames() -> None:
    from repro.wire.tcp import MessageListener, connect

    with MessageListener() as listener:
        host, port = listener.address
        sender = connect(host, port)
        receiver = listener.accept(timeout=1.0)
        assert receiver is not None
        payloads = [
            protocol.encode_message(protocol.Hello(exs_id=i, node_id=i))
            for i in range(20)
        ]
        sender.send_many(payloads)
        frames: list[bytes] = []
        while len(frames) < len(payloads):
            frames.extend(receiver.recv_frames(timeout=1.0))
        assert [bytes(f) for f in frames] == payloads
        decoded = protocol.decode_messages(frames)
        assert [m.exs_id for m in decoded] == list(range(20))
        sender.close()
        receiver.close()


def test_recv_available_single_kernel_drain(monkeypatch) -> None:
    """The satellite fix: one select per drained inbox, not one per
    message."""
    import select as select_mod

    from repro.wire.tcp import MessageListener, connect

    with MessageListener() as listener:
        host, port = listener.address
        sender = connect(host, port)
        receiver = listener.accept(timeout=1.0)
        assert receiver is not None
        sender.send_many(
            [
                protocol.encode_message(protocol.Hello(exs_id=i, node_id=i))
                for i in range(50)
            ]
        )
        # Wait until the data is definitely buffered on the receiver side.
        select_mod.select([receiver], [], [], 1.0)
        calls = 0
        real_select = select_mod.select

        def counting_select(*args, **kwargs):
            nonlocal calls
            calls += 1
            return real_select(*args, **kwargs)

        monkeypatch.setattr("repro.wire.tcp.select.select", counting_select)
        msgs = list(receiver.recv_available())
        assert len(msgs) == 50
        # One select found the bytes, one found the socket drained.  The
        # seed issued one select per message (50+).
        assert calls <= 3
        sender.close()
        receiver.close()


# ----------------------------------------------------------------------
# EXS drain-quota redistribution
# ----------------------------------------------------------------------

def test_drain_all_redistributes_unused_quota() -> None:
    from repro.clocksync.clocks import CorrectedClock
    from repro.core.exs import ExsConfig, ExternalSensor
    from repro.core.ringbuffer import ring_for_records

    busy = ring_for_records(256)
    idle = ring_for_records(256)
    for i in range(1, 11):
        busy.push(_plain(i, 1_000 * i))
    exs = ExternalSensor(
        exs_id=1,
        node_id=1,
        ring=[busy, idle],
        clock=CorrectedClock(lambda: 10_000_000),
        config=ExsConfig(drain_limit=8),
    )
    drained = exs._drain_all()
    # An even split would stop at 4 (idle's share wasted); the second
    # pass hands idle's unused quota to the busy ring.
    assert len(drained) == 8
    timestamps = [native.timestamp_of(p) for p in drained]
    assert timestamps == sorted(timestamps)
    assert len(exs._drain_all()) == 2  # the tail, next poll


def test_drain_all_splits_between_busy_rings() -> None:
    from repro.clocksync.clocks import CorrectedClock
    from repro.core.exs import ExsConfig, ExternalSensor
    from repro.core.ringbuffer import ring_for_records

    rings = [ring_for_records(256) for _ in range(2)]
    for ring_idx, ring in enumerate(rings):
        for i in range(1, 11):
            ring.push(_plain(i, 1_000 * i + ring_idx))
    exs = ExternalSensor(
        exs_id=1,
        node_id=1,
        ring=rings,
        clock=CorrectedClock(lambda: 10_000_000),
        config=ExsConfig(drain_limit=8),
    )
    drained = exs._drain_all()
    assert len(drained) == 8  # both rings busy: the even split stands
    timestamps = [native.timestamp_of(p) for p in drained]
    assert timestamps == sorted(timestamps)


# ----------------------------------------------------------------------
# staged server pump with a decode worker pool
# ----------------------------------------------------------------------

def test_ism_server_decode_workers_end_to_end() -> None:
    import threading

    from repro.core.ism import InstrumentationManager
    from repro.runtime.ism_proc import IsmServer
    from repro.wire.tcp import MessageListener, connect

    collected = CollectingConsumer()
    manager = InstrumentationManager(
        config=IsmConfig(expire_interval_us=0), consumers=[collected]
    )
    listener = MessageListener()
    host, port = listener.address
    server = IsmServer(manager, listener, decode_workers=2)
    n_exs, n_batches, per_batch = 3, 20, 25
    total = n_exs * n_batches * per_batch

    def run_exs(exs_id: int) -> None:
        conn = connect(host, port)
        conn.send(protocol.Hello(exs_id=exs_id, node_id=exs_id))
        for seq in range(n_batches):
            records = tuple(
                _plain(seq * per_batch + i, 1_000 * (seq * per_batch + i))
                for i in range(per_batch)
            )
            conn.send_raw(
                protocol.encode_batch_records(exs_id, seq, records)
            )
        conn.send(protocol.Bye())
        conn.close()

    threads = [
        threading.Thread(target=run_exs, args=(exs_id,))
        for exs_id in range(1, n_exs + 1)
    ]
    server_thread = threading.Thread(
        target=server.serve,
        kwargs={"duration_s": 30.0, "expected_connections": n_exs},
    )
    server_thread.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    server_thread.join(timeout=30.0)
    listener.close()
    assert not server_thread.is_alive()
    assert manager.stats.records_received == total
    assert manager.stats.seq_gaps == 0
    assert len(collected.records) == total
    # Per-source arrival order survives the parallel decode stage.
    per_source: dict[int, list[int]] = {}
    for record in collected.records:
        per_source.setdefault(record.node_id, []).append(record.event_id)
    assert set(per_source) == {1, 2, 3}
    for event_ids in per_source.values():
        assert event_ids == sorted(event_ids)
