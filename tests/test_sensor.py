"""Unit tests for internal sensors and NOTICE specialization."""

import pytest

from repro.core import native
from repro.core.records import FieldType, RecordSchema
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor, compile_notice


def fixed_clock(value: int = 123_456):
    return lambda: value


class TestDynamicNotice:
    def test_notice_writes_record(self):
        ring = ring_for_records(16)
        sensor = Sensor(ring, node_id=3, clock=fixed_clock())
        assert sensor.notice(
            5, (FieldType.X_INT, 1), (FieldType.X_STRING, "hi")
        )
        record = ring.pop()
        assert record.event_id == 5
        assert record.timestamp == 123_456
        assert record.node_id == 3
        assert record.values == (1, "hi")

    def test_notice_validates_fields(self):
        sensor = Sensor(ring_for_records(16))
        with pytest.raises(ValueError):
            sensor.notice(1, (FieldType.X_BYTE, 1000))

    def test_notice_enforces_default_field_limit(self):
        sensor = Sensor(ring_for_records(16))
        fields = [(FieldType.X_INT, i) for i in range(9)]
        with pytest.raises(ValueError):
            sensor.notice(1, *fields)

    def test_notice_ints_convenience(self):
        ring = ring_for_records(16)
        sensor = Sensor(ring, clock=fixed_clock())
        sensor.notice_ints(2, 10, 20, 30)
        record = ring.pop()
        assert record.field_types == (FieldType.X_INT,) * 3
        assert record.values == (10, 20, 30)

    def test_notice_reason_and_conseq(self):
        ring = ring_for_records(16)
        sensor = Sensor(ring, clock=fixed_clock())
        sensor.notice_reason(1, 77)
        sensor.notice_conseq(2, 77, (FieldType.X_INT, 5))
        reason = ring.pop()
        conseq = ring.pop()
        assert reason.reason_ids == (77,)
        assert conseq.conseq_ids == (77,)
        assert conseq.values[1] == 5

    def test_counters_track_emitted_and_dropped(self):
        ring = ring_for_records(4, approx_record_bytes=32)
        sensor = Sensor(ring, clock=fixed_clock())
        while sensor.notice_ints(1, 1, 2, 3, 4, 5, 6):
            pass
        assert sensor.dropped == 1
        assert sensor.emitted > 0
        assert ring.dropped == 1

    def test_notice_record_stamps_time_and_node(self):
        from tests.conftest import make_record

        ring = ring_for_records(16)
        sensor = Sensor(ring, node_id=9, clock=fixed_clock(555))
        sensor.notice_record(make_record(timestamp=1))
        record = ring.pop()
        assert record.timestamp == 555
        assert record.node_id == 9


class TestCompiledNotice:
    def test_specialized_matches_dynamic_output(self):
        schema = RecordSchema((FieldType.X_INT,) * 6)
        fast = compile_notice(schema)
        ring = ring_for_records(16)
        sensor = Sensor(ring, node_id=2, clock=fixed_clock())
        fast(sensor, 5, 1, 2, 3, 4, 5, 6)
        sensor.notice_ints(5, 1, 2, 3, 4, 5, 6)
        fast_record = ring.pop()
        dyn_record = ring.pop()
        assert fast_record == dyn_record

    def test_specialized_bytes_identical_to_dynamic(self):
        schema = RecordSchema((FieldType.X_UINT, FieldType.X_DOUBLE))
        fast = compile_notice(schema)
        ring = ring_for_records(16)
        sensor = Sensor(ring, node_id=1, clock=fixed_clock())
        fast(sensor, 3, 42, 2.5)
        fast_bytes = ring.pop_bytes()
        sensor.notice(3, (FieldType.X_UINT, 42), (FieldType.X_DOUBLE, 2.5))
        dyn_bytes = ring.pop_bytes()
        assert fast_bytes == dyn_bytes

    def test_specialized_exceeds_dynamic_field_limit(self):
        # The custom-macro tool may generate wider records than the stock
        # eight-field macros.
        schema = RecordSchema((FieldType.X_INT,) * 12)
        fast = compile_notice(schema)
        ring = ring_for_records(16, approx_record_bytes=256)
        sensor = Sensor(ring, clock=fixed_clock())
        fast(sensor, 1, *range(12))
        assert ring.pop().values == tuple(range(12))

    def test_variable_length_schema(self):
        schema = RecordSchema((FieldType.X_STRING, FieldType.X_INT))
        fast = compile_notice(schema)
        ring = ring_for_records(16)
        sensor = Sensor(ring, clock=fixed_clock())
        fast(sensor, 1, "event text", 7)
        record = ring.pop()
        assert record.values == ("event text", 7)

    def test_causal_schema_sets_flag(self):
        schema = RecordSchema((FieldType.X_REASON, FieldType.X_INT))
        fast = compile_notice(schema)
        ring = ring_for_records(16)
        sensor = Sensor(ring, clock=fixed_clock())
        fast(sensor, 1, 99, 5)
        payload = ring.pop_bytes()
        assert native.HEADER.unpack_from(payload)[4] & native.FLAG_CAUSAL

    def test_specialized_counts_drops(self):
        schema = RecordSchema((FieldType.X_INT,) * 6)
        fast = compile_notice(schema)
        ring = ring_for_records(4, approx_record_bytes=32)
        sensor = Sensor(ring, clock=fixed_clock())
        while fast(sensor, 1, 1, 2, 3, 4, 5, 6):
            pass
        assert sensor.dropped == 1

    def test_accepts_plain_sequence_schema(self):
        fast = compile_notice([FieldType.X_INT])
        ring = ring_for_records(16)
        sensor = Sensor(ring, clock=fixed_clock())
        fast(sensor, 1, 5)
        assert ring.pop().values == (5,)
