"""Tests for ISM consumer fault isolation and related hardening."""

import pytest

from repro.core.consumers import CollectingConsumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.sorting import SorterConfig
from repro.wire import protocol

from tests.conftest import make_record


class FlakyConsumer:
    """Fails on every delivery."""

    def __init__(self):
        self.attempts = 0

    def deliver(self, record):
        self.attempts += 1
        raise RuntimeError("sink exploded")

    def close(self):
        pass


class IntermittentConsumer:
    """Fails every other delivery — never three in a row."""

    def __init__(self):
        self.ok = 0
        self.calls = 0

    def deliver(self, record):
        self.calls += 1
        if self.calls % 2 == 0:
            raise RuntimeError("hiccup")
        self.ok += 1

    def close(self):
        pass


def build(*consumers, max_errors=3):
    manager = InstrumentationManager(
        IsmConfig(
            sorter=SorterConfig(initial_frame_us=0),
            max_consumer_errors=max_errors,
        ),
        list(consumers),
    )
    manager.register_source(1, 1)
    return manager


def feed(manager, n=10):
    records = tuple(make_record(timestamp=100 + k) for k in range(n))
    manager.on_batch(protocol.Batch(exs_id=1, seq=0, records=records), now=0)
    manager.tick(now=10**9)


class TestConsumerIsolation:
    def test_failing_consumer_does_not_break_siblings(self):
        good = CollectingConsumer()
        bad = FlakyConsumer()
        manager = build(bad, good)
        feed(manager, n=10)
        assert len(good.records) == 10  # unaffected
        assert manager.stats.consumer_errors >= 3

    def test_failing_consumer_detached_after_strikes(self):
        bad = FlakyConsumer()
        manager = build(bad, CollectingConsumer(), max_errors=3)
        feed(manager, n=10)
        assert bad not in manager.consumers
        assert bad.attempts == 3  # not called again after detach
        assert manager.stats.consumers_detached == 1

    def test_intermittent_consumer_survives(self):
        flaky = IntermittentConsumer()
        manager = build(flaky, max_errors=3)
        feed(manager, n=20)
        assert flaky in manager.consumers
        assert flaky.ok == 10
        assert manager.stats.consumers_detached == 0

    def test_max_errors_config_validation(self):
        with pytest.raises(ValueError):
            IsmConfig(max_consumer_errors=0)

    def test_pipeline_counters_unaffected_by_consumer_failures(self):
        manager = build(FlakyConsumer())
        feed(manager, n=5)
        assert manager.stats.records_delivered == 5


class TestDeploymentGuards:
    def test_attach_workload_after_start_rejected(self):
        from repro.core.consumers import CollectingConsumer
        from repro.sim.deployment import DeploymentConfig, SimDeployment
        from repro.sim.engine import Simulator
        from repro.sim.workload import PeriodicWorkload

        dep = SimDeployment(Simulator(), DeploymentConfig(), [CollectingConsumer()])
        node = dep.add_node()
        dep.start()
        with pytest.raises(RuntimeError):
            dep.attach_workload(node, PeriodicWorkload(rate_hz=1))
