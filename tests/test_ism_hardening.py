"""Tests for ISM consumer fault isolation and related hardening."""

import pytest
from tests.conftest import make_record, wait_until

from repro.core.consumers import CollectingConsumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.sorting import SorterConfig
from repro.wire import protocol


class FlakyConsumer:
    """Fails on every delivery."""

    def __init__(self):
        self.attempts = 0

    def deliver(self, record):
        self.attempts += 1
        raise RuntimeError("sink exploded")

    def close(self):
        pass


class IntermittentConsumer:
    """Fails every other delivery — never three in a row."""

    def __init__(self):
        self.ok = 0
        self.calls = 0

    def deliver(self, record):
        self.calls += 1
        if self.calls % 2 == 0:
            raise RuntimeError("hiccup")
        self.ok += 1

    def close(self):
        pass


def build(*consumers, max_errors=3):
    manager = InstrumentationManager(
        IsmConfig(
            sorter=SorterConfig(initial_frame_us=0),
            max_consumer_errors=max_errors,
        ),
        list(consumers),
    )
    manager.register_source(1, 1)
    return manager


def feed(manager, n=10):
    records = tuple(make_record(timestamp=100 + k) for k in range(n))
    manager.on_batch(protocol.Batch(exs_id=1, seq=0, records=records), now=0)
    manager.tick(now=10**9)


class TestConsumerIsolation:
    def test_failing_consumer_does_not_break_siblings(self):
        good = CollectingConsumer()
        bad = FlakyConsumer()
        manager = build(bad, good)
        feed(manager, n=10)
        assert len(good.records) == 10  # unaffected
        assert manager.stats.consumer_errors >= 3

    def test_failing_consumer_detached_after_strikes(self):
        bad = FlakyConsumer()
        manager = build(bad, CollectingConsumer(), max_errors=3)
        feed(manager, n=10)
        assert bad not in manager.consumers
        assert bad.attempts == 3  # not called again after detach
        assert manager.stats.consumers_detached == 1

    def test_intermittent_consumer_survives(self):
        flaky = IntermittentConsumer()
        manager = build(flaky, max_errors=3)
        feed(manager, n=20)
        assert flaky in manager.consumers
        assert flaky.ok == 10
        assert manager.stats.consumers_detached == 0

    def test_max_errors_config_validation(self):
        with pytest.raises(ValueError):
            IsmConfig(max_consumer_errors=0)

    def test_pipeline_counters_unaffected_by_consumer_failures(self):
        manager = build(FlakyConsumer())
        feed(manager, n=5)
        assert manager.stats.records_delivered == 5


class TestServerSocketHardening:
    """Dead-fd eviction and idle-deadline sweeps in the IsmServer pump."""

    @staticmethod
    def _server(**kwargs):
        from repro.core.consumers import CollectingConsumer
        from repro.runtime.ism_proc import IsmServer
        from repro.wire.tcp import MessageListener

        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
            [CollectingConsumer()],
        )
        listener = MessageListener()
        return IsmServer(manager, listener, **kwargs), listener

    def test_dead_fd_evicted_without_starving_peers(self):
        """A connection whose fd goes bad poisons the batched select; the
        pump must evict just that connection and keep serving the rest in
        the same cycle instead of spinning on select errors."""
        from repro.wire import tcp

        server, listener = self._server()
        host, port = listener.address
        c1 = tcp.connect(host, port)
        c2 = tcp.connect(host, port)
        try:
            c1.send(protocol.Hello(exs_id=1, node_id=1))
            c2.send(protocol.Hello(exs_id=2, node_id=2))
            for _ in range(50):
                server._pump_connections()
                if len(server.connections) == 2:
                    break
            assert set(server.connections) == {1, 2}

            # Sabotage exs 1's server-side socket: a closed socket's
            # fileno() is -1, which makes select.select raise.
            server.connections[1]._sock.close()
            record = make_record(event_id=1, node_id=2)
            c2.send(protocol.Batch(exs_id=2, seq=0, records=(record,)))
            for _ in range(50):
                server._pump_connections()
                if server.manager.stats.records_received:
                    break
            # The healthy peer was served and the bad fd is gone.
            assert server.manager.stats.records_received == 1
            assert 1 not in server.connections
            assert 2 in server.connections
        finally:
            c1.close()
            c2.close()
            listener.close()

    def test_idle_deadline_drops_silent_connection(self):
        import time

        from repro.wire import tcp

        server, listener = self._server(idle_deadline_s=0.05)
        host, port = listener.address
        conn = tcp.connect(host, port)
        try:
            conn.send(protocol.Hello(exs_id=1, node_id=1))
            for _ in range(50):
                server._pump_connections()
                if 1 in server.connections:
                    break
            # Stay silent; keep pumping until the deadline fires.
            def idle_dropped():
                server._pump_connections()
                return server.idle_drops >= 1

            wait_until(idle_dropped)
            assert server.idle_drops == 1
            assert 1 not in server.connections
        finally:
            conn.close()
            listener.close()

    def test_heartbeat_counts_as_activity(self):
        import time

        from repro.wire import tcp

        server, listener = self._server(idle_deadline_s=0.3)
        host, port = listener.address
        conn = tcp.connect(host, port)
        try:
            conn.send(protocol.Hello(exs_id=1, node_id=1))
            # Pacing, not a synchronization wait: heartbeats every 20 ms
            # hold the connection alive well past the 0.3 s deadline.
            deadline = time.monotonic() + 1.0
            while time.monotonic() < deadline:
                conn.send(protocol.Heartbeat(exs_id=1))
                server._pump_connections()
                time.sleep(0.02)
            assert server.idle_drops == 0
            assert 1 in server.connections
        finally:
            conn.close()
            listener.close()


class TestDeploymentGuards:
    def test_attach_workload_after_start_rejected(self):
        from repro.core.consumers import CollectingConsumer
        from repro.sim.deployment import DeploymentConfig, SimDeployment
        from repro.sim.engine import Simulator
        from repro.sim.workload import PeriodicWorkload

        dep = SimDeployment(Simulator(), DeploymentConfig(), [CollectingConsumer()])
        node = dep.add_node()
        dep.start()
        with pytest.raises(RuntimeError):
            dep.attach_workload(node, PeriodicWorkload(rate_hz=1))
