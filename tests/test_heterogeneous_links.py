"""Integration tests: heterogeneous per-node links.

One slow/distant node among fast local ones is the bread-and-butter
monitoring scenario: its records arrive late, and the ISM's adaptive
time frame must stretch to cover exactly that straggler — no more.
"""


from repro.core.consumers import CollectingConsumer
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.network import LinkModelConfig
from repro.sim.workload import PoissonWorkload

FAST = LinkModelConfig(base_delay_us=200, jitter_mean_us=20)
SLOW = LinkModelConfig(base_delay_us=20_000, jitter_mean_us=2_000)


class TestHeterogeneousLinks:
    def build(self, slow_links: bool):
        sim = Simulator(seed=4)
        collected = CollectingConsumer()
        dep = SimDeployment(
            sim, DeploymentConfig(link=FAST, exs_poll_interval_us=10_000),
            [collected],
        )
        for k in range(3):
            dep.add_node()
        dep.add_node(link=SLOW if slow_links else None)
        for node in dep.nodes:
            dep.attach_workload(node, PoissonWorkload(rate_hz=200))
        return sim, dep, collected

    def test_per_node_link_override_applies(self):
        sim, dep, _ = self.build(slow_links=True)
        assert dep.nodes[3].uplink.config is SLOW
        assert dep.nodes[0].uplink.config is FAST

    def test_all_records_still_delivered(self):
        sim, dep, collected = self.build(slow_links=True)
        dep.run(10.0)
        dep.stop()
        emitted = sum(n.sensor.emitted for n in dep.nodes)
        assert len(collected.records) == emitted
        assert {r.node_id for r in collected.records} == {1, 2, 3, 4}

    def test_straggler_stretches_the_time_frame(self):
        sim_f, dep_fast, _ = self.build(slow_links=False)
        dep_fast.run(10.0)
        sim_s, dep_slow, _ = self.build(slow_links=True)
        dep_slow.run(10.0)
        # The slow node's ~20 ms extra transit forces a larger frame.
        assert dep_slow.ism.sorter.frame_us > dep_fast.ism.sorter.frame_us + 10_000

    def test_output_still_mostly_ordered(self):
        sim, dep, collected = self.build(slow_links=True)
        dep.run(10.0)
        dep.stop()
        ts = [r.timestamp for r in collected.records]
        inversions = sum(1 for a, b in zip(ts, ts[1:]) if b < a)
        assert inversions / len(ts) < 0.02
