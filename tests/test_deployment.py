"""Integration tests: the full BRISK system on the simulation substrate."""

import pytest

from repro.core.consumers import CollectingConsumer
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.workload import PoissonWorkload


def build(
    n_nodes=3,
    rate_hz=200,
    seed=7,
    sync="brisk",
    config: DeploymentConfig | None = None,
    **node_kwargs,
):
    sim = Simulator(seed=seed)
    consumer = CollectingConsumer()
    dep = SimDeployment(
        sim, config or DeploymentConfig(), [consumer], sync_algorithm=sync
    )
    nodes = dep.add_nodes(n_nodes, **node_kwargs)
    for node in nodes:
        dep.attach_workload(node, PoissonWorkload(rate_hz=rate_hz))
    return sim, dep, consumer


class TestEndToEnd:
    def test_all_events_delivered(self):
        sim, dep, consumer = build(n_nodes=3, rate_hz=100)
        dep.run(5.0)
        dep.stop()
        emitted = sum(n.sensor.emitted for n in dep.nodes)
        assert emitted > 1000
        assert len(consumer.records) == emitted

    def test_output_is_time_sorted(self):
        sim, dep, consumer = build(
            n_nodes=4, rate_hz=200, max_offset_us=2_000, max_drift_ppm=5
        )
        dep.run(8.0)
        dep.stop()
        ts = [r.timestamp for r in consumer.records]
        inversions = sum(1 for a, b in zip(ts, ts[1:]) if b < a)
        # The sorter trades ordering against latency; residual disorder
        # must be a small fraction once the frame adapts.
        assert inversions / len(ts) < 0.01

    def test_node_ids_preserved_end_to_end(self):
        sim, dep, consumer = build(n_nodes=3, rate_hz=100)
        dep.run(3.0)
        dep.stop()
        assert {r.node_id for r in consumer.records} == {1, 2, 3}

    def test_deterministic_given_seed(self):
        def run_once():
            sim, dep, consumer = build(seed=99)
            dep.run(3.0)
            dep.stop()
            return [(r.node_id, r.timestamp, r.values) for r in consumer.records]

        assert run_once() == run_once()

    def test_no_seq_gaps_over_reliable_links(self):
        sim, dep, consumer = build()
        dep.run(5.0)
        dep.stop()
        assert dep.ism.stats.seq_gaps == 0

    def test_latency_tracking(self):
        config = DeploymentConfig(track_latency=True)
        sim, dep, consumer = build(config=config, rate_hz=100)
        dep.run(5.0)
        dep.stop()
        lat = dep.metrics.latency_us
        assert len(lat) > 100
        assert all(l >= 0 for l in lat)
        # End-to-end latency should be bounded by poll + flush + frame.
        assert max(lat) < 2_000_000


class TestClockSyncIntegration:
    def test_brisk_sync_tightens_skew(self):
        sim, dep, consumer = build(
            n_nodes=8, rate_hz=50, max_offset_us=20_000, max_drift_ppm=5
        )
        dep.start()
        initial = dep.true_skew_spread()
        dep.run(60.0)
        final = dep.true_skew_spread()
        assert initial > 5_000
        assert final < initial / 10
        assert final < 1_000

    def test_clocks_never_step_backwards_under_brisk(self):
        sim, dep, consumer = build(n_nodes=4, max_offset_us=10_000)
        readings = {n.node_id: [] for n in dep.nodes}
        dep.start()
        stop = sim.schedule_every(
            100_000,
            lambda: [
                readings[n.node_id].append(n.corrected.read()) for n in dep.nodes
            ],
        )
        dep.run(20.0)
        for series in readings.values():
            assert all(b >= a for a, b in zip(series, series[1:]))

    def test_cristian_baseline_runs(self):
        sim, dep, consumer = build(
            n_nodes=4, sync="cristian", max_offset_us=10_000, max_drift_ppm=5
        )
        dep.start()
        dep.run(30.0)
        assert dep.true_skew_spread() < 2_000
        assert dep.metrics.sync_rounds >= 5

    def test_no_sync_leaves_skew(self):
        sim, dep, consumer = build(
            n_nodes=4, sync="none", max_offset_us=10_000, max_drift_ppm=5
        )
        dep.run(10.0)
        assert dep.true_skew_spread() > 5_000
        assert dep.metrics.sync_rounds == 0

    def test_skew_monitoring(self):
        sim, dep, consumer = build(n_nodes=3)
        dep.start()
        dep.monitor_skew(interval_us=1_000_000)
        dep.run(5.0)
        assert len(dep.metrics.skew_spread_samples) == 5


class TestCausalIntegration:
    def test_tachyon_triggers_extra_round(self):
        sim = Simulator(seed=5)
        consumer = CollectingConsumer()
        dep = SimDeployment(sim, DeploymentConfig(), [consumer])
        # Two nodes, wildly skewed, NO warmup correction of the emitter.
        a = dep.add_node(offset_us=0)
        b = dep.add_node(offset_us=-500_000)  # half a second behind
        dep.config = DeploymentConfig(warmup_sync_rounds=0)
        dep.start()

        def cause_and_effect():
            a.sensor.notice_reason(1, 42)
            sim.schedule(
                1_000, lambda: b.sensor.notice_conseq(2, 42)
            )

        sim.schedule(100_000, cause_and_effect)
        dep.run(3.0)
        dep.stop()
        assert dep.ism.cre.stats.tachyons_fixed >= 1
        assert dep.metrics.extra_sync_rounds >= 1
        by_event = {r.event_id: r for r in consumer.records}
        assert by_event[2].timestamp > by_event[1].timestamp

    def test_causal_pairs_ordered_in_output(self):
        sim = Simulator(seed=6)
        consumer = CollectingConsumer()
        dep = SimDeployment(sim, DeploymentConfig(), [consumer])
        a = dep.add_node(offset_us=5_000, drift_ppm=10)
        b = dep.add_node(offset_us=-5_000, drift_ppm=-10)
        dep.start()
        n_pairs = 50

        def emit_pair(k):
            a.sensor.notice_reason(1, k)
            sim.schedule(500, lambda: b.sensor.notice_conseq(2, k))

        for k in range(n_pairs):
            sim.schedule(50_000 + k * 20_000, emit_pair, k)
        dep.run(5.0)
        dep.stop()
        position = {
            (r.event_id, (r.reason_ids or r.conseq_ids)[0]): i
            for i, r in enumerate(consumer.records)
            if r.is_causal
        }
        for k in range(n_pairs):
            assert position[(1, k)] < position[(2, k)]


class TestScalingBehaviour:
    @pytest.mark.parametrize("n_nodes", [1, 4, 8])
    def test_throughput_scales_with_nodes(self, n_nodes):
        sim, dep, consumer = build(n_nodes=n_nodes, rate_hz=300)
        dep.run(5.0)
        dep.stop()
        emitted = sum(n.sensor.emitted for n in dep.nodes)
        assert len(consumer.records) == emitted
        assert emitted > 1_200 * n_nodes

    def test_add_node_after_start_rejected(self):
        sim, dep, consumer = build()
        dep.start()
        with pytest.raises(RuntimeError):
            dep.add_node()

    def test_double_start_rejected(self):
        sim, dep, consumer = build()
        dep.start()
        with pytest.raises(RuntimeError):
            dep.start()

    def test_unknown_sync_algorithm_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            SimDeployment(sim, sync_algorithm="ntp")
