"""Integration test: live filter steering over real sockets."""

import threading

from tests.conftest import wait_until

from repro.clocksync.clocks import CorrectedClock
from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.filtering import FilterSpec
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.runtime import ExsProcess, IsmServer, create_shared_ring
from repro.util.timebase import now_micros
from repro.wire.tcp import MessageListener, connect


class TestLiveFilterSteering:
    def test_set_filter_takes_effect_mid_stream(self):
        collected = CollectingConsumer()
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)), [collected]
        )
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)

        shared = create_shared_ring(1 << 20)
        sensor = Sensor(shared.ring, node_id=1)
        exs = ExternalSensor(
            1, 1, shared.ring, CorrectedClock(now_micros),
            ExsConfig(batch_max_records=32, flush_timeout_us=2_000),
        )
        proc = ExsProcess(exs, connect(host, port), select_timeout_s=0.002)
        exs_thread = threading.Thread(target=proc.run, daemon=True)
        exs_thread.start()

        try:
            # Phase 1: both event types flow.
            for k in range(200):
                sensor.notice_ints(1, k)
                sensor.notice_ints(2, k)
            server.serve(duration_s=10.0, until_records=400)
            assert manager.stats.records_received == 400

            # Steer: drop event 2 at the source.
            assert server.set_filter(1, FilterSpec(blocked_events={2}))
            # Give the EXS a moment to apply the control message.
            wait_until(lambda: exs.filter is not None)

            # Phase 2: only event 1 should arrive.
            for k in range(200):
                sensor.notice_ints(1, 1_000 + k)
                sensor.notice_ints(2, 1_000 + k)
            server.serve(duration_s=10.0, until_records=600)
            assert manager.stats.records_received == 600
            assert exs.stats.records_filtered == 200
        finally:
            proc.stop()
            exs_thread.join(timeout=5)
            listener.close()
            shared.close()

        manager.flush(now_micros())
        phase2 = [r for r in collected.records if r.values[0] >= 1_000]
        assert phase2
        assert {r.event_id for r in phase2} == {1}

    def test_stop_byes_the_exs_loop(self):
        manager = InstrumentationManager(consumers=[CollectingConsumer()])
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)
        shared = create_shared_ring(1 << 16)
        exs = ExternalSensor(1, 1, shared.ring, CorrectedClock(now_micros))
        proc = ExsProcess(exs, connect(host, port), select_timeout_s=0.002)
        exs_thread = threading.Thread(target=proc.run, daemon=True)
        server_thread = threading.Thread(
            target=server.serve, kwargs={"duration_s": 20.0}, daemon=True
        )
        try:
            server_thread.start()
            exs_thread.start()
            wait_until(lambda: server.connections)
            server.stop()
            server_thread.join(timeout=10)
            # The Bye reaches the EXS loop and stops it — no local stop().
            exs_thread.join(timeout=10)
            assert not exs_thread.is_alive()
        finally:
            proc.stop()
            listener.close()
            shared.close()

    def test_set_filter_unknown_exs_returns_false(self):
        manager = InstrumentationManager(consumers=[CollectingConsumer()])
        listener = MessageListener()
        server = IsmServer(manager, listener)
        try:
            assert not server.set_filter(99, FilterSpec())
        finally:
            listener.close()
