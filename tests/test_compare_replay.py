"""Unit tests for trace comparison and trace-driven workload replay."""

import pytest
from tests.conftest import make_record

from repro.analysis.compare import compare_traces
from repro.analysis.trace import Trace
from repro.sim.engine import Simulator
from repro.sim.workload import TraceWorkload


def trace_of(spec: list[tuple[int, int, int]]) -> Trace:
    """(event_id, timestamp, node_id) triples → Trace."""
    return Trace(
        [make_record(event_id=e, timestamp=ts, node_id=n) for e, ts, n in spec]
    )


class TestCompareTraces:
    def test_identical_traces(self):
        a = trace_of([(1, 0, 1), (1, 100, 1), (2, 50, 2)])
        comparison = compare_traces(a, a)
        assert comparison.duration_ratio == 1.0
        assert comparison.total_a == comparison.total_b == 3
        assert all(d.count_delta == 0 for d in comparison.deltas)
        assert comparison.only_in_a == comparison.only_in_b == ()

    def test_count_changes_reported(self):
        a = trace_of([(1, 0, 1), (1, 100, 1)])
        b = trace_of([(1, 0, 1)] + [(1, k, 1) for k in range(1, 6)])
        comparison = compare_traces(a, b)
        (delta,) = comparison.deltas
        assert delta.count_a == 2
        assert delta.count_b == 6
        assert delta.count_delta == 4
        assert delta.count_ratio == pytest.approx(3.0)

    def test_vanished_and_new_series(self):
        a = trace_of([(1, 0, 1), (9, 10, 1)])
        b = trace_of([(1, 0, 1), (7, 10, 2)])
        comparison = compare_traces(a, b)
        assert comparison.only_in_a == ((1, 9),)
        assert comparison.only_in_b == ((2, 7),)

    def test_regressions_filter(self):
        a = trace_of([(1, 0, 1), (2, 10, 1), (2, 20, 1)])
        b = trace_of(
            [(1, 0, 1)] + [(2, k * 5, 1) for k in range(10)]
        )
        comparison = compare_traces(a, b)
        regressions = comparison.regressions(threshold=2.0)
        assert [(r.node_id, r.event_id) for r in regressions] == [(1, 2)]

    def test_rates_use_each_traces_duration(self):
        a = trace_of([(1, 0, 1), (1, 1_000_000, 1)])  # 2 records / 1 s
        b = trace_of([(1, 0, 1), (1, 500_000, 1)])    # 2 records / 0.5 s
        comparison = compare_traces(a, b)
        (delta,) = comparison.deltas
        assert delta.rate_b_hz == pytest.approx(delta.rate_a_hz * 2)

    def test_summary_rows_render(self):
        a = trace_of([(1, 0, 1)])
        b = trace_of([(1, 0, 1), (1, 10, 1), (2, 20, 3)])
        rows = compare_traces(a, b).summary_rows()
        text = "\n".join(rows)
        assert "records:  1 -> 3" in text
        assert "new in B" in text

    def test_empty_traces(self):
        comparison = compare_traces(Trace([]), Trace([]))
        assert comparison.total_a == 0
        assert comparison.duration_ratio == 1.0


class TestTraceWorkload:
    def records(self):
        return [
            make_record(event_id=5, timestamp=1_000_000 + off)
            for off in (0, 100, 300, 700)
        ]

    def test_replays_inter_arrival_pattern(self):
        sim = Simulator()
        times: list[int] = []
        workload = TraceWorkload(self.records())
        workload.start(sim, lambda seq: times.append(sim.now))
        sim.run_all()
        assert times == [0, 100, 300, 700]
        assert workload.emitted == 4

    def test_count_limit(self):
        sim = Simulator()
        seqs: list[int] = []
        TraceWorkload(self.records(), count=2).start(sim, seqs.append)
        sim.run_all()
        assert seqs == [0, 1]

    def test_stop_mid_replay(self):
        sim = Simulator()
        workload = TraceWorkload(self.records())
        fired: list[int] = []

        def emit(seq: int) -> None:
            fired.append(seq)
            if len(fired) == 2:
                workload.stop()

        workload.start(sim, emit)
        sim.run_all()
        assert len(fired) == 2

    def test_unsorted_input_tolerated(self):
        records = list(reversed(self.records()))
        sim = Simulator()
        times: list[int] = []
        TraceWorkload(records).start(sim, lambda seq: times.append(sim.now))
        sim.run_all()
        assert times == [0, 100, 300, 700]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceWorkload([])

    def test_end_to_end_through_deployment(self):
        """A captured pattern drives a simulated node."""
        from repro.core.consumers import CollectingConsumer
        from repro.sim.deployment import DeploymentConfig, SimDeployment

        captured = [
            make_record(event_id=3, timestamp=k * 1_000) for k in range(50)
        ]
        sim = Simulator(seed=2)
        collected = CollectingConsumer()
        dep = SimDeployment(sim, DeploymentConfig(), [collected])
        node = dep.add_node()
        dep.attach_workload(node, TraceWorkload(captured))
        dep.run(2.0)
        dep.stop()
        assert len(collected.records) == 50
