"""Property-based tests (hypothesis) on core data structures and invariants.

Four invariant families:

* **codec roundtrips** — XDR primitives, native layout, wire batches, PICL
  lines are lossless for arbitrary valid records;
* **ring buffer** — FIFO order and byte conservation under arbitrary
  push/pop interleavings, including wrap-around;
* **on-line sorter** — conservation (everything pushed is eventually
  released exactly once) and per-source order preservation under arbitrary
  arrival patterns;
* **record marking** — reassembly is chunking-invariant.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import native
from repro.core.records import EventRecord, FieldType
from repro.core.ringbuffer import HEADER_SIZE, RingBuffer
from repro.core.sorting import OnlineSorter, SorterConfig
from repro.picl.format import parse_line, picl_to_line, picl_to_record, record_to_picl
from repro.wire import protocol
from repro.xdr import RecordMarkingReader, XdrDecoder, XdrEncoder, frame_record

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

_INT_RANGES = {
    FieldType.X_BYTE: (-(2**7), 2**7 - 1),
    FieldType.X_UBYTE: (0, 2**8 - 1),
    FieldType.X_SHORT: (-(2**15), 2**15 - 1),
    FieldType.X_USHORT: (0, 2**16 - 1),
    FieldType.X_INT: (-(2**31), 2**31 - 1),
    FieldType.X_UINT: (0, 2**32 - 1),
    FieldType.X_HYPER: (-(2**63), 2**63 - 1),
    FieldType.X_UHYPER: (0, 2**64 - 1),
    FieldType.X_TS: (-(2**63), 2**63 - 1),
    FieldType.X_REASON: (0, 2**32 - 1),
    FieldType.X_CONSEQ: (0, 2**32 - 1),
}

# Printable text without NUL for X_STRING (the C representation is
# null-terminated).
_text = st.text(
    alphabet=st.characters(blacklist_characters="\x00", codec="utf-8"),
    max_size=40,
)


def field_strategy(ftype: FieldType):
    if ftype in _INT_RANGES:
        lo, hi = _INT_RANGES[ftype]
        return st.integers(min_value=lo, max_value=hi)
    if ftype is FieldType.X_FLOAT:
        return st.floats(width=32, allow_nan=False)
    if ftype is FieldType.X_DOUBLE:
        return st.floats(allow_nan=False)
    if ftype is FieldType.X_STRING:
        return _text
    return st.binary(max_size=40)


@st.composite
def records(draw, max_fields: int = 8) -> EventRecord:
    types = draw(
        st.lists(st.sampled_from(list(FieldType)), max_size=max_fields)
    )
    values = tuple(draw(field_strategy(t)) for t in types)
    return EventRecord(
        event_id=draw(st.integers(0, 2**32 - 1)),
        timestamp=draw(st.integers(-(2**62), 2**62)),
        field_types=tuple(types),
        values=values,
        node_id=draw(st.integers(0, 2**32 - 1)),
    )


# ----------------------------------------------------------------------
# codec roundtrips
# ----------------------------------------------------------------------

class TestXdrRoundtrips:
    @given(st.integers(-(2**31), 2**31 - 1))
    def test_int(self, value):
        enc = XdrEncoder()
        enc.pack_int(value)
        assert XdrDecoder(enc.getvalue()).unpack_int() == value

    @given(st.integers(-(2**63), 2**63 - 1))
    def test_hyper(self, value):
        enc = XdrEncoder()
        enc.pack_hyper(value)
        assert XdrDecoder(enc.getvalue()).unpack_hyper() == value

    @given(st.binary(max_size=200))
    def test_opaque(self, data):
        enc = XdrEncoder()
        enc.pack_opaque(data)
        encoded = enc.getvalue()
        assert len(encoded) % 4 == 0
        assert XdrDecoder(encoded).unpack_opaque() == data

    @given(_text)
    def test_string(self, text):
        enc = XdrEncoder()
        enc.pack_string(text)
        assert XdrDecoder(enc.getvalue()).unpack_string() == text

    @given(st.floats(allow_nan=False))
    def test_double(self, value):
        enc = XdrEncoder()
        enc.pack_double(value)
        assert XdrDecoder(enc.getvalue()).unpack_double() == value


class TestRecordRoundtrips:
    @given(records())
    def test_native_layout(self, record):
        decoded, consumed = native.unpack_record(native.pack_record(record))
        assert decoded == record
        assert consumed == native.packed_size(record)

    @given(st.lists(records(), max_size=10), st.booleans(), st.booleans())
    @settings(max_examples=50)
    def test_wire_batch(self, batch_records, compress, delta):
        encoded = protocol.encode_batch_records(
            5, 9, batch_records, compress_meta=compress, delta_ts=delta
        )
        decoded = protocol.decode_message(encoded)
        assert decoded.exs_id == 5 and decoded.seq == 9
        stripped = [r.with_node(0) for r in batch_records]
        assert list(decoded.records) == stripped

    @given(records())
    @settings(max_examples=50)
    def test_wire_size_prediction(self, record):
        # delta_ts=False always; the escape path makes sizes input-dependent.
        for compress in (True, False):
            one = len(
                protocol.encode_batch_records(1, 0, [record], compress_meta=compress)
            )
            two = len(
                protocol.encode_batch_records(
                    1, 0, [record, record], compress_meta=compress
                )
            )
            assert two - one == protocol.record_wire_size(
                record, compress_meta=compress
            )

    @given(records())
    @settings(max_examples=50)
    def test_picl_line(self, record):
        line = picl_to_line(record_to_picl(record))
        assert "\n" not in line
        parsed = parse_line(line)
        rebuilt = picl_to_record(parsed)
        # Floats lose precision via repr for X_FLOAT only after float32
        # narrowing at encode; X_FLOAT values from the strategy are already
        # 32-bit representable, and repr() is exact for Python floats.
        assert rebuilt == record


class TestRecordMarkingProperties:
    @given(
        st.lists(st.binary(max_size=100), min_size=1, max_size=10),
        st.integers(1, 64),
    )
    def test_reassembly_is_chunking_invariant(self, payloads, chunk_size):
        stream = b"".join(frame_record(p) for p in payloads)
        reader = RecordMarkingReader()
        out = []
        for i in range(0, len(stream), chunk_size):
            out.extend(reader.feed(stream[i : i + chunk_size]))
        assert out == payloads
        assert reader.pending_bytes == 0


# ----------------------------------------------------------------------
# ring buffer
# ----------------------------------------------------------------------

class TestRingBufferProperties:
    @given(
        st.lists(records(max_fields=4), min_size=1, max_size=60),
        st.integers(0, 2**32 - 1),
        st.integers(512, 2048),
    )
    @settings(max_examples=50)
    def test_fifo_under_interleaving(self, recs, seed, capacity):
        ring = RingBuffer(bytearray(HEADER_SIZE + capacity))
        rng = random.Random(seed)
        pushed: list[EventRecord] = []
        popped: list[EventRecord] = []
        queue = list(recs)
        while queue or (len(popped) < len(pushed)):
            if queue and (rng.random() < 0.6):
                record = queue.pop(0)
                if native.packed_size(record) + 4 > capacity // 2:
                    continue  # too big for this ring by contract
                if ring.push(record):
                    pushed.append(record)
            else:
                record = ring.pop()
                if record is not None:
                    popped.append(record)
        assert popped == pushed

    @given(st.lists(records(max_fields=2), max_size=40))
    @settings(max_examples=50)
    def test_conservation(self, recs):
        ring = RingBuffer(bytearray(HEADER_SIZE + 1 << 16))
        accepted = sum(1 for r in recs if ring.push(r))
        drained = ring.drain()
        assert len(drained) == accepted
        assert ring.used == 0


# ----------------------------------------------------------------------
# on-line sorter
# ----------------------------------------------------------------------

@st.composite
def arrival_plans(draw):
    """Per-source increasing timestamps with arbitrary arrival times."""
    n_sources = draw(st.integers(1, 5))
    plan = []
    for source in range(n_sources):
        n = draw(st.integers(0, 20))
        ts_list = sorted(
            draw(
                st.lists(
                    st.integers(0, 10_000), min_size=n, max_size=n, unique=True
                )
            )
        )
        arrivals = draw(
            st.lists(
                st.integers(0, 20_000), min_size=n, max_size=n
            )
        )
        for ts, arr in zip(ts_list, sorted(arrivals)):
            plan.append((source, ts, max(arr, ts)))
    plan.sort(key=lambda item: item[2])
    return plan


class TestSorterProperties:
    @given(
        arrival_plans(),
        st.integers(0, 5_000),
        st.floats(0.0, 2.0),
    )
    @settings(max_examples=80)
    def test_conservation_and_source_order(self, plan, initial_frame, decay):
        sorter = OnlineSorter(
            SorterConfig(initial_frame_us=initial_frame, decay_lambda=decay)
        )
        released: list[EventRecord] = []
        for source, ts, arrival in plan:
            record = EventRecord(
                event_id=source,
                timestamp=ts,
                field_types=(FieldType.X_INT,),
                values=(ts,),
                node_id=source,
            )
            sorter.push(source, record, now=arrival)
            released.extend(sorter.extract(now=arrival))
        released.extend(sorter.flush(now=30_000))
        # Conservation: exactly once, nothing invented.
        assert len(released) == len(plan)
        assert sorter.held == 0
        # Per-source order is always preserved (FIFO queues).
        by_source: dict[int, list[int]] = {}
        for record in released:
            by_source.setdefault(record.node_id, []).append(record.timestamp)
        for series in by_source.values():
            assert series == sorted(series)

    @given(arrival_plans())
    @settings(max_examples=50)
    def test_infinite_frame_gives_total_order(self, plan):
        # With an unbounded frame and a final flush, output is sorted.
        sorter = OnlineSorter(
            SorterConfig(initial_frame_us=10_000_000, decay_lambda=0.0)
        )
        for source, ts, arrival in plan:
            record = EventRecord(
                event_id=source,
                timestamp=ts,
                field_types=(),
                values=(),
                node_id=source,
            )
            sorter.push(source, record, now=arrival)
            sorter.extract(now=arrival)
        released = sorter.flush(now=10**9)
        ts_series = [r.timestamp for r in released]
        assert ts_series == sorted(ts_series)

    @given(arrival_plans(), st.integers(1, 10))
    @settings(max_examples=50)
    def test_max_held_bound_respected(self, plan, max_held):
        sorter = OnlineSorter(
            SorterConfig(initial_frame_us=10_000_000, max_held=max_held)
        )
        for source, ts, arrival in plan:
            record = EventRecord(
                event_id=source, timestamp=ts, field_types=(), values=(),
                node_id=source,
            )
            sorter.push(source, record, now=arrival)
            sorter.extract(now=arrival)
            assert sorter.held <= max_held + 1  # bound enforced on extract


# ----------------------------------------------------------------------
# clock sync
# ----------------------------------------------------------------------

class TestSyncProperties:
    @given(
        st.lists(
            st.floats(-1e6, 1e6), min_size=2, max_size=12
        ),
        st.floats(1.0, 10_000.0),
    )
    @settings(max_examples=60)
    def test_brisk_rounds_never_regress_clocks(self, skews, threshold):
        from repro.clocksync.brisk_sync import BriskSyncConfig, BriskSyncMaster
        from tests.test_clocksync import ExactSlave

        slaves = [ExactSlave(i, s) for i, s in enumerate(skews)]
        master = BriskSyncMaster(
            slaves, BriskSyncConfig(threshold_us=threshold)
        )
        for _ in range(15):
            master.run_round()
        # Advance-only, and dispersion never worse than where it started.
        for slave in slaves:
            assert all(c > 0 for c in slave.corrections)
        final = [s.skew_us for s in slaves]
        assert max(final) - min(final) <= (max(skews) - min(skews)) + 1e-6
        # With exact probes the ensemble converges to the fastest clock
        # (float rounding in `rel = |a - b|` allows sub-µs wobble only).
        assert max(final) == pytest.approx(max(skews), abs=1e-6)
