"""Integration tests for the ``brisk-monitor`` transparent-monitoring CLI."""

import threading

import pytest

from repro.analysis.trace import Trace
from repro.core.consumers import CollectingConsumer
from repro.core.ism import InstrumentationManager
from repro.instrument.tracer import TracerEvents
from repro.runtime.ism_proc import IsmServer
from repro.tools import monitor_cli
from repro.wire.tcp import MessageListener

SCRIPT = """\
def fib(n):
    return n if n < 2 else fib(n - 1) + fib(n - 2)

def work():
    return [fib(k) for k in range(8)]

if __name__ == "__main__":
    import sys
    result = work()
    assert result[7] == 13
    sys.stdout.write(f"args={sys.argv[1:]}\\n")
"""


@pytest.fixture
def script(tmp_path):
    path = tmp_path / "app.py"
    path.write_text(SCRIPT)
    return path


class TestMonitorToPicl:
    def test_writes_trace_of_script_functions(self, script, tmp_path, capsys):
        out = tmp_path / "run.picl"
        rc = monitor_cli.main(
            ["--picl", str(out), "--include", "__main__", str(script)]
        )
        assert rc == 0
        with open(out) as stream:
            trace = Trace.from_picl(stream)
        calls = trace.events(TracerEvents().call)
        assert len(calls) > 10  # fib recursion traced
        defines = trace.events(TracerEvents().define)
        names = {r.values[1] for r in defines}
        assert any("fib" in n for n in names)
        assert any("work" in n for n in names)

    def test_default_output_path(self, script, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        rc = monitor_cli.main([str(script)])
        assert rc == 0
        assert (tmp_path / (script.name + ".picl")).exists() or (
            script.with_suffix(".py.picl")
        ).exists()

    def test_script_args_forwarded(self, script, tmp_path, capsys):
        out = tmp_path / "run.picl"
        monitor_cli.main(["--picl", str(out), str(script), "hello", "world"])
        assert "args=['hello', 'world']" in capsys.readouterr().out

    def test_depth_limit_respected(self, script, tmp_path):
        out = tmp_path / "run.picl"
        monitor_cli.main(
            ["--picl", str(out), "--max-depth", "2", str(script)]
        )
        with open(out) as stream:
            trace = Trace.from_picl(stream)
        depths = [
            r.values[1] for r in trace.events(TracerEvents().call)
        ]
        assert depths and max(depths) <= 2

    def test_script_exit_code_propagates(self, tmp_path):
        failing = tmp_path / "fail.py"
        failing.write_text("import sys\nsys.exit(3)\n")
        rc = monitor_cli.main(["--picl", str(tmp_path / "x.picl"), str(failing)])
        assert rc == 3


class TestSystemMetricsFlag:
    def test_metrics_records_in_trace(self, script, tmp_path):
        import pathlib

        if not pathlib.Path("/proc/self/stat").exists():
            pytest.skip("no procfs on this platform")
        from repro.core.system_sensor import EV_LOADAVG

        out = tmp_path / "run.picl"
        rc = monitor_cli.main(
            ["--picl", str(out), "--system-metrics", "0.01", str(script)]
        )
        assert rc == 0
        with open(out) as stream:
            trace = Trace.from_picl(stream)
        assert len(trace.events(EV_LOADAVG)) >= 1


class TestMonitorToIsm:
    def test_ships_to_live_ism(self, script, tmp_path):
        collected = CollectingConsumer()
        manager = InstrumentationManager(consumers=[collected])
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)
        server_thread = threading.Thread(
            target=server.serve,
            kwargs={"duration_s": 30.0, "expected_connections": 1},
            daemon=True,
        )
        server_thread.start()
        rc = monitor_cli.main(
            ["--ism", f"{host}:{port}", "--node-id", "7", str(script)]
        )
        server_thread.join(timeout=30)
        listener.close()
        assert rc == 0
        assert not server_thread.is_alive()
        assert manager.stats.records_received > 10
        assert all(r.node_id == 7 for r in collected.records)
