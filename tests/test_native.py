"""Unit tests for the native (node-local) binary record layout."""

import pytest
from tests.conftest import make_mixed_record, make_record

from repro.core import native
from repro.core.records import EventRecord, FieldType


class TestPackUnpack:
    def test_roundtrip_six_ints(self):
        record = make_record(node_id=4)
        packed = native.pack_record(record)
        decoded, consumed = native.unpack_record(packed)
        assert decoded == record
        assert consumed == len(packed)

    def test_roundtrip_all_field_types(self):
        record = make_mixed_record()
        decoded, _ = native.unpack_record(native.pack_record(record))
        assert decoded == record

    def test_roundtrip_empty_record(self):
        record = EventRecord(event_id=3, timestamp=-5)
        decoded, _ = native.unpack_record(native.pack_record(record))
        assert decoded == record

    def test_packed_size_matches_pack(self):
        for record in (make_record(), make_mixed_record(), EventRecord(0, 0)):
            assert native.packed_size(record) == len(native.pack_record(record))

    def test_negative_timestamp_roundtrip(self):
        record = make_record(timestamp=-(2**62))
        decoded, _ = native.unpack_record(native.pack_record(record))
        assert decoded.timestamp == -(2**62)

    def test_causal_flag_set(self):
        record = EventRecord(
            event_id=1,
            timestamp=0,
            field_types=(FieldType.X_REASON,),
            values=(9,),
        )
        packed = native.pack_record(record)
        header = native.HEADER.unpack_from(packed)
        assert header[4] & native.FLAG_CAUSAL
        plain = native.pack_record(make_record())
        assert not native.HEADER.unpack_from(plain)[4] & native.FLAG_CAUSAL

    def test_offset_decoding(self):
        a = native.pack_record(make_record(event_id=1))
        b = native.pack_record(make_record(event_id=2))
        buf = a + b
        rec_a, next_off = native.unpack_record(buf, 0)
        rec_b, end = native.unpack_record(buf, next_off)
        assert (rec_a.event_id, rec_b.event_id) == (1, 2)
        assert end == len(buf)

    def test_unpack_all(self):
        records = [make_record(event_id=i) for i in range(5)]
        buf = b"".join(native.pack_record(r) for r in records)
        assert native.unpack_all(buf) == records


class TestCorruption:
    def test_truncated_header(self):
        packed = native.pack_record(make_record())
        with pytest.raises(native.NativeCodecError):
            native.unpack_record(packed[: native.HEADER_SIZE - 1])

    def test_truncated_body(self):
        packed = native.pack_record(make_record())
        with pytest.raises(native.NativeCodecError):
            native.unpack_record(packed[:-1])

    def test_unknown_field_type(self):
        packed = bytearray(native.pack_record(make_record(n_ints=1)))
        packed[native.HEADER_SIZE] = 0xEE  # corrupt the field tag
        with pytest.raises(native.NativeCodecError):
            native.unpack_record(bytes(packed))

    def test_length_out_of_bounds(self):
        packed = bytearray(native.pack_record(make_record()))
        packed[0:4] = (len(packed) + 100).to_bytes(4, "little")
        with pytest.raises(native.NativeCodecError):
            native.unpack_record(bytes(packed))

    def test_stray_bytes_inside_record(self):
        record = make_record(n_ints=1)
        packed = bytearray(native.pack_record(record))
        # Claim one field but lengthen the record.
        packed[0:4] = (len(packed) + 4).to_bytes(4, "little")
        packed += b"\x00\x00\x00\x00"
        with pytest.raises(native.NativeCodecError):
            native.unpack_record(bytes(packed))
