"""Scenario-driven tests for the adaptive steering loop.

Each scenario runs the full simulated deployment — real sensors, rings,
EXS batching, wire codec, sorter, monitor engine — in virtual time, so
detection latencies and rate comparisons are deterministic properties of
the configuration, not of host scheduling.

Covered end to end:

* **overload shedding** — a hot node trips a rate rule, the pushed
  sampling spec caps its delivered rate at the source, and the modelled
  ISM backlog stays bounded where the unmonitored baseline grows without
  limit;
* **hot-key detection** — a sudden per-event burst raises an alert
  record within the spec'd detection budget of virtual time;
* **anomaly-triggered full-fidelity capture** — a deployment running
  sampled-down restores ``sample_every=1`` the moment an anomaly event
  appears, and the full-rate burst lands in the durable commit log.
"""

from repro.core.consumers import CollectingConsumer, LogConsumer
from repro.core.filtering import FilterSpec
from repro.log import CommitLog, LogConfig
from repro.monitor.engine import ALERT_EVENT_ID
from repro.monitor.spec import Action, Condition, MonitorRule, MonitorSpec
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.workload import PeriodicWorkload


def build(
    *,
    n_nodes: int,
    rates_hz: dict[int, float],
    monitor: MonitorSpec | None,
    seed: int = 11,
    consumers: list | None = None,
    **config_kwargs,
):
    """One deployment with per-node periodic workloads and ideal clocks
    (zero offset/drift keeps record timestamps on the virtual timeline,
    so latency assertions read directly off them)."""
    sim = Simulator(seed=seed)
    collector = CollectingConsumer()
    sinks = [collector] + list(consumers or [])
    dep = SimDeployment(
        sim,
        DeploymentConfig(monitor=monitor, **config_kwargs),
        sinks,
        sync_algorithm="none",
    )
    for node_id in range(1, n_nodes + 1):
        node = dep.add_node(offset_us=0, drift_ppm=0.0)
        rate = rates_hz.get(node_id)
        if rate:
            dep.attach_workload(node, PeriodicWorkload(rate_hz=rate))
    return sim, dep, collector


def shedding_spec(
    *, above: float, sample_every: int, window_us: int = 500_000
) -> MonitorSpec:
    return MonitorSpec(
        rules=(
            MonitorRule(
                name="shed-hot",
                when=Condition(kind="rate", event_id=1, above=above,
                               window_us=window_us),
                do=(Action(kind="set_sampling", sample_every=sample_every),),
            ),
        ),
        bucket_us=100_000,
    )


class TestOverloadShedding:
    """One node floods at 10× the others; the shedding rule must cap it
    at the source while leaving well-behaved nodes untouched."""

    RATES = {1: 2_000.0, 2: 200.0, 3: 200.0}
    #: Modelled ISM cost per record: at the offered 2.4k rec/s the
    #: manager is past saturation (ρ ≈ 1.44), so the unshedded backlog
    #: can only grow.
    SERVICE_US = 600.0

    def run_scenario(self, monitor: MonitorSpec | None, duration_s: float = 6.0):
        sim, dep, collector = build(
            n_nodes=3, rates_hz=self.RATES, monitor=monitor,
            ism_service_time_us=self.SERVICE_US,
            monitor_interval_us=100_000,
        )
        backlog_trace: list[tuple[int, int]] = []
        held_trace: list[int] = []
        dep.start()

        def sample() -> None:
            backlog = max(0, dep._ism_busy_until[0] - sim.now)
            backlog_trace.append((sim.now, backlog))
            held_trace.append(dep.ism.sorter.held)

        stop_sampling = sim.schedule_every(200_000, sample)
        dep.run(duration_s)
        stop_sampling()
        dep.stop()
        return dep, collector, backlog_trace, held_trace

    def test_hot_node_rate_capped_and_backlog_bounded(self):
        spec = shedding_spec(above=800.0, sample_every=50)
        dep, collector, backlog, held = self.run_scenario(spec)
        base_dep, base_collector, base_backlog, _ = self.run_scenario(None)

        # The rule tripped and steered only the hot node.
        assert dep.monitor is not None
        assert dep.monitor.actions_fired >= 1
        hot = dep.nodes[0]
        assert hot.exs.filter is not None
        assert hot.exs.filter.spec.sample_every == 50
        assert hot.exs.stats.records_filtered > 0
        for quiet in dep.nodes[1:]:
            assert quiet.exs.filter is None
            assert quiet.exs.stats.records_filtered == 0

        # Source-side cap: the hot node ships a fraction of its emitted
        # records; the baseline ships every one of them.
        shipped = hot.exs.stats.records_shipped
        base_shipped = base_dep.nodes[0].exs.stats.records_shipped
        assert base_shipped == base_dep.nodes[0].sensor.emitted
        assert shipped < 0.4 * base_shipped

        # Quiet nodes keep full fidelity under the monitor.
        by_node: dict[int, int] = {}
        for record in collector.records:
            if record.event_id == 1:
                by_node[record.node_id] = by_node.get(record.node_id, 0) + 1
        for quiet in dep.nodes[1:]:
            assert by_node[quiet.node_id] == quiet.sensor.emitted

        # Bounded vs divergent backlog: past saturation the baseline's
        # modelled ISM queue grows with time; shedding pulls the system
        # back under capacity, so the tail of the monitored run is no
        # worse than its early peak.
        base_tail = max(b for _, b in base_backlog[-5:])
        shed_tail = max(b for _, b in backlog[-5:])
        assert base_tail > 1_000_000, "baseline never saturated; scenario is vacuous"
        assert shed_tail < base_tail / 4
        # And the real sorter heap stays small throughout.
        assert max(held) < 10_000

    def test_shedding_is_deterministic(self):
        spec = shedding_spec(above=800.0, sample_every=50)
        first = self.run_scenario(spec)
        second = self.run_scenario(spec)
        assert [r.values for r in first[1].records] == [
            r.values for r in second[1].records
        ]
        assert first[2] == second[2]


class TestHotKeyDetection:
    """A sudden burst of one event id must raise an alert record within
    the detection budget: one window to accumulate the rate, plus up to
    two monitor ticks (one to rotate the bucket, one to evaluate)."""

    WINDOW_US = 200_000
    TICK_US = 50_000
    BURST_START_S = 2.0
    BURST_HZ = 2_000

    def spec(self) -> MonitorSpec:
        return MonitorSpec(
            rules=(
                MonitorRule(
                    name="hotkey",
                    when=Condition(kind="rate", event_id=42, above=500.0,
                                   window_us=self.WINDOW_US),
                    do=(Action(kind="alert"),),
                ),
            ),
            bucket_us=self.TICK_US,
        )

    def test_alert_within_budget(self):
        sim, dep, collector = build(
            n_nodes=2, rates_hz={2: 50.0}, monitor=self.spec(),
            monitor_interval_us=self.TICK_US,
        )
        dep.run(self.BURST_START_S)
        # The hot key appears: event 42 at BURST_HZ on node 1 for one
        # virtual second, scheduled directly on the timeline.
        hot = dep.nodes[0]
        interval = round(1_000_000 / self.BURST_HZ)
        for k in range(self.BURST_HZ):
            sim.schedule((k + 1) * interval, hot.emit, k, 42)
        dep.run(2.0)
        dep.stop()

        alerts = [r for r in collector.records if r.event_id == ALERT_EVENT_ID]
        assert alerts, "hot key never detected"
        first = alerts[0]
        assert first.values[0] == "hotkey"
        assert first.values[1] == hot.node_id
        assert first.values[2] > 500.0
        burst_start_us = round(self.BURST_START_S * 1_000_000)
        detection_us = first.timestamp - burst_start_us
        # Budget: the window must fill past the threshold (≤ one full
        # window at these rates) plus two monitor ticks, plus the batch
        # flush/link slack of the shipping path.
        budget_us = self.WINDOW_US + 2 * self.TICK_US + 100_000
        assert 0 < detection_us <= budget_us, (
            f"alert took {detection_us} µs (budget {budget_us} µs)"
        )
        # The engine saw its own alert in the stream and ignored it — the
        # rule stays tripped (no flap) and fired exactly once per episode.
        assert dep.monitor.alerts_emitted == len(alerts) == 1


class TestAnomalyFullFidelityCapture:
    """Sampled-down steady state; an anomaly event restores full
    fidelity, and the full-rate capture lands in the durable log."""

    RATE_HZ = 500.0
    ANOMALY_S = 2.0

    def spec(self) -> MonitorSpec:
        return MonitorSpec(
            rules=(
                MonitorRule(
                    name="capture",
                    when=Condition(kind="rate", event_id=99, above=0.5,
                                   window_us=1_000_000),
                    do=(Action(kind="restore"), Action(kind="alert")),
                ),
            ),
            bucket_us=100_000,
        )

    def test_anomaly_restores_sampling_into_commit_log(self, tmp_path):
        log = CommitLog(tmp_path / "wal", LogConfig(fsync="off"))
        sink = LogConsumer(log)
        sim, dep, collector = build(
            n_nodes=1, rates_hz={1: self.RATE_HZ}, monitor=self.spec(),
            consumers=[sink], monitor_interval_us=100_000,
        )
        dep.start()
        # Operator baseline: 1-in-10 sampling pushed at the lone node.
        assert dep.push_filter(1, FilterSpec(sample_every=10))
        dep.run(self.ANOMALY_S)
        node = dep.nodes[0]
        assert node.exs.filter is not None
        assert node.exs.filter.spec.sample_every == 10

        # Three anomaly events, then two more seconds of steady load.
        for k in range(3):
            sim.schedule((k + 1) * 1_000, node.emit, k, 99)
        dep.run(2.0)
        dep.stop()
        log.sync()

        # The monitor restored full fidelity (a fresher epoch replaced
        # the operator's spec) and raised exactly one alert.
        assert node.exs.filter is None or node.exs.filter.spec.sample_every == 1
        assert dep.monitor.alerts_emitted == 1

        anomaly_us = round(self.ANOMALY_S * 1_000_000)
        phase_a = [r for r in collector.records
                   if r.event_id == 1 and r.timestamp < anomaly_us - 100_000]
        phase_b = [r for r in collector.records
                   if r.event_id == 1 and r.timestamp > anomaly_us + 400_000]
        expected_a = self.RATE_HZ * (self.ANOMALY_S - 0.1)
        assert len(phase_a) < 0.2 * expected_a, "sampling never took effect"
        # ~1.6 s of post-restore full-rate traffic must arrive intact.
        expected_b = self.RATE_HZ * 1.6
        assert len(phase_b) > 0.9 * expected_b, "full fidelity not restored"
        # Consecutive sequence numbers prove per-record (not batch) capture.
        tail = sorted(r.values[0] for r in phase_b)
        assert tail == list(range(tail[0], tail[0] + len(tail)))

        # The burst is durable: the commit log holds the same delivered
        # stream, alert record included.
        logged = list(log.iter_from(0))
        assert len(logged) == len(collector.records)
        logged_alerts = [r for r in logged if r.event_id == ALERT_EVENT_ID]
        assert len(logged_alerts) == 1
        assert logged_alerts[0].values[0] == "capture"
        log.close()
