"""The sharded ISM: ordered merge, equivalence with the single process,
and exactly-once delivery across a shard worker SIGKILL.

The dispatcher (`ShardedIsmServer`) owns the sockets and routes raw
frames onto per-shard shared-memory rings; workers decode/sort/match and
push released records back through a commit protocol.  These tests pin
the three contracts the design rests on:

* the `OrderedMerger` releases exactly what its watermarks allow, in
  merge order, and degenerates to a pass-through with one shard;
* a 1-shard sharded deployment is byte-identical to the single-process
  `IsmServer` on the same input, and a 4-shard one delivers the same
  record multiset with the same dedup accounting;
* killing a worker mid-run loses nothing and duplicates nothing — the
  committed-prefix salvage plus EXS resume replay covers the gap.
"""

import io
import multiprocessing as mp
import os
import signal
import threading
import time

import pytest

from repro.core.consumers import CollectingConsumer, PiclFileConsumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.merge import OrderedMerger
from repro.core.records import EventRecord, FieldType
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.picl.format import TimestampMode
from repro.runtime import attach_shared_ring, create_shared_ring
from repro.runtime.exs_proc import resilient_exs_main
from repro.runtime.ism_proc import IsmServer, ShardedIsmServer
from repro.wire import protocol
from repro.wire.tcp import MessageListener, connect


@pytest.fixture(scope="module")
def mp_ctx():
    return mp.get_context("spawn")


def _record(ts: int, value: int, node: int = 1) -> EventRecord:
    return EventRecord.from_wire(
        7, ts, (FieldType.X_UINT,), (value,), node_id=node
    )


# ----------------------------------------------------------------------
# OrderedMerger
# ----------------------------------------------------------------------
class TestOrderedMerger:
    def test_single_shard_is_pass_through(self):
        merger = OrderedMerger()
        merger.add_shard(0)
        records = [_record(ts, ts) for ts in (5, 3, 9)]  # shard order kept
        merger.push(0, records)
        assert merger.emit() == records
        assert merger.held == 0

    def test_gates_on_undeclared_watermark(self):
        merger = OrderedMerger()
        merger.add_shard(0)
        merger.add_shard(1)
        merger.push(0, [_record(10, 1)])
        assert merger.emit() == []  # shard 1 could still hold ts < 10
        merger.advance(1, 9)
        assert merger.emit() == []  # still: 10 > shard 1's promise
        merger.advance(1, 10)
        assert [r.timestamp for r in merger.emit()] == [10]

    def test_merges_across_shards_in_key_order(self):
        merger = OrderedMerger()
        for shard in (0, 1):
            merger.add_shard(shard)
        merger.push(0, [_record(1, 1), _record(4, 4)])
        merger.push(1, [_record(2, 2), _record(3, 3)])
        merger.advance(0, 100)
        merger.advance(1, 100)
        assert [r.timestamp for r in merger.emit()] == [1, 2, 3, 4]
        assert merger.stats.emitted == 4

    def test_closed_shard_does_not_gate(self):
        merger = OrderedMerger()
        merger.add_shard(0)
        merger.add_shard(1)
        merger.push(0, [_record(10, 1)])
        merger.close_shard(1)
        assert [r.timestamp for r in merger.emit()] == [10]
        # Reopening restores the gate with a fresh, undeclared watermark.
        merger.reopen_shard(1)
        merger.push(0, [_record(11, 2)])
        assert merger.emit() == []

    def test_regression_passes_through_and_is_counted(self):
        merger = OrderedMerger()
        merger.add_shard(0)
        merger.push(0, [_record(10, 1), _record(5, 2)])  # shard broke order
        assert [r.timestamp for r in merger.emit()] == [10, 5]
        assert merger.stats.regressions == 1

    def test_flush_releases_everything_in_merge_order(self):
        merger = OrderedMerger()
        merger.add_shard(0)
        merger.add_shard(1)
        merger.push(0, [_record(7, 1)])
        merger.push(1, [_record(2, 2)])
        # Non-empty queues arbitrate through the heap: 2 releases, then
        # shard 1 drains and its undeclared watermark gates the rest.
        assert [r.timestamp for r in merger.emit()] == [2]
        assert [r.timestamp for r in merger.flush()] == [7]
        assert merger.held == 0

    def test_watermark_is_monotone(self):
        merger = OrderedMerger()
        merger.add_shard(0)
        merger.add_shard(1)
        merger.advance(1, 50)
        merger.advance(1, 10)  # ignored: lower than the promise made
        merger.push(0, [_record(40, 1), _record(60, 2)])
        assert [r.timestamp for r in merger.emit()] == [40]

    def test_interleaving_invariant_random(self):
        # Property-style sweep: whatever the interleaving of push/advance,
        # once everything is in and watermarks are final, the merged
        # output is the globally sorted multiset of all inputs.
        import random

        rng = random.Random(42)
        for _ in range(25):
            shards = rng.randrange(1, 5)
            merger = OrderedMerger()
            for shard in range(shards):
                merger.add_shard(shard)
            expected = []
            out = []
            for shard in range(shards):
                ts_list = sorted(rng.randrange(0, 1000) for _ in range(20))
                for i in range(0, 20, 5):
                    merger.push(
                        shard,
                        [_record(ts, ts, node=shard + 1) for ts in ts_list[i:i + 5]],
                    )
                    out.extend(merger.emit())
                expected.extend(ts_list)
            for shard in range(shards):
                merger.advance(shard, 1000)
            out.extend(merger.emit())
            keys = [r.sort_key() for r in out]
            assert keys == sorted(keys)
            assert sorted(r.timestamp for r in out) == sorted(expected)


# ----------------------------------------------------------------------
# socket-level helpers
# ----------------------------------------------------------------------
def _send_workload(
    port: int,
    exs_id: int,
    node_id: int,
    n: int,
    *,
    duplicate_every: int = 0,
    results: dict | None = None,
) -> None:
    """One EXS-shaped client: Hello/wants_ack, batches of 10, wait for the
    cumulative ack.  ``duplicate_every`` re-sends every k-th batch with the
    same seq — the retransmission the dedup watermark must absorb."""
    conn = connect("127.0.0.1", port)
    try:
        conn.send(
            protocol.Hello(
                exs_id=exs_id, node_id=node_id, advertised_rate=0,
                wants_ack=True,
            )
        )
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if isinstance(conn.recv(timeout=0.2), protocol.HelloReply):
                break
        else:
            raise AssertionError("no HelloReply")
        seq = 0
        for base in range(0, n, 10):
            seq += 1
            batch = protocol.Batch(
                exs_id=exs_id,
                seq=seq,
                records=[
                    _record(1_000_000 + (base + i) * 7 + node_id,
                            base + i, node=node_id)
                    for i in range(10)
                ],
            )
            conn.send(batch)
            if duplicate_every and seq % duplicate_every == 0:
                conn.send(batch)  # same seq: must dedup, not double-count
        acked = -1
        deadline = time.monotonic() + 20
        while acked < seq and time.monotonic() < deadline:
            msg = conn.recv(timeout=0.2)
            if isinstance(msg, protocol.Ack):
                acked = max(acked, msg.up_to_seq)
        if results is not None:
            results[exs_id] = acked
        conn.send(protocol.Bye(reason="done"))
    finally:
        conn.close()


def _run_sharded(
    shards: int,
    sources: int,
    n_per_source: int,
    *,
    duplicate_every: int = 0,
    partition_by: str = "node",
):
    """Drive *sources* concurrent clients through a sharded server; return
    (delivered records, fleet snapshot, per-source final acks)."""
    listener = MessageListener(host="127.0.0.1", port=0)
    sink = CollectingConsumer()
    server = ShardedIsmServer(
        [sink], listener, shards=shards, partition_by=partition_by,
        ism_config=IsmConfig(sorter=SorterConfig(initial_frame_us=1_000)),
    )
    port = listener.address[1]
    results: dict = {}
    threads = [
        threading.Thread(
            target=_send_workload,
            args=(port, exs_id, exs_id, n_per_source),
            kwargs={"duplicate_every": duplicate_every, "results": results},
        )
        for exs_id in range(1, sources + 1)
    ]
    for t in threads:
        t.start()
    try:
        server.serve(
            until_records=sources * n_per_source, duration_s=60.0
        )
    finally:
        for t in threads:
            t.join(timeout=10)
        snapshot = server.metrics_snapshot()
        server.close()
        listener.close()
    return sink.records, snapshot, results


# ----------------------------------------------------------------------
# equivalence with the single-process ISM
# ----------------------------------------------------------------------
class TestShardedEquivalence:
    def _frames(self, n: int) -> list[bytes]:
        """One EXS's deterministic session: Hello then n/10 batches with
        monotonic timestamps (encoded — exactly what the wire carries)."""
        frames = [
            protocol.encode_message(
                protocol.Hello(exs_id=1, node_id=1, advertised_rate=0)
            )
        ]
        seq = 0
        for base in range(0, n, 10):
            seq += 1
            frames.append(
                protocol.encode_message(
                    protocol.Batch(
                        exs_id=1,
                        seq=seq,
                        records=[
                            _record(1_000 + base + i, base + i)
                            for i in range(10)
                        ],
                    )
                )
            )
        return frames

    def _run_single(self, frames: list[bytes], n: int) -> str:
        buf = io.StringIO()
        consumer = PiclFileConsumer(
            buf, TimestampMode.UTC_MICROS, epoch_us=0
        )
        manager = InstrumentationManager(
            IsmConfig(
                sorter=SorterConfig(initial_frame_us=0, decay_lambda=0.0)
            ),
            [consumer],
        )
        listener = MessageListener(host="127.0.0.1", port=0)
        server = IsmServer(manager, listener, ack_batches=False)

        def drive():
            conn = connect("127.0.0.1", listener.address[1])
            for frame in frames:
                conn.send_raw(frame)
            conn.close()

        t = threading.Thread(target=drive)
        t.start()
        try:
            server.serve(duration_s=30.0, until_records=n)
        finally:
            t.join(timeout=10)
            manager.close()
            listener.close()
        return buf.getvalue()

    def _run_sharded_one(self, frames: list[bytes], n: int) -> str:
        buf = io.StringIO()
        consumer = PiclFileConsumer(
            buf, TimestampMode.UTC_MICROS, epoch_us=0
        )
        listener = MessageListener(host="127.0.0.1", port=0)
        server = ShardedIsmServer(
            [consumer], listener, shards=1,
            ism_config=IsmConfig(
                sorter=SorterConfig(initial_frame_us=0, decay_lambda=0.0)
            ),
        )

        def drive():
            conn = connect("127.0.0.1", listener.address[1])
            for frame in frames:
                conn.send_raw(frame)
            conn.close()

        t = threading.Thread(target=drive)
        t.start()
        try:
            server.serve(duration_s=30.0, until_records=n)
        finally:
            t.join(timeout=10)
            server.close()
            listener.close()
        return buf.getvalue()

    def test_one_shard_byte_identical_to_single_process(self):
        # Same encoded session through both deployments.  With a zero,
        # non-decaying time frame and one monotonic source, both release
        # FIFO-deterministically, so the PICL texts must match byte for
        # byte — the acceptance bar for "sharding changed nothing".
        n = 500
        frames = self._frames(n)
        single = self._run_single(frames, n)
        sharded = self._run_sharded_one(frames, n)
        assert single.count("\n") >= n
        assert sharded == single

    def test_four_shards_same_multiset_and_dedup_counts(self):
        # The 1-shard and 4-shard deployments must agree on *what* was
        # delivered (the multiset) and on the dedup accounting for the
        # injected duplicate batches — PR 3's guarantees held per shard.
        sources, n = 4, 400
        recs_1, snap_1, acks_1 = _run_sharded(
            1, sources, n, duplicate_every=3
        )
        recs_4, snap_4, acks_4 = _run_sharded(
            4, sources, n, duplicate_every=3
        )
        expected = sorted(
            (node, value) for node in range(1, sources + 1)
            for value in range(n)
        )
        for recs in (recs_1, recs_4):
            assert sorted((r.node_id, r.values[0]) for r in recs) == expected
        assert acks_1 == acks_4 == {e: n // 10 for e in range(1, sources + 1)}
        dups = n // 10 // 3 * sources
        assert snap_1.get("ism.duplicate_batches") == dups
        assert snap_4.get("ism.duplicate_batches") == dups
        assert snap_1.get("ism.records_deduped") == dups * 10
        assert snap_4.get("ism.records_deduped") == dups * 10
        # Every source's records arrive in source order regardless of the
        # shard layout (per-shard sorting + FIFO merge queues).
        for recs in (recs_1, recs_4):
            for node in range(1, sources + 1):
                vals = [r.values[0] for r in recs if r.node_id == node]
                assert vals == sorted(vals)

    def test_partition_by_exs_spreads_sources(self):
        recs, snap, acks = _run_sharded(
            2, 2, 100, partition_by="exs"
        )
        assert len(recs) == 200
        assert acks == {1: 10, 2: 10}
        # Both shards did work: the per-shard commit counter moved twice.
        assert (snap.get("shard.commits") or 0) >= 2


# ----------------------------------------------------------------------
# chaos: shard worker SIGKILL mid-run
# ----------------------------------------------------------------------
class TestShardKillChaos:
    def test_shard_kill_and_restart_is_exactly_once(self, mp_ctx):
        n = 12_000
        shared = create_shared_ring(1 << 20)
        sink = CollectingConsumer()
        listener = MessageListener(host="127.0.0.1", port=0)
        host, port = listener.address
        server = ShardedIsmServer(
            [sink], listener, shards=2, partition_by="node",
            ism_config=IsmConfig(sorter=SorterConfig(initial_frame_us=1_000)),
            commit_interval_s=0.02,
        )
        app = mp_ctx.Process(
            target=_chaos_app_main, args=(shared.name, n, 1)
        )
        exs = mp_ctx.Process(
            target=resilient_exs_main,
            args=(shared.name, host, port, 1, 1, n),
            kwargs={"ack_timeout_s": 1.0},
        )
        serve = threading.Thread(
            target=server.serve, kwargs={"duration_s": 120.0}
        )
        app.start()
        exs.start()
        serve.start()
        try:
            # Let real work accumulate, then SIGKILL the worker that owns
            # the stream — staged-but-uncommitted output dies with it.
            deadline = time.monotonic() + 60
            victim = None
            while time.monotonic() < deadline:
                if server.records_received > n // 6:
                    victim = server._handles[1 % 2].process
                    break
                time.sleep(0.01)
            assert victim is not None, "pipeline never started flowing"
            os.kill(victim.pid, signal.SIGKILL)
            # Exactly-once must close the gap: wait for every record to
            # reach the consumer, then stop the dispatcher gracefully.
            deadline = time.monotonic() + 90
            while len(sink.records) < n and time.monotonic() < deadline:
                time.sleep(0.02)
            server.stop()
            serve.join(timeout=60)
            assert not serve.is_alive()
        finally:
            server.stop()
            app.join(timeout=10)
            exs.join(timeout=30)
            if exs.is_alive():
                exs.terminate()
            serve.join(timeout=10)
            server.close()
            listener.close()
            shared.close()
        # Chaos actually happened, and the EXS had to come back.
        assert int(server.shard_restarts) >= 1
        # Exactly-once end to end: nothing lost, nothing duplicated.
        values = sorted(r.values[0] for r in sink.records)
        assert values == list(range(n))
        # Per-source delivery order survived the restart (dedup replays
        # land behind the committed watermark, never out of order).
        raw = [r.values[0] for r in sink.records]
        assert raw == sorted(raw)


def _chaos_app_main(ring_name: str, n_records: int, node_id: int) -> None:
    shared = attach_shared_ring(ring_name)
    try:
        sensor = Sensor(shared.ring, node_id=node_id)
        sent = 0
        while sent < n_records:
            if sensor.notice_ints(7, sent):
                sent += 1
            else:
                time.sleep(0.001)
    finally:
        shared.close()
