"""Unit tests for probing, Cristian's baseline, and BRISK's modified
synchronization algorithm.

These tests exercise the *algorithms* against hand-built slaves with exact,
controllable skews; statistical convergence under jitter/drift is covered
by the deployment integration tests and benchmark E6.
"""

import pytest

from repro.clocksync.brisk_sync import BriskSyncConfig, BriskSyncMaster
from repro.clocksync.cristian import CristianMaster
from repro.clocksync.probes import FunctionSlave, ProbeSample, probe_average, probe_best_of


class ExactSlave:
    """A slave whose measured skew equals its true skew (no noise)."""

    def __init__(self, slave_id: int, skew_us: float, rtt_us: int = 400):
        self.slave_id = slave_id
        self.skew_us = skew_us
        self.rtt_us = rtt_us
        self.corrections: list[int] = []

    def probe(self) -> ProbeSample:
        return ProbeSample(skew_us=self.skew_us, rtt_us=self.rtt_us)

    def adjust(self, correction_us: int) -> None:
        self.corrections.append(correction_us)
        self.skew_us += correction_us


class TestProbeStrategies:
    def test_best_of_keeps_minimum_rtt(self):
        samples = iter(
            [
                ProbeSample(skew_us=10.0, rtt_us=900),
                ProbeSample(skew_us=5.0, rtt_us=300),
                ProbeSample(skew_us=20.0, rtt_us=600),
            ]
        )
        slave = FunctionSlave(1, lambda: next(samples), lambda c: None)
        best = probe_best_of(slave, 3)
        assert best == ProbeSample(skew_us=5.0, rtt_us=300)

    def test_average_means_skew(self):
        samples = iter(
            [ProbeSample(skew_us=10.0, rtt_us=100), ProbeSample(skew_us=20.0, rtt_us=300)]
        )
        slave = FunctionSlave(1, lambda: next(samples), lambda c: None)
        avg = probe_average(slave, 2)
        assert avg.skew_us == pytest.approx(15.0)
        assert avg.rtt_us == 200

    def test_zero_attempts_rejected(self):
        slave = ExactSlave(1, 0.0)
        with pytest.raises(ValueError):
            probe_best_of(slave, 0)
        with pytest.raises(ValueError):
            probe_average(slave, 0)


class TestCristian:
    def test_steers_every_slave_to_master(self):
        slaves = [ExactSlave(i, skew) for i, skew in enumerate([500.0, -300.0, 0.0])]
        master = CristianMaster(slaves, probes_per_round=1)
        master.run_round()
        assert slaves[0].skew_us == pytest.approx(0.0)
        assert slaves[1].skew_us == pytest.approx(0.0)
        # Signed corrections: the fast slave was stepped BACK.
        assert slaves[0].corrections == [-500]
        assert slaves[1].corrections == [300]
        assert slaves[2].corrections == []  # zero correction not sent

    def test_requires_slaves(self):
        with pytest.raises(ValueError):
            CristianMaster([])

    def test_history_recorded(self):
        master = CristianMaster([ExactSlave(1, 100.0)])
        report = master.run_round()
        assert report.round_id == 1
        assert master.history == [report]
        assert report.samples[1].skew_us == pytest.approx(100.0)


class TestBriskSync:
    def test_elects_most_ahead_clock(self):
        slaves = [ExactSlave(1, 100.0), ExactSlave(2, 900.0), ExactSlave(3, -50.0)]
        master = BriskSyncMaster(slaves)
        report = master.run_round()
        assert report.elected == 2

    def test_elected_clock_never_corrected(self):
        slaves = [ExactSlave(1, 100.0), ExactSlave(2, 900.0)]
        master = BriskSyncMaster(slaves)
        master.run_round()
        assert slaves[2 - 1].corrections == []

    def test_corrections_are_advance_only(self):
        slaves = [ExactSlave(i, skew) for i, skew in enumerate([0.0, 800.0, -400.0])]
        master = BriskSyncMaster(slaves)
        for _ in range(6):
            master.run_round()
        for slave in slaves:
            assert all(c > 0 for c in slave.corrections)

    def test_only_above_average_skews_corrected(self):
        # rel skews vs elected(=1000): [900, 100]; avg=500 → only the 900
        # one is corrected this round.
        slaves = [
            ExactSlave(1, 1000.0),
            ExactSlave(2, 100.0),
            ExactSlave(3, 900.0),
        ]
        master = BriskSyncMaster(
            slaves, BriskSyncConfig(threshold_us=100.0)
        )
        report = master.run_round()
        assert report.elected == 1
        assert slaves[1].corrections  # rel 900 > avg 500
        assert not slaves[2].corrections  # rel 100 < avg 500

    def test_full_correction_above_threshold(self):
        slaves = [ExactSlave(1, 1000.0), ExactSlave(2, 0.0)]
        master = BriskSyncMaster(slaves, BriskSyncConfig(threshold_us=100.0))
        report = master.run_round()
        assert not report.damped
        # rel skew 1000, avg 1000 > threshold → full correction.
        assert slaves[1].corrections == [1000]
        assert slaves[1].skew_us == pytest.approx(1000.0)  # caught up

    def test_damped_correction_near_convergence(self):
        slaves = [ExactSlave(1, 50.0), ExactSlave(2, 0.0)]
        master = BriskSyncMaster(
            slaves, BriskSyncConfig(threshold_us=100.0, damping=0.7)
        )
        report = master.run_round()
        assert report.damped
        assert slaves[1].corrections == [int(50 * 0.7)]

    def test_converges_to_fastest_clock(self):
        slaves = [
            ExactSlave(1, 2000.0),
            ExactSlave(2, -1500.0),
            ExactSlave(3, 300.0),
            ExactSlave(4, 0.0),
        ]
        master = BriskSyncMaster(slaves, BriskSyncConfig(threshold_us=50.0))
        for _ in range(30):
            master.run_round()
        skews = [s.skew_us for s in slaves]
        assert max(skews) - min(skews) < 50.0
        # Everyone converged UP to the fastest clock, not down to the master.
        assert min(skews) > 1500.0

    def test_converges_faster_than_dispersion_halving(self):
        # The elected-reference scheme closes mutual dispersion quickly:
        # within 10 exact rounds the ensemble is inside the threshold.
        slaves = [ExactSlave(i, float(i * 700)) for i in range(8)]
        master = BriskSyncMaster(slaves, BriskSyncConfig(threshold_us=100.0))
        for _ in range(10):
            master.run_round()
        skews = [s.skew_us for s in slaves]
        assert max(skews) - min(skews) <= 100.0 * 2

    def test_single_slave_round_is_a_noop(self):
        slave = ExactSlave(1, 500.0)
        master = BriskSyncMaster([slave])
        report = master.run_round()
        assert report.elected == 1
        assert slave.corrections == []

    def test_extra_round_request_flag(self):
        master = BriskSyncMaster([ExactSlave(1, 0.0)])
        assert not master.consume_extra_round_request()
        master.request_extra_round()
        assert master.consume_extra_round_request()
        assert not master.consume_extra_round_request()

    def test_last_dispersion(self):
        slaves = [ExactSlave(1, 100.0), ExactSlave(2, 400.0)]
        master = BriskSyncMaster(slaves)
        with pytest.raises(RuntimeError):
            master.last_dispersion()
        master.run_round()
        assert master.last_dispersion() == pytest.approx(300.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BriskSyncConfig(probes_per_round=0)
        with pytest.raises(ValueError):
            BriskSyncConfig(damping=0.0)
        with pytest.raises(ValueError):
            BriskSyncConfig(damping=1.5)
        with pytest.raises(ValueError):
            BriskSyncConfig(threshold_us=-1.0)

    def test_requires_slaves(self):
        with pytest.raises(ValueError):
            BriskSyncMaster([])
