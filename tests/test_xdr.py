"""Unit tests for the XDR encoder/decoder (RFC 4506 conformance)."""

import math
import struct

import pytest

from repro.xdr import XdrDecodeError, XdrDecoder, XdrEncodeError, XdrEncoder


def roundtrip(pack, unpack, value):
    enc = XdrEncoder()
    pack(enc, value)
    dec = XdrDecoder(enc.getvalue())
    result = unpack(dec)
    dec.done()
    return result


class TestIntegers:
    @pytest.mark.parametrize("value", [0, 1, -1, 2**31 - 1, -(2**31)])
    def test_int_roundtrip(self, value):
        assert roundtrip(XdrEncoder.pack_int, XdrDecoder.unpack_int, value) == value

    @pytest.mark.parametrize("value", [2**31, -(2**31) - 1])
    def test_int_range_rejected(self, value):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_int(value)

    @pytest.mark.parametrize("value", [0, 1, 2**32 - 1])
    def test_uint_roundtrip(self, value):
        assert roundtrip(XdrEncoder.pack_uint, XdrDecoder.unpack_uint, value) == value

    @pytest.mark.parametrize("value", [-1, 2**32])
    def test_uint_range_rejected(self, value):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_uint(value)

    @pytest.mark.parametrize("value", [0, 2**62, -(2**62), 2**63 - 1, -(2**63)])
    def test_hyper_roundtrip(self, value):
        assert (
            roundtrip(XdrEncoder.pack_hyper, XdrDecoder.unpack_hyper, value) == value
        )

    def test_hyper_range_rejected(self):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_hyper(2**63)

    @pytest.mark.parametrize("value", [0, 2**64 - 1])
    def test_uhyper_roundtrip(self, value):
        assert (
            roundtrip(XdrEncoder.pack_uhyper, XdrDecoder.unpack_uhyper, value)
            == value
        )

    def test_int_is_big_endian(self):
        enc = XdrEncoder()
        enc.pack_int(1)
        assert enc.getvalue() == b"\x00\x00\x00\x01"

    def test_int_occupies_four_bytes(self):
        enc = XdrEncoder()
        enc.pack_int(-1)
        assert len(enc.getvalue()) == 4


class TestBoolEnum:
    def test_bool_roundtrip(self):
        for value in (True, False):
            assert (
                roundtrip(XdrEncoder.pack_bool, XdrDecoder.unpack_bool, value)
                is value
            )

    def test_bool_rejects_other_values(self):
        dec = XdrDecoder(struct.pack(">i", 2))
        with pytest.raises(XdrDecodeError):
            dec.unpack_bool()

    def test_enum_roundtrip(self):
        assert roundtrip(XdrEncoder.pack_enum, XdrDecoder.unpack_enum, -7) == -7


class TestFloats:
    def test_double_roundtrip_exact(self):
        for value in (0.0, 1.5, -math.pi, 1e300, float("inf")):
            assert (
                roundtrip(XdrEncoder.pack_double, XdrDecoder.unpack_double, value)
                == value
            )

    def test_double_nan(self):
        result = roundtrip(
            XdrEncoder.pack_double, XdrDecoder.unpack_double, float("nan")
        )
        assert math.isnan(result)

    def test_float_single_precision(self):
        result = roundtrip(XdrEncoder.pack_float, XdrDecoder.unpack_float, 0.1)
        assert result == pytest.approx(0.1, rel=1e-6)
        assert result != 0.1  # precision was genuinely reduced

    def test_float_ieee_bytes(self):
        enc = XdrEncoder()
        enc.pack_float(1.0)
        assert enc.getvalue() == b"\x3f\x80\x00\x00"


class TestOpaqueString:
    @pytest.mark.parametrize("length", [0, 1, 2, 3, 4, 5, 255])
    def test_opaque_roundtrip_and_padding(self, length):
        data = bytes(range(256))[:length]
        enc = XdrEncoder()
        enc.pack_opaque(data)
        encoded = enc.getvalue()
        assert len(encoded) % 4 == 0
        assert len(encoded) == 4 + length + (4 - length % 4) % 4
        dec = XdrDecoder(encoded)
        assert dec.unpack_opaque() == data
        dec.done()

    def test_fopaque_roundtrip(self):
        enc = XdrEncoder()
        enc.pack_fopaque(5, b"hello")
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_fopaque(5) == b"hello"
        dec.done()

    def test_fopaque_wrong_length_rejected(self):
        with pytest.raises(XdrEncodeError):
            XdrEncoder().pack_fopaque(4, b"hello")

    def test_nonzero_padding_rejected(self):
        # "hello" padded with garbage instead of zeros.
        raw = struct.pack(">I", 5) + b"hello" + b"\x01\x02\x03"
        dec = XdrDecoder(raw)
        with pytest.raises(XdrDecodeError):
            dec.unpack_opaque()

    def test_string_utf8_roundtrip(self):
        assert (
            roundtrip(XdrEncoder.pack_string, XdrDecoder.unpack_string, "héllo ∀")
            == "héllo ∀"
        )

    def test_string_invalid_utf8_rejected(self):
        enc = XdrEncoder()
        enc.pack_opaque(b"\xff\xfe")
        dec = XdrDecoder(enc.getvalue())
        with pytest.raises(XdrDecodeError):
            dec.unpack_string()

    def test_opaque_length_limit(self):
        enc = XdrEncoder()
        enc.pack_opaque(b"x" * 100)
        dec = XdrDecoder(enc.getvalue())
        with pytest.raises(XdrDecodeError):
            dec.unpack_opaque(max_length=99)

    def test_opaque_hostile_length_prefix(self):
        # Length prefix claims 2**31 bytes; decoder must not allocate it.
        raw = struct.pack(">I", 2**31) + b"abcd"
        dec = XdrDecoder(raw)
        with pytest.raises(XdrDecodeError):
            dec.unpack_opaque()


class TestArrays:
    def test_farray_roundtrip(self):
        enc = XdrEncoder()
        enc.pack_farray(3, [1, 2, 3], enc.pack_int)
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_farray(3, dec.unpack_int) == [1, 2, 3]

    def test_farray_wrong_length(self):
        enc = XdrEncoder()
        with pytest.raises(XdrEncodeError):
            enc.pack_farray(2, [1, 2, 3], enc.pack_int)

    def test_array_roundtrip(self):
        enc = XdrEncoder()
        enc.pack_array([10, 20], enc.pack_uint)
        dec = XdrDecoder(enc.getvalue())
        assert dec.unpack_array(dec.unpack_uint) == [10, 20]

    def test_array_length_limit(self):
        enc = XdrEncoder()
        enc.pack_array([1] * 10, enc.pack_int)
        dec = XdrDecoder(enc.getvalue())
        with pytest.raises(XdrDecodeError):
            dec.unpack_array(dec.unpack_int, max_length=9)


class TestCursor:
    def test_truncated_read_raises(self):
        dec = XdrDecoder(b"\x00\x00")
        with pytest.raises(XdrDecodeError):
            dec.unpack_int()

    def test_done_rejects_trailing_bytes(self):
        dec = XdrDecoder(b"\x00\x00\x00\x01\xff")
        dec.unpack_int()
        with pytest.raises(XdrDecodeError):
            dec.done()

    def test_position_and_remaining(self):
        dec = XdrDecoder(b"\x00" * 12)
        assert dec.remaining == 12
        dec.unpack_int()
        assert dec.position == 4
        assert dec.remaining == 8

    def test_encoder_reset_reuses_buffer(self):
        enc = XdrEncoder()
        enc.pack_int(1)
        enc.reset()
        assert len(enc) == 0
        enc.pack_int(2)
        assert enc.getvalue() == b"\x00\x00\x00\x02"

    def test_append_raw_requires_alignment(self):
        enc = XdrEncoder()
        with pytest.raises(XdrEncodeError):
            enc.append_raw(b"abc")
        enc.append_raw(b"abcd")
        assert enc.getvalue() == b"abcd"


class TestEncoderGetbuffer:
    def test_getbuffer_matches_getvalue_without_copy(self):
        enc = XdrEncoder()
        enc.pack_uint(7)
        enc.pack_string("payload")
        view = enc.getbuffer()
        assert isinstance(view, memoryview)
        assert bytes(view) == enc.getvalue()
        # The view aliases the live buffer: growth is blocked while exported.
        with pytest.raises(BufferError):
            enc.pack_uint(1)
        view.release()
        enc.pack_uint(1)  # fine again once released
