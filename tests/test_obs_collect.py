"""Wiring the metrics registry over real pipeline objects, and the
``brisk-stats`` tool end to end."""



from repro.core.ringbuffer import HEADER_SIZE, OverflowPolicy, RingBuffer
from repro.obs import collect
from repro.obs.metrics import MetricsRegistry
from repro.runtime.exs_proc import ExsOutbox, ReconnectingExs
from repro.tools import stats_cli


class TestCollectWiring:
    def test_wire_ring_reports_occupancy(self):
        registry = MetricsRegistry()
        ring = RingBuffer(
            bytearray(HEADER_SIZE + 4096), OverflowPolicy.DROP_NEW
        )
        collect.wire_ring(registry, ring, prefix="ring")
        snap = registry.snapshot()
        assert snap.get("ring.capacity_bytes") == ring.capacity
        assert snap.get("ring.used_bytes") == 0.0
        assert snap.get("ring.fill_fraction") == 0.0
        assert snap.get("ring.dropped") == 0.0

    def test_wire_outbox_tracks_depth_and_acks(self):
        registry = MetricsRegistry()
        outbox = ExsOutbox(depth=8)
        outbox.append(0, b"batch-0")
        outbox.append(1, b"batch-1")
        collect.wire_outbox(registry, outbox)
        snap = registry.snapshot()
        assert snap.get("outbox.unacked") == 2.0
        assert snap.get("outbox.depth") == 8.0
        assert snap.get("outbox.acked_batches") == 0.0

    def test_wire_reconnector_adopts_counters(self):
        from repro.clocksync.clocks import CorrectedClock
        from repro.core.exs import ExternalSensor
        from repro.core.ringbuffer import ring_for_records
        from repro.util.timebase import now_micros

        ring = ring_for_records(1_000)
        exs = ExternalSensor(1, 1, ring, CorrectedClock(now_micros))
        runner = ReconnectingExs(exs, "127.0.0.1", 1, max_attempts=1)
        registry = MetricsRegistry()
        collect.wire_reconnector(registry, runner)
        runner.run()  # nothing listens: one failed attempt
        snap = registry.snapshot()
        assert snap.get("wire.failed_attempts") == 1.0
        assert snap.get("wire.connections") == 0.0
        assert snap.get("outbox.unacked") == 0.0

    def test_dead_gauge_is_skipped_not_fatal(self):
        registry = MetricsRegistry()

        class Dying:
            @property
            def used(self):
                raise OSError("segment detached")

            free = 0
            capacity = 0
            dropped = 0
            overwritten = 0

        collect.wire_ring(registry, Dying(), prefix="dead")
        snap = registry.snapshot()
        assert "dead.used_bytes" not in snap
        assert snap.get("dead.free_bytes") == 0.0


class TestStatsCli:
    def test_sim_mode_round_trips(self, capsys):
        rc = stats_cli.main(
            ["sim", "--nodes", "2", "--duration", "2", "--rate", "50",
             "--seed", "3", "--quiet"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "final snapshot" in out
        assert "sorter.pushed" in out
        assert "self-emitted metrics decoded" in out

    def test_sim_mode_periodic_tables(self, capsys):
        rc = stats_cli.main(
            ["sim", "--nodes", "1", "--duration", "1", "--rate", "20"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "t=1.0s" in out

    def test_picl_mode_decodes_golden_trace(self, capsys):
        from tests.test_golden_pipeline import GOLDEN_PATH

        rc = stats_cli.main(["picl", str(GOLDEN_PATH)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sorter.pushed" in out

    def test_picl_mode_without_metrics_fails(self, tmp_path, capsys):
        trace = tmp_path / "plain.picl"
        trace.write_text("-3 1 1000 1 1 4 7\n", encoding="ascii")
        rc = stats_cli.main(["picl", str(trace)])
        err = capsys.readouterr().err
        assert rc == 1
        assert "no metric records" in err

    def test_shm_mode_reads_live_segment(self, capsys):
        from repro.core.sensor import Sensor
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.reporter import MetricsReporter
        from repro.runtime.shm_consumer import SharedMemoryConsumer

        shm = SharedMemoryConsumer(capacity_bytes=1 << 16)
        try:
            # Self-emitted metric records land in the shared segment the
            # way an ISM --shm-out consumer would put them there.
            ring = RingBuffer(
                bytearray(HEADER_SIZE + (1 << 16)), OverflowPolicy.DROP_NEW
            )
            sensor = Sensor(ring, node_id=1, clock=lambda: 7)
            registry = MetricsRegistry()
            registry.counter("demo.count").inc(5)
            MetricsReporter(registry, sensor).emit_now(now=0)
            for record in ring.drain():
                shm.deliver(record)
            rc = stats_cli.main(["shm", shm.name])
            out = capsys.readouterr().out
            assert rc == 0
            assert "demo.count" in out
        finally:
            shm.close()


class TestIsmServerStatsSink:
    def test_periodic_stats_print(self):
        from repro.core.ism import InstrumentationManager
        from repro.runtime.ism_proc import IsmServer
        from repro.wire.tcp import MessageListener

        lines = []
        listener = MessageListener("127.0.0.1", 0)
        try:
            server = IsmServer(
                InstrumentationManager(),
                listener,
                stats_interval_s=0.001,
                stats_sink=lines.append,
            )
            server._next_stats = 0.0  # force: the interval has elapsed
            server._maybe_stats()
            assert lines, "stats sink never invoked"
            assert "brisk-ism stats" in lines[0]
            assert "sorter" in lines[0]
        finally:
            listener.close()
