"""Robustness tests: fuzzing, concurrency, failure injection.

A monitoring kernel must be the *last* thing to fall over: decoders face
corrupt bytes, the ring faces a true concurrent producer/consumer, and the
ISM faces peers that vanish mid-stream.
"""

import threading

import pytest
from hypothesis import given, settings, strategies as st
from tests.conftest import make_record

from repro.core import native
from repro.core.cre import CausalMatcher, CreConfig
from repro.core.records import EventRecord, FieldType
from repro.core.ringbuffer import HEADER_SIZE, RingBuffer
from repro.wire import protocol
from repro.xdr import RecordMarkingReader, XdrDecodeError


class TestDecoderFuzzing:
    """Corrupt inputs must raise the codec's error types — never crash
    with arbitrary exceptions, never hang, never allocate unboundedly."""

    @given(st.binary(max_size=512))
    @settings(max_examples=200)
    def test_message_decoder_total(self, data):
        try:
            protocol.decode_message(data)
        except (XdrDecodeError, protocol.ProtocolError):
            pass  # the contract: structured rejection

    @given(st.binary(max_size=256))
    @settings(max_examples=200)
    def test_native_decoder_total(self, data):
        try:
            native.unpack_record(data)
        except native.NativeCodecError:
            pass

    @given(st.binary(max_size=256), st.integers(0, 255), st.integers(0, 600))
    @settings(max_examples=200)
    def test_bitflipped_valid_batch(self, extra, flip_value, position):
        encoded = bytearray(
            protocol.encode_batch_records(
                1, 0, [make_record(), make_record(event_id=2)]
            )
        )
        if position < len(encoded):
            encoded[position] ^= flip_value or 0xFF
        try:
            protocol.decode_message(bytes(encoded) + extra)
        except (XdrDecodeError, protocol.ProtocolError, ValueError):
            pass  # ValueError: a flipped field may violate record ranges

    @given(st.binary(max_size=400))
    @settings(max_examples=100)
    def test_record_marking_reader_total(self, data):
        reader = RecordMarkingReader(max_record=1 << 16)
        try:
            list(reader.feed(data))
        except XdrDecodeError:
            pass


class TestConcurrentRing:
    """True SPSC concurrency: a producer thread racing a consumer thread.

    The ring's documented contract is single-producer/single-consumer with
    monotonic head/tail counters; this drives it with a real producer and
    consumer running simultaneously and checks nothing is lost, duplicated
    or reordered.
    """

    @pytest.mark.parametrize("capacity", [512, 4096])
    def test_spsc_threads(self, capacity):
        ring = RingBuffer(bytearray(HEADER_SIZE + capacity))
        n = 20_000
        received: list[int] = []
        produced: list[int] = []
        done = threading.Event()

        def producer():
            sent = 0
            while sent < n:
                record = make_record(event_id=sent % (2**31), n_ints=1)
                if ring.push(record):
                    produced.append(sent)
                    sent += 1
            done.set()

        def consumer():
            while not (done.is_set() and not ring):
                record = ring.pop()
                if record is not None:
                    received.append(record.event_id)

        threads = [
            threading.Thread(target=producer),
            threading.Thread(target=consumer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        assert received == list(range(n))


class TestCreConservation:
    """Everything entering the matcher leaves it exactly once."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["plain", "reason", "conseq"]),
                st.integers(0, 5),   # marker id
                st.integers(0, 10_000),  # timestamp
            ),
            max_size=60,
        ),
        st.integers(100, 5_000),
    )
    @settings(max_examples=100)
    def test_exactly_once_delivery(self, plan, timeout_us):
        matcher = CausalMatcher(CreConfig(timeout_us=timeout_us))
        delivered = 0
        now = 0
        for kind, cid, ts in plan:
            now += 50
            if kind == "plain":
                record = make_record(timestamp=ts, n_ints=1)
            elif kind == "reason":
                record = EventRecord(
                    event_id=1, timestamp=ts,
                    field_types=(FieldType.X_REASON,), values=(cid,),
                )
            else:
                record = EventRecord(
                    event_id=2, timestamp=ts,
                    field_types=(FieldType.X_CONSEQ,), values=(cid,),
                )
            delivered += len(matcher.process(record, now))
            delivered += len(matcher.expire(now))
        # Force every timeout.
        delivered += len(matcher.expire(now + timeout_us + 1))
        assert delivered == len(plan)
        assert matcher.parked_count == 0


class TestIsmPeerFailures:
    def test_partial_frame_then_disconnect(self):
        """A peer dying mid-frame must not wedge or corrupt the server."""
        from repro.core.consumers import CollectingConsumer
        from repro.core.ism import InstrumentationManager
        from repro.runtime.ism_proc import IsmServer
        from repro.wire.tcp import MessageListener, connect
        from repro.xdr import frame_record

        collected = CollectingConsumer()
        manager = InstrumentationManager(consumers=[collected])
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)
        conn = connect(host, port)
        conn.send(protocol.Hello(exs_id=1, node_id=1))
        batch = protocol.encode_batch_records(1, 0, [make_record()])
        conn.send_raw(batch)
        # Half a frame, then vanish.
        frame = frame_record(
            protocol.encode_batch_records(1, 1, [make_record()])
        )
        conn._sock.sendall(frame[: len(frame) // 2])  # noqa: SLF001
        conn._sock.close()  # noqa: SLF001 - simulate a crash, no shutdown
        server.serve(duration_s=5.0, expected_connections=1)
        listener.close()
        # The complete batch before the crash was delivered.
        assert manager.stats.records_received == 1
        assert server.closed_connections == 1
