"""Unit tests for the reference EXS driver loop (`run_exs_loop`)."""

from tests.test_clocks import FakeTime

from repro.clocksync.clocks import CorrectedClock
from repro.core.exs import ExsConfig, ExternalSensor, run_exs_loop
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.wire import protocol


def build(config=ExsConfig(batch_max_records=8, flush_timeout_us=0)):
    t = FakeTime(1_000)
    ring = ring_for_records(1_000)
    sensor = Sensor(ring, node_id=2, clock=t)
    exs = ExternalSensor(2, 2, ring, CorrectedClock(t), config)
    return t, sensor, exs


class TestRunExsLoop:
    def test_ships_then_flushes_on_stop(self):
        t, sensor, exs = build()
        for k in range(20):
            sensor.notice_ints(1, k)
        sent: list[bytes] = []
        iterations = [0]

        def should_stop() -> bool:
            iterations[0] += 1
            return iterations[0] > 3

        run_exs_loop(
            exs,
            send=sent.append,
            should_stop=should_stop,
            sleep=lambda s: None,
        )
        records = [
            r
            for payload in sent
            for r in protocol.decode_message(payload).records
        ]
        assert len(records) == 20  # everything shipped incl. final flush

    def test_sleeps_only_when_idle(self):
        t, sensor, exs = build()
        sleeps: list[float] = []
        iterations = [0]

        def should_stop() -> bool:
            iterations[0] += 1
            if iterations[0] == 2:
                # Data appears between iterations 2 and 3.
                sensor.notice_ints(1, 42)
            return iterations[0] > 4

        sent: list[bytes] = []
        run_exs_loop(
            exs,
            send=sent.append,
            should_stop=should_stop,
            sleep=sleeps.append,
            poll_interval_s=0.04,
        )
        # Idle iterations slept the select interval; the busy one did not.
        assert sleeps.count(0.04) >= 2
        assert len(sleeps) < 4
        assert sent  # the record still went out
