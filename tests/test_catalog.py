"""Unit tests for event catalogs (self-describing traces)."""

import pytest
from tests.conftest import make_record

from repro.core.catalog import CATALOG_EVENT_ID, EventCatalog
from repro.core.records import FieldType, RecordSchema
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor

SCHEMA = RecordSchema((FieldType.X_INT, FieldType.X_STRING))


class TestRegistry:
    def test_define_and_lookup(self):
        catalog = EventCatalog()
        catalog.define(42, "cache.miss", SCHEMA)
        assert 42 in catalog
        assert catalog.name_of(42) == "cache.miss"
        assert catalog.schema_of(42) == SCHEMA
        assert len(catalog) == 1

    def test_unknown_id_fallback(self):
        catalog = EventCatalog()
        assert catalog.name_of(7) == "event 7"
        assert catalog.name_of(7, default="?") == "?"
        assert catalog.schema_of(7) is None

    def test_redefine_overwrites(self):
        catalog = EventCatalog()
        catalog.define(1, "old")
        catalog.define(1, "new")
        assert catalog.name_of(1) == "new"
        assert len(catalog) == 1

    def test_reserved_id_rejected(self):
        with pytest.raises(ValueError):
            EventCatalog().define(CATALOG_EVENT_ID, "nope")

    def test_definitions_sorted(self):
        catalog = EventCatalog()
        catalog.define(9, "nine")
        catalog.define(1, "one")
        assert [d.event_id for d in catalog.definitions] == [1, 9]


class TestInBandTransport:
    def test_announce_and_rebuild(self):
        ring = ring_for_records(100)
        sensor = Sensor(ring, node_id=1)
        catalog = EventCatalog()
        catalog.define(42, "cache.miss", SCHEMA)
        catalog.define(43, "cache.hit")
        assert catalog.announce(sensor) == 2

        rebuilt = EventCatalog.from_trace(ring.drain())
        assert rebuilt.name_of(42) == "cache.miss"
        assert rebuilt.schema_of(42) == SCHEMA
        assert rebuilt.schema_of(43) is None

    def test_definitions_survive_the_wire(self):
        from repro.wire import protocol

        ring = ring_for_records(100)
        sensor = Sensor(ring, node_id=1)
        catalog = EventCatalog()
        catalog.define(5, "phase.start", RecordSchema((FieldType.X_DOUBLE,)))
        catalog.announce(sensor)
        encoded = protocol.encode_batch_records(1, 0, ring.drain())
        batch = protocol.decode_message(encoded)
        rebuilt = EventCatalog.from_trace(batch.records)
        assert rebuilt.name_of(5) == "phase.start"

    def test_fold_ignores_ordinary_records(self):
        catalog = EventCatalog()
        assert not catalog.fold(make_record())
        assert len(catalog) == 0

    def test_fold_tolerates_unknown_type_names(self):
        from repro.core.records import EventRecord

        record = EventRecord(
            event_id=CATALOG_EVENT_ID,
            timestamp=0,
            field_types=(FieldType.X_UINT, FieldType.X_STRING, FieldType.X_STRING),
            values=(5, "future.event", "X_QUATERNION"),
        )
        catalog = EventCatalog()
        assert catalog.fold(record)
        assert catalog.name_of(5) == "future.event"
        assert catalog.schema_of(5) is None


class TestValidation:
    def test_matching_schema_valid(self):
        catalog = EventCatalog()
        catalog.define(1, "six-ints", RecordSchema((FieldType.X_INT,) * 6))
        assert catalog.validate(make_record(event_id=1))

    def test_mismatched_schema_invalid(self):
        catalog = EventCatalog()
        catalog.define(1, "one-double", RecordSchema((FieldType.X_DOUBLE,)))
        assert not catalog.validate(make_record(event_id=1))

    def test_undeclared_always_valid(self):
        assert EventCatalog().validate(make_record())
