"""Unit tests for anomaly detection and span statistics."""

import pytest
from tests.conftest import make_record

from repro.analysis.anomaly import correlate_series, rate_anomalies, silence_gaps
from repro.analysis.timeline import GanttSpan, span_statistics
from repro.analysis.trace import Trace


def steady_with_spike() -> Trace:
    """10 ev/s for 20 s, with a 200-event spike in second 10."""
    records = []
    for second in range(20):
        for k in range(10):
            records.append(
                make_record(timestamp=second * 1_000_000 + k * 100_000)
            )
    records += [
        make_record(timestamp=10_000_000 + k * 1_000) for k in range(200)
    ]
    return Trace(records)


class TestRateAnomalies:
    def test_spike_detected(self):
        anomalies = rate_anomalies(steady_with_spike())
        spikes = [a for a in anomalies if a.kind == "spike"]
        assert len(spikes) == 1
        assert spikes[0].start_us == 10_000_000
        assert spikes[0].zscore > 3.5

    def test_quiet_series_no_anomalies(self):
        records = [make_record(timestamp=k * 100_000) for k in range(200)]
        assert rate_anomalies(Trace(records)) == []

    def test_drought_detected(self):
        records = []
        for second in range(20):
            if second == 12:
                continue  # one silent second in a steady stream
            for k in range(50):
                records.append(
                    make_record(timestamp=second * 1_000_000 + k * 20_000)
                )
        anomalies = rate_anomalies(Trace(records), threshold=3.0)
        droughts = [a for a in anomalies if a.kind == "drought"]
        assert any(a.start_us == 12_000_000 for a in droughts)

    def test_short_series_returns_nothing(self):
        records = [make_record(timestamp=k) for k in range(3)]
        assert rate_anomalies(Trace(records)) == []

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            rate_anomalies(steady_with_spike(), threshold=0)


class TestSilenceGaps:
    def trace(self):
        records = []
        # Node 1 emits throughout; node 2 stops at t=3s.
        for second in range(10):
            records.append(
                make_record(timestamp=second * 1_000_000, node_id=1)
            )
            if second < 3:
                records.append(
                    make_record(timestamp=second * 1_000_000 + 1, node_id=2)
                )
        return Trace(records)

    def test_trailing_silence_detected(self):
        gaps = silence_gaps(self.trace(), min_gap_us=5_000_000)
        assert len(gaps) == 1
        gap = gaps[0]
        assert gap.node_id == 2
        assert gap.start_us == 2_000_001
        assert gap.end_us == 9_000_000
        assert gap.duration_us == 6_999_999

    def test_mid_stream_gap(self):
        records = [
            make_record(timestamp=t) for t in (0, 1_000_000, 9_000_000, 10_000_000)
        ]
        gaps = silence_gaps(Trace(records), min_gap_us=5_000_000)
        assert [(g.start_us, g.end_us) for g in gaps] == [(1_000_000, 9_000_000)]

    def test_no_gaps_when_dense(self):
        records = [make_record(timestamp=k * 1_000) for k in range(100)]
        assert silence_gaps(Trace(records), min_gap_us=1_000_000) == []

    def test_empty_trace(self):
        assert silence_gaps(Trace([])) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            silence_gaps(self.trace(), min_gap_us=0)


class TestCorrelation:
    def test_identical_patterns_correlate(self):
        a = Trace(
            [make_record(timestamp=k * 10_000, node_id=1) for k in range(100)]
            + [make_record(timestamp=5_000_000 + k * 1_000, node_id=1) for k in range(100)]
        )
        b = Trace(
            [make_record(timestamp=k * 10_000, node_id=2) for k in range(100)]
            + [make_record(timestamp=5_000_000 + k * 1_000, node_id=2) for k in range(100)]
        )
        assert correlate_series(a, b) > 0.9

    def test_opposite_patterns_anticorrelate(self):
        a = Trace([make_record(timestamp=k * 1_000) for k in range(1000)])  # first second busy
        quiet_then_busy = [
            make_record(timestamp=1_000_000 + k * 1_000) for k in range(1000)
        ]
        b = Trace(quiet_then_busy)
        assert correlate_series(a, b, bin_width_us=500_000) < 0

    def test_empty_inputs(self):
        a = Trace([make_record()])
        assert correlate_series(Trace([]), a) == 0.0
        assert correlate_series(a, Trace([])) == 0.0

    def test_constant_series_zero(self):
        a = Trace([make_record(timestamp=k * 1_000_000) for k in range(10)])
        assert correlate_series(a, a) in (0.0, 1.0)  # constant → 0 by contract


class TestSpanStatistics:
    def test_per_label_durations(self):
        spans = [
            GanttSpan(1, "solve", 0, 100),
            GanttSpan(1, "solve", 200, 350),
            GanttSpan(2, "io", 0, 1_000),
        ]
        stats = span_statistics(spans)
        assert stats["solve"].count == 2
        assert stats["solve"].mean == pytest.approx(125.0)
        assert stats["io"].maximum == 1_000

    def test_empty(self):
        assert span_statistics([]) == {}
