"""SIGKILL-the-ISM chaos for the durable commit log (PR 8 acceptance).

The contract durable mode buys: **no record acked to an EXS is ever
lost**.  Acks are gated on the log — deliver, fsync, checkpoint, only
then quote the seq on the wire — so a SIGKILL'd ISM comes back, recovery
truncates the torn/unacked tail to the checkpoint, the EXS outboxes
retransmit exactly the unacked remainder, and the finished log holds
every record exactly once, in delivery order.  Proven here for BOTH
deployments (single-process ``IsmServer`` and sharded
``ShardedIsmServer``), plus the graceful-degradation half of the story:
a log that stops taking writes stops the acks but never the service.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import socket
import threading
import time

import pytest

from repro.core import native
from repro.core.consumers import LogConsumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.records import EventRecord, FieldType
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.log import CHECKPOINT_FILE, CommitLog, DiskFaults, LogConfig, iter_log
from repro.runtime import attach_shared_ring, create_shared_ring
from repro.runtime.exs_proc import resilient_exs_main
from repro.runtime.ism_proc import IsmServer, ShardedIsmServer
from repro.wire import protocol
from repro.wire.tcp import MessageListener, connect
from tests.conftest import wait_until


@pytest.fixture(scope="module")
def mp_ctx():
    return mp.get_context("spawn")


def _free_port() -> int:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def _read_checkpoint(log_dir: str) -> dict | None:
    try:
        with open(os.path.join(log_dir, CHECKPOINT_FILE), encoding="ascii") as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


_LOG_CONFIG = LogConfig(fsync="off", segment_bytes=1 << 16)


# ----------------------------------------------------------------------
# spawn targets (module-level for the spawn context)
# ----------------------------------------------------------------------
def _chaos_app_main(ring_name: str, n_records: int, node_id: int) -> None:
    shared = attach_shared_ring(ring_name)
    try:
        sensor = Sensor(shared.ring, node_id=node_id)
        sent = 0
        while sent < n_records:
            if sensor.notice_ints(7, sent):
                sent += 1
            else:
                time.sleep(0.001)
    finally:
        shared.close()


def _durable_ism_main(log_dir: str, port: int, mode: str) -> None:
    """An ISM with a durable commit-log sink; serves until it is killed.

    Opening the log IS recovery, so the same target serves as both the
    first incarnation and the restarted one.
    """
    listener = MessageListener("127.0.0.1", port)
    log = CommitLog(log_dir, _LOG_CONFIG)
    sink = LogConsumer(log, close_log=True)
    ism_config = IsmConfig(sorter=SorterConfig(initial_frame_us=1_000))
    if mode == "single":
        manager = InstrumentationManager(ism_config, [sink])
        server = IsmServer(manager, listener, durable_sink=sink)
        server.serve(duration_s=300.0)
    else:
        server = ShardedIsmServer(
            [sink],
            listener,
            shards=2,
            partition_by="node",
            ism_config=ism_config,
            commit_interval_s=0.02,
            durable_sink=sink,
        )
        server.serve(duration_s=300.0)


# ----------------------------------------------------------------------
# the acceptance chaos run
# ----------------------------------------------------------------------
class TestDurableIsmKill:
    @pytest.mark.timeout(300)
    @pytest.mark.parametrize("mode", ["single", "sharded"])
    def test_sigkill_mid_append_loses_no_acked_record(self, mp_ctx, mode, tmp_path):
        n = 4_000
        log_dir = str(tmp_path / "log")
        port = _free_port()
        shared = create_shared_ring(1 << 20)
        app = mp_ctx.Process(target=_chaos_app_main, args=(shared.name, n, 1))
        exs = mp_ctx.Process(
            target=resilient_exs_main,
            args=(shared.name, "127.0.0.1", port, 1, 1, n),
            kwargs={"ack_timeout_s": 1.0},
        )
        ism = mp_ctx.Process(
            target=_durable_ism_main, args=(log_dir, port, mode)
        )
        ism.start()
        app.start()
        exs.start()
        ism2 = None
        try:
            # Let real acked work accumulate — the checkpoint only exists
            # once acks have been gated on it — then SIGKILL mid-append.
            def checkpoint_past_threshold():
                checkpoint = _read_checkpoint(log_dir)
                return checkpoint is not None and checkpoint["durable_end"] > n // 6

            wait_until(checkpoint_past_threshold, timeout=120.0, interval=0.02)
            os.kill(ism.pid, signal.SIGKILL)
            ism.join(timeout=10)
            assert not ism.is_alive()

            # The acked prefix must be on disk in full: everything below
            # the checkpoint's durable_end survives the kill.
            checkpoint = _read_checkpoint(log_dir)
            durable_end = checkpoint["durable_end"]
            raw = list(iter_log(log_dir))
            assert len(raw) >= durable_end, "acked records lost"
            acked_prefix = raw[:durable_end]

            # Recovery truncates the torn/unacked tail cleanly, back to
            # exactly the ack frontier.
            recovered = CommitLog(log_dir, _LOG_CONFIG)
            assert recovered.end_offset == durable_end
            assert list(recovered.iter_from(0)) == acked_prefix
            assert recovered.source_watermarks() == {
                int(k): v for k, v in checkpoint["sources"].items()
            }
            recovered.close()

            # Restart on the same port: the EXS reconnects, the
            # HelloReply quotes the durable watermark, the outbox
            # retransmits the unacked remainder.  The EXS process exits
            # only once all n records are acked.
            ism2 = mp_ctx.Process(
                target=_durable_ism_main, args=(log_dir, port, mode)
            )
            ism2.start()
            exs.join(timeout=180)
            assert exs.exitcode == 0, "EXS never got everything acked"
            # Kill the second incarnation too — by now every record is
            # acked, hence checkpointed, hence recoverable.
            os.kill(ism2.pid, signal.SIGKILL)
            ism2.join(timeout=10)
        finally:
            for proc in (app, exs, ism, ism2):
                if proc is not None and proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=10)
            shared.close()

        final = CommitLog(log_dir, _LOG_CONFIG)
        records = list(final.iter_from(0))
        # Exactly once, all of them: acked-then-truncated tails never
        # duplicate, recovery-seeded dedup absorbs the retransmissions.
        values = [r.values[0] for r in records]
        assert sorted(values) == list(range(n))
        # Delivery order survived the crash (single source: log order is
        # source order).
        assert values == sorted(values)

        # Late-joining consumer group: replay from offset 0 is
        # byte-identical to the live delivery stream (the log itself).
        replay = final.consumer("late-joiner", start=0)
        replayed: list[EventRecord] = []
        while True:
            chunk = replay.read(512)
            if not chunk:
                break
            replayed.extend(chunk)
        replay.commit()
        assert b"".join(native.pack_record(r) for r in replayed) == b"".join(
            native.pack_record(r) for r in records
        )
        assert final.committed_offset("late-joiner") == n
        final.close()


# ----------------------------------------------------------------------
# graceful degradation: broken disk stops acks, never the service
# ----------------------------------------------------------------------
def _ack_reader(conn, state: dict, stop: threading.Event) -> None:
    while not stop.is_set():
        try:
            msg = conn.recv(timeout=0.1)
        except OSError:
            return
        if isinstance(msg, protocol.Ack):
            state["acked"] = max(state["acked"], msg.up_to_seq)
        elif isinstance(msg, protocol.HelloReply):
            state["hello"] = True


class TestBrokenLogDegradation:
    @pytest.mark.timeout(60)
    def test_enospc_stops_acks_keeps_serving(self, tmp_path):
        faults = DiskFaults()
        log = CommitLog(tmp_path / "log", _LOG_CONFIG, faults=faults)
        sink = LogConsumer(log, close_log=True)
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0, decay_lambda=0.0)),
            [sink],
        )
        listener = MessageListener("127.0.0.1", 0)
        server = IsmServer(manager, listener, durable_sink=sink)
        serve = threading.Thread(
            target=server.serve, kwargs={"duration_s": 45.0}
        )
        serve.start()
        conn = connect("127.0.0.1", listener.address[1])
        state = {"acked": -1, "hello": False}
        stop = threading.Event()
        reader = threading.Thread(target=_ack_reader, args=(conn, state, stop))
        reader.start()

        def batch(seq: int) -> protocol.Batch:
            base = (seq - 1) * 10
            return protocol.Batch(
                exs_id=1,
                seq=seq,
                records=[
                    EventRecord(
                        event_id=7,
                        timestamp=1_000_000 + base + i,
                        field_types=(FieldType.X_UINT,),
                        values=(base + i,),
                        node_id=1,
                    )
                    for i in range(10)
                ],
            )

        try:
            conn.send(
                protocol.Hello(
                    exs_id=1, node_id=1, advertised_rate=0, wants_ack=True
                )
            )
            wait_until(lambda: state["hello"])
            for seq in range(1, 21):
                conn.send(batch(seq))
            # A healthy log acks everything it has synced.
            wait_until(lambda: state["acked"] == 20)

            # Now the disk fills up.  Later appends fail, the log poisons
            # itself, and the durable gate must withhold every new ack.
            faults.enospc_after_bytes = faults.bytes_written
            for seq in range(21, 41):
                conn.send(batch(seq))
            # The ISM keeps serving: every batch is still received and
            # admitted (the EXS outbox is what holds the stream safe).
            wait_until(lambda: manager.stats.records_received >= 400)
            wait_until(lambda: int(server.durable_sync_errors) >= 1)
            assert log.broken is not None
            assert state["acked"] == 20  # not one ack past the failure
            assert 1 in server.connections  # the peer was not dropped
        finally:
            stop.set()
            server.stop()
            serve.join(timeout=20)
            reader.join(timeout=5)
            conn.close()
            manager.close()
            listener.close()
        # What was acked is still readable from the committed prefix.
        assert [r.values[0] for r in iter_log(tmp_path / "log")] == list(
            range(200)
        )
