"""Integration tests for the command-line tools."""

import threading

import pytest
from tests.conftest import make_record, wait_until

from repro.analysis.trace import Trace
from repro.core.records import EventRecord, FieldType
from repro.picl.format import dumps
from repro.tools import ism_cli, replay_cli, trace_stats_cli
from repro.wire import protocol
from repro.wire.tcp import connect


def announced_port(capsys) -> int:
    """Wait for brisk-ism to print its bound port and return it."""
    found: dict[str, int] = {}

    def scan():
        for line in capsys.readouterr().out.splitlines():
            if line.startswith("brisk-ism listening on"):
                found["port"] = int(line.rsplit(":", 1)[1])
        return found.get("port")

    return wait_until(scan, timeout=10, message="server never announced its port")


@pytest.fixture
def picl_file(tmp_path):
    records = []
    for node in (1, 2):
        for k in range(20):
            records.append(
                make_record(
                    event_id=node,
                    timestamp=1_000_000 + k * 50_000 + node * 7,
                    node_id=node,
                )
            )
    # A causal pair for the --causal report.
    records.append(
        EventRecord(
            event_id=9, timestamp=1_100_000,
            field_types=(FieldType.X_REASON,), values=(77,), node_id=1,
        )
    )
    records.append(
        EventRecord(
            event_id=10, timestamp=1_150_000,
            field_types=(FieldType.X_CONSEQ,), values=(77,), node_id=2,
        )
    )
    path = tmp_path / "run.picl"
    path.write_text(dumps(sorted(records, key=lambda r: r.sort_key())))
    return path


class TestTraceStatsCli:
    def test_basic_summary(self, picl_file, capsys):
        assert trace_stats_cli.main([str(picl_file)]) == 0
        out = capsys.readouterr().out
        assert "records:       42" in out
        assert "nodes:         2" in out
        assert "per-node activity" in out

    def test_rates_and_causal_flags(self, picl_file, capsys):
        assert (
            trace_stats_cli.main([str(picl_file), "--rates", "--causal"]) == 0
        )
        out = capsys.readouterr().out
        assert "rate timeline:" in out
        assert "causal structure:" in out
        assert "edges:                1" in out

    def test_empty_trace(self, tmp_path, capsys):
        empty = tmp_path / "empty.picl"
        empty.write_text("")
        assert trace_stats_cli.main([str(empty)]) == 0
        assert "records:       0" in capsys.readouterr().out


class TestReplayCli:
    def test_reorders_a_shuffled_trace(self, tmp_path, capsys):
        # Arrival order deliberately scrambled across nodes.
        records = [
            make_record(timestamp=ts, node_id=node, event_id=node)
            for node, ts in [(1, 300), (2, 100), (1, 400), (2, 200)]
        ]
        raw = tmp_path / "raw.picl"
        raw.write_text(dumps(records))
        out_path = tmp_path / "sorted.picl"
        assert replay_cli.main([str(raw), str(out_path)]) == 0
        with open(out_path) as stream:
            replayed = Trace.from_picl(stream)
        assert [r.timestamp for r in replayed] == [100, 200, 300, 400]
        assert "replayed 4 records" in capsys.readouterr().out

    def test_relative_mode_output(self, tmp_path):
        raw = tmp_path / "raw.picl"
        raw.write_text(dumps([make_record(timestamp=2_000_000)]))
        out_path = tmp_path / "rel.picl"
        assert replay_cli.main([str(raw), str(out_path), "--relative"]) == 0
        assert "0.000000" in out_path.read_text()

    def test_empty_input(self, tmp_path, capsys):
        raw = tmp_path / "raw.picl"
        raw.write_text("")
        out_path = tmp_path / "out.picl"
        assert replay_cli.main([str(raw), str(out_path)]) == 0
        assert out_path.read_text() == ""


class TestIsmCliShmOut:
    def test_shared_output_segment_readable_while_serving(self, capsys):
        from repro.runtime.shm_consumer import SharedMemoryReader

        result = {}

        def run_server():
            result["rc"] = ism_cli.main(
                [
                    "--port", "0",
                    "--shm-out", "brisk_test_out",
                    "--sync-period", "0",
                    "--until-records", "5",
                    "--duration", "20",
                ]
            )

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        port = announced_port(capsys)

        reader = SharedMemoryReader("brisk_test_out")
        try:
            conn = connect("127.0.0.1", port)
            conn.send(protocol.Hello(exs_id=1, node_id=1))
            records = tuple(
                make_record(event_id=3, timestamp=k) for k in range(5)
            )
            conn.send(protocol.Batch(exs_id=1, seq=0, records=records))
            received = reader.poll(timeout_s=10.0)
            assert len(received) == 5
            thread.join(timeout=15)
            conn.close()
            assert result["rc"] == 0
        finally:
            reader.close()


class TestIsmCli:
    def test_serves_and_logs_picl(self, tmp_path, capsys):
        out_path = tmp_path / "ism.picl"
        result = {}

        def run_server():
            result["rc"] = ism_cli.main(
                [
                    "--port", "0",
                    "--picl", str(out_path),
                    "--sync-period", "0",
                    "--until-records", "10",
                    "--duration", "20",
                ]
            )

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        port = announced_port(capsys)

        conn = connect("127.0.0.1", port)
        conn.send(protocol.Hello(exs_id=1, node_id=1))
        records = tuple(
            make_record(event_id=5, timestamp=1_000 + k) for k in range(10)
        )
        conn.send(protocol.Batch(exs_id=1, seq=0, records=records))
        thread.join(timeout=15)
        conn.close()
        assert not thread.is_alive()
        assert result["rc"] == 0
        with open(out_path) as stream:
            trace = Trace.from_picl(stream)
        assert len(trace) == 10
