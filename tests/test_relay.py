"""The relay aggregation tier: wire extensions, equivalence, chaos.

Covers the capability-negotiated protocol extensions (AckBundle,
compressed frames, coalesced seq ranges), the relay's multiplier
behaviour (coalescing, compression, metrics reduction), the satellite
guarantee that relayed delivery is indistinguishable from direct
delivery (same record multiset, same per-node order), wire-level frame
counting for the coalesced ack path, and the chaos proof that a
SIGKILL'd relay still yields exactly-once delivery through the tree.
"""

import multiprocessing as mp
import os
import signal
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from tests.conftest import make_record, wait_until
from tests.test_properties import records

from repro.clocksync.clocks import CorrectedClock
from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.records import EventRecord, FieldType
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.obs.reporter import METRICS_EVENT_ID, snapshot_from_records
from repro.runtime.exs_proc import ExsProcess, ReconnectingExs
from repro.runtime.ism_proc import IsmServer, ShardedIsmServer
from repro.runtime.relay_proc import RelayConfig, RelayServer, relay_process_main
from repro.util.timebase import now_micros
from repro.wire import protocol
from repro.wire.tcp import MessageListener, connect


# ----------------------------------------------------------------------
# wire extensions: capabilities, bundles, seq ranges, compression
# ----------------------------------------------------------------------

class TestCapabilityWire:
    def test_hello_capabilities_roundtrip(self):
        msg = protocol.Hello(
            exs_id=1, node_id=2, wants_ack=True,
            capabilities=protocol.CAP_COMPRESS | protocol.CAP_ACK_BUNDLE,
        )
        assert protocol.decode_message(protocol.encode_message(msg)) == msg

    def test_hello_capabilities_without_wants_ack(self):
        # XDR is positional: the wants_ack word must still be emitted
        # when only the capability word is set.
        msg = protocol.Hello(exs_id=1, node_id=2, capabilities=protocol.CAP_SEQ_RANGE)
        decoded = protocol.decode_message(protocol.encode_message(msg))
        assert decoded.wants_ack is False
        assert decoded.capabilities == protocol.CAP_SEQ_RANGE

    def test_hello_stays_legacy_bytes_without_capabilities(self):
        legacy = protocol.encode_message(protocol.Hello(exs_id=1, node_id=2))
        flagged = protocol.encode_message(
            protocol.Hello(exs_id=1, node_id=2, wants_ack=True, capabilities=0x7)
        )
        assert len(flagged) == len(legacy) + 8  # wants_ack + caps words
        assert protocol.decode_message(legacy).capabilities == 0

    def test_hello_reply_capabilities_roundtrip(self):
        msg = protocol.HelloReply(exs_id=3, last_seq=99, capabilities=0x7)
        assert protocol.decode_message(protocol.encode_message(msg)) == msg
        legacy = protocol.encode_message(protocol.HelloReply(exs_id=3, last_seq=99))
        assert len(protocol.encode_message(msg)) == len(legacy) + 4
        assert protocol.decode_message(legacy).capabilities == 0

    def test_ack_bundle_roundtrip(self):
        msg = protocol.AckBundle(acks=((1, 10), (2, 20), (7, 0)))
        assert protocol.decode_message(protocol.encode_message(msg)) == msg
        empty = protocol.AckBundle(acks=())
        assert protocol.decode_message(protocol.encode_message(empty)) == empty

    def test_batch_first_seq_roundtrip(self):
        recs = [make_record(timestamp=t) for t in (10, 20, 30)]
        payload = protocol.encode_batch_records(5, 12, recs, first_seq=9)
        decoded = protocol.decode_message(payload)
        assert decoded.exs_id == 5
        assert decoded.seq == 12
        assert decoded.first_seq == 9
        assert list(decoded.records) == recs

    def test_batch_without_first_seq_stays_legacy_bytes(self):
        recs = [make_record()]
        plain = protocol.encode_batch_records(1, 4, recs)
        ranged = protocol.encode_batch_records(1, 4, recs, first_seq=2)
        assert len(ranged) == len(plain) + 4
        assert protocol.decode_message(plain).first_seq is None


class TestCompressedFrames:
    def test_roundtrip(self):
        recs = [make_record(timestamp=t) for t in range(50)]
        payload = protocol.encode_batch_records(3, 7, recs)
        wrapped = protocol.compress_frame(payload)
        assert len(wrapped) < len(payload)
        decoded = protocol.decode_message(wrapped)
        assert decoded == protocol.decode_message(payload)

    def test_peek_compressed(self):
        payload = protocol.encode_batch_records(
            42, 9, [make_record(timestamp=t) for t in range(20)]
        )
        mtype, exs_id = protocol.peek_compressed(protocol.compress_frame(payload))
        assert mtype == protocol.MsgType.BATCH
        assert exs_id == 42

    def test_nested_compressed_rejected(self):
        payload = protocol.encode_batch_records(1, 1, [make_record()])
        nested = protocol.compress_frame(protocol.compress_frame(payload))
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(nested)

    def test_corrupt_compressed_rejected(self):
        wrapped = bytearray(
            protocol.compress_frame(
                protocol.encode_batch_records(1, 1, [make_record()])
            )
        )
        wrapped[-3] ^= 0xFF
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_message(bytes(wrapped))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(records(), max_size=12), st.integers(0, 2**31))
    def test_any_batch_roundtrips_compressed(self, recs, seq):
        payload = protocol.encode_batch_records(7, seq, recs)
        direct = protocol.decode_message(payload)
        via_zlib = protocol.decode_message(protocol.compress_frame(payload))
        assert via_zlib == direct


# ----------------------------------------------------------------------
# hosted reduction: the metrics fold
# ----------------------------------------------------------------------

def _metric(name_id: int, value: float, ts: int, node: int = 1) -> EventRecord:
    return EventRecord(
        event_id=METRICS_EVENT_ID,
        timestamp=ts,
        field_types=(FieldType.X_STRING, FieldType.X_DOUBLE),
        values=(str(name_id), value),
        node_id=node,
    )


class TestMetricsFold:
    def fold(self, recs):
        relay = RelayServer(RelayConfig(reduce_metrics=True))
        try:
            return relay._fold_metrics(recs), relay
        finally:
            relay.listener.close()

    def test_later_sample_supersedes(self):
        recs = [
            _metric(1, 1.0, ts=10),
            _metric(2, 5.0, ts=11),
            _metric(1, 3.0, ts=12),
            make_record(timestamp=13),
        ]
        folded, relay = self.fold(recs)
        assert folded == [recs[1], recs[2], recs[3]]
        assert int(relay.metrics_records_folded) == 1

    def test_distinct_nodes_never_fold(self):
        recs = [_metric(1, 1.0, ts=10, node=1), _metric(1, 2.0, ts=11, node=2)]
        folded, _ = self.fold(recs)
        assert folded == recs

    def test_snapshot_equivalence(self):
        # The fold must be invisible to the metrics consumer: decoding
        # the folded stream yields the same final scalar map.
        recs = [_metric(k % 3, float(ts), ts=ts) for ts, k in enumerate(range(20))]
        folded, _ = self.fold(list(recs))
        assert snapshot_from_records(folded) == snapshot_from_records(recs)
        assert len(folded) == 3

    def test_no_metrics_passthrough_is_same_object(self):
        recs = [make_record(timestamp=t) for t in range(4)]
        folded, relay = self.fold(recs)
        assert folded is recs
        assert int(relay.metrics_records_folded) == 0


class TestRelayObservability:
    def test_wire_relay_registers_everything(self):
        from repro.obs.collect import wire_relay
        from repro.obs.metrics import MetricsRegistry

        relay = RelayServer(RelayConfig())
        try:
            registry = MetricsRegistry()
            wire_relay(registry, relay)
            relay.batches_in += 7
            snap = registry.snapshot()
            assert snap.get("relay.batches_in") == 7.0
            assert snap.get("relay.sources") == 0.0
            assert snap.get("relay.held_envelopes") == 0.0
            assert snap.get("relay.unacked_frames") == 0.0
            assert snap.get("relay.upstream_connected") == 0.0
            dump = relay.stats_dump()
            assert dump["counters"]["batches_in"] == 7
        finally:
            relay.listener.close()

    def test_stats_cli_relay_mode(self, tmp_path, capsys):
        import json

        from repro.tools.stats_cli import main as stats_main

        relay = RelayServer(RelayConfig(relay_id=4))
        try:
            relay.batches_in += 30
            relay.frames_out += 3
            dump = relay.stats_dump()
        finally:
            relay.listener.close()
        path = tmp_path / "relay.json"
        path.write_text(json.dumps(dump))
        assert stats_main(["relay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "relay 4" in out
        assert "relay.batches_in" in out
        assert "coalesce ratio: 10.0 batches/frame" in out

    def test_stats_cli_relay_mode_empty_dump(self, tmp_path, capsys):
        from repro.tools.stats_cli import main as stats_main

        path = tmp_path / "empty.json"
        path.write_text("{}")
        assert stats_main(["relay", str(path)]) == 1
        assert "no relay stats" in capsys.readouterr().err


# ----------------------------------------------------------------------
# relayed delivery ≡ direct delivery
# ----------------------------------------------------------------------

N_RECORDS = 300


def _run_pipeline(
    *, relayed: bool, compress_min_bytes=None, reduce_metrics=False, n_exs=2
):
    """One EXS→[relay]→ISM run; returns (records, relay, manager)."""
    collected = CollectingConsumer()
    manager = InstrumentationManager(IsmConfig(), consumers=[collected])
    listener = MessageListener()
    server = IsmServer(manager, listener)
    host, port = listener.address
    server_thread = threading.Thread(
        target=server.serve,
        kwargs={"duration_s": 20.0, "until_records": n_exs * N_RECORDS},
        daemon=True,
    )
    server_thread.start()

    relay = None
    relay_thread = None
    if relayed:
        relay = RelayServer(
            RelayConfig(
                upstream_host=host,
                upstream_port=port,
                compress_min_bytes=compress_min_bytes,
                reduce_metrics=reduce_metrics,
            )
        )
        relay_thread = threading.Thread(
            target=relay.serve, kwargs={"duration_s": 19.0}, daemon=True
        )
        relay_thread.start()
        host, port = relay.address

    procs = []
    try:
        for i in range(n_exs):
            exs_id, node = i + 1, 10 * (i + 1)
            ring = ring_for_records(4 * N_RECORDS)
            sensor = Sensor(ring, node_id=node)
            for k in range(N_RECORDS):
                sensor.notice_ints(1, k)
            exs = ExternalSensor(
                exs_id, node, ring, CorrectedClock(now_micros),
                ExsConfig(batch_max_records=16, flush_timeout_us=1_000),
            )
            proc = ExsProcess(exs, connect(host, port), select_timeout_s=0.002)
            t = threading.Thread(target=proc.run, daemon=True)
            t.start()
            procs.append((proc, t))
        wait_until(
            lambda: len(collected.records) >= n_exs * N_RECORDS
            and all(p.outbox.unacked == 0 for p, _ in procs),
            timeout=15.0,
            message="relayed pipeline did not drain",
        )
    finally:
        for proc, t in procs:
            proc.stop()
            t.join(timeout=5)
        if relay is not None:
            relay.stop()
            relay_thread.join(timeout=5)
        server.stop()
        server_thread.join(timeout=5)
    return collected.records, relay, manager


def _per_node(recs):
    out: dict[int, list[int]] = {}
    for r in recs:
        out.setdefault(r.node_id, []).append(r.values[0])
    return out


class TestUpstreamDrainHardening:
    """Losing the upstream *while draining it* must not crash the pump.

    A handler reached from ``_drain_upstream`` can itself close the
    upstream socket (failed retransmit, failed TimeReply, upstream Bye).
    The ``recv_available`` iterator underneath is then sitting on a
    closed fd: pulling the next message would select on fd -1 and raise
    ValueError straight out of the serve loop.
    """

    def _relay(self):
        relay = RelayServer(RelayConfig())
        relay.listener.close()
        return relay

    def test_handler_losing_upstream_stops_the_drain(self):
        relay = self._relay()
        overdrained = []

        class FakeConn:
            def recv_available(self):
                # The TimeReply send below fails -> _lose_upstream runs
                # with this iterator still live.
                yield protocol.TimeRequest(probe_id=1)
                overdrained.append(True)
                yield protocol.Heartbeat(exs_id=0)

            def send(self, msg):
                raise ConnectionResetError

            def close(self):
                pass

        relay.upstream = FakeConn()
        relay._drain_upstream()
        assert relay.upstream is None
        assert overdrained == []

    def test_closed_fd_select_error_counts_as_peer_loss(self):
        relay = self._relay()

        class FakeConn:
            def recv_available(self):
                yield protocol.Heartbeat(exs_id=0)
                raise ValueError(
                    "file descriptor cannot be a negative integer (-1)"
                )

            def close(self):
                pass

        relay.upstream = FakeConn()
        relay._drain_upstream()
        assert relay.upstream is None


class TestRelayedEqualsDirect:
    def test_direct_baseline(self):
        recs, _, manager = _run_pipeline(relayed=False)
        assert _per_node(recs) == {10: list(range(N_RECORDS)), 20: list(range(N_RECORDS))}
        assert manager.stats.seq_gaps == 0

    @pytest.mark.parametrize("compress", [None, 200], ids=["plain", "compressed"])
    def test_relayed_matches_direct(self, compress):
        recs, relay, manager = _run_pipeline(relayed=True, compress_min_bytes=compress)
        # Same multiset and same per-node order as the direct topology.
        assert _per_node(recs) == {10: list(range(N_RECORDS)), 20: list(range(N_RECORDS))}
        assert manager.stats.duplicate_batches == 0
        assert manager.stats.seq_gaps == 0
        stats = relay.stats_dump()["counters"]
        assert stats["records_in"] == stats["records_out"] == 2 * N_RECORDS
        # The multiplier actually multiplied: far fewer frames out than in.
        assert stats["frames_out"] < stats["batches_in"]
        if compress is not None:
            assert stats["compressed_frames"] > 0
            assert stats["compressed_bytes_saved"] > 0
        else:
            assert stats["compressed_frames"] == 0

    def test_relay_into_sharded_ism(self):
        collected = CollectingConsumer()
        listener = MessageListener()
        server = ShardedIsmServer([collected], listener, shards=2)
        host, port = listener.address
        st_thread = threading.Thread(
            target=server.serve,
            kwargs={"duration_s": 30.0, "until_records": 2 * N_RECORDS},
            daemon=True,
        )
        st_thread.start()
        relay = RelayServer(
            RelayConfig(upstream_host=host, upstream_port=port, compress_min_bytes=200)
        )
        relay_thread = threading.Thread(
            target=relay.serve, kwargs={"duration_s": 29.0}, daemon=True
        )
        relay_thread.start()
        rhost, rport = relay.address
        procs = []
        try:
            # Nodes 10 and 21 land on different shards: the relay's one
            # upstream socket exercises per-frame peek routing.
            for exs_id, node in ((1, 10), (2, 21)):
                ring = ring_for_records(4 * N_RECORDS)
                sensor = Sensor(ring, node_id=node)
                for k in range(N_RECORDS):
                    sensor.notice_ints(1, k)
                exs = ExternalSensor(
                    exs_id, node, ring, CorrectedClock(now_micros),
                    ExsConfig(batch_max_records=16, flush_timeout_us=1_000),
                )
                proc = ExsProcess(exs, connect(rhost, rport), select_timeout_s=0.002)
                t = threading.Thread(target=proc.run, daemon=True)
                t.start()
                procs.append((proc, t))
            wait_until(
                lambda: len(collected.records) >= 2 * N_RECORDS
                and all(p.outbox.unacked == 0 for p, _ in procs),
                timeout=25.0,
                message="sharded relayed pipeline did not drain",
            )
            # The ingest plane fronts 2 sensors over exactly 1 socket.
            assert len(server._conn_sources) == 1
            assert set(server.connections) == {1, 2}
        finally:
            for proc, t in procs:
                proc.stop()
                t.join(timeout=5)
            relay.stop()
            relay_thread.join(timeout=5)
            server.stop()
            st_thread.join(timeout=10)
        assert _per_node(collected.records) == {
            10: list(range(N_RECORDS)),
            21: list(range(N_RECORDS)),
        }
        assert int(server.unrouted_batches) == 0


# ----------------------------------------------------------------------
# wire-level frame counting: coalesced acks
# ----------------------------------------------------------------------

def _pump_client(conn, inbound):
    """Read one message; answer sync probes (like a real EXS), keep the
    rest for the test's assertions."""
    msg = conn.recv(timeout=0.05)
    if msg is None:
        return
    if isinstance(msg, protocol.TimeRequest):
        conn.send(
            protocol.TimeReply(probe_id=msg.probe_id, slave_time=now_micros())
        )
    else:
        inbound.append(msg)


class TestAckCoalescing:
    def test_multiplexed_sources_get_one_bundle_frame(self):
        """Three sources on one socket → their cycle acks arrive as a
        single AckBundle control frame, not three Ack frames."""
        collected = CollectingConsumer()
        manager = InstrumentationManager(IsmConfig(), consumers=[collected])
        listener = MessageListener()
        server = IsmServer(manager, listener)
        host, port = listener.address
        server_thread = threading.Thread(
            target=server.serve, kwargs={"duration_s": 10.0}, daemon=True
        )
        server_thread.start()
        conn = connect(host, port)
        try:
            for exs_id in (1, 2, 3):
                conn.send(
                    protocol.Hello(
                        exs_id=exs_id,
                        node_id=exs_id,
                        wants_ack=True,
                        capabilities=protocol.CAP_ACK_BUNDLE,
                    )
                )
            inbound: list[protocol.Message] = []

            def drain():
                _pump_client(conn, inbound)
                return [m for m in inbound if isinstance(m, protocol.HelloReply)]

            wait_until(lambda: len(drain()) == 3, timeout=5.0)
            replies = [m for m in inbound if isinstance(m, protocol.HelloReply)]
            assert all(r.capabilities for r in replies)
            # One write → one dispatcher read → one ack-flush cycle.
            conn.send_many(
                [
                    protocol.encode_batch_records(
                        exs_id, 0, [make_record(node_id=exs_id)]
                    )
                    for exs_id in (1, 2, 3)
                ]
            )

            def acked_sources():
                _pump_client(conn, inbound)
                got: set[int] = set()
                for m in inbound:
                    if isinstance(m, protocol.AckBundle):
                        got.update(e for e, _ in m.acks)
                    elif isinstance(m, protocol.Ack):
                        got.add(m.exs_id)
                return got == {1, 2, 3}

            wait_until(acked_sources, timeout=5.0)
            bundles = [m for m in inbound if isinstance(m, protocol.AckBundle)]
            singles = [m for m in inbound if isinstance(m, protocol.Ack)]
            assert len(bundles) == 1 and not singles
            assert sorted(e for e, _ in bundles[0].acks) == [1, 2, 3]
        finally:
            conn.close()
            server.stop()
            server_thread.join(timeout=5)

    def test_legacy_peer_still_gets_plain_acks(self):
        """Sources that advertised no capabilities never see AckBundle."""
        collected = CollectingConsumer()
        manager = InstrumentationManager(IsmConfig(), consumers=[collected])
        listener = MessageListener()
        server = IsmServer(manager, listener)
        host, port = listener.address
        server_thread = threading.Thread(
            target=server.serve, kwargs={"duration_s": 10.0}, daemon=True
        )
        server_thread.start()
        conn = connect(host, port)
        try:
            for exs_id in (1, 2):
                conn.send(
                    protocol.Hello(exs_id=exs_id, node_id=exs_id, wants_ack=True)
                )
                conn.send_raw(
                    protocol.encode_batch_records(
                        exs_id, 0, [make_record(node_id=exs_id)]
                    )
                )
            inbound: list[protocol.Message] = []

            def acked():
                _pump_client(conn, inbound)
                return {
                    m.exs_id for m in inbound if isinstance(m, protocol.Ack)
                } == {1, 2}

            wait_until(acked, timeout=5.0)
            assert not any(isinstance(m, protocol.AckBundle) for m in inbound)
            replies = [m for m in inbound if isinstance(m, protocol.HelloReply)]
            assert all(r.capabilities == 0 for r in replies)
        finally:
            conn.close()
            server.stop()
            server_thread.join(timeout=5)


# ----------------------------------------------------------------------
# chaos: SIGKILL the relay mid-stream, respawn, exactly-once holds
# ----------------------------------------------------------------------

class TestRelayChaos:
    @pytest.mark.timeout(120)
    def test_relay_kill_restart_is_exactly_once(self):
        n_records = 600
        collected = CollectingConsumer()
        manager = InstrumentationManager(IsmConfig(), consumers=[collected])
        listener = MessageListener()
        server = IsmServer(manager, listener)
        ism_host, ism_port = listener.address
        # Serve on duration alone (stopped explicitly below), never on
        # until_records: that bound stops the server the instant the last
        # record lands, and on a loaded host the whole stream can clear
        # before the kill below even fires — the respawned relay's resume
        # handshake then goes unanswered and one EXS outbox can never
        # drain, even though delivery itself was exactly-once.
        server_thread = threading.Thread(
            target=server.serve,
            kwargs={"duration_s": 90.0},
            daemon=True,
        )
        server_thread.start()

        # Parent-chosen fixed port so the respawned relay reuses it.
        probe = MessageListener()
        relay_port = probe.address[1]
        probe.close()
        ctx = mp.get_context("spawn")

        def spawn_relay():
            proc = ctx.Process(
                target=relay_process_main,
                args=(relay_port, ism_host, ism_port),
                kwargs={"duration_s": 80.0},
                daemon=True,
            )
            proc.start()
            return proc

        relay_proc = spawn_relay()
        runners = []
        try:
            for exs_id, node in ((1, 10), (2, 20)):
                ring = ring_for_records(4 * n_records)
                sensor = Sensor(ring, node_id=node)
                for k in range(n_records):
                    sensor.notice_ints(1, k)
                exs = ExternalSensor(
                    exs_id, node, ring, CorrectedClock(now_micros),
                    ExsConfig(batch_max_records=8, flush_timeout_us=1_000),
                )
                runner = ReconnectingExs(
                    exs,
                    "127.0.0.1",
                    relay_port,
                    select_timeout_s=0.002,
                    max_attempts=1_000,
                    backoff_s=0.02,
                    max_backoff_s=0.25,
                    ack_timeout_s=2.0,
                )
                t = threading.Thread(target=runner.run, daemon=True)
                t.start()
                runners.append((runner, t))

            # Let the stream establish, then murder the relay mid-flight.
            wait_until(lambda: len(collected.records) > 50, timeout=30.0)
            os.kill(relay_proc.pid, signal.SIGKILL)
            relay_proc.join(timeout=10)
            relay_proc = spawn_relay()

            wait_until(
                lambda: len(collected.records) >= 2 * n_records
                and all(r.outbox.unacked == 0 for r, _ in runners),
                timeout=60.0,
                message="chaos pipeline did not drain after relay respawn",
            )
        finally:
            for runner, t in runners:
                runner.stop()
                t.join(timeout=10)
            if relay_proc.is_alive():
                relay_proc.terminate()
            relay_proc.join(timeout=10)
            server.stop()
            server_thread.join(timeout=10)

        # Exactly-once through the tree: every record once, in order.
        assert _per_node(collected.records) == {
            10: list(range(n_records)),
            20: list(range(n_records)),
        }
