"""Unit tests for the Trace container and trace statistics."""

import io

import pytest
from tests.conftest import make_record

from repro.analysis.statistics import (
    gap_statistics,
    node_activity,
    rate_series,
    utilization_timeline,
)
from repro.analysis.trace import Trace
from repro.core import native
from repro.core.records import EventRecord, FieldType
from repro.picl.format import dumps


def sample_trace() -> Trace:
    records = []
    for node in (1, 2):
        for k in range(10):
            records.append(
                make_record(
                    event_id=node * 10 + (k % 2),
                    timestamp=1_000_000 + k * 100_000 + node,
                    node_id=node,
                )
            )
    return Trace(records)


class TestConstruction:
    def test_sorts_by_default(self):
        a = make_record(timestamp=200)
        b = make_record(timestamp=100)
        trace = Trace([a, b])
        assert trace[0].timestamp == 100

    def test_presorted_keeps_order(self):
        a = make_record(timestamp=200)
        b = make_record(timestamp=100)
        trace = Trace([a, b], presorted=True)
        assert trace[0].timestamp == 200
        assert trace.count_inversions() == 1

    def test_from_memory_buffer(self):
        records = [make_record(event_id=i, timestamp=i) for i in range(5)]
        buffer = b"".join(native.pack_record(r) for r in records)
        trace = Trace.from_memory_buffer(buffer)
        assert list(trace) == records

    def test_from_picl(self):
        records = [make_record(event_id=i, timestamp=i * 10) for i in range(3)]
        trace = Trace.from_picl(io.StringIO(dumps(records)))
        assert list(trace) == records


class TestQueries:
    def test_len_iter_getitem(self):
        trace = sample_trace()
        assert len(trace) == 20
        assert isinstance(trace[0], EventRecord)
        assert isinstance(trace[2:5], Trace)
        assert len(trace[2:5]) == 3

    def test_extents(self):
        trace = sample_trace()
        assert trace.start_us == 1_000_001
        assert trace.end_us == 1_900_002
        assert trace.duration_us == 900_001

    def test_empty_extent_raises(self):
        with pytest.raises(ValueError):
            Trace([]).start_us

    def test_node_ids_event_ids(self):
        trace = sample_trace()
        assert trace.node_ids == (1, 2)
        assert trace.event_ids == (10, 11, 20, 21)

    def test_node_filter(self):
        trace = sample_trace().node(1)
        assert len(trace) == 10
        assert trace.node_ids == (1,)

    def test_events_filter(self):
        trace = sample_trace().events(10, 20)
        assert all(r.event_id in (10, 20) for r in trace)
        assert len(trace) == 10

    def test_between(self):
        trace = sample_trace().between(1_000_000, 1_300_000)
        assert len(trace) == 6
        assert all(1_000_000 <= r.timestamp < 1_300_000 for r in trace)

    def test_causal_filter(self):
        records = [
            make_record(timestamp=1),
            EventRecord(
                event_id=2, timestamp=2,
                field_types=(FieldType.X_REASON,), values=(5,),
            ),
        ]
        assert len(Trace(records).causal()) == 1

    def test_filters_compose(self):
        trace = sample_trace().node(2).events(20).between(0, 2_000_000)
        assert len(trace) == 5

    def test_summary(self):
        summary = sample_trace().summary()
        assert summary["records"] == 20
        assert summary["nodes"] == 2
        assert Trace([]).summary() == {"records": 0}


class TestStatistics:
    def test_rate_series_uniform(self):
        # 100 events over 1 second at 10 ms spacing.
        records = [make_record(timestamp=i * 10_000) for i in range(100)]
        series = rate_series(Trace(records), bin_width_us=100_000)
        assert len(series.rates_hz) == 10
        assert series.mean_hz == pytest.approx(100.0)
        assert series.peak_hz == pytest.approx(100.0)

    def test_rate_series_empty(self):
        series = rate_series(Trace([]))
        assert series.mean_hz == 0.0

    def test_rate_series_validates_width(self):
        with pytest.raises(ValueError):
            rate_series(sample_trace(), bin_width_us=0)

    def test_gap_statistics(self):
        records = [make_record(timestamp=t) for t in (0, 100, 300)]
        stats = gap_statistics(Trace(records))
        assert stats.count == 2
        assert stats.mean == pytest.approx(150.0)

    def test_node_activity_shares(self):
        activity = node_activity(sample_trace())
        assert set(activity) == {1, 2}
        assert activity[1]["count"] == 10
        assert activity[1]["share"] == pytest.approx(0.5)
        assert node_activity(Trace([])) == {}

    def test_utilization_timeline(self):
        # Node 1 busy [0, 500_000) then idle to 1s.
        records = [
            make_record(event_id=100, timestamp=0, node_id=1),
            make_record(event_id=101, timestamp=500_000, node_id=1),
            make_record(event_id=1, timestamp=999_999, node_id=1),
        ]
        util = utilization_timeline(
            Trace(records), start_event=100, end_event=101,
            bin_width_us=250_000,
        )
        assert util[1][0] == pytest.approx(1.0)
        assert util[1][1] == pytest.approx(1.0)
        assert util[1][2] == pytest.approx(0.0)

    def test_utilization_unmatched_start_runs_to_end(self):
        records = [
            make_record(event_id=100, timestamp=0, node_id=1),
            make_record(event_id=1, timestamp=400_000, node_id=1),
        ]
        util = utilization_timeline(
            Trace(records), 100, 101, bin_width_us=200_000
        )
        assert util[1][0] == pytest.approx(1.0)
        assert util[1][-1] > 0.0
