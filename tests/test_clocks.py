"""Unit tests for the clock models."""

import pytest

from repro.clocksync.clocks import CorrectedClock, DriftingClock, PerfectClock


class FakeTime:
    """A controllable true-time source."""

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def __call__(self) -> int:
        return self.value


class TestPerfectClock:
    def test_reads_true_time(self):
        t = FakeTime(42)
        clock = PerfectClock(t)
        assert clock.read() == 42
        t.value = 100
        assert clock() == 100

    def test_read_at(self):
        assert PerfectClock(FakeTime()).read_at(555) == 555


class TestDriftingClock:
    def test_offset_applied(self):
        clock = DriftingClock(FakeTime(1000), offset_us=50)
        assert clock.read() == 1050

    def test_negative_offset(self):
        clock = DriftingClock(FakeTime(1000), offset_us=-200)
        assert clock.read() == 800

    def test_drift_accumulates_with_time(self):
        t = FakeTime(0)
        clock = DriftingClock(t, drift_ppm=100.0)  # gains 100 µs per second
        t.value = 1_000_000
        assert clock.read() == 1_000_100
        t.value = 10_000_000
        assert clock.read() == 10_001_000

    def test_negative_drift(self):
        t = FakeTime(1_000_000)
        clock = DriftingClock(t, drift_ppm=-50.0)
        assert clock.read() == 1_000_000 - 50

    def test_quantization(self):
        clock = DriftingClock(FakeTime(1_234_567), quantum_us=1000)
        assert clock.read() == 1_234_000

    def test_quantum_must_be_positive(self):
        with pytest.raises(ValueError):
            DriftingClock(FakeTime(), quantum_us=0)

    def test_read_at_matches_read(self):
        t = FakeTime(5_000_000)
        clock = DriftingClock(t, offset_us=123, drift_ppm=25.0)
        assert clock.read_at(5_000_000) == clock.read()
        assert clock.read_at(6_000_000) != clock.read()

    def test_error_at_is_exact(self):
        clock = DriftingClock(FakeTime(), offset_us=10, drift_ppm=50.0)
        assert clock.error_at(0) == 10
        assert clock.error_at(1_000_000) == pytest.approx(60.0)


class TestCorrectedClock:
    def test_correction_added_to_base(self):
        t = FakeTime(1000)
        corrected = CorrectedClock(DriftingClock(t, offset_us=-100))
        assert corrected.read() == 900
        corrected.advance(40)
        assert corrected.read() == 940
        assert corrected.correction_us == 40

    def test_advance_rejects_negative(self):
        corrected = CorrectedClock(DriftingClock(FakeTime()))
        with pytest.raises(ValueError):
            corrected.advance(-1)

    def test_step_allows_negative(self):
        corrected = CorrectedClock(DriftingClock(FakeTime(1000)))
        corrected.step(-300)
        assert corrected.read() == 700

    def test_corrections_counted(self):
        corrected = CorrectedClock(DriftingClock(FakeTime()))
        corrected.advance(1)
        corrected.advance(0)
        corrected.step(-1)
        assert corrected.corrections_applied == 3

    def test_read_at_through_base(self):
        t = FakeTime(0)
        corrected = CorrectedClock(DriftingClock(t, offset_us=5))
        corrected.advance(10)
        assert corrected.read_at(100) == 115

    def test_monotone_under_advances(self):
        # Advance-only corrections can never make successive reads with
        # non-decreasing true time go backwards.
        t = FakeTime(0)
        corrected = CorrectedClock(DriftingClock(t, drift_ppm=30.0))
        last = corrected.read()
        for step in range(1, 50):
            t.value = step * 10_000
            if step % 7 == 0:
                corrected.advance(step)
            now = corrected.read()
            assert now >= last
            last = now
