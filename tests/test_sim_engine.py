"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import SimError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(30, seen.append, "c")
        sim.schedule(10, seen.append, "a")
        sim.schedule(20, seen.append, "b")
        sim.run_all()
        assert seen == ["a", "b", "c"]

    def test_fifo_among_simultaneous_events(self):
        sim = Simulator()
        seen = []
        for tag in "abc":
            sim.schedule(5, seen.append, tag)
        sim.run_all()
        assert seen == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(100, lambda: times.append(sim.now))
        sim.run_all()
        assert times == [100]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.run_until(100)
        with pytest.raises(SimError):
            sim.schedule_at(50, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(10, seen.append, "x")
        handle.cancel()
        sim.run_all()
        assert seen == []

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        seen = []

        def chain(n):
            seen.append(n)
            if n < 3:
                sim.schedule(10, chain, n + 1)

        sim.schedule(10, chain, 0)
        sim.run_all()
        assert seen == [0, 1, 2, 3]
        assert sim.now == 40


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, seen.append, 1)
        sim.schedule(30, seen.append, 2)
        sim.run_until(20)
        assert seen == [1]
        assert sim.now == 20
        sim.run_until(30)
        assert seen == [1, 2]

    def test_inclusive_horizon(self):
        sim = Simulator()
        seen = []
        sim.schedule(20, seen.append, 1)
        sim.run_until(20)
        assert seen == [1]

    def test_run_for(self):
        sim = Simulator()
        sim.run_for(50)
        sim.run_for(25)
        assert sim.now == 75

    def test_past_horizon_rejected(self):
        sim = Simulator()
        sim.run_until(100)
        with pytest.raises(SimError):
            sim.run_until(50)

    def test_reentrant_run_until(self):
        # A callback advancing the clock past the outer horizon (the
        # blocking sync master pattern) must not rewind time.
        sim = Simulator()
        seen = []

        def blocking_event():
            sim.run_until(sim.now + 100)  # overshoots the outer horizon
            seen.append(sim.now)

        sim.schedule(40, blocking_event)
        sim.run_until(50)
        assert seen == [140]
        assert sim.now == 140

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(0, forever)

        sim.schedule(0, forever)
        with pytest.raises(SimError):
            sim.run_all(limit=100)


class TestPeriodic:
    def test_schedule_every_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(10, lambda: ticks.append(sim.now))
        sim.run_until(55)
        assert ticks == [10, 20, 30, 40, 50]

    def test_stop_function(self):
        sim = Simulator()
        ticks = []
        stop = sim.schedule_every(10, lambda: ticks.append(sim.now))
        sim.run_until(25)
        stop()
        sim.run_until(100)
        assert ticks == [10, 20]

    def test_start_delay(self):
        sim = Simulator()
        ticks = []
        sim.schedule_every(10, lambda: ticks.append(sim.now), start_delay_us=0)
        sim.run_until(15)
        assert ticks == [0, 10]

    def test_jitter_stays_periodic_on_average(self):
        sim = Simulator(seed=1)
        ticks = []
        sim.schedule_every(100, lambda: ticks.append(sim.now), jitter_us=10)
        sim.run_until(10_000)
        assert 85 <= len(ticks) <= 115
        gaps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(90 <= g <= 110 for g in gaps)

    def test_invalid_interval(self):
        sim = Simulator()
        with pytest.raises(SimError):
            sim.schedule_every(0, lambda: None)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def run(seed):
            sim = Simulator(seed=seed)
            trace = []
            sim.schedule_every(
                10, lambda: trace.append((sim.now, sim.rng.random())), jitter_us=3
            )
            sim.run_until(1000)
            return trace

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_time_fn_tracks_now(self):
        sim = Simulator()
        fn = sim.time_fn()
        assert fn() == 0
        sim.run_until(123)
        assert fn() == 123
