"""Unit tests for the runtime monitor: spec validation, JSON loading,
and the engine's rate windows, hysteresis, cooldown, and actuation.

The engine is driven entirely through ``deliver``/``tick`` with an
explicit clock and a fake actuator — no sockets, no threads, no wall
time — so every state transition here is exact.
"""

import pytest

from tests.conftest import make_record

from repro.core.filtering import FieldTest, FilterSpec
from repro.core.records import EventRecord, FieldType
from repro.monitor.engine import ALERT_EVENT_ID, MonitorEngine
from repro.monitor.spec import Action, Condition, MonitorRule, MonitorSpec
from repro.obs.reporter import METRICS_EVENT_ID


class FakeActuator:
    """Records every actuation; ``push_ok`` simulates a disconnected EXS."""

    def __init__(self, push_ok: bool = True) -> None:
        self.push_ok = push_ok
        self.pushes: list[tuple[int, FilterSpec]] = []
        self.sync_rounds = 0
        self.alerts: list[EventRecord] = []

    def push_filter(self, exs_id: int, spec: FilterSpec) -> bool:
        self.pushes.append((exs_id, spec))
        return self.push_ok

    def request_sync_round(self) -> None:
        self.sync_rounds += 1

    def emit_alert(self, record: EventRecord) -> None:
        self.alerts.append(record)


def rate_rule(
    name: str = "hot",
    above: float = 100.0,
    window_us: int = 1_000_000,
    do: tuple = (Action(kind="set_sampling", sample_every=10),),
    **kwargs,
) -> MonitorRule:
    when_kwargs = {"event_id": 1, **kwargs.pop("when_kwargs", {})}
    return MonitorRule(
        name=name,
        when=Condition(
            kind="rate", above=above, window_us=window_us, **when_kwargs
        ),
        do=do,
        **kwargs,
    )


def engine_with(*rules: MonitorRule, bucket_us: int = 100_000, push_ok=True):
    actuator = FakeActuator(push_ok=push_ok)
    spec = MonitorSpec(rules=tuple(rules), bucket_us=bucket_us)
    return MonitorEngine(spec, actuator), actuator


def metric_record(name: str, value: float, node_id: int = 0) -> EventRecord:
    return EventRecord(
        event_id=METRICS_EVENT_ID,
        timestamp=0,
        field_types=(FieldType.X_STRING, FieldType.X_DOUBLE),
        values=(name, value),
        node_id=node_id,
    )


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_condition_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown condition kind"):
            Condition(kind="pressure", above=1.0)

    def test_condition_needs_exactly_one_threshold(self):
        with pytest.raises(ValueError, match="exactly one"):
            Condition(kind="rate")
        with pytest.raises(ValueError, match="exactly one"):
            Condition(kind="rate", above=1.0, below=2.0)

    def test_metric_condition_needs_name(self):
        with pytest.raises(ValueError, match="metric name"):
            Condition(kind="metric", above=1.0)

    def test_rate_condition_rejects_metric_name(self):
        with pytest.raises(ValueError, match="does not take"):
            Condition(kind="rate", metric="x", above=1.0)

    def test_clear_factor_bounds(self):
        with pytest.raises(ValueError, match="clear_factor"):
            Condition(kind="rate", above=1.0, clear_factor=0.0)
        with pytest.raises(ValueError, match="clear_factor"):
            Condition(kind="rate", above=1.0, clear_factor=1.5)

    def test_action_validation(self):
        with pytest.raises(ValueError, match="unknown action kind"):
            Action(kind="explode")
        with pytest.raises(ValueError, match="sample_every"):
            Action(kind="set_sampling", sample_every=0)
        with pytest.raises(ValueError, match="requires a spec"):
            Action(kind="set_filter")
        with pytest.raises(ValueError, match="at least one event"):
            Action(kind="block_events")

    def test_action_filter_spec_mapping(self):
        assert Action(kind="set_sampling", sample_every=4).filter_spec() == (
            FilterSpec(sample_every=4)
        )
        assert Action(kind="block_events", events=(7,)).filter_spec() == (
            FilterSpec(blocked_events=frozenset({7}))
        )
        assert Action(kind="restore").filter_spec() == FilterSpec()
        assert Action(kind="alert").filter_spec() is None
        custom = FilterSpec(allowed_events={1})
        assert Action(kind="set_filter", spec=custom).filter_spec() is custom

    def test_rule_needs_actions_and_name(self):
        cond = Condition(kind="rate", above=1.0)
        with pytest.raises(ValueError, match="no actions"):
            MonitorRule(name="r", when=cond, do=())
        with pytest.raises(ValueError, match="non-empty"):
            MonitorRule(name="", when=cond, do=(Action(kind="alert"),))

    def test_spec_rejects_duplicate_rule_names(self):
        rule = rate_rule()
        with pytest.raises(ValueError, match="unique"):
            MonitorSpec(rules=(rule, rule))


class TestJsonLoading:
    SPEC = """
    {
      "bucket_us": 50000,
      "rules": [
        {
          "name": "shed-hot",
          "when": {"kind": "rate", "event_id": 1, "above": 500,
                   "window_us": 500000, "clear_factor": 0.5},
          "do": [{"kind": "set_sampling", "sample_every": 10},
                 {"kind": "alert"}],
          "on_clear": [{"kind": "restore"}],
          "cooldown_us": 1000000
        },
        {
          "name": "probe-skew",
          "when": {"kind": "metric", "metric": "sync.skew_p99",
                   "above": 2000.0},
          "do": [{"kind": "sync_round"}]
        },
        {
          "name": "slice",
          "when": {"kind": "rate", "below": 1.0},
          "do": [{"kind": "set_filter",
                  "spec": {"allowed_events": [1, 2],
                           "field_tests": [{"field_index": 0, "op": "ge",
                                            "value": 100}]}}]
        }
      ]
    }
    """

    def test_round_trip(self):
        spec = MonitorSpec.from_json(self.SPEC)
        assert spec.bucket_us == 50_000
        assert [r.name for r in spec.rules] == ["shed-hot", "probe-skew", "slice"]
        shed = spec.rules[0]
        assert shed.when == Condition(
            kind="rate", event_id=1, above=500.0,
            window_us=500_000, clear_factor=0.5,
        )
        assert shed.do[0] == Action(kind="set_sampling", sample_every=10)
        assert shed.on_clear == (Action(kind="restore"),)
        assert shed.cooldown_us == 1_000_000
        sliced = spec.rules[2].do[0].spec
        assert sliced.allowed_events == frozenset({1, 2})
        assert sliced.field_tests == (FieldTest(0, "ge", 100),)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(self.SPEC)
        assert MonitorSpec.load(str(path)) == MonitorSpec.from_json(self.SPEC)

    def test_rejects_malformed_documents(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            MonitorSpec.from_json("{nope")
        with pytest.raises(ValueError, match="JSON object"):
            MonitorSpec.from_json("[1, 2]")
        with pytest.raises(ValueError, match="'rules' must be a list"):
            MonitorSpec.from_json('{"rules": "all"}')
        with pytest.raises(ValueError, match="unknown field-test op"):
            MonitorSpec.from_json(
                '{"rules": [{"name": "r", "when": {"kind": "rate", "above": 1},'
                ' "do": [{"kind": "set_filter", "spec": {"field_tests":'
                ' [{"field_index": 0, "op": "like", "value": 1}]}}]}]}'
            )
        with pytest.raises(ValueError, match="must be numeric"):
            MonitorSpec.from_json(
                '{"rules": [{"name": "r", "when": {"kind": "rate", "above": 1},'
                ' "do": [{"kind": "set_filter", "spec": {"field_tests":'
                ' [{"field_index": 0, "op": "eq", "value": true}]}}]}]}'
            )


# ----------------------------------------------------------------------
# rate windows
# ----------------------------------------------------------------------
class TestRateWindows:
    def deliver_n(self, engine, n: int, node_id: int = 1, event_id: int = 1):
        for _ in range(n):
            engine.deliver(make_record(event_id=event_id, node_id=node_id))

    def test_trips_above_threshold_only(self):
        engine, actuator = engine_with(rate_rule(above=100.0))
        engine.tick(0)
        self.deliver_n(engine, 100)  # exactly 100/s: not > 100
        engine.tick(1_000_000)
        assert engine.active_rules() == {}
        self.deliver_n(engine, 101)
        engine.tick(2_000_000)
        assert engine.active_rules() == {"hot": frozenset({1})}
        # Implicit target: the tripping node.
        assert actuator.pushes == [(1, FilterSpec(sample_every=10))]

    def test_window_sums_across_buckets(self):
        engine, _ = engine_with(rate_rule(above=100.0, window_us=1_000_000))
        engine.tick(0)
        # 60/s in each of two adjacent 100ms buckets still only 120 over
        # the 1s window -> > 100 trips.
        self.deliver_n(engine, 60)
        engine.tick(100_000)
        self.deliver_n(engine, 60)
        engine.tick(200_000)
        assert engine.active_rules() == {"hot": frozenset({1})}

    def test_counts_age_out_of_the_window(self):
        engine, _ = engine_with(
            rate_rule(above=100.0, window_us=200_000), bucket_us=100_000
        )
        engine.tick(0)
        self.deliver_n(engine, 50)  # 250/s over the 200ms window
        engine.tick(100_000)
        assert engine.active_rules() == {"hot": frozenset({1})}
        # Quiet: the hot buckets rotate out and the rule clears.
        engine.tick(300_000)
        assert engine.active_rules() == {}

    def test_long_idle_resets_every_bucket(self):
        engine, _ = engine_with(rate_rule(above=10.0, window_us=1_000_000))
        engine.tick(0)
        self.deliver_n(engine, 1_000)
        # An hour of virtual idleness: everything is stale.
        engine.tick(3_600_000_000)
        assert engine.active_rules() == {}

    def test_event_filter_restricts_counting(self):
        engine, _ = engine_with(rate_rule(above=10.0))
        engine.tick(0)
        self.deliver_n(engine, 1_000, event_id=2)  # not the rule's event
        engine.tick(1_000_000)
        assert engine.active_rules() == {}

    def test_per_node_evaluation_is_independent(self):
        engine, actuator = engine_with(rate_rule(above=100.0))
        engine.tick(0)
        self.deliver_n(engine, 500, node_id=1)
        self.deliver_n(engine, 5, node_id=2)
        engine.tick(1_000_000)
        assert engine.active_rules() == {"hot": frozenset({1})}
        assert [target for target, _ in actuator.pushes] == [1]

    def test_pinned_node_condition_ignores_others(self):
        rule = rate_rule(when_kwargs={"node_id": 2}, above=10.0)
        engine, _ = engine_with(rule)
        engine.tick(0)
        self.deliver_n(engine, 1_000, node_id=1)
        engine.tick(1_000_000)
        assert engine.active_rules() == {}
        self.deliver_n(engine, 1_000, node_id=2)
        engine.tick(2_000_000)
        assert engine.active_rules() == {"hot": frozenset({2})}

    def test_alert_records_do_not_feed_back(self):
        engine, _ = engine_with(
            rate_rule(when_kwargs={"event_id": None}, above=10.0)
        )
        engine.tick(0)
        for _ in range(1_000):
            engine.deliver(make_record(event_id=ALERT_EVENT_ID, node_id=1))
        engine.tick(1_000_000)
        assert engine.active_rules() == {}


# ----------------------------------------------------------------------
# hysteresis / cooldown
# ----------------------------------------------------------------------
class TestHysteresisAndCooldown:
    def test_clear_needs_hysteresis_band(self):
        rule = rate_rule(
            above=100.0, window_us=100_000,
            when_kwargs={"clear_factor": 0.5},
            on_clear=(Action(kind="restore"),),
        )
        engine, actuator = engine_with(rule, bucket_us=100_000)
        engine.tick(0)
        for _ in range(20):  # 200/s
            engine.deliver(make_record(node_id=1))
        engine.tick(100_000)
        assert engine.active_rules() == {"hot": frozenset({1})}
        # 80/s: below the trip threshold but above 50/s -> still active.
        for _ in range(8):
            engine.deliver(make_record(node_id=1))
        engine.tick(200_000)
        assert engine.active_rules() == {"hot": frozenset({1})}
        # 40/s: inside the band -> clears and fires on_clear.
        for _ in range(4):
            engine.deliver(make_record(node_id=1))
        engine.tick(300_000)
        assert engine.active_rules() == {}
        assert actuator.pushes[-1] == (1, FilterSpec())

    def test_active_rule_does_not_refire(self):
        engine, actuator = engine_with(rate_rule(above=10.0, window_us=100_000))
        engine.tick(0)
        for tick in range(1, 6):
            for _ in range(100):
                engine.deliver(make_record(node_id=1))
            engine.tick(tick * 100_000)
        assert len(actuator.pushes) == 1

    def test_cooldown_suppresses_immediate_retrip(self):
        rule = rate_rule(
            above=100.0, window_us=100_000, cooldown_us=1_000_000
        )
        engine, actuator = engine_with(rule, bucket_us=100_000)
        engine.tick(0)
        for _ in range(20):
            engine.deliver(make_record(node_id=1))
        engine.tick(100_000)        # trips
        engine.tick(200_000)        # quiet bucket: clears
        assert engine.active_rules() == {}
        for _ in range(20):
            engine.deliver(make_record(node_id=1))
        engine.tick(300_000)        # hot again, but inside cooldown
        assert engine.active_rules() == {}
        engine.tick(1_200_000)      # quiet until the cooldown elapses
        for _ in range(20):
            engine.deliver(make_record(node_id=1))
        engine.tick(1_300_000)      # cooldown over: trips again
        assert engine.active_rules() == {"hot": frozenset({1})}
        assert len(actuator.pushes) == 2


# ----------------------------------------------------------------------
# metric conditions + actuation kinds
# ----------------------------------------------------------------------
class TestMetricsAndActuation:
    def test_metric_condition_uses_latest_value(self):
        rule = MonitorRule(
            name="skew",
            when=Condition(kind="metric", metric="sync.skew_p99", above=2_000.0),
            do=(Action(kind="sync_round"),),
        )
        engine, actuator = engine_with(rule)
        engine.deliver(metric_record("sync.skew_p99", 500.0))
        engine.tick(0)
        assert actuator.sync_rounds == 0
        engine.deliver(metric_record("sync.skew_p99", 5_000.0))
        engine.tick(100_000)
        assert actuator.sync_rounds == 1
        assert engine.latest_metric("sync.skew_p99") == 5_000.0
        # Falling back under the threshold clears the rule.
        engine.deliver(metric_record("sync.skew_p99", 100.0))
        engine.tick(200_000)
        assert engine.active_rules() == {}

    def test_alert_record_shape(self):
        rule = rate_rule(do=(Action(kind="alert"),), above=10.0)
        engine, actuator = engine_with(rule)
        engine.tick(0)
        for _ in range(100):
            engine.deliver(make_record(node_id=3))
        engine.tick(1_000_000)
        assert engine.alerts_emitted == 1
        (alert,) = actuator.alerts
        assert alert.event_id == ALERT_EVENT_ID
        assert alert.timestamp == 1_000_000
        assert alert.field_types == (
            FieldType.X_STRING, FieldType.X_UINT, FieldType.X_DOUBLE
        )
        name, node, value = alert.values
        assert name == "hot" and node == 3 and value > 10.0

    def test_deferred_push_is_counted(self):
        engine, actuator = engine_with(rate_rule(above=10.0), push_ok=False)
        engine.tick(0)
        for _ in range(100):
            engine.deliver(make_record(node_id=1))
        engine.tick(1_000_000)
        assert engine.pushes_deferred == 1
        assert actuator.pushes  # the attempt was made

    def test_explicit_target_overrides_tripping_node(self):
        rule = rate_rule(
            do=(Action(kind="set_sampling", sample_every=5, target=9),),
            above=10.0,
        )
        engine, actuator = engine_with(rule)
        engine.tick(0)
        for _ in range(100):
            engine.deliver(make_record(node_id=1))
        engine.tick(1_000_000)
        assert actuator.pushes == [(9, FilterSpec(sample_every=5))]

    def test_deliver_many_matches_deliver(self):
        engine, _ = engine_with(rate_rule(above=10.0))
        engine.tick(0)
        engine.deliver_many([make_record(node_id=1)] * 100)
        engine.tick(1_000_000)
        assert engine.active_rules() == {"hot": frozenset({1})}
        engine.close()  # consumer protocol: must not raise
