"""Unit tests for trace phase splitting and windowing."""

import pytest
from tests.conftest import make_record

from repro.analysis.trace import Trace
from repro.picl.format import dumps
from repro.tools import trace_stats_cli


def burst_trace() -> Trace:
    # Two bursts separated by a 1-second gap.
    records = [make_record(timestamp=k * 1_000) for k in range(10)]
    records += [make_record(timestamp=1_009_000 + k * 1_000) for k in range(5)]
    return Trace(records)


class TestSplitByGap:
    def test_splits_at_large_gaps(self):
        phases = burst_trace().split_by_gap(gap_threshold_us=100_000)
        assert [len(p) for p in phases] == [10, 5]
        assert phases[0].end_us < phases[1].start_us

    def test_no_split_when_threshold_large(self):
        phases = burst_trace().split_by_gap(gap_threshold_us=10_000_000)
        assert len(phases) == 1
        assert len(phases[0]) == 15

    def test_every_gap_splits_when_threshold_tiny(self):
        phases = burst_trace().split_by_gap(gap_threshold_us=1)
        assert len(phases) == 15

    def test_empty_trace(self):
        assert Trace([]).split_by_gap(1_000) == []

    def test_phases_conserve_records(self):
        trace = burst_trace()
        phases = trace.split_by_gap(50_000)
        assert sum(len(p) for p in phases) == len(trace)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            burst_trace().split_by_gap(0)


class TestIterWindows:
    def test_windows_tile_extent(self):
        trace = burst_trace()
        windows = list(trace.iter_windows(width_us=500_000))
        assert sum(len(w) for _, w in windows) == len(trace)
        starts = [start for start, _ in windows]
        assert starts == sorted(starts)
        assert all(
            b - a == 500_000 for a, b in zip(starts, starts[1:])
        )

    def test_empty_windows_reported(self):
        trace = burst_trace()
        windows = list(trace.iter_windows(width_us=100_000))
        assert any(len(w) == 0 for _, w in windows)  # the quiet middle

    def test_empty_trace_yields_nothing(self):
        assert list(Trace([]).iter_windows(1_000)) == []

    def test_width_validation(self):
        with pytest.raises(ValueError):
            list(burst_trace().iter_windows(0))


class TestTimelineCliFlag:
    def test_timeline_sections_render(self, tmp_path, capsys):
        path = tmp_path / "t.picl"
        path.write_text(dumps(list(burst_trace())))
        assert trace_stats_cli.main([str(path), "--timeline"]) == 0
        out = capsys.readouterr().out
        assert "event timelines:" in out
        assert "node heatmap:" in out
        assert "peak" in out

    def test_anomalies_section_renders(self, tmp_path, capsys):
        path = tmp_path / "t.picl"
        path.write_text(dumps(list(burst_trace())))
        assert trace_stats_cli.main([str(path), "--anomalies"]) == 0
        out = capsys.readouterr().out
        assert "anomalies:" in out
        # The burst trace's 1-second hole is a silence gap.
        assert "silence" in out
