"""Integration tests for the real runtime: shared memory and TCP loops.

Socket tests run EXS and ISM on threads inside one process — the transport
is the real kernel TCP stack; only the process boundary is collapsed.  The
true multi-process path (spawned interpreter, shared-memory attach) is
exercised by ``test_runtime_multiprocess.py``.
"""

import threading
import time

import pytest
from tests.conftest import make_record

from repro.clocksync.brisk_sync import BriskSyncConfig
from repro.clocksync.clocks import CorrectedClock
from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.runtime import ExsProcess, IsmServer, attach_shared_ring, create_shared_ring
from repro.util.timebase import now_micros
from repro.wire import protocol
from repro.wire.tcp import MessageListener, connect


class TestSharedRing:
    def test_create_and_attach_share_data(self):
        owner = create_shared_ring(64 * 1024)
        try:
            other = attach_shared_ring(owner.name)
            try:
                owner.ring.push(make_record(event_id=5))
                assert other.ring.pop().event_id == 5
                assert owner.ring.used == 0  # consumption visible to owner
            finally:
                other.close()
        finally:
            owner.close()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            create_shared_ring(10)

    def test_close_releases_segment(self):
        owner = create_shared_ring(4096)
        name = owner.name
        owner.close()
        with pytest.raises(FileNotFoundError):
            attach_shared_ring(name)

    def test_context_manager(self):
        with create_shared_ring(4096) as shared:
            shared.ring.push(make_record())
            assert shared.ring.used > 0


class TestTcpTransport:
    def test_message_roundtrip_over_socket(self):
        listener = MessageListener()
        host, port = listener.address
        client = connect(host, port)
        server_conn = listener.accept(timeout=1.0)
        try:
            client.send(protocol.Hello(exs_id=1, node_id=2))
            msg = server_conn.recv(timeout=1.0)
            assert msg == protocol.Hello(exs_id=1, node_id=2)
            server_conn.send(protocol.Adjust(correction=5))
            assert client.recv(timeout=1.0) == protocol.Adjust(correction=5)
        finally:
            client.close()
            server_conn.close()
            listener.close()

    def test_recv_timeout_returns_none(self):
        listener = MessageListener()
        host, port = listener.address
        client = connect(host, port)
        server_conn = listener.accept(timeout=1.0)
        try:
            t0 = time.monotonic()
            assert server_conn.recv(timeout=0.05) is None
            assert time.monotonic() - t0 < 1.0
        finally:
            client.close()
            server_conn.close()
            listener.close()

    def test_batch_over_socket(self):
        listener = MessageListener()
        host, port = listener.address
        client = connect(host, port)
        server_conn = listener.accept(timeout=1.0)
        try:
            records = [make_record(event_id=i, timestamp=i) for i in range(100)]
            client.send(protocol.Batch(exs_id=1, seq=0, records=tuple(records)))
            msg = server_conn.recv(timeout=2.0)
            assert isinstance(msg, protocol.Batch)
            assert len(msg.records) == 100
        finally:
            client.close()
            server_conn.close()
            listener.close()

    def test_accept_timeout(self):
        listener = MessageListener()
        try:
            assert listener.accept(timeout=0.05) is None
        finally:
            listener.close()


def run_lis_against_server(
    n_records: int,
    sync_config: BriskSyncConfig | None = None,
    sync_period_s: float = 10.0,
) -> tuple[InstrumentationManager, IsmServer]:
    """One LIS (local ring + sensor + EXS thread) against a live IsmServer."""
    consumer = CollectingConsumer()
    manager = InstrumentationManager(
        IsmConfig(sorter=SorterConfig(initial_frame_us=1_000)), [consumer]
    )
    listener = MessageListener()
    host, port = listener.address
    server = IsmServer(manager, listener, sync_config, sync_period_s)

    shared = create_shared_ring(1 << 20)
    sensor = Sensor(shared.ring, node_id=1)
    exs = ExternalSensor(
        1, 1, shared.ring, CorrectedClock(now_micros),
        ExsConfig(batch_max_records=64, flush_timeout_us=5_000),
    )
    proc = ExsProcess(exs, connect(host, port), select_timeout_s=0.005)

    exs_thread = threading.Thread(target=proc.run, daemon=True)
    exs_thread.start()
    for i in range(n_records):
        sensor.notice_ints(7, i, 2, 3, 4, 5, 6)
    server.serve(duration_s=20.0, until_records=n_records)
    proc.stop()
    exs_thread.join(timeout=5.0)
    listener.close()
    shared.close()
    manager.consumer = consumer  # expose for assertions
    return manager, server


class TestExsIsmLoop:
    def test_records_flow_end_to_end(self):
        n = 5_000
        manager, server = run_lis_against_server(n)
        assert manager.stats.records_received == n
        assert manager.stats.seq_gaps == 0
        values = [r.values[0] for r in manager.consumer.records]
        assert values == sorted(values)
        assert len(values) == n

    def test_clock_sync_rounds_execute(self):
        manager, server = run_lis_against_server(
            2_000, sync_config=BriskSyncConfig(), sync_period_s=0.05
        )
        assert server.sync_rounds_completed >= 1

    def test_connection_teardown_counted(self):
        manager = InstrumentationManager(consumers=[CollectingConsumer()])
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)
        client = connect(host, port)
        client.send(protocol.Hello(exs_id=9, node_id=9))
        client.send(protocol.Bye(reason="done"))
        server.serve(duration_s=5.0, expected_connections=1)
        assert server.closed_connections == 1
        assert manager.sources == {9: 9}
        client.close()
        listener.close()
