"""Property tests for the compiled pushdown predicate.

The compiled filter (:mod:`repro.core.predicate`) answers the same
question as :meth:`FilterSpec.matches`, but over the packed ring payload
before any decode.  These tests pin the contract:

* on every generated (record, spec) pair the compiled payload decision
  equals the reference decision on the *decoded* record — decoded, not
  original, because lossy field types (``X_FLOAT`` narrows to float32)
  make the wire value the one the reference filter would see downstream;
* sampling counters are conserved per event id, and stay exact when the
  two entry points (packed payload / decoded record) are mixed freely;
* the EXS applies ``SetFilter`` epochs idempotently — re-sends are
  no-ops that preserve sampling counters, stale epochs are ignored;
* the steering extension survives the wire, and its absence leaves the
  legacy frame byte-identical.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.clocksync.clocks import CorrectedClock
from repro.core import native
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.filtering import (
    FIELD_TEST_OPS,
    FieldTest,
    FilterSpec,
    FilterState,
)
from repro.core.predicate import CompiledFilterState
from repro.core.records import EventRecord, FieldType
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.wire import protocol

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

#: Small id spaces so specs and records collide often — both accept and
#: reject branches get real coverage.
_ids = st.integers(0, 7)

_FIXED_TYPES = [
    FieldType.X_BYTE,
    FieldType.X_USHORT,
    FieldType.X_INT,
    FieldType.X_UINT,
    FieldType.X_HYPER,
    FieldType.X_TS,
    FieldType.X_FLOAT,
    FieldType.X_DOUBLE,
]
_VAR_TYPES = [FieldType.X_STRING, FieldType.X_OPAQUE]

_INT_RANGES = {
    FieldType.X_BYTE: (-(2**7), 2**7 - 1),
    FieldType.X_USHORT: (0, 2**16 - 1),
    FieldType.X_INT: (-(2**31), 2**31 - 1),
    FieldType.X_UINT: (0, 2**32 - 1),
    FieldType.X_HYPER: (-(2**63), 2**63 - 1),
    FieldType.X_TS: (-(2**63), 2**63 - 1),
}


def _field_value(ftype: FieldType):
    if ftype in _INT_RANGES:
        lo, hi = _INT_RANGES[ftype]
        return st.integers(lo, hi)
    if ftype is FieldType.X_FLOAT:
        return st.floats(width=32, allow_nan=False)
    if ftype is FieldType.X_DOUBLE:
        return st.floats(allow_nan=False)
    if ftype is FieldType.X_STRING:
        return st.text(
            alphabet=st.characters(blacklist_characters="\x00", codec="utf-8"),
            max_size=12,
        )
    return st.binary(max_size=12)


@st.composite
def records(draw) -> EventRecord:
    types = draw(
        st.lists(
            st.sampled_from(_FIXED_TYPES + _VAR_TYPES), max_size=6
        )
    )
    return EventRecord(
        event_id=draw(_ids),
        timestamp=draw(st.integers(0, 2**40)),
        field_types=tuple(types),
        values=tuple(draw(_field_value(t)) for t in types),
        node_id=draw(_ids),
    )


@st.composite
def field_tests(draw) -> FieldTest:
    value = draw(
        st.one_of(
            st.integers(-(2**33), 2**33),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
        )
    )
    return FieldTest(
        field_index=draw(st.integers(0, 6)),
        op=draw(st.sampled_from(FIELD_TEST_OPS)),
        value=value,
    )


@st.composite
def specs(draw) -> FilterSpec:
    allowed = draw(st.none() | st.frozensets(_ids, max_size=4))
    return FilterSpec(
        allowed_events=allowed,
        blocked_events=draw(st.frozensets(_ids, max_size=3)),
        allowed_nodes=draw(st.none() | st.frozensets(_ids, max_size=4)),
        sample_every=1,
        field_tests=tuple(draw(st.lists(field_tests(), max_size=3))),
    )


# ----------------------------------------------------------------------
# compiled == reference
# ----------------------------------------------------------------------
class TestCompiledEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(spec=specs(), recs=st.lists(records(), max_size=8))
    def test_payload_decision_matches_reference(self, spec, recs):
        compiled = CompiledFilterState(spec)
        for rec in recs:
            payload = native.pack_record(rec)
            decoded, _ = native.unpack_record(payload)
            assert compiled.admit_payload(payload) == spec.matches(decoded)

    @settings(max_examples=200, deadline=None)
    @given(spec=specs(), rec=records())
    def test_both_entry_points_agree(self, spec, rec):
        payload = native.pack_record(rec)
        decoded, _ = native.unpack_record(payload)
        by_payload = CompiledFilterState(spec).admit_payload(payload)
        by_record = CompiledFilterState(spec).admit(decoded)
        assert by_payload == by_record

    def test_specialized_codec_path_is_exercised(self):
        # Same fixed-size schema twice: the second payload must take the
        # compiled plan (cached per codec), and still agree.
        spec = FilterSpec(field_tests=(FieldTest(1, "ge", 10),))
        compiled = CompiledFilterState(spec)
        for value, expect in ((5, False), (15, True), (9, False), (10, True)):
            rec = EventRecord(
                event_id=1,
                timestamp=1,
                field_types=(FieldType.X_INT, FieldType.X_INT),
                values=(0, value),
            )
            assert compiled.admit_payload(native.pack_record(rec)) is expect

    def test_var_length_schema_falls_back_to_decode(self):
        spec = FilterSpec(field_tests=(FieldTest(1, "gt", 100),))
        compiled = CompiledFilterState(spec)
        def rec(amount: int) -> EventRecord:
            return EventRecord(
                event_id=1,
                timestamp=1,
                field_types=(FieldType.X_STRING, FieldType.X_HYPER),
                values=("label", amount),
            )

        assert compiled.admit_payload(native.pack_record(rec(200)))
        assert not compiled.admit_payload(native.pack_record(rec(50)))

    def test_test_on_string_field_rejects(self):
        # Numeric predicates fail on non-numeric fields, both paths.
        spec = FilterSpec(field_tests=(FieldTest(0, "eq", 1),))
        rec = EventRecord(
            event_id=1, timestamp=1,
            field_types=(FieldType.X_STRING,), values=("1",),
        )
        assert not spec.matches(rec)
        assert not CompiledFilterState(spec).admit_payload(
            native.pack_record(rec)
        )


# ----------------------------------------------------------------------
# sampling conservation
# ----------------------------------------------------------------------
class TestSamplingConservation:
    @settings(max_examples=100, deadline=None)
    @given(
        stream=st.lists(
            st.tuples(_ids, st.booleans()), max_size=60
        ),
        n=st.integers(1, 5),
    )
    def test_kept_is_every_nth_per_event_id(self, stream, n):
        """Mixing payload and record entry points keeps the per-event-id
        modular arithmetic exact: k admitted of m seen == ceil(m / n)."""
        spec = FilterSpec(sample_every=n)
        compiled = CompiledFilterState(spec)
        seen: dict[int, int] = {}
        kept: dict[int, int] = {}
        for event_id, via_payload in stream:
            rec = EventRecord(
                event_id=event_id, timestamp=1,
                field_types=(FieldType.X_INT,), values=(7,),
            )
            seen[event_id] = seen.get(event_id, 0) + 1
            if via_payload:
                admitted = compiled.admit_payload(native.pack_record(rec))
            else:
                admitted = compiled.admit(rec)
            if admitted:
                kept[event_id] = kept.get(event_id, 0) + 1
        for event_id, count in seen.items():
            assert kept.get(event_id, 0) == -(-count // n)
        assert compiled.passed + compiled.dropped == len(stream)

    @settings(max_examples=100, deadline=None)
    @given(
        events=st.lists(_ids, max_size=60),
        n=st.integers(1, 5),
    )
    def test_compiled_sampling_matches_filter_state(self, events, n):
        spec = FilterSpec(sample_every=n)
        compiled = CompiledFilterState(spec)
        reference = FilterState(spec)
        for event_id in events:
            rec = EventRecord(
                event_id=event_id, timestamp=1,
                field_types=(FieldType.X_INT,), values=(7,),
            )
            assert compiled.admit_payload(native.pack_record(rec)) == (
                reference.admit(rec)
            )


# ----------------------------------------------------------------------
# epoch discipline at the EXS
# ----------------------------------------------------------------------
def make_exs() -> tuple[Sensor, ExternalSensor]:
    from repro.util.timebase import now_micros

    ring = ring_for_records(1_000)
    sensor = Sensor(ring, node_id=1)
    exs = ExternalSensor(1, 1, ring, CorrectedClock(now_micros), ExsConfig())
    return sensor, exs


class TestEpochDiscipline:
    def test_resend_of_installed_epoch_is_a_no_op(self):
        _, exs = make_exs()
        msg = protocol.SetFilter.from_spec(
            FilterSpec(sample_every=3), epoch=5
        )
        exs.on_set_filter(msg)
        installed = exs.filter
        assert installed is not None and exs.filter_epoch == 5
        # Sampling state advances...
        rec = EventRecord(
            event_id=1, timestamp=1,
            field_types=(FieldType.X_INT,), values=(1,),
        )
        assert installed.admit(rec) is True
        assert installed.admit(rec) is False
        # ...and a re-send (the reconnect path) must not reset it.
        exs.on_set_filter(msg)
        assert exs.filter is installed
        assert installed.admit(rec) is False  # counter continued: 3rd of 3

    def test_stale_epoch_is_ignored(self):
        _, exs = make_exs()
        exs.on_set_filter(
            protocol.SetFilter.from_spec(FilterSpec(sample_every=3), epoch=5)
        )
        installed = exs.filter
        exs.on_set_filter(
            protocol.SetFilter.from_spec(FilterSpec(sample_every=9), epoch=4)
        )
        assert exs.filter is installed
        assert exs.filter_epoch == 5

    def test_newer_epoch_replaces(self):
        _, exs = make_exs()
        exs.on_set_filter(
            protocol.SetFilter.from_spec(FilterSpec(sample_every=3), epoch=5)
        )
        exs.on_set_filter(
            protocol.SetFilter.from_spec(
                FilterSpec(blocked_events={2}), epoch=6
            )
        )
        assert exs.filter_epoch == 6
        assert exs.filter.spec == FilterSpec(blocked_events=frozenset({2}))

    def test_legacy_epoch_zero_installs_unconditionally(self):
        _, exs = make_exs()
        exs.on_set_filter(
            protocol.SetFilter.from_spec(FilterSpec(sample_every=3), epoch=5)
        )
        exs.on_set_filter(protocol.SetFilter.from_spec(FilterSpec(sample_every=7)))
        assert exs.filter.spec == FilterSpec(sample_every=7)
        # Epoch watermark survives, so the steering path stays monotone.
        assert exs.filter_epoch == 5

    def test_pass_through_spec_clears_the_filter(self):
        _, exs = make_exs()
        exs.on_set_filter(
            protocol.SetFilter.from_spec(FilterSpec(sample_every=3), epoch=1)
        )
        exs.on_set_filter(protocol.SetFilter.from_spec(FilterSpec(), epoch=2))
        assert exs.filter is None


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------
class TestSteeringWireFormat:
    @settings(max_examples=150, deadline=None)
    @given(
        spec=specs(),
        epoch=st.integers(0, 2**31 - 1),
        target=st.integers(0, 2**31 - 1),
    )
    def test_extended_roundtrip(self, spec, epoch, target):
        msg = protocol.SetFilter.from_spec(
            spec, epoch=epoch, target_exs_id=target
        )
        assert protocol.decode_message(protocol.encode_message(msg)) == msg

    def test_legacy_frame_stays_byte_identical(self):
        """A SetFilter with no extension state encodes exactly as before
        the steering extension existed: no trailing words at all."""
        legacy = protocol.SetFilter(
            allow_all_events=False, allowed_events=(1, 2), blocked_events=(3,),
            sample_every=4,
        )
        extended = protocol.SetFilter(
            allow_all_events=False, allowed_events=(1, 2), blocked_events=(3,),
            sample_every=4, filter_epoch=9, target_exs_id=2,
            field_tests=(FieldTest(0, "ge", 5),),
        )
        legacy_bytes = protocol.encode_message(legacy)
        assert protocol.encode_message(extended.downgraded()) == legacy_bytes
        assert len(protocol.encode_message(extended)) > len(legacy_bytes)
        decoded = protocol.decode_message(legacy_bytes)
        assert decoded.filter_epoch == 0
        assert decoded.target_exs_id == 0
        assert decoded.field_tests == ()

    def test_downgraded_drops_field_tests_conservatively(self):
        spec = FilterSpec(
            sample_every=2, field_tests=(FieldTest(0, "gt", 10),)
        )
        msg = protocol.SetFilter.from_spec(spec, epoch=3, target_exs_id=1)
        down = msg.downgraded()
        # Identity/sampling survive; the inexpressible predicate is
        # dropped (records it would reject still ship — never lossy).
        assert down.sample_every == 2
        assert down.field_tests == ()
        assert down.filter_epoch == 0

    def test_field_test_count_is_capped(self):
        tests = tuple(
            FieldTest(i % 8, "eq", i) for i in range(protocol.MAX_FIELD_TESTS + 1)
        )
        msg = protocol.SetFilter(field_tests=tests)
        encoded = protocol.encode_message(msg)
        try:
            protocol.decode_message(encoded)
        except protocol.ProtocolError:
            pass  # either refused at decode...
        else:  # ...or refused at encode; both bound the allocation
            raise AssertionError("oversized field-test array accepted")


# ----------------------------------------------------------------------
# end-to-end: pushdown through the EXS drain (delta-ts batches included)
# ----------------------------------------------------------------------
class TestExsPushdownEndToEnd:
    def _drain(self, exs: ExternalSensor) -> list[EventRecord]:
        out: list[EventRecord] = []
        for encoded in exs.flush():
            msg = protocol.decode_message(encoded)
            out.extend(msg.records)
        return out

    def test_field_test_filters_at_source(self):
        sensor, exs = make_exs()
        exs.on_set_filter(
            protocol.SetFilter.from_spec(
                FilterSpec(field_tests=(FieldTest(0, "ge", 50),)), epoch=1
            )
        )
        for k in range(100):
            sensor.notice_ints(1, k)
        records = self._drain(exs)
        assert [r.values[0] for r in records] == list(range(50, 100))
        assert exs.stats.records_filtered == 50

    def test_ts_field_test_through_delta_ts_batches(self):
        """A predicate on an X_TS field sees the sensor-written value,
        and survivors ride delta-ts batches losslessly."""
        ring = ring_for_records(1_000)
        sensor = Sensor(ring, node_id=1)
        from repro.util.timebase import now_micros

        exs = ExternalSensor(
            1, 1, ring, CorrectedClock(now_micros),
            ExsConfig(delta_ts=True),
        )
        exs.on_set_filter(
            protocol.SetFilter.from_spec(
                FilterSpec(field_tests=(FieldTest(0, "lt", 1_000),)), epoch=1
            )
        )
        stamps = [10, 2_000, 999, 1_000, 0]
        for ts in stamps:
            sensor.notice(7, (FieldType.X_TS, ts))
        records = self._drain(exs)
        assert [r.values[0] for r in records] == [10, 999, 0]
        assert all(r.field_types == (FieldType.X_TS,) for r in records)
