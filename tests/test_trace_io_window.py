"""Tests for native trace files and the recent-window consumer."""

import pytest
from tests.conftest import make_mixed_record, make_record

from repro.analysis.trace import Trace
from repro.core.consumers import Consumer, RecentWindowConsumer


class TestNativeTraceFile:
    def test_roundtrip(self, tmp_path):
        records = [make_record(event_id=i, timestamp=i * 10) for i in range(100)]
        records.append(make_mixed_record(timestamp=10_000))
        trace = Trace(records)
        path = tmp_path / "trace.bin"
        written = trace.save_native(path)
        assert written == path.stat().st_size > 0
        assert Trace.from_native_file(path) == trace

    def test_smaller_than_picl_for_binary_payloads(self, tmp_path):
        # Binary payloads hex-escape in PICL (2 chars/byte); native stores
        # them raw, so it wins clearly there.
        from repro.core.records import EventRecord, FieldType

        records = [
            EventRecord(
                event_id=i,
                timestamp=1_700_000_000_000_000 + i,
                field_types=(FieldType.X_OPAQUE,),
                values=(bytes(range(100)),),
            )
            for i in range(200)
        ]
        trace = Trace(records)
        bin_path = tmp_path / "t.bin"
        picl_path = tmp_path / "t.picl"
        trace.save_native(bin_path)
        with open(picl_path, "w") as stream:
            trace.to_picl(stream)
        assert bin_path.stat().st_size < picl_path.stat().st_size

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.bin"
        assert Trace([]).save_native(path) == 0
        assert len(Trace.from_native_file(path)) == 0


class TestRecentWindowConsumer:
    def test_keeps_only_window(self):
        window = RecentWindowConsumer(window_us=1_000)
        for ts in (0, 500, 900, 1_500, 2_000):
            window.deliver(make_record(timestamp=ts))
        kept = [r.timestamp for r in window.snapshot()]
        # Horizon at 2_000 - 1_000 = 1_000: only 1_500 and 2_000 remain.
        assert kept == [1_500, 2_000]
        assert window.evicted == 3
        assert window.delivered == 5

    def test_record_cap(self):
        window = RecentWindowConsumer(window_us=10**9, max_records=3)
        for ts in range(5):
            window.deliver(make_record(timestamp=ts))
        assert len(window) == 3
        assert [r.timestamp for r in window.snapshot()] == [2, 3, 4]
        assert window.evicted == 2

    def test_satisfies_consumer_protocol(self):
        assert isinstance(RecentWindowConsumer(), Consumer)

    def test_close_clears(self):
        window = RecentWindowConsumer()
        window.deliver(make_record())
        window.close()
        assert len(window) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RecentWindowConsumer(window_us=0)
        with pytest.raises(ValueError):
            RecentWindowConsumer(max_records=0)

    def test_works_as_ism_output(self):
        from repro.core.ism import InstrumentationManager, IsmConfig
        from repro.core.sorting import SorterConfig
        from repro.wire import protocol

        window = RecentWindowConsumer(window_us=100)
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)), [window]
        )
        manager.register_source(1, 1)
        records = tuple(make_record(timestamp=k * 50) for k in range(10))
        manager.on_batch(protocol.Batch(exs_id=1, seq=0, records=records), now=0)
        manager.tick(now=10**9)
        assert len(window) <= 3  # only the newest 100 µs survive
