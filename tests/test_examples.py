"""Every example must run clean — examples are executable documentation.

Each example is executed as a real subprocess (its own interpreter, like
a user would run it) and must exit 0.  ``clock_sync_study.py`` is skipped
here only for suite runtime (it simulates 4 × 10 minutes); it is executed
by the E6 benchmarks' code paths regardless.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "causal_tracing.py",
    "sorting_tuning.py",
    "transparent_monitoring.py",
    "realtime_visualizer.py",
    "stencil_monitoring.py",
    "adaptive_monitoring.py",
    "distributed_pipeline.py",
    "cli_tools_demo.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs_clean(name):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example {name} missing"
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nSTDOUT:\n{result.stdout[-2000:]}\n"
        f"STDERR:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} produced no output"


def test_all_examples_are_listed():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = set(FAST_EXAMPLES) | {"clock_sync_study.py"}
    assert on_disk == covered, (
        "examples drifted out of sync with the test list: "
        f"unlisted={on_disk - covered}, missing={covered - on_disk}"
    )
