"""Unit tests for the external sensor (drain/correct/batch/encode)."""

import pytest
from tests.test_clocks import FakeTime

from repro.clocksync.clocks import CorrectedClock, DriftingClock
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.records import FieldType
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.wire import protocol


def make_lis(
    config: ExsConfig = ExsConfig(), offset_us: int = 0
) -> tuple[FakeTime, Sensor, ExternalSensor]:
    t = FakeTime(1_000_000)
    hw = DriftingClock(t, offset_us=offset_us)
    ring = ring_for_records(10_000)
    sensor = Sensor(ring, node_id=4, clock=hw.read)
    exs = ExternalSensor(
        exs_id=4, node_id=4, ring=ring, clock=CorrectedClock(hw), config=config
    )
    return t, sensor, exs


def decode_batches(payloads: list[bytes]) -> list[protocol.Batch]:
    return [protocol.decode_message(p) for p in payloads]


class TestDataPath:
    def test_hello_identifies_the_exs(self):
        _, _, exs = make_lis()
        hello = exs.hello()
        assert hello == protocol.Hello(exs_id=4, node_id=4)

    def test_poll_empty_ring_ships_nothing(self):
        _, _, exs = make_lis()
        assert exs.poll() == []

    def test_full_batch_shipped_at_max_records(self):
        config = ExsConfig(batch_max_records=10, flush_timeout_us=10**9)
        _, sensor, exs = make_lis(config)
        for i in range(25):
            sensor.notice_ints(1, i)
        batches = decode_batches(exs.poll())
        assert [len(b.records) for b in batches] == [10, 10]
        assert exs.stats.records_shipped == 20
        # Five records pend for the next batch.
        assert exs.stats.records_drained == 25

    def test_byte_cap_closes_batch(self):
        config = ExsConfig(
            batch_max_records=10_000, batch_max_bytes=100, flush_timeout_us=10**9
        )
        _, sensor, exs = make_lis(config)
        for i in range(20):
            sensor.notice_ints(1, i, 2, 3, 4, 5, 6)  # 40 wire bytes each
        batches = decode_batches(exs.poll())
        assert batches
        for batch in batches:
            size = sum(protocol.record_wire_size(r) for r in batch.records)
            assert size >= 100  # closed at/after the cap

    def test_latency_flush_ships_partial_batch(self):
        config = ExsConfig(batch_max_records=1000, flush_timeout_us=40_000)
        t, sensor, exs = make_lis(config)
        sensor.notice_ints(1, 42)
        assert exs.poll() == []  # batch under-full, timeout not reached
        t.value += 40_000
        batches = decode_batches(exs.poll())
        assert len(batches) == 1
        assert len(batches[0].records) == 1
        assert exs.stats.timeout_flushes == 1

    def test_sequence_numbers_increment(self):
        config = ExsConfig(batch_max_records=1)
        _, sensor, exs = make_lis(config)
        for i in range(3):
            sensor.notice_ints(1, i)
        batches = decode_batches(exs.poll())
        assert [b.seq for b in batches] == [0, 1, 2]

    def test_flush_ships_everything(self):
        config = ExsConfig(batch_max_records=1000, flush_timeout_us=10**9)
        _, sensor, exs = make_lis(config)
        for i in range(7):
            sensor.notice_ints(1, i)
        batches = decode_batches(exs.flush())
        assert sum(len(b.records) for b in batches) == 7

    def test_drain_limit_bounds_poll(self):
        config = ExsConfig(drain_limit=5, batch_max_records=100, flush_timeout_us=0)
        _, sensor, exs = make_lis(config)
        for i in range(12):
            sensor.notice_ints(1, i)
        exs.poll()
        assert exs.stats.records_drained == 5


class TestTimestampCorrection:
    def test_correction_applied_to_shipped_records(self):
        config = ExsConfig(batch_max_records=1)
        _, sensor, exs = make_lis(config)
        exs.clock.advance(500)
        sensor.notice_ints(1, 1)
        batch = decode_batches(exs.poll())[0]
        assert batch.records[0].timestamp == 1_000_000 + 500

    def test_correction_read_at_drain_time(self):
        # Records written before a correction still get the newest value:
        # the paper's correction is applied "before sending", not at write.
        config = ExsConfig(batch_max_records=1)
        _, sensor, exs = make_lis(config)
        sensor.notice_ints(1, 1)
        exs.clock.advance(250)
        batch = decode_batches(exs.poll())[0]
        assert batch.records[0].timestamp == 1_000_250

    def test_embedded_ts_fields_shifted_too(self):
        config = ExsConfig(batch_max_records=1)
        t, sensor, exs = make_lis(config)
        exs.clock.advance(100)
        sensor.notice(1, (FieldType.X_TS, t.value), (FieldType.X_INT, 5))
        batch = decode_batches(exs.poll())[0]
        record = batch.records[0]
        assert record.values[0] == record.timestamp

    def test_node_stamped(self):
        config = ExsConfig(batch_max_records=1)
        _, sensor, exs = make_lis(config)
        sensor.notice_ints(1, 1)
        encoded = exs.poll()[0]
        # Encoded batches do not carry node ids; the EXS still stamps the
        # in-memory record so local consumers see it.
        assert exs.stats.records_shipped == 1


class TestSyncEndpoint:
    def test_time_request_answered_from_corrected_clock(self):
        _, _, exs = make_lis(offset_us=-300)
        exs.clock.advance(100)
        reply = exs.on_time_request(protocol.TimeRequest(probe_id=9))
        assert reply.probe_id == 9
        assert reply.slave_time == 1_000_000 - 300 + 100

    def test_adjust_advances_clock(self):
        _, _, exs = make_lis()
        exs.on_adjust(protocol.Adjust(correction=750))
        assert exs.clock.correction_us == 750

    def test_adjust_rejects_negative(self):
        _, _, exs = make_lis()
        with pytest.raises(ValueError):
            exs.on_adjust(protocol.Adjust(correction=-1))


class TestWireKnobs:
    def test_delta_ts_batches_decode(self):
        config = ExsConfig(batch_max_records=5, delta_ts=True)
        t, sensor, exs = make_lis(config)
        for i in range(5):
            sensor.notice_ints(1, i)
            t.value += 100
        batch = decode_batches(exs.poll())[0]
        assert [r.values[0] for r in batch.records] == [0, 1, 2, 3, 4]
        assert batch.records[1].timestamp - batch.records[0].timestamp == 100

    def test_uncompressed_meta_costs_more_bytes(self):
        big_config = ExsConfig(batch_max_records=100, compress_meta=False)
        small_config = ExsConfig(batch_max_records=100, compress_meta=True)
        results = []
        for config in (big_config, small_config):
            _, sensor, exs = make_lis(config)
            for i in range(50):
                sensor.notice_ints(1, i, 2, 3, 4, 5, 6)
            payloads = exs.flush()
            results.append(sum(len(p) for p in payloads))
        assert results[0] > results[1]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExsConfig(batch_max_records=0)
        with pytest.raises(ValueError):
            ExsConfig(batch_max_bytes=10)
        with pytest.raises(ValueError):
            ExsConfig(flush_timeout_us=-1)
        with pytest.raises(ValueError):
            ExsConfig(drain_limit=0)
