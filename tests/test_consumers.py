"""Unit tests for the ISM output consumers."""

import io

import pytest
from tests.conftest import make_record

from repro.core import native
from repro.core.consumers import (
    CallbackConsumer,
    CollectingConsumer,
    Consumer,
    MemoryBufferConsumer,
    PiclFileConsumer,
    VisualObjectConsumer,
)
from repro.picl.format import PiclReader, TimestampMode


class TestMemoryBufferConsumer:
    def test_records_appended_in_native_layout(self):
        consumer = MemoryBufferConsumer()
        records = [make_record(event_id=i) for i in range(3)]
        for record in records:
            consumer.deliver(record)
        assert consumer.records() == records
        assert native.unpack_all(consumer.snapshot()) == records
        assert consumer.delivered == 3

    def test_clear(self):
        consumer = MemoryBufferConsumer()
        consumer.deliver(make_record())
        consumer.clear()
        assert consumer.records() == []

    def test_external_buffer(self):
        buf = bytearray()
        consumer = MemoryBufferConsumer(buf)
        consumer.deliver(make_record())
        assert len(buf) > 0

    def test_satisfies_protocol(self):
        assert isinstance(MemoryBufferConsumer(), Consumer)


class TestPiclFileConsumer:
    def test_writes_parseable_lines(self):
        stream = io.StringIO()
        consumer = PiclFileConsumer(stream)
        consumer.deliver(make_record())
        consumer.deliver(make_record(event_id=2))
        assert consumer.delivered == 2
        stream.seek(0)
        assert len(PiclReader(stream).read_all()) == 2

    def test_relative_mode(self):
        stream = io.StringIO()
        consumer = PiclFileConsumer(
            stream, TimestampMode.RELATIVE_SECONDS, epoch_us=500_000
        )
        consumer.deliver(make_record(timestamp=1_500_000))
        assert "1.000000" in stream.getvalue()

    def test_close_idempotent_and_final(self):
        stream = io.StringIO()
        consumer = PiclFileConsumer(stream)
        consumer.close()
        consumer.close()
        with pytest.raises(RuntimeError):
            consumer.deliver(make_record())

    def test_close_stream_option(self):
        stream = io.StringIO()
        PiclFileConsumer(stream, close_stream=True).close()
        assert stream.closed

    def test_fsync_on_flush_accepts_fdless_streams(self):
        stream = io.StringIO()
        consumer = PiclFileConsumer(stream, fsync_on_flush=True)
        consumer.deliver(make_record())
        consumer.deliver_many([make_record(event_id=2)])
        stream.seek(0)
        assert len(PiclReader(stream).read_all()) == 2


class TestDurablePiclFile:
    def test_open_durable_atomic_rename(self, tmp_path):
        path = tmp_path / "trace.picl"
        consumer = PiclFileConsumer.open_durable(path)
        consumer.deliver_many([make_record(event_id=i) for i in range(3)])
        # Until close, only the .part file exists — a crash here leaves
        # no half-written final trace.
        assert not path.exists()
        assert (path.parent / "trace.picl.part").exists()
        consumer.close()
        assert path.exists()
        assert not (path.parent / "trace.picl.part").exists()
        with open(path, encoding="ascii") as fh:
            assert len(PiclReader(fh).read_all()) == 3

    def test_durable_part_file_parseable_after_simulated_kill(self, tmp_path):
        """fsync-per-slice means the .part file of a killed ISM is
        complete up to the last delivered slice; a torn final line (the
        slice mid-write at kill time) is tolerated by the reader."""
        path = tmp_path / "trace.picl"
        consumer = PiclFileConsumer.open_durable(path)
        consumer.deliver_many([make_record(event_id=i) for i in range(5)])
        # Simulate the kill: no close(), append a torn line like an
        # interrupted write would leave.
        part = path.parent / "trace.picl.part"
        with open(part, "a", encoding="ascii") as fh:
            fh.write("-3 9 123")  # cut off mid-record
        with open(part, encoding="ascii") as fh:
            reader = PiclReader(fh, tolerate_torn_tail=True)
            assert len(reader.read_all()) == 5
            assert reader.torn_lines == 1

    def test_torn_line_mid_file_still_raises(self, tmp_path):
        from repro.picl.format import PiclParseError, dumps

        path = tmp_path / "trace.picl"
        good = dumps([make_record(event_id=1)])
        path.write_text(good + "-3 broken\n" + good, encoding="ascii")
        with open(path, encoding="ascii") as fh:
            with pytest.raises(PiclParseError):
                PiclReader(fh, tolerate_torn_tail=True).read_all()


class _ExplodingSink:
    """Fails on delivery AND on close — the worst-behaved inner sink."""

    def __init__(self, close_raises=False):
        self.close_raises = close_raises

    def deliver(self, record):
        raise RuntimeError("sink write failed")

    def close(self):
        if self.close_raises:
            raise OSError("sink close failed")


class TestQueuedConsumerCloseErrors:
    def test_close_surfaces_pending_sink_error(self):
        from repro.core.consumers import QueuedConsumer

        queued = QueuedConsumer(_ExplodingSink())
        queued.deliver(make_record())
        with pytest.raises(RuntimeError, match="sink write failed"):
            queued.close()

    def test_pending_error_survives_failing_inner_close(self):
        """The final-slice failure must not be masked by a close() that
        also raises — the write error is the one the operator needs."""
        from repro.core.consumers import QueuedConsumer

        queued = QueuedConsumer(_ExplodingSink(close_raises=True))
        queued.deliver(make_record())
        with pytest.raises(RuntimeError, match="sink write failed"):
            queued.close()


class GoodVisual:
    def __init__(self):
        self.lines: list[str] = []

    def process_picl(self, line: str) -> None:
        self.lines.append(line)


class FlakyVisual:
    def process_picl(self, line: str) -> None:
        raise RuntimeError("remote object died")


class TestVisualObjectConsumer:
    def test_fans_out_picl_strings(self):
        a, b = GoodVisual(), GoodVisual()
        consumer = VisualObjectConsumer([a, b])
        consumer.deliver(make_record())
        assert len(a.lines) == 1
        assert a.lines == b.lines
        assert a.lines[0].startswith("-3 ")

    def test_attach(self):
        consumer = VisualObjectConsumer()
        visual = GoodVisual()
        consumer.attach(visual)
        consumer.deliver(make_record())
        assert visual.lines

    def test_failing_object_detached_after_max_errors(self):
        good, bad = GoodVisual(), FlakyVisual()
        consumer = VisualObjectConsumer([good, bad], max_errors=3)
        for _ in range(5):
            consumer.deliver(make_record())
        assert consumer.detached == 1
        assert consumer.attached_count == 1
        assert len(good.lines) == 5  # unaffected by its dead peer

    def test_error_count_resets_on_success(self):
        class Intermittent:
            def __init__(self):
                self.calls = 0

            def process_picl(self, line: str) -> None:
                self.calls += 1
                if self.calls % 2 == 0:
                    raise RuntimeError("sometimes fails")

        consumer = VisualObjectConsumer([Intermittent()], max_errors=3)
        for _ in range(10):
            consumer.deliver(make_record())
        assert consumer.detached == 0  # never 3 consecutive failures

    def test_close_clears_objects(self):
        consumer = VisualObjectConsumer([GoodVisual()])
        consumer.close()
        assert consumer.attached_count == 0


class TestCallbackConsumers:
    def test_callback_invoked(self):
        seen = []
        consumer = CallbackConsumer(seen.append)
        consumer.deliver(make_record())
        assert len(seen) == 1
        assert consumer.delivered == 1

    def test_collecting_consumer(self):
        consumer = CollectingConsumer()
        records = [make_record(event_id=i) for i in range(4)]
        for record in records:
            consumer.deliver(record)
        assert consumer.records == records
