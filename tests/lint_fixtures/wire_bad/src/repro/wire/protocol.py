"""Fixture: a wire module violating every BRK1xx contract."""
import enum
from dataclasses import dataclass


class MsgType(enum.IntEnum):
    PING = 1
    PONG = 2
    LEGACY = 3
    DARK = 4
    ALIAS = 4  # duplicate type id -> BRK102


@dataclass(frozen=True, slots=True)
class Ping:
    a: int
    b: int


@dataclass(frozen=True, slots=True)
class Pong:
    x: int
    extra: int = 0


@dataclass(frozen=True, slots=True)
class Legacy:
    n: int


@dataclass(frozen=True, slots=True)
class Dark:
    val: int
    unused: int = 0  # encoded nowhere, decoded nowhere -> BRK104


Message = Ping | Pong | Legacy | Dark


def _encode_message(enc, msg):
    if isinstance(msg, Ping):
        enc.pack_uint(MsgType.PING)
        enc.pack_uint(msg.b)  # decode reads (a, b) -> BRK101 order mismatch
        enc.pack_uint(msg.a)
    elif isinstance(msg, Pong):
        enc.pack_uint(MsgType.PONG)
        if msg.extra:  # conditional word that is NOT trailing -> BRK103
            enc.pack_uint(msg.extra)
        enc.pack_uint(msg.x)
    elif isinstance(msg, Dark):
        enc.pack_uint(MsgType.DARK)
        enc.pack_uint(msg.val)
    # Legacy has no encode branch -> BRK102


def decode_message(dec):
    kind = dec.unpack_uint()
    if kind == MsgType.PING:
        return Ping(a=dec.unpack_uint(), b=dec.unpack_uint())
    if kind == MsgType.PONG:
        return Pong(extra=dec.unpack_uint(), x=dec.unpack_uint())
    if kind == MsgType.DARK:
        return Dark(val=dec.unpack_uint())
    raise ValueError(kind)
