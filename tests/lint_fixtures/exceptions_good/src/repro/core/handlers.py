"""Fixture: handlers that leave evidence, and narrow excepts (negatives)."""
import logging

log = logging.getLogger(__name__)


class Stage:
    def __init__(self):
        self.errors = 0
        self.strikes = {}
        self.last_error = None

    def counted(self, job):
        try:
            job()
        except Exception:
            self.errors += 1  # counting write is evidence

    def striked(self, job, key):
        try:
            job()
        except Exception:
            self.strikes[key] = self.strikes.get(key, 0) + 1

    def logged(self, job):
        try:
            job()
        except Exception:
            log.warning("job failed")

    def stored(self, job):
        try:
            job()
        except Exception as exc:
            self.last_error = exc  # the error object went somewhere

    def translated(self, job):
        try:
            job()
        except Exception as exc:
            raise RuntimeError("job failed") from exc

    def narrow(self, sock):
        try:
            sock.close()
        except OSError:
            pass  # narrow handler: out of scope by design
