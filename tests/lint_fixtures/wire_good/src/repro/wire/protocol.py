"""Fixture: a minimal wire module satisfying every BRK1xx contract."""
import enum
from dataclasses import dataclass


class MsgType(enum.IntEnum):
    PING = 1
    HELLO = 2


@dataclass(frozen=True, slots=True)
class Ping:
    a: int
    b: int


@dataclass(frozen=True, slots=True)
class Hello:
    node_id: int
    wants_ack: bool = False


Message = Ping | Hello


def _encode_message(enc, msg):
    if isinstance(msg, Ping):
        enc.pack_uint(MsgType.PING)
        enc.pack_uint(msg.a)
        enc.pack_uint(msg.b)
    elif isinstance(msg, Hello):
        enc.pack_uint(MsgType.HELLO)
        enc.pack_uint(msg.node_id)
        if msg.wants_ack:  # trailing word only: legal extension point
            enc.pack_uint(1)


def decode_message(dec):
    kind = dec.unpack_uint()
    if kind == MsgType.PING:
        return Ping(a=dec.unpack_uint(), b=dec.unpack_uint())
    if kind == MsgType.HELLO:
        return Hello(
            node_id=dec.unpack_uint(),
            wants_ack=dec.remaining >= 4 and bool(dec.unpack_uint()),
        )
    raise ValueError(kind)
