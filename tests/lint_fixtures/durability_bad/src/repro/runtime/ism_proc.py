"""BRK701-704 true positives: every durability-ordering mistake once."""

from repro.core.ackgate import AckGate
from repro.wire import protocol


class Dispatcher:
    def __init__(self, durable_sink, merger):
        self.durable_sink = durable_sink
        self.merger = merger
        self._gate = AckGate()
        self.errors = 0

    def release_unsynced(self):
        # BRK701: releases acks on the durable path with no sync first.
        if self.durable_sink is not None:
            pending = self._gate.take_dirty()
            return pending
        return []

    def flush(self):
        # BRK704: sync failure counted, then falls through to the release.
        try:
            self.durable_sink.sync()
        except OSError:
            self.errors += 1
        self._gate.commit(7)

    def on_hello(self, exs_id):
        # BRK702: resume reply quotes the acked watermark.
        last = self._gate.acked(exs_id)
        return protocol.HelloReply(exs_id, last)

    def collect(self, handle):
        # BRK703: output-ring drain straight into delivery.
        items = handle.shared_out.ring.drain_bytes()
        self.merger.push(items)
