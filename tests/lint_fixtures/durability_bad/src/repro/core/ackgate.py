"""Stub AckGate mirroring the real layout so the project seeds apply."""


class AckGate:
    def commit(self, seq):
        return seq

    def take_dirty(self):
        return []

    def acked(self, exs_id):
        return 0

    def committed(self, exs_id):
        return 0
