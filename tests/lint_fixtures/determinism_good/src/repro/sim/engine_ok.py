"""Fixture: sanctioned idioms the determinism checker must stay quiet on."""
import random
import time

from repro.util.timebase import now_micros


class World:
    def __init__(self, seed: int, rng: random.Random | None = None):
        # Seeded construction is the sanctioned way to get randomness.
        self.rng = rng if rng is not None else random.Random(seed)

    def draw(self) -> float:
        return self.rng.random()

    def self_time_ns(self) -> int:
        # perf_counter is duration measurement, never a timestamp source.
        return time.perf_counter_ns()


def sanctioned_clock() -> int:
    return now_micros()
