"""Fixture: outside the zone, real clocks are legitimate (true negative)."""
import random
import time


def real_now() -> float:
    return time.time()  # runtime/ is not in the deterministic zone


def real_jitter() -> float:
    return random.uniform(0.0, 0.1)
