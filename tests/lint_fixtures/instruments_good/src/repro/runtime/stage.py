"""Fixture: instruments with registration evidence (both wiring idioms)."""
from repro.obs.metrics import Counter


class Stage:
    def __init__(self):
        self.hits = Counter("stage.hits")
        self.depth = 0


def wire_stage(registry, stage, prefix="stage"):
    # Idiom 1: adopt an externally created counter.
    registry.adopt_counter(stage.hits)
    # Idiom 2: a pull gauge_fn closure reading an attribute.
    registry.gauge_fn(f"{prefix}.depth", lambda: float(stage.depth))
    # Registry factories are registered by construction.
    registry.counter(f"{prefix}.polls")
    registry.histogram("stage.latency_us")
