"""Fixture: dark instruments and name collisions."""
from repro.obs.metrics import Counter, Gauge


class Stage:
    def __init__(self, registry):
        # BRK501: no adopt_counter / gauge_fn reads 'orphan_hits' anywhere.
        self.orphan_hits = Counter("stage.orphan_hits")
        # BRK501: a local can never be wired to a registry later.
        scratch = Counter("stage.scratch")
        scratch.inc()
        # BRK502: constructed without any name argument.
        self.anon = Gauge()
        # BRK502: same name claimed as a counter and as a gauge.
        registry.counter("stage.mixed")
        registry.gauge("stage.mixed")
