"""Fixture: pump-loop discipline violations in a scoped file."""
import select
import time


class BadPump:
    def pump(self, socks, timeout):
        readable, _, _ = select.select(socks, [], [], timeout)
        time.sleep(0.01)  # BRK301: sleeping inside a select-driven pump
        for sock in readable:
            sock.recv(4096)

    def drain_one(self, sock):
        return sock.recv(4096)  # BRK302: no select guard in this function

    def wait_for_work(self, queue):
        return queue.get()  # BRK303: unbounded blocking get
