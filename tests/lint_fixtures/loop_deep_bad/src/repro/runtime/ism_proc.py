"""BRK601/602/603 true positives: pump reaches blocking calls via chains."""

import select
import time


class Dispatcher:
    def __init__(self, conn, q):
        self.conn = conn
        self.q = q
        self.stop = False

    def run(self):
        while not self.stop:
            select.select([self.conn], [], [], 0.01)
            self._flush()          # -> _push_retry -> time.sleep  (BRK601)
            self._read_all()       # -> bare .recv()               (BRK602)
            self._drain_queue()    # -> unbounded .get()           (BRK603)

    def _flush(self):
        self._push_retry()

    def _push_retry(self):
        time.sleep(0.01)

    def _read_all(self):
        return self.conn.recv(4096)

    def _drain_queue(self):
        return self.q.get()
