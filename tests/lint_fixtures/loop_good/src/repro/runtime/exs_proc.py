"""Fixture: disciplined pump idioms the loop checker must accept."""
import queue as queue_mod
import select
import time


class GoodPump:
    def pump(self, socks, timeout):
        # The select guard and the read live in the same function.
        readable, _, _ = select.select(socks, [], [], timeout)
        for sock in readable:
            sock.recv(4096)

    def accept_ready(self, listener):
        # An explicit timeout= bounds the wait by construction (the
        # listener wrapper runs its own select under that bound).
        return listener.accept(timeout=0.0)

    def poll_queue(self, work):
        try:
            return work.get(timeout=0.05)
        except queue_mod.Empty:
            return None

    def try_queue(self, work):
        try:
            return work.get(block=False)
        except queue_mod.Empty:
            return None

    def backoff(self):
        # No select in this function: sleeping here is reconnect backoff,
        # not pump latency.
        time.sleep(0.2)
