"""Fixture: pragma grammar — suppressions that work, and ones that are findings."""


def deliberate_swallow(job):
    try:
        job()
    except Exception:  # brisk-lint: disable=BRK401 (fixture: sink errors are intentional here)
        pass


def next_line_form(job):
    try:
        job()
    # brisk-lint: disable-next=BRK401 (fixture: own-line pragma governs the next code line)
    except Exception:
        pass


def reasonless(job):
    try:
        job()
    except Exception:  # brisk-lint: disable=BRK401
        pass  # the missing (reason) is itself a BRK002 finding, but still suppresses


def clean_function():  # brisk-lint: disable=BRK401 (fixture: nothing here violates, so BRK003)
    return 1


def broken_pragma(job):  # brisk-lint: disable BRK401 (missing '=' makes this BRK001)
    return job()
