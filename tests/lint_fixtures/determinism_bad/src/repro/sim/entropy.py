"""Fixture: ambient time and entropy inside the deterministic zone."""
import os
import random
import time
from time import monotonic as mono


def stamp():
    return time.time()  # BRK201 wall clock


def stamp_alias():
    return mono()  # BRK201 via import alias resolution


def jitter():
    return random.uniform(0.0, 1.0)  # BRK202 shared ambient RNG


def fresh_rng():
    return random.Random()  # BRK203 unseeded -> OS entropy


def token():
    return os.urandom(8)  # BRK201 ambient entropy
