"""Cap-gating true negatives: every sanctioned guard shape once."""

from repro.wire import protocol


class Relay:
    def __init__(self, caps):
        self._caps = caps

    def compress(self, payload):
        # Early-bail guard (the _maybe_compress shape).
        if not self._caps & protocol.CAP_COMPRESS:
            return payload
        return protocol.compress_frame(payload)

    def bundle(self, pairs):
        # Ancestor-if guard.
        if self._caps & protocol.CAP_ACK_BUNDLE:
            return protocol.AckBundle(pairs)
        return None

    def steer(self, conn, spec: "protocol.SetFilter"):
        # Consults the cap and downgrades for legacy peers.
        if self._caps & protocol.CAP_STEERING:
            conn.send(spec)
        else:
            conn.send(spec.downgraded())

    def emit(self, records, first, last):
        # Value-ternary gate on a cap-tainted variable (the shipped fix).
        ok = bool(self._caps & protocol.CAP_SEQ_RANGE)
        return protocol.encode_batch_records(
            1, last, records, first_seq=first if ok and first != last else None
        )
