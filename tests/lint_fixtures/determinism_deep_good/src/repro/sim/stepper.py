"""BRK204 true negative: the timebase barrier is the sanctioned escape."""

from repro.util.timebase import now_micros


def step(state):
    return state + now_micros()
