"""Sanctioned clock interface: reads the clock, masked toward callers."""

import time


def now_micros():
    return int(time.time() * 1_000_000)
