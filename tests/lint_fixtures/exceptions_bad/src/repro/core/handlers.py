"""Fixture: broad excepts that silently discard the error."""


def swallow(job):
    try:
        job()
    except Exception:  # BRK401: no log, no count, no re-raise
        pass


def swallow_tuple(job):
    try:
        return job()
    except (ValueError, Exception):  # BRK401: broad via tuple member
        return None


def catch_everything(job):
    try:
        job()
    except:  # BRK402: bare except also catches KeyboardInterrupt
        pass
