"""Deep-loop true negatives: bounded helpers, deferred threads, post-loop
drains — none of these may fire BRK6xx."""

import queue
import select
import threading
import time


class Dispatcher:
    def __init__(self, conn, q):
        self.conn = conn
        self.q = q
        self.stop = False
        self.thread = None

    def start(self):
        # Callback edge: the worker's blocking loop runs on its own
        # thread and must NOT propagate BLOCKS_QUEUE to the spawner.
        self.thread = threading.Thread(target=self._worker_loop)
        self.thread.start()

    def _worker_loop(self):
        while not self.stop:
            self.q.get()

    def run(self):
        self.start()
        while not self.stop:
            self._read_ready()
            self._drain_bounded()
        self._final_drain()

    def _read_ready(self):
        # select-guarded read in the same function: not blocking.
        ready, _, _ = select.select([self.conn], [], [], 0.01)
        if ready:
            return self.conn.recv(4096)
        return b""

    def _drain_bounded(self):
        try:
            return self.q.get(timeout=0.01)
        except queue.Empty:
            return None

    def _final_drain(self):
        # Post-loop shutdown wait: legal, the steady-state cycle is over.
        time.sleep(0.05)
