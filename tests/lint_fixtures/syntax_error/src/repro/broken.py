"""Fixture: a file that does not parse (BRK000)."""


def incomplete(:
    pass
