"""Out-of-zone helper that reads the wall clock (legal where it is)."""

import time


def host_now():
    return time.time()
