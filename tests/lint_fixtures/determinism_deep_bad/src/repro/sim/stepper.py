"""BRK204 true positive: zone code reaching a clock through a helper."""

from repro.util.hosttime import host_now


def step(state):
    return state + host_now()
