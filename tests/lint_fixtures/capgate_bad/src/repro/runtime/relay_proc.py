"""BRK801-804 true positives: extensions sent without their cap check."""

from repro.wire import protocol


class Relay:
    def __init__(self, caps):
        self._caps = caps

    def compress(self, payload):
        # BRK801: compressed envelope toward a possibly-legacy peer.
        return protocol.compress_frame(payload)

    def bundle(self, pairs):
        # BRK802: bundled acks with no negotiation check.
        return protocol.AckBundle(pairs)

    def steer(self, conn, spec):
        # BRK803: full SetFilter spec sent without consulting CAP_STEERING.
        conn.send(spec.desired_filter)

    def emit(self, records, first, last):
        # BRK804: the original relay bug shape — the cap is *computed*
        # and even guards an unrelated fast path, but the encode sends
        # first_seq unconditionally.
        ok = bool(self._caps & protocol.CAP_SEQ_RANGE)
        if first == last or ok:
            return b""
        return protocol.encode_batch_records(1, last, records, first_seq=first)
