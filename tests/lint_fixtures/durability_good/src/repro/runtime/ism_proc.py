"""Durability true negatives: the sanctioned orderings must stay quiet."""

from repro.core.ackgate import AckGate
from repro.wire import protocol


class Dispatcher:
    def __init__(self, durable_sink, merger):
        self.durable_sink = durable_sink
        self.merger = merger
        self._gate = AckGate()
        self.staged = []

    def flush_durable(self):
        # sync -> commit -> release, failure path diverts: all clean.
        try:
            self.durable_sink.sync()
        except OSError:
            return []
        self._gate.commit(7)
        return self._gate.take_dirty()

    def release_non_durable(self):
        # Release without sync is fine on the explicit non-durable path.
        if self.durable_sink is None:
            return self._gate.take_dirty()
        return []

    def on_hello(self, exs_id):
        # Resume quotes the committed watermark.
        return protocol.HelloReply(exs_id, self._gate.committed(exs_id))

    def collect(self, handle):
        # Output-ring drain lands in commit staging, not delivery.
        staged = handle.shared_out.ring.drain_bytes()
        self._ingest_items(handle, staged)

    def deliver_input(self, ring):
        # Draining an *input* ring into delivery is the normal hot path.
        frames = ring.drain_bytes()
        self.merger.push(frames)

    def _ingest_items(self, handle, items):
        self.staged.extend(items)
