"""Steering under faults: pushed filters must survive disconnects,
ISM-side connection drops, and SIGKILL'd shard workers.

The contract under test is the *desired-filter store*: ``set_filter``
records the operator's intent whether or not the EXS is reachable, and
the server re-applies it (epoch-stamped, so re-application is a no-op
when the EXS already has it) after every Hello.  Combined with the
resume/retransmit path, acked records stay exactly-once across every
fault injected here.
"""

import multiprocessing as mp
import os
import signal
import threading
import time

import pytest
from tests.conftest import wait_until

from repro.clocksync.clocks import CorrectedClock
from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.filtering import FieldTest, FilterSpec
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.runtime import attach_shared_ring, create_shared_ring
from repro.runtime.exs_proc import ReconnectingExs, resilient_exs_main
from repro.runtime.ism_proc import IsmServer, ShardedIsmServer
from repro.util.timebase import now_micros
from repro.wire.tcp import MessageListener


@pytest.fixture(scope="module")
def mp_ctx():
    return mp.get_context("spawn")


def make_lis(node_id: int = 1):
    ring = ring_for_records(50_000)
    sensor = Sensor(ring, node_id=node_id)
    exs = ExternalSensor(
        node_id, node_id, ring, CorrectedClock(now_micros),
        ExsConfig(batch_max_records=32, flush_timeout_us=2_000),
    )
    return sensor, exs


def pump_serve_until(server: IsmServer, predicate, timeout: float = 10.0):
    """Run the (single-threaded) serve loop in short slices until
    *predicate* holds — accepting connections, Hellos, and control
    traffic along the way."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"condition not met within {timeout}s")
        server.serve(duration_s=0.05)


class TestFilterReapplyOnReconnect:
    def test_filter_set_while_disconnected_applies_on_connect(self):
        """The re-apply bug: a spec pushed at a disconnected EXS used to
        vanish.  Now it is stored and lands right after the Hello."""
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
            [CollectingConsumer()],
        )
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)

        # Nobody is connected: the push is deferred, not dropped.
        assert server.set_filter(1, FilterSpec(blocked_events={2})) is False

        sensor, exs = make_lis()
        runner = ReconnectingExs(
            exs, host, port, select_timeout_s=0.002,
            max_attempts=50, backoff_s=0.02, max_backoff_s=0.1,
        )
        thread = threading.Thread(target=runner.run, daemon=True)
        thread.start()
        try:
            # serve() accepts the connection and re-applies the stored
            # spec right after the Hello.
            pump_serve_until(server, lambda: exs.filter is not None)
            assert exs.filter_epoch == 1

            for k in range(200):
                sensor.notice_ints(1, k)
                sensor.notice_ints(2, k)
            server.serve(duration_s=10.0, until_records=200)
        finally:
            runner.stop()
            thread.join(timeout=10)
            listener.close()

        (sink,) = manager.consumers
        assert len(sink.records) == 200
        assert {r.event_id for r in sink.records} == {1}
        assert sorted(r.values[0] for r in sink.records) == list(range(200))
        assert exs.stats.records_filtered == 200

    def test_filter_updated_during_outage_wins_after_reconnect(self):
        """set_filter racing an EXS reconnect: the spec pushed *during*
        the outage is the one in force after resume, and every admitted
        record is delivered exactly once."""
        collected = CollectingConsumer()
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)), [collected]
        )
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)

        sensor, exs = make_lis()
        runner = ReconnectingExs(
            exs, host, port, select_timeout_s=0.002,
            max_attempts=100, backoff_s=0.02, max_backoff_s=0.1,
        )
        thread = threading.Thread(target=runner.run, daemon=True)
        thread.start()
        try:
            # Phase 1: block event 2 while connected.
            pump_serve_until(server, lambda: 1 in server.connections)
            assert server.set_filter(1, FilterSpec(blocked_events={2}))
            pump_serve_until(server, lambda: exs.filter is not None)
            for k in range(100):
                sensor.notice_ints(1, k)
                sensor.notice_ints(2, k)
            server.serve(duration_s=10.0, until_records=100)

            # Drop the EXS's connection server-side (the socket dies
            # under it) and, during the outage, steer again: block
            # event 1 as well.  The push cannot be delivered — it must
            # be stored for the resume.
            server.connections[1].close()
            assert server.set_filter(
                1, FilterSpec(blocked_events={1, 2})
            ) is False
            # Records written during the outage (event 3 passes both the
            # old and the new spec, so their drain timing cannot skew the
            # assertions below).
            for k in range(100, 200):
                sensor.notice_ints(3, k)

            # The reconnect must re-apply the newest spec (epoch 2).
            pump_serve_until(server, lambda: exs.filter_epoch == 2)
            # Written strictly after the new spec landed: event 1 is now
            # dropped at the source, event 3 still flows.
            for k in range(500, 600):
                sensor.notice_ints(1, k)
                sensor.notice_ints(3, k)
            server.serve(duration_s=15.0, until_records=300)
        finally:
            runner.stop()
            thread.join(timeout=10)
            listener.close()

        by_event: dict[int, list[int]] = {}
        for record in collected.records:
            by_event.setdefault(record.event_id, []).append(record.values[0])
        # Exactly-once on everything admitted, across the reconnect.
        assert sorted(by_event[1]) == list(range(100))
        assert sorted(by_event[3]) == list(range(100, 200)) + list(range(500, 600))
        assert 2 not in by_event
        assert manager.stats.records_received == 300
        # Post-outage event-1 records died at the source.
        assert exs.stats.records_filtered >= 200


class TestShardedFilterReapply:
    def test_filter_set_before_connect_applies_at_hello(self):
        sink = CollectingConsumer()
        listener = MessageListener()
        host, port = listener.address
        server = ShardedIsmServer(
            [sink], listener, shards=2, partition_by="node",
            ism_config=IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
        )
        assert server.set_filter(1, FilterSpec(blocked_events={2})) is False

        sensor, exs = make_lis()
        runner = ReconnectingExs(
            exs, host, port, select_timeout_s=0.002,
            max_attempts=50, backoff_s=0.02, max_backoff_s=0.1,
        )
        thread = threading.Thread(target=runner.run, daemon=True)
        serve = threading.Thread(
            target=server.serve, kwargs={"duration_s": 60.0}
        )
        thread.start()
        serve.start()
        try:
            wait_until(lambda: exs.filter is not None, timeout=15.0)
            assert exs.filter_epoch == 1
            for k in range(200):
                sensor.notice_ints(1, k)
                sensor.notice_ints(2, k)
            wait_until(lambda: len(sink.records) >= 200, timeout=30.0)
        finally:
            server.stop()
            serve.join(timeout=30)
            runner.stop()
            thread.join(timeout=10)
            server.close()
            listener.close()

        assert {r.event_id for r in sink.records} == {1}
        values = sorted(r.values[0] for r in sink.records)
        assert values == list(range(200))
        assert exs.stats.records_filtered == 200


# ----------------------------------------------------------------------
# chaos: pushed predicate + SIGKILL'd shard worker
# ----------------------------------------------------------------------
class TestShardKillWithSteering:
    def test_pushed_predicate_survives_shard_kill_exactly_once(self, mp_ctx):
        """The EXS ships records 0..n-1 (a pushed field test drops the
        rest at the source); a shard worker is SIGKILL'd mid-run.  The
        committed-prefix salvage plus resume replay must deliver exactly
        0..n-1 — and the predicate must still be dropping the top half
        after the restart."""
        n = 4_000
        shared = create_shared_ring(1 << 20)
        sink = CollectingConsumer()
        listener = MessageListener(host="127.0.0.1", port=0)
        host, port = listener.address
        server = ShardedIsmServer(
            [sink], listener, shards=2, partition_by="node",
            ism_config=IsmConfig(sorter=SorterConfig(initial_frame_us=1_000)),
            commit_interval_s=0.02,
        )
        # Steer before anything connects: drop every record whose first
        # field is >= n, at the source.
        assert server.set_filter(
            1, FilterSpec(field_tests=(FieldTest(0, "lt", n),))
        ) is False

        app = mp_ctx.Process(
            target=_steering_app_main, args=(shared.name, 2 * n, 1)
        )
        exs = mp_ctx.Process(
            target=resilient_exs_main,
            args=(shared.name, host, port, 1, 1, None),
            kwargs={"ack_timeout_s": 1.0, "max_attempts": 10},
        )
        serve = threading.Thread(
            target=server.serve, kwargs={"duration_s": 120.0}
        )
        exs.start()
        app.start()
        serve.start()
        try:
            deadline = time.monotonic() + 60
            victim = None
            while time.monotonic() < deadline:
                if server.records_received > n // 6:
                    victim = server._handles[1 % 2].process
                    break
                time.sleep(0.01)
            assert victim is not None, "pipeline never started flowing"
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 90
            while len(sink.records) < n and time.monotonic() < deadline:
                time.sleep(0.02)
            server.stop()
            serve.join(timeout=60)
            assert not serve.is_alive()
        finally:
            server.stop()
            app.join(timeout=10)
            exs.join(timeout=30)
            if exs.is_alive():
                exs.terminate()
            serve.join(timeout=10)
            server.close()
            listener.close()
            shared.close()

        assert int(server.shard_restarts) >= 1
        values = sorted(r.values[0] for r in sink.records)
        # A short prefix of >= n values may slip out between the connect
        # and the SetFilter landing; each must still be exactly-once, and
        # the flow of them must stop once the predicate lands.
        low = [v for v in values if v < n]
        high = [v for v in values if v >= n]
        assert low == list(range(n))          # nothing lost, nothing duped
        assert len(high) == len(set(high))    # leaks are exactly-once too
        assert len(high) < n // 10, (
            f"{len(high)} unfiltered records: the pushed predicate did not "
            "take effect (or did not survive the restart)"
        )


def _steering_app_main(ring_name: str, n_records: int, node_id: int) -> None:
    # Give the EXS time to connect and install the pushed predicate
    # before the first record is drained.
    time.sleep(0.5)
    shared = attach_shared_ring(ring_name)
    try:
        sensor = Sensor(shared.ring, node_id=node_id)
        sent = 0
        while sent < n_records:
            if sensor.notice_ints(7, sent):
                sent += 1
            else:
                time.sleep(0.001)
    finally:
        shared.close()
