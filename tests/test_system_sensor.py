"""Unit tests for the generic external (system metrics) sensor."""

import pathlib

import pytest

from repro.core.catalog import CATALOG_EVENT_ID, EventCatalog
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.core.system_sensor import (
    EV_LOADAVG,
    EV_MEMORY,
    EV_PROC_CPU,
    EV_PROC_RSS,
    SystemMetricsSensor,
    build_catalog,
)


@pytest.fixture
def fake_proc(tmp_path: pathlib.Path) -> pathlib.Path:
    (tmp_path / "loadavg").write_text("0.52 0.58 0.59 1/257 12345\n")
    (tmp_path / "meminfo").write_text(
        "MemTotal:       16384000 kB\n"
        "MemFree:         1234567 kB\n"
        "MemAvailable:    8192000 kB\n"
    )
    self_dir = tmp_path / "self"
    self_dir.mkdir()
    # pid (comm with space) state ppid pgrp session tty tpgid flags minflt
    # cminflt majflt cmajflt utime stime ...
    stat_fields = ["R", "1", "1", "1", "0", "-1", "4194304"]
    stat_fields += ["10", "0", "0", "0"]          # minflt..cmajflt
    stat_fields += ["250", "50"]                   # utime, stime (ticks)
    stat_fields += ["0"] * 7                       # cutime..starttime
    stat_fields += ["99999999", "4096"]            # vsize, rss pages
    (self_dir / "stat").write_text(
        "4242 (python (test)) " + " ".join(stat_fields) + "\n"
    )
    return tmp_path


def make_sensor():
    ring = ring_for_records(1_000)
    return Sensor(ring, node_id=1), ring


class TestSampling:
    def test_samples_all_families(self, fake_proc):
        sensor, ring = make_sensor()
        metrics = SystemMetricsSensor(sensor, proc_root=fake_proc)
        emitted = metrics.sample()
        assert emitted == 4
        records = {r.event_id: r for r in ring.drain() if r.event_id != CATALOG_EVENT_ID}
        assert set(records) == {EV_LOADAVG, EV_MEMORY, EV_PROC_CPU, EV_PROC_RSS}

    def test_loadavg_values(self, fake_proc):
        sensor, ring = make_sensor()
        SystemMetricsSensor(sensor, proc_root=fake_proc, announce=False).sample()
        loadavg = next(r for r in ring.drain() if r.event_id == EV_LOADAVG)
        assert loadavg.values == (0.52, 0.58)

    def test_memory_values(self, fake_proc):
        sensor, ring = make_sensor()
        SystemMetricsSensor(sensor, proc_root=fake_proc, announce=False).sample()
        memory = next(r for r in ring.drain() if r.event_id == EV_MEMORY)
        assert memory.values == (16_384_000, 8_192_000)

    def test_proc_cpu_scaled_by_clock_ticks(self, fake_proc):
        sensor, ring = make_sensor()
        metrics = SystemMetricsSensor(sensor, proc_root=fake_proc, announce=False)
        metrics.sample()
        cpu = next(r for r in ring.drain() if r.event_id == EV_PROC_CPU)
        assert cpu.values[0] == pytest.approx(250 / metrics._clock_ticks)
        assert cpu.values[1] == pytest.approx(50 / metrics._clock_ticks)

    def test_rss_scaled_to_kb(self, fake_proc):
        sensor, ring = make_sensor()
        metrics = SystemMetricsSensor(sensor, proc_root=fake_proc, announce=False)
        metrics.sample()
        rss = next(r for r in ring.drain() if r.event_id == EV_PROC_RSS)
        assert rss.values[0] == 4096 * metrics._page_kb

    def test_comm_with_spaces_and_parens_parsed(self, fake_proc):
        # The fixture's comm is "(python (test))" — the classic stat
        # parsing trap; rindex(')') handles it.
        sensor, ring = make_sensor()
        metrics = SystemMetricsSensor(sensor, proc_root=fake_proc, announce=False)
        assert metrics.sample() == 4
        assert metrics.errors == {}


class TestRobustness:
    def test_missing_procfs_counts_errors_not_raises(self, tmp_path):
        sensor, ring = make_sensor()
        metrics = SystemMetricsSensor(
            sensor, proc_root=tmp_path / "nope", announce=False
        )
        assert metrics.sample() == 0
        assert sum(metrics.errors.values()) == 4
        assert ring.drain() == []

    def test_partial_procfs(self, tmp_path):
        (tmp_path / "loadavg").write_text("1.0 2.0 3.0 1/2 3\n")
        sensor, ring = make_sensor()
        metrics = SystemMetricsSensor(sensor, proc_root=tmp_path, announce=False)
        assert metrics.sample() == 1
        assert metrics.emitted == {EV_LOADAVG: 1}

    def test_malformed_meminfo(self, tmp_path):
        (tmp_path / "meminfo").write_text("Nonsense: 42\n")
        sensor, _ = make_sensor()
        metrics = SystemMetricsSensor(sensor, proc_root=tmp_path, announce=False)
        metrics.sample()
        assert EV_MEMORY in metrics.errors


class TestCatalogIntegration:
    def test_catalog_announced_on_construction(self, fake_proc):
        sensor, ring = make_sensor()
        SystemMetricsSensor(sensor, proc_root=fake_proc)
        defs = [r for r in ring.drain() if r.event_id == CATALOG_EVENT_ID]
        catalog = EventCatalog.from_trace(defs)
        assert catalog.name_of(EV_LOADAVG) == "sys.loadavg"
        assert catalog.name_of(EV_PROC_RSS) == "proc.rss"

    def test_build_catalog_schemas(self):
        catalog = build_catalog()
        assert len(catalog) == 4
        assert len(catalog.schema_of(EV_MEMORY)) == 2

    def test_real_procfs_when_available(self):
        if not pathlib.Path("/proc/self/stat").exists():
            pytest.skip("no procfs on this platform")
        sensor, ring = make_sensor()
        metrics = SystemMetricsSensor(sensor, announce=False)
        emitted = metrics.sample()
        assert emitted >= 3  # loadavg/meminfo/stat all standard on Linux
        records = ring.drain()
        cpu = next(r for r in records if r.event_id == EV_PROC_CPU)
        assert cpu.values[0] >= 0.0
