"""Unit tests for transparent instrumentation: spans, tracer, channels."""

import pytest

from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.instrument.messaging import CausalChannel, CausalToken
from repro.instrument.spans import SpanEvents, instrumented, span
from repro.instrument.tracer import FunctionTracer, TracerEvents


def make_sensor(node_id: int = 1) -> Sensor:
    return Sensor(ring_for_records(10_000), node_id=node_id)


class TestSpans:
    def test_span_emits_begin_end_pair(self):
        sensor = make_sensor()
        with span(sensor, "solve"):
            pass
        begin = sensor.ring.pop()
        end = sensor.ring.pop()
        assert begin.event_id == SpanEvents().begin
        assert end.event_id == SpanEvents().end
        assert begin.values[0] == end.values[0]  # same span id
        assert begin.values[1] == "solve"
        assert end.timestamp >= begin.timestamp

    def test_span_ends_on_exception(self):
        sensor = make_sensor()
        with pytest.raises(RuntimeError):
            with span(sensor, "crashy"):
                raise RuntimeError("boom")
        records = sensor.ring.drain()
        assert [r.event_id for r in records] == [
            SpanEvents().begin, SpanEvents().end,
        ]

    def test_nested_spans_have_distinct_ids(self):
        sensor = make_sensor()
        with span(sensor, "outer"):
            with span(sensor, "inner"):
                pass
        records = sensor.ring.drain()
        ids = {r.values[0] for r in records}
        assert len(ids) == 2
        # outer-begin, inner-begin, inner-end, outer-end
        assert [r.values[1] for r in records] == [
            "outer", "inner", "inner", "outer",
        ]

    def test_decorator_uses_qualname(self):
        sensor = make_sensor()

        @instrumented(sensor)
        def compute(x):
            return x * 2

        assert compute(21) == 42
        begin = sensor.ring.pop()
        assert "compute" in begin.values[1]

    def test_decorator_custom_label_and_events(self):
        sensor = make_sensor()
        events = SpanEvents(begin=5, end=6)

        @instrumented(sensor, label="phase-1", events=events)
        def go():
            pass

        go()
        records = sensor.ring.drain()
        assert [r.event_id for r in records] == [5, 6]
        assert records[0].values[1] == "phase-1"


def _workload_a(n: int) -> int:
    total = 0
    for k in range(n):
        total += _workload_b(k)
    return total


def _workload_b(k: int) -> int:
    return k * k


class TestFunctionTracer:
    def test_traces_matching_module_only(self):
        sensor = make_sensor()
        with FunctionTracer(sensor, include=(__name__,)) as tracer:
            _workload_a(3)
        assert tracer.calls_traced == 4  # _workload_a + 3 × _workload_b
        records = sensor.ring.drain()
        calls = [r for r in records if r.event_id == TracerEvents().call]
        rets = [r for r in records if r.event_id == TracerEvents().ret]
        assert len(calls) == len(rets) == 4

    def test_emits_function_name_table(self):
        sensor = make_sensor()
        with FunctionTracer(sensor, include=(__name__,)) as tracer:
            _workload_a(1)
        defines = [
            r for r in sensor.ring.drain()
            if r.event_id == TracerEvents().define
        ]
        names = {r.values[1] for r in defines}
        assert any("_workload_a" in n for n in names)
        assert any("_workload_b" in n for n in names)
        assert set(tracer.function_names.values()) == names

    def test_nothing_traced_without_includes(self):
        from repro.core.catalog import CATALOG_EVENT_ID

        sensor = make_sensor()
        with FunctionTracer(sensor, include=()) as tracer:
            _workload_a(2)
        assert tracer.calls_traced == 0
        # Only the tracer's own catalog announcements are in the ring.
        leftover = sensor.ring.drain()
        assert all(r.event_id == CATALOG_EVENT_ID for r in leftover)

    def test_catalog_announced_once(self):
        from repro.core.catalog import CATALOG_EVENT_ID, EventCatalog

        sensor = make_sensor()
        tracer = FunctionTracer(sensor, include=())
        tracer.start()
        tracer.stop()
        tracer.start()
        tracer.stop()
        records = sensor.ring.drain()
        defs = [r for r in records if r.event_id == CATALOG_EVENT_ID]
        assert len(defs) == 3  # call/return/define, announced once
        catalog = EventCatalog.from_trace(defs)
        assert catalog.name_of(TracerEvents().call) == "tracer.call"

    def test_depth_limit(self):
        sensor = make_sensor()

        def recurse(n):
            if n:
                recurse(n - 1)

        with FunctionTracer(sensor, include=(__name__,), max_depth=3) as tracer:
            recurse(10)
        assert tracer.calls_traced == 3
        assert tracer.calls_skipped == 8

    def test_depth_field_recorded(self):
        sensor = make_sensor()
        with FunctionTracer(sensor, include=(__name__,)):
            _workload_a(1)
        calls = [
            r for r in sensor.ring.drain()
            if r.event_id == TracerEvents().call
        ]
        depths = [r.values[1] for r in calls]
        assert depths == [1, 2]

    def test_start_stop_idempotent(self):
        tracer = FunctionTracer(make_sensor(), include=())
        tracer.start()
        tracer.start()
        tracer.stop()
        tracer.stop()

    def test_max_depth_validation(self):
        with pytest.raises(ValueError):
            FunctionTracer(make_sensor(), include=(), max_depth=0)


class TestCausalChannel:
    def test_send_emits_reason_recv_emits_conseq(self):
        sender = make_sensor(node_id=1)
        receiver = make_sensor(node_id=2)
        tx = CausalChannel(sender)
        rx = CausalChannel(receiver)
        token = tx.note_send(tag=42)
        rx.note_recv(token, tag=42)
        sent = sender.ring.pop()
        received = receiver.ring.pop()
        assert sent.reason_ids == (token.cid,)
        assert received.conseq_ids == (token.cid,)
        assert sent.values[1] == received.values[1] == 42
        assert tx.sends == rx.receives == 1

    def test_ids_unique_across_nodes(self):
        a = CausalChannel(make_sensor(node_id=1))
        b = CausalChannel(make_sensor(node_id=2))
        ids_a = {a.note_send().cid for _ in range(100)}
        ids_b = {b.note_send().cid for _ in range(100)}
        assert not ids_a & ids_b

    def test_ids_unique_within_node(self):
        channel = CausalChannel(make_sensor(node_id=3))
        ids = [channel.note_send().cid for _ in range(1000)]
        assert len(set(ids)) == 1000

    def test_token_pack_roundtrip(self):
        token = CausalToken(cid=0xDEADBEEF, origin_node=17)
        assert CausalToken.unpack(token.pack()) == token

    def test_token_unpack_validates_length(self):
        with pytest.raises(ValueError):
            CausalToken.unpack(b"short")

    def test_node_id_must_fit_node_bits(self):
        sensor = make_sensor(node_id=2048)
        with pytest.raises(ValueError):
            CausalChannel(sensor, node_bits=10)

    def test_node_bits_validation(self):
        with pytest.raises(ValueError):
            CausalChannel(make_sensor(), node_bits=0)

    def test_end_to_end_through_ism(self):
        """Channel markers survive the full pipeline and order causally."""
        from repro.core.consumers import CollectingConsumer
        from repro.sim.deployment import DeploymentConfig, SimDeployment
        from repro.sim.engine import Simulator

        sim = Simulator(seed=4)
        collected = CollectingConsumer()
        dep = SimDeployment(
            sim, DeploymentConfig(warmup_sync_rounds=0), [collected]
        )
        node_a = dep.add_node(offset_us=50_000)
        node_b = dep.add_node(offset_us=-50_000)
        tx = CausalChannel(node_a.sensor)
        rx = CausalChannel(node_b.sensor)
        dep.start()

        def exchange():
            token = tx.note_send()
            sim.schedule(500, rx.note_recv, token)

        for k in range(10):
            sim.schedule(100_000 + k * 100_000, exchange)
        dep.run(3.0)
        dep.stop()
        sends = [r for r in collected.records if r.reason_ids]
        recvs = [r for r in collected.records if r.conseq_ids]
        assert len(sends) == len(recvs) == 10
        order = {(tuple(r.reason_ids), tuple(r.conseq_ids)): i
                 for i, r in enumerate(collected.records) if r.is_causal}
        for send in sends:
            cid = send.reason_ids[0]
            send_pos = order[((cid,), ())]
            recv_pos = order[((), (cid,))]
            assert send_pos < recv_pos
