"""Property-based tests for the extension subsystems.

Complements ``test_properties.py`` (core invariants) with properties of
filtering, the event catalog, trace queries, and the profiling sensor.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st
from tests.conftest import make_record
from tests.test_clocks import FakeTime

from repro.analysis.trace import Trace
from repro.core import native
from repro.core.catalog import EventCatalog
from repro.core.filtering import FilterSpec, FilterState
from repro.core.records import FieldType, RecordSchema
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.profiles.aggregate import ProfileDecoder, ProfilingSensor


def simple_records(draw_ids):
    return [
        make_record(event_id=e, timestamp=ts, node_id=n)
        for e, ts, n in draw_ids
    ]


record_keys = st.lists(
    st.tuples(
        st.integers(0, 5),        # event id
        st.integers(0, 10_000),   # timestamp
        st.integers(0, 3),        # node id
    ),
    max_size=60,
)


class TestFilteringProperties:
    @given(record_keys, st.integers(1, 7))
    @settings(max_examples=80)
    def test_sampling_keeps_exactly_one_in_n_per_event(self, keys, n):
        state = FilterState(FilterSpec(sample_every=n))
        records = simple_records(keys)
        kept_by_event: dict[int, int] = {}
        seen_by_event: dict[int, int] = {}
        for record in records:
            seen_by_event[record.event_id] = (
                seen_by_event.get(record.event_id, 0) + 1
            )
            if state.admit(record):
                kept_by_event[record.event_id] = (
                    kept_by_event.get(record.event_id, 0) + 1
                )
        for event_id, seen in seen_by_event.items():
            expected = -(-seen // n)  # ceil: the first of each group passes
            assert kept_by_event.get(event_id, 0) == expected
        assert state.passed + state.dropped == len(records)

    @given(
        record_keys,
        st.sets(st.integers(0, 5)),
        st.sets(st.integers(0, 5)),
    )
    @settings(max_examples=80)
    def test_whitelist_blocklist_semantics(self, keys, allowed, blocked):
        spec = FilterSpec(
            allowed_events=frozenset(allowed), blocked_events=frozenset(blocked)
        )
        for record in simple_records(keys):
            expected = (
                record.event_id in allowed and record.event_id not in blocked
            )
            assert spec.admits(record) == expected


class TestCatalogProperties:
    names = st.text(
        alphabet=st.characters(blacklist_characters="\x00", codec="utf-8"),
        min_size=1,
        max_size=30,
    )

    @given(
        st.dictionaries(
            st.integers(0, 1000).filter(lambda i: i != 0xF0E),
            names,
            max_size=20,
        )
    )
    @settings(max_examples=60)
    def test_announce_rebuild_roundtrip(self, mapping):
        catalog = EventCatalog()
        for event_id, name in mapping.items():
            catalog.define(event_id, name, RecordSchema((FieldType.X_INT,)))
        ring = ring_for_records(4_000, approx_record_bytes=160)
        sensor = Sensor(ring, node_id=1, clock=FakeTime(1))
        catalog.announce(sensor)
        rebuilt = EventCatalog.from_trace(ring.drain())
        assert len(rebuilt) == len(mapping)
        for event_id, name in mapping.items():
            assert rebuilt.name_of(event_id) == name
            assert rebuilt.schema_of(event_id) == RecordSchema((FieldType.X_INT,))


class TestTraceProperties:
    @given(record_keys)
    @settings(max_examples=80)
    def test_filters_partition_the_trace(self, keys):
        trace = Trace(simple_records(keys))
        # Node filters partition: every record is in exactly one node view.
        total = sum(len(trace.node(n)) for n in trace.node_ids)
        assert total == len(trace)
        # Event filters partition too.
        total = sum(len(trace.events(e)) for e in trace.event_ids)
        assert total == len(trace)

    @given(record_keys, st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=80)
    def test_between_is_a_clean_slice(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        trace = Trace(simple_records(keys))
        window = trace.between(lo, hi)
        assert all(lo <= r.timestamp < hi for r in window)
        expected = sum(1 for r in trace if lo <= r.timestamp < hi)
        assert len(window) == expected

    @given(record_keys)
    @settings(max_examples=60)
    def test_trace_is_always_sorted(self, keys):
        trace = Trace(simple_records(keys))
        ts = [r.timestamp for r in trace]
        assert ts == sorted(ts)
        assert trace.count_inversions() == 0


class TestNativePeekProperty:
    @given(st.integers(-(2**62), 2**62))
    @settings(max_examples=100)
    def test_timestamp_of_matches_full_decode(self, ts):
        record = make_record(timestamp=ts)
        payload = native.pack_record(record)
        assert native.timestamp_of(payload) == ts


class TestProfilingProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 3), st.floats(-1e6, 1e6)), max_size=80
        )
    )
    @settings(max_examples=60)
    def test_summaries_conserve_count_and_sum(self, samples):
        t = FakeTime(0)
        ring = ring_for_records(2_000)
        sensor = Sensor(ring, node_id=1, clock=t)
        profiler = ProfilingSensor(sensor, flush_interval_us=100)
        per_event: dict[int, list[float]] = {}
        for k, (event_id, value) in enumerate(samples):
            t.value = k * 37  # crosses flush windows at odd phases
            profiler.sample(event_id, value)
            per_event.setdefault(event_id, []).append(value)
        profiler.flush()
        decoder = ProfileDecoder()
        for record in ring.drain():
            decoder.deliver(record)
        import pytest

        for event_id, values in per_event.items():
            summary = decoder.profiles[(1, event_id)]
            assert summary.count == len(values)
            # Window splits change the float summation order; conserve to
            # within rounding, exactly for min/max.
            assert summary.total == pytest.approx(sum(values), rel=1e-12, abs=1e-9)
            assert summary.minimum == min(values)
            assert summary.maximum == max(values)
