"""Unit tests for causal-graph reconstruction and perturbation analysis."""

import pytest
from tests.conftest import make_record

from repro.analysis.causality import build_causal_graph, causal_chains, find_causal_violations
from repro.analysis.perturbation import (
    CompensationReport,
    IntrusionModel,
    compensate_trace,
    estimate_intrusion,
)
from repro.analysis.trace import Trace
from repro.core.records import EventRecord, FieldType


def reason(cid: int, ts: int, node: int = 1, event: int = 1) -> EventRecord:
    return EventRecord(
        event_id=event, timestamp=ts,
        field_types=(FieldType.X_REASON,), values=(cid,), node_id=node,
    )


def conseq(cid: int, ts: int, node: int = 2, event: int = 2) -> EventRecord:
    return EventRecord(
        event_id=event, timestamp=ts,
        field_types=(FieldType.X_CONSEQ,), values=(cid,), node_id=node,
    )


def relay(in_cid: int, out_cid: int, ts: int, node: int = 3) -> EventRecord:
    """A hop: consumes one marker, publishes the next."""
    return EventRecord(
        event_id=3, timestamp=ts,
        field_types=(FieldType.X_CONSEQ, FieldType.X_REASON),
        values=(in_cid, out_cid), node_id=node,
    )


class TestCausalGraph:
    def test_single_edge(self):
        trace = Trace([reason(7, 100), conseq(7, 200)])
        graph = build_causal_graph(trace)
        assert graph.n_edges == 1
        (edge,) = graph.graph.edges(data=True)
        assert edge[2]["cid"] == 7
        assert edge[2]["lag_us"] == 100

    def test_fan_out(self):
        trace = Trace(
            [reason(7, 100)]
            + [conseq(7, 200 + k, event=10 + k) for k in range(3)]
        )
        graph = build_causal_graph(trace)
        assert graph.n_edges == 3

    def test_unmatched_bookkeeping(self):
        trace = Trace([reason(1, 100), conseq(2, 200)])
        graph = build_causal_graph(trace)
        assert graph.unmatched_reason_ids == {1}
        assert graph.unmatched_conseq_ids == {2}
        assert graph.n_edges == 0

    def test_reused_marker_attaches_to_latest_reason(self):
        trace = Trace(
            [reason(7, 100), conseq(7, 150), reason(7, 200), conseq(7, 250)]
        )
        graph = build_causal_graph(trace)
        assert graph.n_edges == 2
        lags = sorted(d["lag_us"] for _, _, d in graph.graph.edges(data=True))
        assert lags == [50, 50]

    def test_edge_lag_stats(self):
        trace = Trace([reason(1, 0), conseq(1, 300), reason(2, 0), conseq(2, 100)])
        stats = build_causal_graph(trace).edge_lag_stats()
        assert stats.count == 2
        assert stats.mean == pytest.approx(200.0)

    def test_chain_reconstruction(self):
        trace = Trace(
            [reason(1, 0), relay(1, 2, 100), relay(2, 3, 200), conseq(3, 300)]
        )
        graph = build_causal_graph(trace)
        chains = causal_chains(graph)
        assert len(chains) == 1
        assert len(chains[0]) == 4
        labels = [graph.record(n).timestamp for n in chains[0]]
        assert labels == [0, 100, 200, 300]

    def test_min_length_filter(self):
        trace = Trace([reason(1, 0), conseq(1, 100)])
        assert causal_chains(build_causal_graph(trace), min_length=3) == []

    def test_violation_detection(self):
        ok = Trace([reason(1, 100), conseq(1, 200)])
        assert find_causal_violations(ok) == []
        bad = Trace([conseq(1, 50), reason(1, 100)])
        violations = find_causal_violations(bad)
        assert len(violations) == 1
        assert violations[0][0] == 1


class TestPerturbation:
    def test_model_validation(self):
        with pytest.raises(ValueError):
            IntrusionModel(base_cost_us=-1)
        model = IntrusionModel(base_cost_us=5.0, per_field_cost_us=0.5)
        assert model.cost_of(6) == pytest.approx(8.0)

    def test_compensation_shifts_cumulatively(self):
        model = IntrusionModel(base_cost_us=10.0)
        records = [make_record(timestamp=1_000 + k * 100, n_ints=0) for k in range(3)]
        trace = Trace(records)
        fixed, report = compensate_trace(trace, model)
        # Record k loses k * 10 µs (costs of the notices before it).
        assert [r.timestamp for r in fixed] == [1_000, 1_090, 1_180]
        assert report.events_compensated == 3
        assert report.total_shift_us == pytest.approx(30.0)

    def test_compensation_is_per_node(self):
        model = IntrusionModel(base_cost_us=10.0)
        records = [
            make_record(timestamp=100, node_id=1, n_ints=0),
            make_record(timestamp=110, node_id=2, n_ints=0),
            make_record(timestamp=200, node_id=1, n_ints=0),
            make_record(timestamp=210, node_id=2, n_ints=0),
        ]
        fixed, report = compensate_trace(Trace(records), model)
        by_node = {
            node: [r.timestamp for r in fixed.node(node)] for node in (1, 2)
        }
        assert by_node[1] == [100, 190]
        assert by_node[2] == [110, 200]
        assert report.per_node_shift_us == {1: 10.0, 2: 10.0}

    def test_field_count_affects_cost(self):
        model = IntrusionModel(base_cost_us=1.0, per_field_cost_us=1.0)
        records = [
            make_record(timestamp=0, n_ints=6),
            make_record(timestamp=100, n_ints=0),
        ]
        fixed, _ = compensate_trace(Trace(records), model)
        # Second record loses base(1) + 6 fields → 7 µs.
        assert fixed[1].timestamp == 93

    def test_preserves_per_node_order(self):
        model = IntrusionModel(base_cost_us=50.0)
        records = [make_record(timestamp=k * 60, n_ints=0) for k in range(10)]
        fixed, _ = compensate_trace(Trace(records), model)
        ts = [r.timestamp for r in fixed.node(0)]
        assert ts == sorted(ts)

    def test_empty_trace(self):
        fixed, report = compensate_trace(Trace([]), IntrusionModel(1.0))
        assert len(fixed) == 0
        assert report.mean_shift_us == 0.0

    def test_estimate_intrusion_measures_this_host(self):
        model = estimate_intrusion(samples=500)
        # Sanity: single-digit-to-tens of µs on any modern machine.
        assert 0.0 < model.cost_of(6) < 200.0
