"""Unit tests for workload generators and delayed streams."""

import random

import pytest

from repro.sim.engine import Simulator
from repro.sim.workload import (
    BurstyWorkload,
    DelayedStream,
    PeriodicWorkload,
    PoissonWorkload,
    make_delayed_streams,
    merge_by_arrival,
)


class TestPeriodic:
    def test_exact_rate(self):
        sim = Simulator()
        count = [0]
        PeriodicWorkload(rate_hz=1000).start(sim, lambda seq: count.__setitem__(0, seq + 1))
        sim.run_until(1_000_000)
        assert count[0] == 1000

    def test_count_limit(self):
        sim = Simulator()
        seqs = []
        PeriodicWorkload(rate_hz=1000, count=5).start(sim, seqs.append)
        sim.run_until(10_000_000)
        assert seqs == [0, 1, 2, 3, 4]

    def test_stop(self):
        sim = Simulator()
        seqs = []
        wl = PeriodicWorkload(rate_hz=1000)
        wl.start(sim, seqs.append)
        sim.run_until(5_000)
        wl.stop()
        sim.run_until(1_000_000)
        assert len(seqs) == 5

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PeriodicWorkload(rate_hz=0)


class TestPoisson:
    def test_rate_approximately_respected(self):
        sim = Simulator(seed=11)
        seqs = []
        PoissonWorkload(rate_hz=2_000).start(sim, seqs.append)
        sim.run_until(5_000_000)  # 5 s → ~10,000 events
        assert 9_000 <= len(seqs) <= 11_000

    def test_deterministic_per_seed(self):
        def run(seed):
            sim = Simulator(seed=seed)
            seqs = []
            PoissonWorkload(rate_hz=500).start(sim, seqs.append)
            sim.run_until(1_000_000)
            return len(seqs)

        assert run(3) == run(3)


class TestBursty:
    def test_burst_structure(self):
        sim = Simulator()
        times = []
        BurstyWorkload(burst_rate_hz=10_000, burst_len=5, gap_us=100_000).start(
            sim, lambda seq: times.append(sim.now)
        )
        sim.run_until(1_000_000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        intra = [g for g in gaps if g < 1_000]
        inter = [g for g in gaps if g >= 100_000]
        assert intra and inter
        assert len(intra) + len(inter) == len(gaps)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BurstyWorkload(burst_rate_hz=0, burst_len=1, gap_us=0)
        with pytest.raises(ValueError):
            BurstyWorkload(burst_rate_hz=10, burst_len=0, gap_us=0)


class TestDelayedStreams:
    def test_per_source_timestamps_increase(self):
        streams = make_delayed_streams(random.Random(1), n_sources=3)
        for stream in streams:
            ts = [rec.timestamp for rec, _ in stream.items]
            assert ts == sorted(ts)
            assert len(set(ts)) == len(ts)  # strictly increasing

    def test_arrivals_after_timestamps(self):
        streams = make_delayed_streams(random.Random(1), base_delay_us=100)
        for stream in streams:
            for rec, arrival in stream.items:
                assert arrival >= rec.timestamp + 100

    def test_max_lateness(self):
        stream = DelayedStream(source_id=0)
        assert stream.max_lateness_us == 0
        streams = make_delayed_streams(random.Random(1))
        for s in streams:
            lateness = [arr - rec.timestamp for rec, arr in s.items]
            assert s.max_lateness_us == max(lateness)

    def test_stragglers_increase_max_lateness(self):
        quiet = make_delayed_streams(
            random.Random(2), straggler_prob=0.0, jitter_mean_us=0
        )
        spiky = make_delayed_streams(
            random.Random(2), straggler_prob=0.2, straggler_extra_us=50_000,
            jitter_mean_us=0,
        )
        assert max(s.max_lateness_us for s in spiky) > max(
            s.max_lateness_us for s in quiet
        )

    def test_merge_by_arrival_sorted(self):
        streams = make_delayed_streams(random.Random(3), n_sources=4)
        merged = merge_by_arrival(streams)
        arrivals = [arr for _, _, arr in merged]
        assert arrivals == sorted(arrivals)
        assert len(merged) == sum(len(s.items) for s in streams)

    def test_source_count_validation(self):
        with pytest.raises(ValueError):
            make_delayed_streams(random.Random(1), n_sources=0)

    def test_deterministic(self):
        a = make_delayed_streams(random.Random(9))
        b = make_delayed_streams(random.Random(9))
        assert [s.items for s in a] == [s.items for s in b]
