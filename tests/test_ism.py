"""Unit tests for the instrumentation system manager."""

import pytest
from tests.conftest import make_record
from tests.test_clocksync import ExactSlave

from repro.clocksync.brisk_sync import BriskSyncMaster
from repro.core.consumers import CollectingConsumer
from repro.core.cre import CreConfig
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.records import EventRecord, FieldType
from repro.core.sorting import SorterConfig
from repro.wire import protocol


def batch(exs_id: int, seq: int, records) -> protocol.Batch:
    return protocol.Batch(exs_id=exs_id, seq=seq, records=tuple(records))


def manager(**sorter_kwargs) -> tuple[InstrumentationManager, CollectingConsumer]:
    consumer = CollectingConsumer()
    config = IsmConfig(sorter=SorterConfig(**sorter_kwargs))
    return InstrumentationManager(config, [consumer]), consumer


class TestIntake:
    def test_hello_registers_source(self):
        mgr, _ = manager()
        mgr.on_message(protocol.Hello(exs_id=3, node_id=7), now=0)
        assert mgr.sources == {3: 7}

    def test_batch_records_stamped_with_node(self):
        mgr, consumer = manager(initial_frame_us=0)
        mgr.register_source(3, node_id=7)
        mgr.on_batch(batch(3, 0, [make_record()]), now=0)
        mgr.tick(now=10**9)
        assert consumer.records[0].node_id == 7

    def test_unknown_source_tolerated_and_counted(self):
        mgr, _ = manager()
        mgr.on_batch(batch(99, 0, [make_record()]), now=0)
        assert mgr.stats.unknown_source_records == 1
        assert 99 in mgr.sources

    def test_seq_gap_detected(self):
        mgr, _ = manager()
        mgr.register_source(1, 1)
        mgr.on_batch(batch(1, 0, [make_record()]), now=0)
        mgr.on_batch(batch(1, 2, [make_record()]), now=0)  # 1 skipped
        assert mgr.stats.seq_gaps == 1

    def test_contiguous_seq_no_gap(self):
        mgr, _ = manager()
        mgr.register_source(1, 1)
        for seq in range(5):
            mgr.on_batch(batch(1, seq, [make_record()]), now=0)
        assert mgr.stats.seq_gaps == 0

    def test_sync_messages_rejected(self):
        mgr, _ = manager()
        with pytest.raises(TypeError):
            mgr.on_message(protocol.TimeReply(probe_id=1, slave_time=0), now=0)

    def test_bye_is_accepted_quietly(self):
        mgr, _ = manager()
        mgr.on_message(protocol.Bye(), now=0)


class TestPipeline:
    def test_cross_source_merge_order(self):
        mgr, consumer = manager(initial_frame_us=0)
        mgr.register_source(1, 1)
        mgr.register_source(2, 2)
        mgr.on_batch(
            batch(1, 0, [make_record(timestamp=10), make_record(timestamp=30)]),
            now=0,
        )
        mgr.on_batch(
            batch(2, 0, [make_record(timestamp=20), make_record(timestamp=40)]),
            now=0,
        )
        mgr.tick(now=10**9)
        assert [r.timestamp for r in consumer.records] == [10, 20, 30, 40]

    def test_tick_respects_time_frame(self):
        mgr, consumer = manager(initial_frame_us=1000, decay_lambda=0.0)
        mgr.register_source(1, 1)
        mgr.on_batch(batch(1, 0, [make_record(timestamp=500)]), now=500)
        assert mgr.tick(now=1_000) == 0
        assert mgr.tick(now=1_501) == 1
        assert len(consumer.records) == 1

    def test_causal_ordering_applied_after_sort(self):
        mgr, consumer = manager(initial_frame_us=0)
        mgr.register_source(1, 1)
        conseq = EventRecord(
            event_id=2,
            timestamp=100,
            field_types=(FieldType.X_CONSEQ,),
            values=(5,),
        )
        reason = EventRecord(
            event_id=1,
            timestamp=200,
            field_types=(FieldType.X_REASON,),
            values=(5,),
        )
        mgr.on_batch(batch(1, 0, [conseq, reason]), now=0)
        mgr.tick(now=10**9)
        assert [r.event_id for r in consumer.records] == [1, 2]
        # The tachyonic consequence was pushed past its reason.
        assert consumer.records[1].timestamp == 201

    def test_tachyon_requests_sync_round(self):
        consumer = CollectingConsumer()
        master = BriskSyncMaster([ExactSlave(1, 0.0)])
        mgr = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
            [consumer],
            sync_master=master,
        )
        mgr.register_source(1, 1)
        reason = EventRecord(
            event_id=1, timestamp=500,
            field_types=(FieldType.X_REASON,), values=(5,),
        )
        conseq = EventRecord(
            event_id=2, timestamp=100,
            field_types=(FieldType.X_CONSEQ,), values=(5,),
        )
        mgr.on_batch(batch(1, 0, [conseq, reason]), now=0)
        mgr.tick(now=10**9)
        assert master.extra_round_requested

    def test_cre_timeout_handled_by_tick(self):
        consumer = CollectingConsumer()
        config = IsmConfig(
            sorter=SorterConfig(initial_frame_us=0),
            cre=CreConfig(timeout_us=1_000),
            expire_interval_us=0,
        )
        mgr = InstrumentationManager(config, [consumer])
        mgr.register_source(1, 1)
        orphan = EventRecord(
            event_id=2, timestamp=100,
            field_types=(FieldType.X_CONSEQ,), values=(5,),
        )
        mgr.on_batch(batch(1, 0, [orphan]), now=0)
        mgr.tick(now=200)  # parked
        assert consumer.records == []
        mgr.tick(now=2_000)  # past the timeout
        assert len(consumer.records) == 1

    def test_flush_drains_sorter_and_parked(self):
        mgr, consumer = manager(initial_frame_us=10**7)
        mgr.register_source(1, 1)
        orphan = EventRecord(
            event_id=2, timestamp=100,
            field_types=(FieldType.X_CONSEQ,), values=(5,),
        )
        mgr.on_batch(batch(1, 0, [make_record(timestamp=50), orphan]), now=0)
        delivered = mgr.flush(now=100)
        assert delivered == 2
        assert len(consumer.records) == 2

    def test_delivery_counters(self):
        mgr, _ = manager(initial_frame_us=0)
        mgr.register_source(1, 1)
        mgr.on_batch(batch(1, 0, [make_record()] * 3), now=0)
        mgr.tick(now=10**9)
        assert mgr.stats.batches_received == 1
        assert mgr.stats.records_received == 3
        assert mgr.stats.records_delivered == 3

    def test_multiple_consumers_all_receive(self):
        a, b = CollectingConsumer(), CollectingConsumer()
        mgr = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)), [a, b]
        )
        mgr.register_source(1, 1)
        mgr.on_batch(batch(1, 0, [make_record()]), now=0)
        mgr.tick(now=10**9)
        assert len(a.records) == len(b.records) == 1

    def test_close_closes_consumers_once(self):
        class Closeable(CollectingConsumer):
            def __init__(self):
                super().__init__()
                self.closed = 0

            def close(self):
                self.closed += 1

        consumer = Closeable()
        mgr = InstrumentationManager(consumers=[consumer])
        mgr.close()
        mgr.close()
        assert consumer.closed == 1

    def test_expire_interval_throttles_scans(self):
        config = IsmConfig(
            sorter=SorterConfig(initial_frame_us=0),
            cre=CreConfig(timeout_us=100),
            expire_interval_us=1_000_000,
        )
        consumer = CollectingConsumer()
        mgr = InstrumentationManager(config, [consumer])
        mgr.register_source(1, 1)
        orphan = EventRecord(
            event_id=2, timestamp=10,
            field_types=(FieldType.X_CONSEQ,), values=(5,),
        )
        mgr.on_batch(batch(1, 0, [orphan]), now=0)
        mgr.tick(now=0)  # first tick runs a scan and arms the throttle
        mgr.tick(now=500_000)  # within the interval: no scan, still parked
        assert consumer.records == []
        mgr.tick(now=1_100_000)
        assert len(consumer.records) == 1
