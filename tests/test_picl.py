"""Unit tests for PICL trace format reading and writing."""

import io

import pytest
from tests.conftest import make_mixed_record, make_record

from repro.core.records import EventRecord, FieldType
from repro.picl.format import (
    USER_EVENT_RECORD_TYPE,
    PiclParseError,
    PiclReader,
    PiclWriter,
    TimestampMode,
    dumps,
    parse_line,
    picl_to_line,
    picl_to_record,
    record_to_picl,
)


class TestConversion:
    def test_record_maps_to_user_event(self):
        picl = record_to_picl(make_record(node_id=3))
        assert picl.record_type == USER_EVENT_RECORD_TYPE
        assert picl.event_type == 1
        assert picl.node == 3
        assert picl.timestamp == 1_000_000

    def test_utc_mode_keeps_integer_micros(self):
        picl = record_to_picl(make_record(timestamp=123), TimestampMode.UTC_MICROS)
        assert picl.timestamp == 123
        assert isinstance(picl.timestamp, int)

    def test_relative_mode_floating_seconds(self):
        picl = record_to_picl(
            make_record(timestamp=2_500_000),
            TimestampMode.RELATIVE_SECONDS,
            epoch_us=500_000,
        )
        assert picl.timestamp == pytest.approx(2.0)

    def test_picl_to_record_roundtrip(self):
        record = make_record(node_id=2)
        assert picl_to_record(record_to_picl(record)) == record

    def test_picl_to_record_rejects_relative(self):
        picl = record_to_picl(make_record(), TimestampMode.RELATIVE_SECONDS)
        with pytest.raises(PiclParseError):
            picl_to_record(picl)


class TestLineFormat:
    def test_line_roundtrip_six_ints(self):
        picl = record_to_picl(make_record())
        assert parse_line(picl_to_line(picl)) == picl

    def test_line_roundtrip_all_types(self):
        picl = record_to_picl(make_mixed_record())
        parsed = parse_line(picl_to_line(picl))
        for (t1, v1), (t2, v2) in zip(picl.fields, parsed.fields):
            assert t1 == t2
            if t1 is FieldType.X_FLOAT:
                assert v2 == pytest.approx(v1)
            else:
                assert v2 == v1

    def test_string_with_spaces_and_quotes(self):
        record = EventRecord(
            event_id=1,
            timestamp=0,
            field_types=(FieldType.X_STRING,),
            values=('say "hi"\tnow\nok \\ done',),
        )
        picl = record_to_picl(record)
        assert parse_line(picl_to_line(picl)) == picl

    def test_empty_opaque(self):
        record = EventRecord(
            event_id=1,
            timestamp=0,
            field_types=(FieldType.X_OPAQUE,),
            values=(b"",),
        )
        picl = record_to_picl(record)
        assert parse_line(picl_to_line(picl)) == picl

    def test_relative_timestamp_formatting(self):
        picl = record_to_picl(
            make_record(timestamp=1_234_567), TimestampMode.RELATIVE_SECONDS
        )
        line = picl_to_line(picl)
        assert "1.234567" in line

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "-3 1 2",  # too few tokens
            "-3 1 2 3 1",  # claims one field, provides none
            "-3 1 2 3 1 99 5",  # unknown field type code
            "x 1 2 3 0",  # non-numeric record type
            '-3 1 2 3 1 10 "unterminated',
        ],
    )
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(PiclParseError):
            parse_line(line)


class TestStreams:
    def test_writer_reader_roundtrip(self):
        records = [make_record(event_id=i, timestamp=i * 100) for i in range(5)]
        buf = io.StringIO()
        writer = PiclWriter(buf)
        writer.write_all(records)
        assert writer.lines_written == 5
        buf.seek(0)
        parsed = PiclReader(buf).read_all()
        assert [picl_to_record(p) for p in parsed] == records

    def test_reader_skips_comments_and_blanks(self):
        text = "# header comment\n\n" + dumps([make_record()])
        parsed = PiclReader(io.StringIO(text)).read_all()
        assert len(parsed) == 1

    def test_dumps_one_line_per_record(self):
        text = dumps([make_record(), make_record()])
        assert text.count("\n") == 2
