"""Statistical robustness of clock synchronization across random seeds.

Single-seed tests can pass by luck; these sweep seeds and assert the
convergence claims hold for *every* draw of offsets, drifts and jitter —
the property a deployment actually relies on.
"""

import statistics

import pytest

from repro.clocksync.brisk_sync import BriskSyncConfig
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.network import LinkModelConfig
from repro.sim.workload import PoissonWorkload

QUIET = LinkModelConfig(base_delay_us=200, jitter_mean_us=30)


def run_seed(seed: int, duration_s: float = 90.0) -> tuple[float, float]:
    """Return (initial spread, steady-state median spread) in µs."""
    sim = Simulator(seed=seed)
    config = DeploymentConfig(
        sync_period_us=5_000_000,
        sync=BriskSyncConfig(probes_per_round=4, rtt_gate_us=700),
        link=QUIET,
        exs_poll_interval_us=100_000,
        ism_tick_interval_us=50_000,
        warmup_sync_rounds=0,
    )
    dep = SimDeployment(sim, config, [])
    dep.add_nodes(8, max_offset_us=20_000, max_drift_ppm=5)
    for node in dep.nodes:
        dep.attach_workload(node, PoissonWorkload(rate_hz=10))
    initial = dep.true_skew_spread()
    dep.start()
    dep.monitor_skew(interval_us=1_000_000)
    dep.run(duration_s)
    steady = [
        s for t, s in dep.metrics.skew_spread_samples if t >= 30_000_000
    ]
    return initial, statistics.median(steady)


class TestSeedSweep:
    @pytest.mark.parametrize("seed", [1, 7, 1234])
    def test_converges_for_every_seed(self, seed):
        initial, steady = run_seed(seed)
        assert initial > 1_000  # genuinely unsynchronized at the start
        assert steady < 500  # and tightly mutually synced afterwards
        assert steady < initial / 10

    def test_steady_state_varies_little_across_seeds(self):
        medians = [run_seed(seed, duration_s=60.0)[1] for seed in (2, 3, 5)]
        # All in the same regime: no seed an order of magnitude worse.
        assert max(medians) < 10 * max(1.0, min(medians))
