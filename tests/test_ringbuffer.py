"""Unit tests for the SPSC ring buffer."""

import pytest
from tests.conftest import make_record

from repro.core import native
from repro.core.ringbuffer import (
    HEADER_SIZE,
    OverflowPolicy,
    RingBuffer,
    RingBufferFull,
    ring_for_records,
)


def small_ring(data_bytes: int = 256, policy=OverflowPolicy.DROP_NEW) -> RingBuffer:
    return RingBuffer(bytearray(HEADER_SIZE + data_bytes), policy)


class TestBasics:
    def test_empty_pop_returns_none(self):
        ring = small_ring()
        assert ring.pop() is None
        assert not ring

    def test_push_pop_roundtrip(self):
        ring = small_ring(1024)
        record = make_record()
        assert ring.push(record)
        assert ring.pop() == record
        assert ring.pop() is None

    def test_fifo_order(self):
        ring = small_ring(4096)
        for i in range(10):
            ring.push(make_record(event_id=i))
        assert [r.event_id for r in ring.drain()] == list(range(10))

    def test_used_free_accounting(self):
        ring = small_ring(1024)
        assert ring.free == 1024
        ring.push(make_record())
        assert ring.used > 0
        assert ring.used + ring.free == 1024
        ring.pop()
        assert ring.used == 0

    def test_iteration_is_destructive(self):
        ring = small_ring(1024)
        ring.push(make_record(event_id=1))
        ring.push(make_record(event_id=2))
        assert [r.event_id for r in ring] == [1, 2]
        assert not ring

    def test_peek_does_not_consume(self):
        ring = small_ring(1024)
        ring.push(make_record(event_id=7))
        first = ring.peek_bytes()
        assert first is not None
        assert ring.peek_bytes() == first
        assert ring.pop().event_id == 7

    def test_buffer_too_small_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(bytearray(HEADER_SIZE + 10))

    def test_readonly_buffer_rejected(self):
        with pytest.raises(ValueError):
            RingBuffer(bytes(4096))

    def test_oversize_record_rejected(self):
        ring = small_ring(256)
        big = make_record()
        with pytest.raises(ValueError):
            ring.push_bytes(b"x" * 200)


class TestWrapAround:
    def test_many_cycles_wrap_cleanly(self):
        ring = small_ring(300)
        record = make_record()
        for i in range(100):
            assert ring.push(make_record(event_id=i))
            popped = ring.pop()
            assert popped.event_id == i

    def test_partial_fill_then_wrap(self):
        ring = small_ring(512)
        pushed = 0
        popped = 0
        # Interleave pushes and pops so the write offset crosses the
        # boundary at many different phases.
        for cycle in range(50):
            while ring.push(make_record(event_id=pushed)):
                pushed += 1
                if pushed - popped > 3:
                    break
            record = ring.pop()
            assert record.event_id == popped
            popped += 1
        while (record := ring.pop()) is not None:
            assert record.event_id == popped
            popped += 1
        assert popped == pushed


class TestDropNew:
    def test_drop_counted(self):
        ring = small_ring(128)
        while ring.push(make_record()):
            pass
        assert ring.dropped == 1
        before = ring.used
        assert not ring.push(make_record())
        assert ring.dropped == 2
        assert ring.used == before  # nothing was written

    def test_raise_on_full(self):
        ring = small_ring(128)
        while ring.push(make_record()):
            pass
        with pytest.raises(RingBufferFull):
            ring.push(make_record(), raise_on_full=True)

    def test_drain_after_drop_preserves_existing(self):
        ring = small_ring(256)
        kept = 0
        while ring.push(make_record(event_id=kept)):
            kept += 1
        assert [r.event_id for r in ring.drain()] == list(range(kept))


class TestOverwriteOld:
    def test_overwrite_evicts_oldest(self):
        ring = small_ring(256, OverflowPolicy.OVERWRITE_OLD)
        total = 40
        for i in range(total):
            assert ring.push(make_record(event_id=i))
        survivors = [r.event_id for r in ring.drain()]
        assert survivors == list(range(total - len(survivors), total))
        assert ring.overwritten == total - len(survivors)
        assert ring.dropped == 0

    def test_overwrite_never_refuses(self):
        ring = small_ring(200, OverflowPolicy.OVERWRITE_OLD)
        for i in range(500):
            assert ring.push(make_record(event_id=i))


class TestSharedHeaderSemantics:
    def test_attach_adopts_existing_state(self):
        buf = bytearray(HEADER_SIZE + 512)
        producer = RingBuffer(buf)
        producer.push(make_record(event_id=11))
        consumer = RingBuffer(buf, attach=True)
        assert consumer.pop().event_id == 11
        # The producer sees the consumption through the shared header.
        assert producer.used == 0

    def test_fresh_init_clears_header(self):
        buf = bytearray(HEADER_SIZE + 512)
        RingBuffer(buf).push(make_record())
        fresh = RingBuffer(buf)  # re-init without attach
        assert fresh.used == 0
        assert fresh.dropped == 0


class TestFactory:
    def test_ring_for_records_capacity(self):
        ring = ring_for_records(100, approx_record_bytes=64)
        record = make_record()
        pushed = 0
        while ring.push(record) and pushed < 1000:
            pushed += 1
        assert pushed >= 90  # sized generously for the ask

    def test_drain_limit(self):
        ring = ring_for_records(50)
        for i in range(20):
            ring.push(make_record(event_id=i))
        first = ring.drain(limit=5)
        assert [r.event_id for r in first] == [0, 1, 2, 3, 4]
        assert len(ring.drain()) == 15

    def test_drain_bytes_matches_pack(self):
        ring = ring_for_records(10)
        record = make_record()
        ring.push(record)
        payloads = ring.drain_bytes()
        assert payloads == [native.pack_record(record)]
