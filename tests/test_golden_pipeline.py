"""Golden-trace conformance: the full pipeline is byte-stable.

A seeded simulated deployment — drifting clocks, BRISK sync, on-line
sorting, CRE, self-observability reporting — must produce *exactly* the
same PICL trace on every run, on every machine.  The golden artifact is
checked in at ``tests/data/golden_pipeline.picl``; any change to wire
framing, codec output, sorter policy, sync corrections, or the metrics
reporter that alters delivered bytes shows up as a diff here, on purpose.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python -m pytest tests/test_golden_pipeline.py \
        --regen-golden

and eyeball the diff before committing it.

Determinism ground rules baked into the scenario:

* ``decay_lambda=0`` — frame decay goes through ``math.exp``, the one
  libm call in the delivery path; zero keeps platform ULP differences
  out of the trace.
* the metrics reporter runs on *virtual* time and the simulation wires
  no stage timers, so no wall-clock quantity can leak into the records.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.core.consumers import CollectingConsumer, PiclFileConsumer
from repro.core.ism import IsmConfig
from repro.core.sorting import SorterConfig
from repro.obs.reporter import is_metric_record, snapshot_from_records
from repro.picl.format import PiclReader, TimestampMode, picl_to_record
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.workload import PeriodicWorkload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_pipeline.picl"

SEED = 0xB215C
NODES = 3
RATE_HZ = 120.0
DURATION_S = 4.0


def run_pipeline() -> tuple[str, list]:
    """One deterministic end-to-end run; returns (picl_text, records)."""
    sim = Simulator(seed=SEED)
    config = DeploymentConfig(
        ism=IsmConfig(sorter=SorterConfig(decay_lambda=0.0)),
        metrics_interval_us=1_000_000,
    )
    stream = io.StringIO()
    picl = PiclFileConsumer(stream, TimestampMode.UTC_MICROS, epoch_us=0)
    collected = CollectingConsumer()
    deployment = SimDeployment(sim, config, consumers=[picl, collected])
    for node in deployment.add_nodes(NODES):
        deployment.attach_workload(node, PeriodicWorkload(RATE_HZ))
    deployment.start()
    deployment.run(DURATION_S)
    deployment.stop()
    return stream.getvalue(), collected.records


@pytest.fixture(scope="module")
def pipeline_output():
    return run_pipeline()


class TestGoldenTrace:
    def test_trace_matches_golden(self, pipeline_output, pytestconfig):
        text, _ = pipeline_output
        if pytestconfig.getoption("--regen-golden"):
            GOLDEN_PATH.parent.mkdir(exist_ok=True)
            GOLDEN_PATH.write_text(text, encoding="ascii")
            pytest.skip(f"regenerated {GOLDEN_PATH}")
        assert GOLDEN_PATH.exists(), (
            f"golden trace missing; regenerate with --regen-golden"
        )
        golden = GOLDEN_PATH.read_text(encoding="ascii")
        assert text == golden, (
            "pipeline output diverged from the golden trace; if the "
            "change is intentional, rerun with --regen-golden and "
            "review the diff"
        )

    def test_run_is_reproducible_in_process(self, pipeline_output):
        """Two runs in the same interpreter agree byte-for-byte."""
        text, _ = pipeline_output
        again, _ = run_pipeline()
        assert text == again

    def test_golden_trace_parses_completely(self, pipeline_output):
        text, records = pipeline_output
        parsed = PiclReader(io.StringIO(text)).read_all()
        assert len(parsed) == len(records)
        assert len(parsed) > NODES * RATE_HZ * DURATION_S * 0.9

    def test_trace_is_time_sorted(self, pipeline_output):
        text, _ = pipeline_output
        ts = [r.timestamp for r in PiclReader(io.StringIO(text)).read_all()]
        inversions = sum(1 for a, b in zip(ts, ts[1:]) if b < a)
        assert inversions / len(ts) < 0.01

    def test_metrics_round_trip_through_picl(self, pipeline_output):
        """Self-emitted metrics survive the full path *and* PICL encoding."""
        text, _ = pipeline_output
        parsed = [
            picl_to_record(r)
            for r in PiclReader(io.StringIO(text)).read_all()
        ]
        metric_records = [r for r in parsed if is_metric_record(r)]
        assert metric_records, "no self-observability records in the trace"
        decoded = snapshot_from_records(parsed)
        assert decoded["sorter.pushed"] > 0
        assert decoded["cre.reason_table"] >= 0
        for node in range(1, NODES + 1):
            assert decoded[f"node{node}.sensor.emitted"] > 0

    def test_all_nodes_represented(self, pipeline_output):
        text, _ = pipeline_output
        parsed = PiclReader(io.StringIO(text)).read_all()
        assert {r.node for r in parsed} == set(range(1, NODES + 1))
