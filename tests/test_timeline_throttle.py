"""Unit tests for ASCII timeline rendering and the auto-throttle loop."""

import pytest
from tests.conftest import make_record

from repro.analysis.timeline import (
    GanttSpan,
    extract_spans,
    render_event_timeline,
    render_gantt,
    render_rate_heatmap,
)
from repro.analysis.trace import Trace
from repro.core.filtering import FilterSpec
from repro.core.records import EventRecord, FieldType
from repro.runtime.throttle import AutoThrottle, ThrottleConfig


def span_record(event_id: int, span_id: int, label: str, ts: int, node: int = 1):
    return EventRecord(
        event_id=event_id,
        timestamp=ts,
        field_types=(FieldType.X_UINT, FieldType.X_STRING),
        values=(span_id, label),
        node_id=node,
    )


class TestExtractSpans:
    def test_pairs_begin_end(self):
        trace = Trace(
            [
                span_record(10, 1, "solve", 100),
                span_record(11, 1, "solve", 600),
            ]
        )
        spans = extract_spans(trace, begin_event=10, end_event=11)
        assert spans == [GanttSpan(1, "solve", 100, 600)]
        assert spans[0].duration_us == 500

    def test_interleaved_spans_on_one_node(self):
        trace = Trace(
            [
                span_record(10, 1, "a", 0),
                span_record(10, 2, "b", 100),
                span_record(11, 1, "a", 200),
                span_record(11, 2, "b", 400),
            ]
        )
        spans = extract_spans(trace, 10, 11)
        assert [(s.label, s.start_us, s.end_us) for s in spans] == [
            ("a", 0, 200),
            ("b", 100, 400),
        ]

    def test_unmatched_begin_closes_at_trace_end(self):
        trace = Trace(
            [span_record(10, 1, "hang", 100), make_record(timestamp=900)]
        )
        spans = extract_spans(trace, 10, 11)
        assert spans[0].end_us == 900

    def test_same_span_id_on_different_nodes(self):
        trace = Trace(
            [
                span_record(10, 1, "x", 0, node=1),
                span_record(10, 1, "x", 10, node=2),
                span_record(11, 1, "x", 100, node=1),
                span_record(11, 1, "x", 200, node=2),
            ]
        )
        spans = extract_spans(trace, 10, 11)
        assert len(spans) == 2
        assert {s.node_id for s in spans} == {1, 2}

    def test_empty_trace(self):
        assert extract_spans(Trace([]), 10, 11) == []


class TestRenderers:
    def test_gantt_contains_labels_and_bars(self):
        spans = [
            GanttSpan(1, "solve", 0, 500_000),
            GanttSpan(2, "io", 250_000, 750_000),
        ]
        art = render_gantt(spans, width=40)
        lines = art.splitlines()
        assert "n1 solve" in lines[0]
        assert "█" in lines[0]
        # The later span's bar starts further right.
        assert lines[1].index("█") > lines[0].index("█")

    def test_gantt_empty(self):
        assert render_gantt([]) == "(no spans)"

    def test_heatmap_rows_per_node(self):
        records = [
            make_record(timestamp=t, node_id=node)
            for node in (1, 2)
            for t in range(0, 1_000_000, 10_000)
        ]
        art = render_rate_heatmap(Trace(records), bins=20)
        lines = art.splitlines()
        assert lines[0].startswith("node   1")
        assert lines[1].startswith("node   2")
        assert "peak" in lines[-1]

    def test_heatmap_empty(self):
        assert render_rate_heatmap(Trace([])) == "(empty trace)"

    def test_event_timeline_lane_per_event(self):
        records = [
            make_record(event_id=e, timestamp=t)
            for e in (1, 2)
            for t in (0, 500, 999)
        ]
        art = render_event_timeline(Trace(records), width=30)
        lines = art.splitlines()
        assert len(lines) == 2
        assert lines[0].count("|") >= 2

    def test_event_timeline_lane_cap(self):
        records = [
            make_record(event_id=e, timestamp=e) for e in range(20)
        ]
        art = render_event_timeline(Trace(records), max_lanes=5)
        assert "(+15 more event types)" in art


class FakePush:
    def __init__(self):
        self.calls: list[tuple[int, FilterSpec]] = []

    def __call__(self, exs_id: int, spec: FilterSpec) -> None:
        self.calls.append((exs_id, spec))


class TestAutoThrottle:
    def make(self, target=1_000.0):
        push = FakePush()
        throttle = AutoThrottle(
            push, ThrottleConfig(target_rate_hz=target, max_sample_every=8)
        )
        return push, throttle

    def test_first_observation_is_warmup(self):
        _, throttle = self.make()
        assert throttle.observe(0, {1: 0}) == "warmup"

    def test_holds_inside_band(self):
        push, throttle = self.make(target=1_000.0)
        throttle.observe(0, {1: 0})
        action = throttle.observe(1_000_000, {1: 1_000})  # exactly on target
        assert action == "hold"
        assert push.calls == []

    def test_tightens_busiest_source_on_overload(self):
        push, throttle = self.make(target=1_000.0)
        throttle.observe(0, {1: 0, 2: 0})
        action = throttle.observe(1_000_000, {1: 5_000, 2: 100})
        assert action == "tighten exs 1 -> 1/2"
        assert push.calls == [(1, FilterSpec(sample_every=2))]

    def test_tightening_doubles_until_cap(self):
        push, throttle = self.make(target=10.0)
        counts = 0
        throttle.observe(0, {1: 0})
        for step in range(1, 8):
            counts += 10_000
            action = throttle.observe(step * 1_000_000, {1: counts})
        assert throttle.sample_every[1] == 8  # capped by max_sample_every
        assert "saturated" in action

    def test_relaxes_when_quiet(self):
        push, throttle = self.make(target=1_000.0)
        throttle.observe(0, {1: 0})
        throttle.observe(1_000_000, {1: 10_000})  # overload → 1/2
        action = throttle.observe(2_000_000, {1: 10_050})  # now quiet
        assert action == "relax exs 1 -> 1/1"
        assert (1, FilterSpec(sample_every=1)) in push.calls
        assert throttle.sample_every == {}

    def test_no_relax_without_active_sampling(self):
        push, throttle = self.make(target=1_000.0)
        throttle.observe(0, {1: 0})
        assert throttle.observe(1_000_000, {1: 10}) == "hold"

    def test_decision_log(self):
        _, throttle = self.make()
        throttle.observe(0, {1: 0})
        throttle.observe(1_000_000, {1: 100})
        assert len(throttle.decisions) == 1
        now, rate, action = throttle.decisions[0]
        assert rate == pytest.approx(100.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ThrottleConfig(target_rate_hz=0)
        with pytest.raises(ValueError):
            ThrottleConfig(low_water=1.5)
        with pytest.raises(ValueError):
            ThrottleConfig(max_sample_every=0)
