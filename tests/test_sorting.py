"""Unit tests for the on-line sorter (heap merge + adaptive time frame)."""

import pytest
from tests.conftest import make_record

from repro.core.sorting import OnlineSorter, SorterConfig


def drain_all(sorter: OnlineSorter, now: int):
    return sorter.flush(now)


class TestMerge:
    def test_merges_two_sources_by_timestamp(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=0))
        for ts in (10, 30, 50):
            sorter.push(1, make_record(timestamp=ts), now=ts)
        for ts in (20, 40, 60):
            sorter.push(2, make_record(timestamp=ts), now=ts)
        out = sorter.extract(now=1000)
        assert [r.timestamp for r in out] == [10, 20, 30, 40, 50, 60]

    def test_release_respects_time_frame(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=100, decay_lambda=0.0))
        sorter.push(1, make_record(timestamp=50), now=50)
        assert sorter.extract(now=149) == []  # 50 + 100 > 149
        assert len(sorter.extract(now=150)) == 1

    def test_records_within_source_stay_fifo(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=0))
        for ts in (5, 6, 7):
            sorter.push(1, make_record(timestamp=ts, event_id=ts), now=ts)
        out = sorter.extract(now=100)
        assert [r.event_id for r in out] == [5, 6, 7]

    def test_many_sources(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=0))
        for src in range(10):
            for k in range(5):
                ts = k * 10 + src
                sorter.push(src, make_record(timestamp=ts), now=0)
        out = sorter.extract(now=10_000)
        ts = [r.timestamp for r in out]
        assert ts == sorted(ts)
        assert len(out) == 50

    def test_flush_releases_everything(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=10**6))
        sorter.push(1, make_record(timestamp=10), now=10)
        sorter.push(2, make_record(timestamp=5), now=10)
        out = sorter.flush(now=11)
        assert [r.timestamp for r in out] == [5, 10]
        assert sorter.held == 0

    def test_held_and_sources(self):
        sorter = OnlineSorter()
        sorter.add_source(3)
        assert sorter.sources == (3,)
        sorter.push(3, make_record(timestamp=1), now=1)
        assert sorter.held == 1


class TestAdaptiveFrame:
    def test_arrival_lateness_grows_frame(self):
        config = SorterConfig(
            initial_frame_us=10, decay_lambda=0.0, growth_signal="arrival"
        )
        sorter = OnlineSorter(config)
        sorter.push(1, make_record(timestamp=100), now=100)
        sorter.extract(now=200)  # released; watermark ts=100
        # A straggler from source 2: ts=50, arriving at 300 → lateness 250.
        sorter.push(2, make_record(timestamp=50), now=300)
        assert sorter.frame_us == pytest.approx(250.0)

    def test_watermark_growth_signal(self):
        config = SorterConfig(
            initial_frame_us=10, decay_lambda=0.0, growth_signal="watermark"
        )
        sorter = OnlineSorter(config)
        sorter.push(1, make_record(timestamp=100), now=100)
        sorter.extract(now=200)
        sorter.push(2, make_record(timestamp=50), now=300)
        assert sorter.frame_us == 10  # grows only at extraction
        sorter.extract(now=400)
        assert sorter.frame_us == pytest.approx(50.0)  # watermark lateness

    def test_growth_factor_scales(self):
        config = SorterConfig(
            initial_frame_us=0,
            decay_lambda=0.0,
            growth_factor=2.0,
            growth_signal="arrival",
        )
        sorter = OnlineSorter(config)
        sorter.push(1, make_record(timestamp=100), now=100)
        sorter.extract(now=150)
        sorter.push(2, make_record(timestamp=80), now=180)  # lateness 100
        assert sorter.frame_us == pytest.approx(200.0)

    def test_frame_capped_at_max(self):
        config = SorterConfig(
            initial_frame_us=0, max_frame_us=500, decay_lambda=0.0
        )
        sorter = OnlineSorter(config)
        sorter.push(1, make_record(timestamp=10_000), now=10_000)
        sorter.extract(now=20_000)
        sorter.push(2, make_record(timestamp=1), now=20_000)
        assert sorter.frame_us == 500.0

    def test_exponential_decay_toward_floor(self):
        config = SorterConfig(
            initial_frame_us=1_000, min_frame_us=100, decay_lambda=1.0
        )
        sorter = OnlineSorter(config)
        sorter.extract(now=0)
        sorter.extract(now=1_000_000)  # one second → factor e^-1
        assert sorter.frame_us == pytest.approx(100 + 900 * 0.36787944117)

    def test_zero_decay_keeps_frame(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=777, decay_lambda=0.0))
        sorter.extract(now=0)
        sorter.extract(now=10**9)
        assert sorter.frame_us == 777.0

    def test_out_of_order_counted_only_across_sources(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=0, decay_lambda=0.0))
        sorter.push(1, make_record(timestamp=100), now=100)
        sorter.extract(now=200)
        # Same source delivering an older ts (malformed input) is not
        # counted as cross-source disorder.
        sorter.push(1, make_record(timestamp=50), now=300)
        sorter.extract(now=300)
        assert sorter.stats.out_of_order == 0
        sorter.push(2, make_record(timestamp=40), now=400)
        sorter.extract(now=400)
        assert sorter.stats.out_of_order == 1

    def test_lateness_stats_recorded(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=0, decay_lambda=0.0))
        sorter.push(1, make_record(timestamp=100), now=100)
        sorter.extract(now=100)
        sorter.push(2, make_record(timestamp=70), now=150)
        sorter.extract(now=150)
        assert sorter.stats.lateness_us.count == 1
        assert sorter.stats.lateness_us.mean == pytest.approx(30.0)


class TestOverloadBound:
    def test_force_release_over_max_held(self):
        config = SorterConfig(initial_frame_us=10**7, max_held=10)
        sorter = OnlineSorter(config)
        for i in range(25):
            sorter.push(1, make_record(timestamp=i), now=i)
        out = sorter.extract(now=30)
        # Everything above the bound was force-released despite the frame.
        assert len(out) == 15
        assert sorter.held == 10
        assert sorter.stats.forced == 15

    def test_forced_releases_still_sorted_among_held(self):
        config = SorterConfig(initial_frame_us=10**7, max_held=2)
        sorter = OnlineSorter(config)
        sorter.push(1, make_record(timestamp=30), now=0)
        sorter.push(2, make_record(timestamp=10), now=0)
        sorter.push(3, make_record(timestamp=20), now=0)
        out = sorter.extract(now=1)
        assert [r.timestamp for r in out] == [10]


class TestStats:
    def test_hold_time_tracked(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=100, decay_lambda=0.0))
        sorter.push(1, make_record(timestamp=0), now=0)
        sorter.extract(now=150)
        assert sorter.stats.hold_time_us.mean == pytest.approx(150.0)

    def test_pushed_released_counts(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=0))
        for i in range(5):
            sorter.push(1, make_record(timestamp=i), now=i)
        sorter.extract(now=100)
        assert sorter.stats.pushed == 5
        assert sorter.stats.released == 5


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"initial_frame_us": -1},
            {"min_frame_us": -1},
            {"max_frame_us": 10, "min_frame_us": 20},
            {"growth_factor": 0.0},
            {"decay_lambda": -0.5},
            {"max_held": 0},
            {"growth_signal": "bogus"},
        ],
    )
    def test_rejects_bad_config(self, kwargs):
        with pytest.raises(ValueError):
            SorterConfig(**kwargs)


class TestHeldCounter:
    def test_held_tracks_push_and_extract(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=10**9))
        for i in range(10):
            sorter.push(i % 3, make_record(timestamp=i), now=i)
        assert sorter.held == 10
        sorter.flush(now=100)
        assert sorter.held == 0

    def test_overload_force_release_triggers_at_exactly_max_held(self):
        # Frame far in the future: nothing releases except under overload.
        config = SorterConfig(initial_frame_us=10**9, max_held=5)
        sorter = OnlineSorter(config)
        for i in range(5):
            sorter.push(1, make_record(timestamp=i), now=i)
        # Exactly at the bound: no force release.
        assert sorter.extract(now=10) == []
        assert sorter.stats.forced == 0
        assert sorter.held == 5
        # One past the bound: force-release back down to exactly max_held.
        sorter.push(2, make_record(timestamp=100), now=100)
        released = sorter.extract(now=101)
        assert len(released) == 1
        assert sorter.stats.forced == 1
        assert sorter.held == config.max_held

    def test_held_matches_queue_sum_under_interleaving(self):
        sorter = OnlineSorter(SorterConfig(initial_frame_us=50))
        for i in range(20):
            sorter.push(i % 4, make_record(timestamp=i * 10), now=i * 10)
            if i % 5 == 4:
                sorter.extract(now=i * 10 + 60)
        expected = sum(len(q) for q in sorter._queues.values())
        assert sorter.held == expected
