"""Unit tests for RFC 5531 record marking (stream framing)."""

import struct

import pytest

from repro.xdr import RecordMarkingReader, XdrDecodeError, frame_record, split_records


class TestFraming:
    def test_frame_sets_last_fragment_bit(self):
        frame = frame_record(b"abc")
        (header,) = struct.unpack(">I", frame[:4])
        assert header & 0x8000_0000
        assert header & 0x7FFF_FFFF == 3
        assert frame[4:] == b"abc"

    def test_empty_payload(self):
        assert split_records(frame_record(b"")) == [b""]

    def test_multiple_records(self):
        data = frame_record(b"one") + frame_record(b"two") + frame_record(b"three")
        assert split_records(data) == [b"one", b"two", b"three"]


class TestIncrementalReader:
    def test_byte_at_a_time(self):
        data = frame_record(b"hello") + frame_record(b"world")
        reader = RecordMarkingReader()
        records = []
        for i in range(len(data)):
            records.extend(reader.feed(data[i : i + 1]))
        assert records == [b"hello", b"world"]
        assert reader.pending_bytes == 0

    def test_chunk_spanning_boundary(self):
        data = frame_record(b"aaaa") + frame_record(b"bbbb")
        reader = RecordMarkingReader()
        records = list(reader.feed(data[:6]))
        assert records == []
        records = list(reader.feed(data[6:]))
        assert records == [b"aaaa", b"bbbb"]

    def test_multi_fragment_record(self):
        # Two fragments: "hel" (more follows) + "lo" (last).
        data = (
            struct.pack(">I", 3) + b"hel" + struct.pack(">I", 0x8000_0000 | 2) + b"lo"
        )
        reader = RecordMarkingReader()
        assert list(reader.feed(data)) == [b"hello"]

    def test_pending_partial_record_detected(self):
        data = frame_record(b"abcdef")[:-2]
        with pytest.raises(XdrDecodeError):
            split_records(data)

    def test_oversize_record_rejected(self):
        reader = RecordMarkingReader(max_record=8)
        with pytest.raises(XdrDecodeError):
            list(reader.feed(frame_record(b"x" * 9)))

    def test_oversize_limit_counts_reassembled_size(self):
        reader = RecordMarkingReader(max_record=4)
        # Two 3-byte fragments of one record exceed the 4-byte limit.
        data = struct.pack(">I", 3) + b"abc" + struct.pack(">I", 0x8000_0000 | 3) + b"def"
        with pytest.raises(XdrDecodeError):
            list(reader.feed(data))

    def test_payload_too_large_to_frame(self):
        class Huge(bytes):
            # Fake a 2 GiB payload without allocating one.
            def __len__(self) -> int:
                return 0x8000_0000

        with pytest.raises(ValueError):
            frame_record(Huge())

    def test_reader_resumes_after_each_record(self):
        reader = RecordMarkingReader()
        out1 = list(reader.feed(frame_record(b"1")))
        out2 = list(reader.feed(frame_record(b"2")))
        assert (out1, out2) == ([b"1"], [b"2"])
