"""Unit tests for the BRISK wire protocol (batches + control messages)."""

import pytest
from tests.conftest import make_mixed_record, make_record

from repro.core.records import EventRecord, FieldType
from repro.wire import protocol
from repro.wire.protocol import (
    MAGIC,
    Adjust,
    Batch,
    Bye,
    Hello,
    ProtocolError,
    TimeReply,
    TimeRequest,
    decode_message,
    encode_batch_records,
    encode_message,
    record_wire_size,
)


def roundtrip_batch(records, **opts) -> Batch:
    encoded = encode_batch_records(7, 3, records, **opts)
    msg = decode_message(encoded)
    assert isinstance(msg, Batch)
    return msg


class TestBatchRoundtrip:
    def test_six_int_records(self):
        records = [make_record(event_id=i, timestamp=1000 + i) for i in range(5)]
        batch = roundtrip_batch(records)
        assert batch.exs_id == 7
        assert batch.seq == 3
        assert list(batch.records) == records

    def test_empty_batch(self):
        batch = roundtrip_batch([])
        assert batch.records == ()

    def test_all_field_types(self):
        batch = roundtrip_batch([make_mixed_record()])
        # node_id travels out of band (see test_node_id_not_transmitted).
        assert batch.records[0] == make_mixed_record().with_node(0)

    def test_wide_record_meta_extension_words(self):
        record = EventRecord(
            event_id=1,
            timestamp=5,
            field_types=(FieldType.X_INT,) * 23,
            values=tuple(range(23)),
        )
        batch = roundtrip_batch([record])
        assert batch.records[0] == record

    def test_uncompressed_meta(self):
        records = [make_record()]
        batch = roundtrip_batch(records, compress_meta=False)
        assert list(batch.records) == records

    def test_delta_ts(self):
        records = [
            make_record(timestamp=1_000_000),
            make_record(timestamp=1_000_500),
            make_record(timestamp=999_000),  # negative delta
        ]
        batch = roundtrip_batch(records, delta_ts=True)
        assert [r.timestamp for r in batch.records] == [
            1_000_000,
            1_000_500,
            999_000,
        ]

    def test_delta_ts_escape_for_large_delta(self):
        records = [
            make_record(timestamp=0),
            make_record(timestamp=2**40),  # delta exceeds int32
        ]
        batch = roundtrip_batch(records, delta_ts=True)
        assert batch.records[1].timestamp == 2**40

    def test_node_id_not_transmitted(self):
        # Node identity is implied by the connection; the ISM stamps it.
        batch = roundtrip_batch([make_record(node_id=9)])
        assert batch.records[0].node_id == 0


class TestWireSize:
    def test_paper_figure_40_bytes_for_six_ints(self):
        record = make_record()
        assert record_wire_size(record) == 40

    def test_size_matches_actual_encoding(self):
        for opts in (
            {},
            {"compress_meta": False},
            {"delta_ts": True},
        ):
            record = make_record(timestamp=1000)
            one = len(encode_batch_records(1, 0, [record], **opts))
            two = len(encode_batch_records(1, 0, [record, record], **opts))
            assert two - one == record_wire_size(record, **opts)

    def test_compression_saves_bytes(self):
        record = make_record()
        assert record_wire_size(record, compress_meta=False) == 40 + 6 * 4
        assert record_wire_size(record) == 40

    def test_delta_ts_saves_four_bytes(self):
        record = make_record()
        assert record_wire_size(record, delta_ts=True) == 36

    def test_wide_record_meta_size(self):
        record = EventRecord(
            event_id=1,
            timestamp=0,
            field_types=(FieldType.X_INT,) * 14,
            values=(0,) * 14,
        )
        # 6 codes in word 0, 8 in one extension word.
        assert record_wire_size(record) == 4 + 8 + 8 + 14 * 4


class TestControlMessages:
    @pytest.mark.parametrize(
        "msg",
        [
            Hello(exs_id=1, node_id=2, advertised_rate=38_000),
            TimeRequest(probe_id=5),
            TimeReply(probe_id=5, slave_time=123_456_789),
            Adjust(correction=250, round_id=3),
            Bye(reason="done"),
            Bye(),
        ],
    )
    def test_roundtrip(self, msg):
        assert decode_message(encode_message(msg)) == msg

    def test_adjust_negative_correction_roundtrip(self):
        # Cristian baseline sends signed corrections.
        msg = Adjust(correction=-1000)
        assert decode_message(encode_message(msg)) == msg

    def test_unknown_object_rejected(self):
        with pytest.raises(TypeError):
            encode_message(object())


class TestProtocolErrors:
    def test_bad_magic(self):
        encoded = bytearray(encode_message(TimeRequest(probe_id=1)))
        encoded[0] ^= 0xFF
        with pytest.raises(ProtocolError):
            decode_message(bytes(encoded))

    def test_unknown_message_type(self):
        from repro.xdr import XdrEncoder

        enc = XdrEncoder()
        enc.pack_uint(MAGIC)
        enc.pack_uint(99)
        with pytest.raises(ProtocolError):
            decode_message(enc.getvalue())

    def test_truncated_batch(self):
        encoded = encode_batch_records(1, 0, [make_record()])
        with pytest.raises(Exception):
            decode_message(encoded[:-4])

    def test_trailing_garbage_rejected(self):
        encoded = encode_message(TimeRequest(probe_id=1)) + b"\x00\x00\x00\x00"
        with pytest.raises(Exception):
            decode_message(encoded)

    def test_absurd_field_count_rejected(self):
        from repro.xdr import XdrEncoder

        enc = XdrEncoder()
        enc.pack_uint(MAGIC)
        enc.pack_uint(protocol.MsgType.BATCH)
        enc.pack_uint(protocol._FLAG_COMPRESS_META)
        enc.pack_uint(1)  # exs
        enc.pack_uint(0)  # seq
        enc.pack_uint(1)  # one record
        enc.pack_hyper(0)  # base ts
        enc.pack_uint(5)  # event id
        enc.pack_uint(0xFF << 24)  # 255 fields claimed, no codes follow
        with pytest.raises(Exception):
            decode_message(enc.getvalue())
