"""Unit tests for the benchmark report aggregator."""

import pathlib

from repro.tools.report_cli import build_report, experiment_of, main


class TestExperimentMapping:
    def test_known_files(self):
        assert experiment_of("test_notice_dynamic_six_ints") == "E1"
        assert experiment_of("test_aggregate_throughput_vs_nodes") == "E5"
        assert experiment_of("test_quiet_lan_skew") == "E6"
        assert experiment_of("test_filter_placement") == "A8"

    def test_unknown_files(self):
        assert experiment_of("test_something_else") == "misc"


class TestBuildReport:
    def make_results(self, tmp_path: pathlib.Path) -> pathlib.Path:
        results = tmp_path / "results"
        results.mkdir()
        (results / "test_quiet_lan_skew.txt").write_text(
            "# bench::test_quiet_lan_skew\nmedian 79 us\n"
        )
        (results / "test_filter_placement.txt").write_text(
            "# bench::test_filter_placement\nsource wins\n"
        )
        (results / "test_notice_dynamic_six_ints.txt").write_text(
            "# bench::test_notice_dynamic_six_ints\n10.7 us\n"
        )
        return results

    def test_groups_and_orders_experiments(self, tmp_path):
        report = build_report(self.make_results(tmp_path))
        # E-sections precede A-sections, in numeric order.
        assert report.index("## E1") < report.index("## E6")
        assert report.index("## E6") < report.index("## A8")
        assert "median 79 us" in report
        assert "source wins" in report

    def test_empty_directory(self, tmp_path):
        empty = tmp_path / "none"
        empty.mkdir()
        assert "(no result files found)" in build_report(empty)

    def test_main_writes_output(self, tmp_path, capsys):
        results = self.make_results(tmp_path)
        out = tmp_path / "report.md"
        assert main([str(results), "-o", str(out)]) == 0
        assert out.read_text().startswith("# BRISK benchmark report")

    def test_main_stdout(self, tmp_path, capsys):
        results = self.make_results(tmp_path)
        assert main([str(results)]) == 0
        assert "# BRISK benchmark report" in capsys.readouterr().out

    def test_main_missing_dir(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 1
