"""Unit tests for event filtering and the multi-ring external sensor."""

import pytest
from tests.conftest import make_record
from tests.test_clocks import FakeTime

from repro.clocksync.clocks import CorrectedClock, DriftingClock
from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.filtering import FilteringConsumer, FilterSpec, FilterState
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.wire import protocol


class TestFilterSpec:
    def test_pass_through_default(self):
        spec = FilterSpec()
        assert spec.is_pass_through
        assert spec.admits(make_record())

    def test_whitelist(self):
        spec = FilterSpec(allowed_events={1, 2})
        assert spec.admits(make_record(event_id=1))
        assert not spec.admits(make_record(event_id=3))

    def test_empty_whitelist_blocks_everything(self):
        spec = FilterSpec(allowed_events=frozenset())
        assert not spec.admits(make_record(event_id=1))

    def test_blocklist_applies_after_whitelist(self):
        spec = FilterSpec(allowed_events={1, 2}, blocked_events={2})
        assert spec.admits(make_record(event_id=1))
        assert not spec.admits(make_record(event_id=2))

    def test_node_filter(self):
        spec = FilterSpec(allowed_nodes={5})
        assert spec.admits(make_record(node_id=5))
        assert not spec.admits(make_record(node_id=6))

    def test_normalizes_plain_iterables(self):
        spec = FilterSpec(allowed_events=[1, 2], blocked_events=[3])
        assert isinstance(spec.allowed_events, frozenset)
        assert isinstance(spec.blocked_events, frozenset)
        assert hash(spec)  # stays hashable

    def test_sample_every_validation(self):
        with pytest.raises(ValueError):
            FilterSpec(sample_every=0)


class TestFilterState:
    def test_sampling_keeps_every_nth_per_event(self):
        state = FilterState(FilterSpec(sample_every=3))
        kept = [state.admit(make_record(event_id=1)) for _ in range(9)]
        assert kept == [True, False, False] * 3
        # A different event id has its own counter.
        assert state.admit(make_record(event_id=2))

    def test_counters(self):
        state = FilterState(FilterSpec(blocked_events={9}))
        state.admit(make_record(event_id=9))
        state.admit(make_record(event_id=1))
        assert state.dropped == 1
        assert state.passed == 1


class TestFilteringConsumer:
    def test_inner_sees_only_admitted(self):
        inner = CollectingConsumer()
        consumer = FilteringConsumer(inner, FilterSpec(allowed_events={1}))
        consumer.deliver(make_record(event_id=1))
        consumer.deliver(make_record(event_id=2))
        assert [r.event_id for r in inner.records] == [1]

    def test_close_propagates(self):
        class Closeable(CollectingConsumer):
            closed = False

            def close(self):
                self.closed = True

        inner = Closeable()
        FilteringConsumer(inner, FilterSpec()).close()
        assert inner.closed


class TestSetFilterMessage:
    def test_roundtrip(self):
        msg = protocol.SetFilter(
            allow_all_events=False,
            allowed_events=(1, 2, 3),
            blocked_events=(9,),
            sample_every=5,
        )
        assert protocol.decode_message(protocol.encode_message(msg)) == msg

    def test_spec_roundtrip(self):
        spec = FilterSpec(allowed_events={4, 5}, blocked_events={5}, sample_every=2)
        rebuilt = protocol.SetFilter.from_spec(spec).to_spec()
        assert rebuilt.allowed_events == spec.allowed_events
        assert rebuilt.blocked_events == spec.blocked_events
        assert rebuilt.sample_every == spec.sample_every

    def test_allow_all_distinct_from_empty_whitelist(self):
        allow_all = protocol.SetFilter(allow_all_events=True).to_spec()
        block_all = protocol.SetFilter(allow_all_events=False).to_spec()
        assert allow_all.admits(make_record())
        assert not block_all.admits(make_record())


def make_exs(rings, config=ExsConfig(batch_max_records=1000, flush_timeout_us=0)):
    t = FakeTime(1_000_000)
    clock = CorrectedClock(DriftingClock(t))
    return t, ExternalSensor(1, 1, rings, clock, config)


class TestExsFiltering:
    def test_filter_applied_before_shipping(self):
        ring = ring_for_records(100)
        sensor = Sensor(ring, node_id=1, clock=FakeTime(5))
        t, exs = make_exs(ring)
        exs.on_set_filter(
            protocol.SetFilter(allow_all_events=False, allowed_events=(1,))
        )
        sensor.notice_ints(1, 10)
        sensor.notice_ints(2, 20)
        sensor.notice_ints(1, 30)
        batches = [protocol.decode_message(p) for p in exs.flush()]
        shipped = [r.values[0] for b in batches for r in b.records]
        assert shipped == [10, 30]
        assert exs.stats.records_filtered == 1

    def test_pass_through_filter_cleared(self):
        ring = ring_for_records(100)
        t, exs = make_exs(ring)
        exs.on_set_filter(protocol.SetFilter(allow_all_events=False))
        assert exs.filter is not None
        exs.on_set_filter(protocol.SetFilter())  # reset to keep-all
        assert exs.filter is None


class TestMultiRingExs:
    def test_drains_all_rings_merged_by_timestamp(self):
        clock_a, clock_b = FakeTime(0), FakeTime(0)
        ring_a, ring_b = ring_for_records(100), ring_for_records(100)
        sensor_a = Sensor(ring_a, node_id=1, clock=clock_a)
        sensor_b = Sensor(ring_b, node_id=1, clock=clock_b)
        # Interleaved timestamps across the two application processes.
        for ts in (10, 30, 50):
            clock_a.value = ts
            sensor_a.notice_ints(1, ts)
        for ts in (20, 40, 60):
            clock_b.value = ts
            sensor_b.notice_ints(2, ts)
        t, exs = make_exs([ring_a, ring_b])
        batches = [protocol.decode_message(p) for p in exs.flush()]
        shipped = [r.values[0] for b in batches for r in b.records]
        assert shipped == [10, 20, 30, 40, 50, 60]
        assert exs.stats.records_drained == 6

    def test_add_ring_later(self):
        ring_a = ring_for_records(100)
        t, exs = make_exs(ring_a)
        ring_b = ring_for_records(100)
        exs.add_ring(ring_b)
        Sensor(ring_b, node_id=1, clock=FakeTime(1)).notice_ints(9, 1)
        batches = [protocol.decode_message(p) for p in exs.flush()]
        assert sum(len(b.records) for b in batches) == 1

    def test_single_ring_accessor(self):
        ring = ring_for_records(100)
        _, exs = make_exs(ring)
        assert exs.ring is ring

    def test_requires_a_ring(self):
        with pytest.raises(ValueError):
            make_exs([])

    def test_drain_limit_shared_across_rings(self):
        rings = [ring_for_records(1000) for _ in range(4)]
        clock = FakeTime(1)
        for ring in rings:
            sensor = Sensor(ring, node_id=1, clock=clock)
            for k in range(10):
                sensor.notice_ints(1, k)
        t, exs = make_exs(
            rings, ExsConfig(batch_max_records=1000, drain_limit=8,
                             flush_timeout_us=10**9)
        )
        exs.poll(now_local=1)
        # 8 // 4 rings = 2 records pulled per ring this cycle.
        assert exs.stats.records_drained == 8
