"""The self-observability layer: instruments, registry, reporter, render."""


import pytest

from repro.core.records import FieldType
from repro.core.ringbuffer import OverflowPolicy, RingBuffer
from repro.core.sensor import Sensor
from repro.obs.metrics import (
    DEFAULT_US_EDGES,
    Counter,
    FixedHistogram,
    Gauge,
    MetricsRegistry,
    MetricsSnapshot,
    StageTimer,
)
from repro.obs.render import render_histogram, render_snapshot
from repro.obs.reporter import (
    METRICS_EVENT_ID,
    MetricsReporter,
    is_metric_record,
    metric_from_record,
    scalars_snapshot,
    snapshot_from_records,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c == 0
        c.inc()
        c.inc(4)
        assert c == 5

    def test_int_like_surface(self):
        """Existing ``+= 1`` / comparison call sites must keep working."""
        c = Counter("x", 3)
        c += 2
        assert isinstance(c, Counter)  # __iadd__ mutates, never rebinds to int
        assert int(c) == 5
        assert c > 4 and c >= 5 and c < 6 and c <= 5 and c != 4
        assert c + 1 == 6 and 1 + c == 6 and c - 2 == 3 and 7 - c == 2
        assert list(range(c)) == [0, 1, 2, 3, 4]  # __index__

    def test_identity_hash(self):
        a, b = Counter("x", 1), Counter("x", 1)
        assert len({a, b}) == 2

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_read(self):
        g = Gauge("depth")
        assert g.value == 0.0
        g.set(7.5)
        assert g.value == 7.5


class TestFixedHistogram:
    def test_bucket_assignment(self):
        h = FixedHistogram("lat", edges=(10.0, 100.0))
        for x in (5, 10, 50, 100, 500):
            h.observe(x)
        snap = h.snapshot()
        # Buckets are half-open [edges[i], edges[i+1]).
        assert snap.counts == (2,)
        assert snap.underflow == 1
        assert snap.overflow == 2
        assert snap.count == 5
        assert snap.maximum == 500

    def test_edges_must_strictly_increase(self):
        with pytest.raises(ValueError):
            FixedHistogram("bad", edges=(10.0, 10.0))
        with pytest.raises(ValueError):
            FixedHistogram("bad", edges=(10.0,))

    def test_merge_adds_buckets_and_stats(self):
        a = FixedHistogram("lat", edges=DEFAULT_US_EDGES)
        b = FixedHistogram("lat", edges=DEFAULT_US_EDGES)
        xs, ys = [3, 18, 90, 20_000], [7, 44, 800_000]
        for x in xs:
            a.observe(x)
        for y in ys:
            b.observe(y)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.count == len(xs) + len(ys)
        assert merged.maximum == 800_000
        assert merged.mean == pytest.approx(
            sum(xs + ys) / len(xs + ys)
        )
        assert sum(merged.counts) + merged.overflow + merged.underflow == 7

    def test_merge_rejects_different_edges(self):
        a = FixedHistogram("lat", edges=(1.0, 2.0)).snapshot()
        b = FixedHistogram("lat", edges=(1.0, 3.0)).snapshot()
        with pytest.raises(ValueError):
            a.merge(b)

    def test_snapshot_is_isolated_from_later_observes(self):
        h = FixedHistogram("lat", edges=(10.0, 100.0))
        h.observe(5)
        snap = h.snapshot()
        h.observe(50)
        h.observe(1e6)
        assert snap.count == 1
        assert snap.maximum == 5


class TestStageTimer:
    def test_accumulates_busy_time(self):
        timer = StageTimer(FixedHistogram("stage_us", DEFAULT_US_EDGES))
        t0 = timer.start()
        x = sum(range(1000))
        timer.stop(t0)
        assert x == 499500
        assert timer.total_ns > 0
        assert timer.hist.snapshot().count == 1


class TestMetricsRegistry:
    def test_instruments_idempotent_by_name(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")
        assert r.timer("t") is r.timer("t")

    def test_snapshot_scalars(self):
        r = MetricsRegistry()
        r.counter("dropped").inc(3)
        r.gauge("depth").set(2.0)
        r.gauge_fn("live", lambda: 9)
        snap = r.snapshot()
        values = dict(snap.scalars())
        assert values["dropped"] == 3.0
        assert values["depth"] == 2.0
        assert values["live"] == 9.0
        assert snap.get("dropped") == 3.0
        assert "depth" in snap

    def test_failing_gauge_fn_is_skipped(self):
        r = MetricsRegistry()
        r.counter("ok").inc()
        r.gauge_fn("boom", lambda: 1 / 0)
        snap = r.snapshot()
        assert snap.get("ok") == 1.0
        assert "boom" not in snap

    def test_adopt_counter(self):
        r = MetricsRegistry()
        c = Counter("ext.count", 4)
        r.adopt_counter(c)
        assert r.snapshot().get("ext.count") == 4.0

    def test_intrusion_fractions(self):
        r = MetricsRegistry()
        timer = r.timer("stage_us")
        t0 = timer.start()
        sum(range(10_000))
        timer.stop(t0)
        fractions = r.intrusion_fractions()
        assert 0.0 < fractions["stage_us"] <= 1.0
        # The snapshot publishes them with a .busy_fraction suffix.
        assert "stage_us.busy_fraction" in r.snapshot()

    def test_uptime_monotonic(self):
        r = MetricsRegistry()
        assert r.snapshot().uptime_s >= 0.0


class TestSnapshotMerge:
    def test_merge_sums_scalars_and_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(5)
        b.counter("only_b").inc(1)
        a.histogram("h").observe(10)
        b.histogram("h").observe(30)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.get("n") == 7.0
        assert merged.get("only_b") == 1.0
        assert merged.histograms["h"].count == 2
        assert merged.histograms["h"].mean == pytest.approx(20.0)


class TestReporterRoundTrip:
    def _pipeline(self):
        ring = RingBuffer(bytearray(64 * 1024), OverflowPolicy.DROP_NEW)
        sensor = Sensor(ring, node_id=1, clock=lambda: 42)
        return ring, sensor

    def test_emits_metric_records_through_sensor(self):
        ring, sensor = self._pipeline()
        registry = MetricsRegistry()
        registry.counter("stage.dropped").inc(3)
        registry.gauge("queue.depth").set(2.0)
        reporter = MetricsReporter(registry, sensor, interval_us=1_000_000)

        assert reporter.maybe_emit(now=0)  # first call always fires
        assert not reporter.maybe_emit(now=500_000)  # inside the interval
        assert reporter.maybe_emit(now=1_000_000)
        assert int(reporter.emissions) == 2

        records = ring.drain()
        assert records
        assert all(is_metric_record(r) for r in records)
        decoded = snapshot_from_records(records)
        assert decoded["stage.dropped"] == 3.0
        assert decoded["queue.depth"] == 2.0

    def test_later_samples_win(self):
        ring, sensor = self._pipeline()
        registry = MetricsRegistry()
        c = registry.counter("n")
        reporter = MetricsReporter(registry, sensor)
        c.inc(1)
        reporter.emit_now(now=0)
        c.inc(9)
        reporter.emit_now(now=1)
        assert snapshot_from_records(ring.drain())["n"] == 10.0

    def test_non_metric_records_ignored(self):
        ring, sensor = self._pipeline()
        sensor.notice(7, (FieldType.X_INT, 1))
        sensor.notice(
            METRICS_EVENT_ID, (FieldType.X_INT, 1), (FieldType.X_INT, 2)
        )  # right id, wrong field types
        records = ring.drain()
        assert not any(is_metric_record(r) for r in records)
        assert snapshot_from_records(records) == {}

    def test_metric_from_record(self):
        ring, sensor = self._pipeline()
        MetricsReporter(
            scalars_registry({"a.b": 1.25}), sensor
        ).emit_now(now=0)
        (record,) = ring.drain()
        assert metric_from_record(record) == ("a.b", 1.25)


def scalars_registry(values):
    registry = MetricsRegistry()
    for name, value in values.items():
        registry.gauge(name).set(value)
    return registry


class TestRender:
    def test_render_snapshot_groups_by_prefix(self):
        registry = MetricsRegistry()
        registry.counter("ring.dropped").inc(2)
        registry.gauge("ring.used_bytes").set(1024)
        registry.counter("wire.bytes_sent").inc(5_000_000)
        out = render_snapshot(registry.snapshot())
        assert "ring" in out and "wire" in out
        assert "1,024" in out
        assert "5,000,000" in out

    def test_render_histogram_bars(self):
        h = FixedHistogram("lat_us", edges=(10.0, 100.0, 1000.0))
        for x in (5, 50, 50, 500):
            h.observe(x)
        out = render_histogram("lat_us", h.snapshot())
        assert "lat_us" in out
        assert "n=4" in out

    def test_scalars_snapshot_wraps_decoded_map(self):
        snap = scalars_snapshot({"a": 1.0})
        assert isinstance(snap, MetricsSnapshot)
        assert snap.get("a") == 1.0


class TestSimIntegration:
    def test_sim_deployment_self_observes(self):
        from repro.core.consumers import CollectingConsumer
        from repro.sim.deployment import DeploymentConfig, SimDeployment
        from repro.sim.engine import Simulator
        from repro.sim.workload import PeriodicWorkload

        sim = Simulator(seed=3)
        collected = CollectingConsumer()
        dep = SimDeployment(
            sim,
            DeploymentConfig(metrics_interval_us=1_000_000),
            consumers=[collected],
        )
        for node in dep.add_nodes(2):
            dep.attach_workload(node, PeriodicWorkload(100.0))
        dep.start()
        dep.run(3.0)
        dep.stop()

        snap = dep.metrics_snapshot()
        assert snap.get("sorter.pushed") > 0
        assert snap.get("node1.sensor.emitted") > 0
        assert snap.get("node1.exs.ring.capacity_bytes") > 0
        assert snap.get("cre.reason_table") is not None

        decoded = snapshot_from_records(collected.records)
        assert decoded, "self-emitted metrics must ride the pipeline"
        assert decoded["sorter.pushed"] > 0
        # Application records and metric records coexist in the stream.
        assert any(not is_metric_record(r) for r in collected.records)

    def test_sim_metrics_deterministic(self):
        from repro.core.consumers import CollectingConsumer
        from repro.sim.deployment import DeploymentConfig, SimDeployment
        from repro.sim.engine import Simulator
        from repro.sim.workload import PeriodicWorkload

        def run_once():
            sim = Simulator(seed=11)
            collected = CollectingConsumer()
            dep = SimDeployment(
                sim,
                DeploymentConfig(metrics_interval_us=500_000),
                consumers=[collected],
            )
            for node in dep.add_nodes(2):
                dep.attach_workload(node, PeriodicWorkload(150.0))
            dep.start()
            dep.run(2.0)
            dep.stop()
            return sorted(
                snapshot_from_records(collected.records).items()
            )

        assert run_once() == run_once()


class TestIsmStatsEndpoint:
    def test_metrics_snapshot_lazily_wires(self):
        from repro.core.ism import InstrumentationManager
        from repro.runtime.ism_proc import IsmServer
        from repro.wire.tcp import MessageListener

        listener = MessageListener("127.0.0.1", 0)
        try:
            server = IsmServer(InstrumentationManager(), listener)
            snap = server.metrics_snapshot()
            assert snap.get("wire.connections") == 0.0
            assert snap.get("ism.records_received") == 0.0
            assert "sorter.held" in snap
        finally:
            listener.close()

    def test_stats_interval_validation(self):
        from repro.core.ism import InstrumentationManager
        from repro.runtime.ism_proc import IsmServer
        from repro.wire.tcp import MessageListener

        listener = MessageListener("127.0.0.1", 0)
        try:
            with pytest.raises(ValueError):
                IsmServer(
                    InstrumentationManager(), listener, stats_interval_s=0
                )
        finally:
            listener.close()
