"""brisk-lint: fixture corpus, engine, baseline, CLI, and the meta-test
that the real tree is clean.

Each fixture directory under ``tests/lint_fixtures/`` is loaded as its
own repo root (see the corpus README), so scoped checkers see the same
repo-relative paths they see in the real tree.
"""

import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.cli import main as lint_main
from repro.lint.engine import Finding, load_tree
from repro.lint.runner import run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def lint_fixture(name):
    """Run the full checker stack over one fixture mini-root."""
    sub = FIXTURES / name
    return run_lint([sub / "src"], root=sub)


def rule_lines(findings):
    return sorted((f.rule, f.line) for f in findings)


# ----------------------------------------------------------------------
# one true-positive and one true-negative fixture per rule family
# ----------------------------------------------------------------------


class TestWireConformance:
    def test_bad_fixture_fires_every_rule(self):
        result = lint_fixture("wire_bad")
        rules = {f.rule for f in result.new}
        assert rules == {"BRK101", "BRK102", "BRK103", "BRK104"}

    def test_bad_fixture_findings_are_located(self):
        result = lint_fixture("wire_bad")
        by_rule = {}
        for f in result.new:
            by_rule.setdefault(f.rule, []).append(f)
        # duplicate type id + missing encode/decode branch
        assert len(by_rule["BRK102"]) == 2
        assert any("ALIAS" in f.message for f in by_rule["BRK102"])
        assert any("Legacy" in f.message for f in by_rule["BRK102"])
        # field order mismatch names both orders
        (order,) = by_rule["BRK101"]
        assert "['b', 'a']" in order.message and "['a', 'b']" in order.message
        # non-trailing conditional flagged on both encode and decode side
        assert len(by_rule["BRK103"]) == 2
        # dark field
        (dark,) = by_rule["BRK104"]
        assert "Dark.unused" in dark.message

    def test_good_fixture_is_quiet(self):
        result = lint_fixture("wire_good")
        assert result.new == []

    def test_real_protocol_is_conformant(self):
        tree = load_tree([REPO_ROOT / "src" / "repro" / "wire"], root=REPO_ROOT)
        result = run_lint([], root=REPO_ROOT, tree=tree, select=["BRK1"])
        assert result.new == []


class TestDeterminism:
    def test_bad_fixture(self):
        result = lint_fixture("determinism_bad")
        assert rule_lines(result.new) == [
            ("BRK201", 9),    # time.time
            ("BRK201", 13),   # aliased time.monotonic
            ("BRK201", 25),   # os.urandom
            ("BRK202", 17),   # random.uniform
            ("BRK203", 21),   # unseeded random.Random()
        ]

    def test_good_fixture_sanctioned_idioms_and_zone_boundary(self):
        # Seeded Random, perf_counter, timebase clock, annotations — and a
        # runtime/ file reading real clocks outside the zone.
        result = lint_fixture("determinism_good")
        assert result.new == []


class TestLoopDiscipline:
    def test_bad_fixture(self):
        result = lint_fixture("loop_bad")
        assert rule_lines(result.new) == [
            ("BRK301", 9),
            ("BRK302", 14),
            ("BRK303", 17),
        ]

    def test_good_fixture(self):
        result = lint_fixture("loop_good")
        assert result.new == []


class TestExceptionHygiene:
    def test_bad_fixture(self):
        result = lint_fixture("exceptions_bad")
        assert rule_lines(result.new) == [
            ("BRK401", 7),
            ("BRK401", 14),   # broad via tuple member
            ("BRK402", 21),
        ]

    def test_good_fixture(self):
        result = lint_fixture("exceptions_good")
        assert result.new == []


class TestInstrumentRegistration:
    def test_bad_fixture(self):
        result = lint_fixture("instruments_bad")
        assert rule_lines(result.new) == [
            ("BRK501", 8),    # attribute with no registration evidence
            ("BRK501", 10),   # local instrument, unwirable
            ("BRK502", 13),   # nameless construction
            ("BRK502", 16),   # counter/gauge name collision
        ]

    def test_good_fixture(self):
        result = lint_fixture("instruments_good")
        assert result.new == []


class TestPragmas:
    def test_suppressions_and_pragma_findings(self):
        result = lint_fixture("pragmas")
        # Three BRK401s are suppressed (same-line, disable-next, reasonless).
        assert rule_lines(result.pragma_suppressed) == [
            ("BRK401", 7),
            ("BRK401", 15),
            ("BRK401", 22),
        ]
        # The pragmas themselves produce hygiene findings.
        assert rule_lines(result.new) == [
            ("BRK001", 30),   # malformed (missing '=')
            ("BRK002", 22),   # suppresses, but has no (reason)
            ("BRK003", 26),   # suppresses nothing
        ]

    def test_pragma_in_string_literal_is_inert(self, tmp_path):
        src = tmp_path / "src" / "repro" / "core" / "mod.py"
        src.parent.mkdir(parents=True)
        src.write_text(
            "MSG = '# brisk-lint: disable=BRK401 (not a pragma)'\n"
            "def f(job):\n"
            "    try:\n"
            "        job()\n"
            "    except Exception:\n"
            "        pass\n"
        )
        result = run_lint([tmp_path / "src"], root=tmp_path)
        assert [f.rule for f in result.new] == ["BRK401"]
        assert result.pragma_suppressed == []


class TestSyntaxError:
    def test_unparseable_file_is_a_finding_not_a_crash(self):
        result = lint_fixture("syntax_error")
        assert [f.rule for f in result.new] == ["BRK000"]


# ----------------------------------------------------------------------
# baseline + fingerprints
# ----------------------------------------------------------------------


class TestBaseline:
    def test_round_trip(self, tmp_path):
        finding = Finding(
            rule="BRK401", path="src/x.py", line=3, message="m", hint="h"
        )
        fp = finding.fingerprint("    except Exception:", 0)
        target = tmp_path / "baseline.toml"
        n = write_baseline(target, [(finding, fp)], reasons={fp: "legacy"})
        assert n == 1
        loaded = load_baseline(target)
        assert loaded[fp].rule == "BRK401"
        assert loaded[fp].path == "src/x.py"
        assert loaded[fp].reason == "legacy"

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.toml") == {}

    def test_fingerprint_survives_line_drift(self):
        f1 = Finding(rule="BRK401", path="a.py", line=10, message="m")
        f2 = Finding(rule="BRK401", path="a.py", line=99, message="m")
        text = "except Exception:"
        assert f1.fingerprint(text, 0) == f2.fingerprint(text, 0)
        assert f1.fingerprint(text, 0) != f1.fingerprint(text + " # edited", 0)
        assert f1.fingerprint(text, 0) != f1.fingerprint(text, 1)

    def test_baselined_findings_do_not_fail_the_run(self, tmp_path):
        shutil.copytree(FIXTURES / "exceptions_bad", tmp_path / "tree")
        root = tmp_path / "tree"
        first = run_lint([root / "src"], root=root)
        assert first.exit_code == 1
        pairs = [(f, first.fingerprint_of(f)) for f in first.new]
        baseline = root / "lint-baseline.toml"
        write_baseline(baseline, pairs)
        second = run_lint([root / "src"], root=root, baseline_path=baseline)
        assert second.exit_code == 0
        assert len(second.baselined) == len(first.new)
        assert second.new == []
        assert second.stale_baseline == []

    def test_fixed_finding_goes_stale(self, tmp_path):
        shutil.copytree(FIXTURES / "exceptions_bad", tmp_path / "tree")
        root = tmp_path / "tree"
        first = run_lint([root / "src"], root=root)
        baseline = root / "lint-baseline.toml"
        write_baseline(baseline, [(f, first.fingerprint_of(f)) for f in first.new])
        target = root / "src" / "repro" / "core" / "handlers.py"
        target.write_text(
            text := target.read_text().replace(
                "    except (ValueError, Exception):  # BRK401: broad via tuple member\n"
                "        return None",
                "    except ValueError:\n        return None",
            )
        )
        assert "except (ValueError" not in text  # the fix really applied
        second = run_lint([root / "src"], root=root, baseline_path=baseline)
        assert second.new == []
        assert len(second.stale_baseline) == 1


# ----------------------------------------------------------------------
# runner selection + CLI
# ----------------------------------------------------------------------


class TestSelection:
    def test_select_by_rule_prefix(self):
        sub = FIXTURES / "exceptions_bad"
        result = run_lint([sub / "src"], root=sub, select=["BRK402"])
        assert {f.rule for f in result.new} == {"BRK402"}

    def test_ignore_rule(self):
        sub = FIXTURES / "exceptions_bad"
        result = run_lint([sub / "src"], root=sub, ignore=["BRK401"])
        assert {f.rule for f in result.new} == {"BRK402"}

    def test_select_by_checker_name(self):
        sub = FIXTURES / "loop_bad"
        result = run_lint([sub / "src"], root=sub, select=["loop-discipline"])
        assert {f.rule for f in result.new} == {"BRK301", "BRK302", "BRK303"}


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        sub = FIXTURES / "wire_good"
        code = lint_main([str(sub / "src"), "--root", str(sub)])
        assert code == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_findings_exit_one_and_render_hints(self, capsys):
        sub = FIXTURES / "loop_bad"
        code = lint_main(
            [str(sub / "src"), "--root", str(sub), "--fail-on-new"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "BRK301" in out and "hint:" in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        shutil.copytree(FIXTURES / "instruments_bad", tmp_path / "tree")
        root = tmp_path / "tree"
        argv = [str(root / "src"), "--root", str(root)]
        assert lint_main(argv + ["--write-baseline"]) == 0
        assert (root / "lint-baseline.toml").exists()
        capsys.readouterr()
        assert lint_main(argv + ["--fail-on-new"]) == 0
        assert "4 baselined" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, capsys):
        assert lint_main(["/nonexistent/nowhere"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_json_format(self, capsys):
        import json

        sub = FIXTURES / "syntax_error"
        code = lint_main(
            [str(sub / "src"), "--root", str(sub), "--format", "json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["new"][0]["rule"] == "BRK000"
        assert payload["new"][0]["fingerprint"]

    def test_list_rules_covers_all_families(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in (
            "BRK001", "BRK101", "BRK201", "BRK301", "BRK401", "BRK501"
        ):
            assert rule in out

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "BRK101" in proc.stdout

    def test_cwd_independent_auto_root(self, tmp_path, monkeypatch):
        # Linting an absolute path from an unrelated cwd must anchor at
        # the target's repo root (marker detection), not crash on
        # relative_to(cwd).
        monkeypatch.chdir(tmp_path)
        assert lint_main([str(FIXTURES / "determinism_bad")]) == 0

    def test_path_outside_explicit_root_is_usage_error(self, tmp_path, capsys):
        assert lint_main(["--root", str(REPO_ROOT), str(tmp_path)]) == 2
        assert "outside the root" in capsys.readouterr().err


# ----------------------------------------------------------------------
# the meta-test: the real tree is clean
# ----------------------------------------------------------------------


class TestRealTree:
    def test_src_is_clean(self):
        baseline = REPO_ROOT / "lint-baseline.toml"
        result = run_lint(
            [REPO_ROOT / "src"],
            root=REPO_ROOT,
            baseline_path=baseline if baseline.exists() else None,
        )
        assert result.new == [], "\n".join(f.render() for f in result.new)

    def test_baseline_entries_all_have_reasons(self):
        baseline = REPO_ROOT / "lint-baseline.toml"
        if not baseline.exists():
            pytest.skip("no baseline checked in (tree is clean)")
        for entry in load_baseline(baseline).values():
            assert entry.reason, f"baseline entry {entry.fingerprint} lacks a reason"


# ----------------------------------------------------------------------
# external tools (configs are committed; binaries may be absent locally)
# ----------------------------------------------------------------------


class TestExternalLinters:
    def test_pyproject_lint_configs_parse(self):
        import tomllib

        data = tomllib.loads((REPO_ROOT / "pyproject.toml").read_text())
        ruff = data["tool"]["ruff"]
        assert set(ruff["lint"]["select"]) == {"E", "W", "F", "I"}
        mypy = data["tool"]["mypy"]
        assert set(mypy["packages"]) == {
            "repro.wire", "repro.obs", "repro.log", "repro.monitor",
            "repro.lint",
        }
        assert data["project"]["scripts"]["brisk-lint"] == "repro.lint.cli:main"

    @pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
    def test_ruff_clean(self):
        proc = subprocess.run(
            ["ruff", "check", "src", "tests"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    @pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
    def test_mypy_scoped_clean(self):
        proc = subprocess.run(
            ["mypy"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
