"""Golden-vector tests locking the wire format.

The byte layout is a protocol contract: implementations on other
platforms (or future versions of this one) must produce these exact
bytes.  If one of these tests fails, the wire format changed — that is
a compatibility break, not a refactor.
"""

from tests.conftest import make_record

from repro.core.records import EventRecord, FieldType
from repro.wire import protocol


def test_six_int_batch_golden():
    record = EventRecord(
        event_id=0x07,
        timestamp=0x0102030405060708,
        field_types=(FieldType.X_INT,) * 6,
        values=(1, 2, 3, 4, 5, 6),
    )
    encoded = protocol.encode_batch_records(0x0A, 0x0B, [record])
    expected = bytes.fromhex(
        "b215c001"          # magic
        "00000001"          # msg type BATCH
        "00000001"          # flags: compressed meta
        "0000000a"          # exs id
        "0000000b"          # seq
        "00000001"          # one record
        "0102030405060708"  # base ts (first record's)
        "00000007"          # event id
        "06444444"          # meta: n=6, six X_INT (4) nibbles
        "0102030405060708"  # timestamp
        "000000010000000200000003"
        "000000040000000500000006"
    )
    assert encoded == expected
    assert len(encoded) - 32 == 40  # the paper's 40-byte record


def test_meta_nibble_packing_golden():
    record = EventRecord(
        event_id=1,
        timestamp=0,
        field_types=(FieldType.X_BYTE, FieldType.X_DOUBLE, FieldType.X_STRING),
        values=(0, 0.0, ""),
    )
    encoded = protocol.encode_batch_records(1, 0, [record])
    # meta word: count 3 in top byte, codes 0 (X_BYTE), 9 (X_DOUBLE),
    # 10 (X_STRING) in successive nibbles, zero-padded low bits.
    meta_offset = 4 * 6 + 8 + 4  # header words + base ts + event id
    assert encoded[meta_offset : meta_offset + 4] == bytes.fromhex("030 9a000".replace(" ", ""))


def test_control_messages_golden():
    assert protocol.encode_message(
        protocol.TimeRequest(probe_id=0x1234)
    ) == bytes.fromhex("b215c001" "00000003" "00001234")
    assert protocol.encode_message(
        protocol.TimeReply(probe_id=1, slave_time=-1)
    ) == bytes.fromhex("b215c001" "00000004" "00000001" "ffffffffffffffff")
    assert protocol.encode_message(
        protocol.Adjust(correction=0x10, round_id=2)
    ) == bytes.fromhex("b215c001" "00000005" "0000000000000010" "00000002")
    assert protocol.encode_message(protocol.Bye(reason="ok")) == bytes.fromhex(
        "b215c001" "00000006" "00000002" "6f6b0000"
    )
    assert protocol.encode_message(protocol.Hello(exs_id=1, node_id=2)) == (
        bytes.fromhex("b215c001" "00000002" "00000001" "00000002" "00000000")
    )


def test_set_filter_golden():
    msg = protocol.SetFilter(
        allow_all_events=False,
        allowed_events=(7,),
        blocked_events=(),
        sample_every=3,
    )
    assert protocol.encode_message(msg) == bytes.fromhex(
        "b215c001"  # magic
        "00000007"  # SET_FILTER
        "00000000"  # allow_all_events = False
        "00000001" "00000007"  # allowed: [7]
        "00000000"  # blocked: []
        "00000003"  # sample_every
    )


def test_delta_ts_golden():
    records = [
        make_record(timestamp=1_000_000),
        make_record(timestamp=1_000_100),
    ]
    encoded = protocol.encode_batch_records(1, 0, records, delta_ts=True)
    # First record delta 0, second delta 100 — four bytes each.
    assert bytes.fromhex("00000000") in encoded
    assert bytes.fromhex("00000064") in encoded
    # And the full-width timestamps appear only once (base_ts).
    assert encoded.count((1_000_000).to_bytes(8, "big")) == 1


def test_string_padding_golden():
    record = EventRecord(
        event_id=1,
        timestamp=0,
        field_types=(FieldType.X_STRING,),
        values=("abc",),
    )
    encoded = protocol.encode_batch_records(1, 0, [record])
    # length 3, "abc", one zero pad byte.
    assert encoded.endswith(bytes.fromhex("00000003" "61626300"))
