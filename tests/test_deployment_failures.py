"""Integration tests: ISM overload modelling and node failure injection."""


from repro.core.consumers import CollectingConsumer
from repro.core.cre import CreConfig
from repro.core.ism import IsmConfig
from repro.core.sorting import SorterConfig
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.workload import PoissonWorkload


class TestIsmServiceModel:
    def run_at_rate(self, rate_hz: float, service_us: float) -> SimDeployment:
        sim = Simulator(seed=8)
        dep = SimDeployment(
            sim,
            DeploymentConfig(
                ism_service_time_us=service_us,
                exs_poll_interval_us=10_000,
            ),
            [CollectingConsumer()],
        )
        for node in dep.add_nodes(2, max_offset_us=100, max_drift_ppm=1):
            dep.attach_workload(node, PoissonWorkload(rate_hz=rate_hz / 2))
        dep.run(5.0)
        return dep

    def test_underload_delivers_everything(self):
        # 1,000 ev/s at 20 µs/record = 2% utilization.
        dep = self.run_at_rate(1_000, service_us=20.0)
        dep.stop()
        emitted = sum(n.sensor.emitted for n in dep.nodes)
        assert dep.ism.stats.records_received == emitted
        assert dep.metrics.ism_busy_us > 0

    def test_busy_time_tracks_load(self):
        light = self.run_at_rate(500, service_us=20.0)
        heavy = self.run_at_rate(4_000, service_us=20.0)
        assert heavy.metrics.ism_busy_us > 4 * light.metrics.ism_busy_us

    def test_saturation_caps_delivery_rate(self):
        # 10,000 ev/s offered at 500 µs/record = 5x overload: the modelled
        # ISM can absorb at most 2,000 records/s.
        dep = self.run_at_rate(10_000, service_us=500.0)
        received = dep.ism.stats.records_received
        assert received <= 2_000 * 5 * 1.1
        # The server really was the bottleneck: busy ~the whole run.
        assert dep.metrics.ism_busy_us >= 4_500_000

    def test_zero_service_time_is_instant(self):
        dep = self.run_at_rate(1_000, service_us=0.0)
        assert dep.metrics.ism_busy_us == 0


class TestNodeFailure:
    def build(self, seed=3):
        sim = Simulator(seed=seed)
        collected = CollectingConsumer()
        config = DeploymentConfig(
            sync_period_us=2_000_000,
            ism=IsmConfig(
                sorter=SorterConfig(initial_frame_us=5_000),
                cre=CreConfig(timeout_us=1_000_000),
                expire_interval_us=100_000,
            ),
        )
        dep = SimDeployment(sim, config, [collected])
        nodes = dep.add_nodes(3, max_offset_us=5_000, max_drift_ppm=5)
        for node in nodes:
            dep.attach_workload(node, PoissonWorkload(rate_hz=200))
        return sim, dep, collected

    def test_survivors_keep_flowing_after_crash(self):
        sim, dep, collected = self.build()
        dep.start()
        victim = dep.nodes[0]
        sim.schedule(2_000_000, dep.kill_node, victim)
        dep.run(6.0)
        dep.stop()
        survivors = {r.node_id for r in collected.records if r.timestamp > 0}
        assert {2, 3} <= survivors
        # The victim stopped emitting shortly after the crash.
        victim_records = [r for r in collected.records if r.node_id == 1]
        live_records = [r for r in collected.records if r.node_id == 2]
        assert len(victim_records) < len(live_records)

    def test_sync_continues_over_survivors(self):
        sim, dep, collected = self.build()
        dep.start()
        sim.schedule(1_000_000, dep.kill_node, dep.nodes[0])
        dep.run(20.0)
        # Master rebuilt over 2 slaves and still converging.
        assert dep.sync_master is not None
        assert len(dep.sync_master.slaves) == 2
        assert dep.true_skew_spread() < 2_000

    def test_kill_is_idempotent(self):
        sim, dep, _ = self.build()
        dep.start()
        dep.kill_node(dep.nodes[0])
        dep.kill_node(dep.nodes[0])
        assert len(dep.alive_nodes) == 2

    def test_orphaned_causal_peers_time_out(self):
        sim, dep, collected = self.build()
        a, b = dep.nodes[0], dep.nodes[1]
        dep.start()

        def orphaned_conseq():
            # b's consequence whose reason would have come from a — but a
            # is about to die without ever publishing it.
            b.sensor.notice_conseq(2, 424242)

        sim.schedule(500_000, orphaned_conseq)
        sim.schedule(600_000, dep.kill_node, a)
        dep.run(5.0)
        dep.stop()
        # The parked consequence was released by timeout, not lost.
        orphans = [r for r in collected.records if r.conseq_ids == (424242,)]
        assert len(orphans) == 1
        assert dep.ism.cre.stats.timed_out_consequences >= 1
        assert dep.ism.cre.parked_count == 0

    def test_all_nodes_dead_disables_sync(self):
        sim, dep, _ = self.build()
        dep.start()
        for node in list(dep.nodes):
            dep.kill_node(node)
        assert dep.sync_master is None
        assert dep.alive_nodes == []
        dep.run(2.0)  # and nothing wedges
