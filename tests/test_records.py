"""Unit tests for event records, field types, and schemas."""

import pytest
from tests.conftest import make_record

from repro.core.records import (
    DEFAULT_MAX_FIELDS,
    FIELD_TYPE_END,
    SYSTEM_FIELD_TYPES,
    EventRecord,
    FieldType,
    RecordSchema,
    intern_schema,
    validate_field,
)


class TestFieldTypeSystem:
    def test_all_type_codes_fit_in_a_nibble(self):
        # The compressed meta header packs two codes per byte.
        for ftype in FieldType:
            assert 0 <= ftype < FIELD_TYPE_END

    def test_paper_claims_over_ten_basic_types(self):
        basic = [t for t in FieldType if t not in SYSTEM_FIELD_TYPES]
        assert len(basic) > 10

    def test_three_system_types(self):
        assert SYSTEM_FIELD_TYPES == {
            FieldType.X_TS,
            FieldType.X_REASON,
            FieldType.X_CONSEQ,
        }

    def test_default_dynamic_field_limit_is_eight(self):
        assert DEFAULT_MAX_FIELDS == 8


class TestValidateField:
    @pytest.mark.parametrize(
        "ftype,good,bad",
        [
            (FieldType.X_BYTE, -128, -129),
            (FieldType.X_UBYTE, 255, 256),
            (FieldType.X_SHORT, 32767, 32768),
            (FieldType.X_USHORT, 65535, -1),
            (FieldType.X_INT, -(2**31), 2**31),
            (FieldType.X_UINT, 2**32 - 1, 2**32),
            (FieldType.X_HYPER, 2**63 - 1, 2**63),
            (FieldType.X_UHYPER, 2**64 - 1, -1),
            (FieldType.X_REASON, 0, -1),
            (FieldType.X_CONSEQ, 2**32 - 1, 2**32),
        ],
    )
    def test_integer_ranges(self, ftype, good, bad):
        validate_field(ftype, good)
        with pytest.raises(ValueError):
            validate_field(ftype, bad)

    def test_int_field_rejects_bool(self):
        # bool is an int subclass; silently encoding True as 1 would lose
        # type information on the consumer side.
        with pytest.raises(TypeError):
            validate_field(FieldType.X_INT, True)

    def test_float_fields_accept_ints(self):
        validate_field(FieldType.X_DOUBLE, 3)
        validate_field(FieldType.X_FLOAT, 3.5)

    def test_float_field_rejects_str(self):
        with pytest.raises(TypeError):
            validate_field(FieldType.X_FLOAT, "1.5")

    def test_string_rejects_embedded_nul(self):
        with pytest.raises(ValueError):
            validate_field(FieldType.X_STRING, "a\x00b")

    def test_string_rejects_bytes(self):
        with pytest.raises(TypeError):
            validate_field(FieldType.X_STRING, b"bytes")

    def test_opaque_accepts_bytes_like(self):
        validate_field(FieldType.X_OPAQUE, b"x")
        validate_field(FieldType.X_OPAQUE, bytearray(b"x"))
        validate_field(FieldType.X_OPAQUE, memoryview(b"x"))

    def test_opaque_rejects_str(self):
        with pytest.raises(TypeError):
            validate_field(FieldType.X_OPAQUE, "text")


class TestRecordSchema:
    def test_validate_matching_values(self):
        schema = RecordSchema((FieldType.X_INT, FieldType.X_STRING))
        schema.validate((1, "a"))

    def test_validate_wrong_arity(self):
        schema = RecordSchema((FieldType.X_INT,))
        with pytest.raises(ValueError):
            schema.validate((1, 2))

    def test_schema_is_hashable(self):
        a = RecordSchema((FieldType.X_INT,) * 6)
        b = RecordSchema((FieldType.X_INT,) * 6)
        assert a == b and hash(a) == hash(b)

    def test_rejects_non_fieldtype_entries(self):
        with pytest.raises(TypeError):
            RecordSchema((4,))  # int 4 == X_INT value, but not the enum

    def test_causal_and_ts_flags(self):
        assert RecordSchema((FieldType.X_REASON,)).is_causal
        assert RecordSchema((FieldType.X_CONSEQ,)).is_causal
        assert not RecordSchema((FieldType.X_INT,)).is_causal
        assert RecordSchema((FieldType.X_TS,)).has_embedded_ts

    def test_payload_wire_size_six_ints(self):
        schema = RecordSchema((FieldType.X_INT,) * 6)
        assert schema.payload_wire_size((1,) * 6) == 24

    def test_payload_wire_size_string_padded(self):
        schema = RecordSchema((FieldType.X_STRING,))
        assert schema.payload_wire_size(("abcde",)) == 4 + 5 + 3


class TestEventRecord:
    def test_basic_construction(self):
        record = make_record()
        assert record.event_id == 1
        assert len(record.values) == 6

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EventRecord(
                event_id=1,
                timestamp=0,
                field_types=(FieldType.X_INT,),
                values=(1, 2),
            )

    def test_event_id_range(self):
        with pytest.raises(ValueError):
            EventRecord(event_id=2**32, timestamp=0)

    def test_timestamp_overflow_rejected(self):
        with pytest.raises(ValueError):
            EventRecord(event_id=0, timestamp=2**63)

    def test_reason_and_conseq_accessors(self):
        record = EventRecord(
            event_id=1,
            timestamp=0,
            field_types=(FieldType.X_REASON, FieldType.X_INT, FieldType.X_CONSEQ),
            values=(10, 5, 20),
        )
        assert record.reason_ids == (10,)
        assert record.conseq_ids == (20,)
        assert record.is_causal

    def test_with_timestamp_returns_new_record(self):
        record = make_record(timestamp=100)
        shifted = record.with_timestamp(150)
        assert shifted.timestamp == 150
        assert record.timestamp == 100  # frozen original untouched

    def test_with_timestamp_shifts_embedded_ts_fields(self):
        record = EventRecord(
            event_id=1,
            timestamp=100,
            field_types=(FieldType.X_TS, FieldType.X_INT),
            values=(100, 7),
        )
        shifted = record.with_timestamp(130)
        assert shifted.values == (130, 7)

    def test_with_timestamp_noop_returns_self(self):
        record = make_record(timestamp=100)
        assert record.with_timestamp(100) is record

    def test_with_node(self):
        record = make_record()
        assert record.with_node(5).node_id == 5
        assert record.with_node(0) is record

    def test_sort_key_orders_by_timestamp_then_ties(self):
        a = make_record(timestamp=1, node_id=2)
        b = make_record(timestamp=2, node_id=1)
        assert a.sort_key() < b.sort_key()
        same_ts_1 = make_record(timestamp=5, node_id=1)
        same_ts_2 = make_record(timestamp=5, node_id=2)
        assert same_ts_1.sort_key() < same_ts_2.sort_key()

    def test_fields_of_type(self):
        record = EventRecord(
            event_id=1,
            timestamp=0,
            field_types=(FieldType.X_INT, FieldType.X_STRING, FieldType.X_INT),
            values=(1, "x", 2),
        )
        assert record.fields_of_type(FieldType.X_INT) == (1, 2)
        assert record.fields_of_type(FieldType.X_DOUBLE) == ()


class TestSchemaInterning:
    def test_equal_records_share_one_schema_object(self):
        a = EventRecord(
            event_id=1, timestamp=0,
            field_types=(FieldType.X_INT, FieldType.X_DOUBLE), values=(1, 2.0),
        )
        b = EventRecord(
            event_id=2, timestamp=5,
            field_types=(FieldType.X_INT, FieldType.X_DOUBLE), values=(9, 0.5),
        )
        assert a.field_types is not b.field_types  # distinct input tuples...
        assert a.schema is b.schema                # ...one interned schema
        assert a.schema is a.schema                # stable across accesses

    def test_interned_schema_is_canonical(self):
        ft = (FieldType.X_UINT, FieldType.X_STRING)
        schema = intern_schema(ft)
        assert intern_schema(list(ft)) is schema
        assert schema.field_types == ft

    def test_intern_still_validates(self):
        with pytest.raises(TypeError):
            intern_schema(("not-a-type",))

    def test_from_wire_matches_validated_constructor(self):
        built = EventRecord(
            event_id=3, timestamp=77,
            field_types=(FieldType.X_INT,), values=(5,), node_id=2,
        )
        trusted = EventRecord.from_wire(3, 77, (FieldType.X_INT,), (5,), 2)
        assert trusted == built
        assert trusted.sort_key() == built.sort_key()
