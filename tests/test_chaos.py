"""Fault injection: the ChaosProxy, sim fault windows, and chaos runs.

The acceptance bar for the delivery guarantees: with connections cut at
random byte offsets and the ISM torn down and restarted mid-run, every
sequenced record still appears exactly once in the final sorted output.
All chaos is seeded, so a failure replays deterministically.
"""

import socket
import threading

import pytest
from tests.conftest import wait_until

from repro.clocksync.clocks import CorrectedClock
from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.runtime.exs_proc import ReconnectingExs
from repro.runtime.ism_proc import IsmServer
from repro.sim import (
    DeploymentConfig,
    FaultInjector,
    FaultWindow,
    PeriodicWorkload,
    SimDeployment,
    Simulator,
)
from repro.util.timebase import now_micros
from repro.wire.chaos import ChaosConfig, ChaosProxy
from repro.wire.tcp import MessageListener

# Chaos runs must never hang CI: enforced by pytest-timeout when
# installed, a registered no-op marker otherwise.
pytestmark = pytest.mark.timeout(120)


# ----------------------------------------------------------------------
# ChaosProxy unit behaviour
# ----------------------------------------------------------------------

def _echo_server():
    """A TCP echo server on an ephemeral port; returns (sock, host, port)."""
    srv = socket.create_server(("127.0.0.1", 0))
    srv.settimeout(5.0)

    def run():
        try:
            conn, _ = srv.accept()
        except OSError:
            return
        conn.settimeout(5.0)
        with conn:
            while True:
                try:
                    data = conn.recv(4096)
                except OSError:
                    return
                if not data:
                    return
                try:
                    conn.sendall(data)
                except OSError:
                    return

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    host, port = srv.getsockname()[:2]
    return srv, host, port


class TestChaosProxy:
    def test_passthrough_echo(self):
        srv, host, port = _echo_server()
        proxy = ChaosProxy(host, port)
        try:
            client = socket.create_connection(proxy.address, timeout=5.0)
            client.settimeout(5.0)
            client.sendall(b"ping")
            assert client.recv(4096) == b"ping"
            client.close()
            assert proxy.connections_proxied == 1
            # The shuttle threads update counters after forwarding; give
            # them a beat to record the 4 bytes up + 4 bytes back.
            wait_until(lambda: proxy.bytes_forwarded >= 8)
        finally:
            proxy.stop()
            srv.close()

    def test_cut_severs_at_byte_offset(self):
        srv, host, port = _echo_server()
        proxy = ChaosProxy(
            host, port, ChaosConfig(cut_after_bytes=(10, 10), seed=1)
        )
        try:
            client = socket.create_connection(proxy.address, timeout=5.0)
            client.settimeout(5.0)
            client.sendall(b"x" * 64)
            # At most 10 bytes survive the cut; then the socket dies.
            got = b""
            try:
                while True:
                    chunk = client.recv(4096)
                    if not chunk:
                        break
                    got += chunk
            except OSError:
                pass
            assert len(got) <= 10
            client.close()
            wait_until(lambda: proxy.connections_cut == 1)
        finally:
            proxy.stop()
            srv.close()

    def test_partition_refuses_and_heals(self):
        srv, host, port = _echo_server()
        proxy = ChaosProxy(host, port)
        try:
            proxy.partition()
            client = socket.create_connection(proxy.address, timeout=5.0)
            client.settimeout(2.0)
            # The refused connection is closed without any echo.
            try:
                client.sendall(b"hello?")
                assert client.recv(4096) == b""
            except OSError:
                pass
            client.close()
            proxy.heal()
            client = socket.create_connection(proxy.address, timeout=5.0)
            client.settimeout(5.0)
            client.sendall(b"back")
            assert client.recv(4096) == b"back"
            client.close()
            assert proxy.connections_refused >= 1
            assert proxy.connections_proxied >= 1
        finally:
            proxy.stop()
            srv.close()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(cut_after_bytes=(0, 5))
        with pytest.raises(ValueError):
            ChaosConfig(cut_after_bytes=(10, 5))
        with pytest.raises(ValueError):
            ChaosConfig(delay_s=(-0.1, 0.2))


# ----------------------------------------------------------------------
# sim-side fault windows
# ----------------------------------------------------------------------

class TestSimFaultInjection:
    def test_fault_window_validation(self):
        with pytest.raises(ValueError):
            FaultWindow(start_us=10, end_us=10)
        with pytest.raises(ValueError):
            FaultWindow(start_us=0, end_us=10, mode="scramble")
        with pytest.raises(ValueError):
            FaultWindow(start_us=0, end_us=10, mode="delay", extra_delay_us=0)

    def test_injector_applies_first_covering_window(self):
        inj = FaultInjector(
            [
                FaultWindow(start_us=100, end_us=200, mode="drop"),
                FaultWindow(start_us=150, end_us=300, mode="delay", extra_delay_us=7),
            ]
        )
        assert inj.apply(50) == 0
        assert inj.apply(150) is None  # drop window listed first wins
        assert inj.apply(250) == 7
        assert inj.batches_dropped == 1
        assert inj.batches_delayed == 1

    def test_drop_window_surfaces_as_seq_gaps(self):
        """A partitioned sim link loses batches; the ISM detects every
        loss as a sequence gap — the detection half of the guarantee."""
        sim = Simulator(seed=7)
        sink = CollectingConsumer()
        chaos = FaultInjector(
            [FaultWindow(start_us=300_000, end_us=600_000, mode="drop")]
        )
        dep = SimDeployment(
            sim,
            DeploymentConfig(),
            consumers=[sink],
            sync_algorithm="none",
            chaos=chaos,
        )
        node = dep.add_node()
        dep.attach_workload(node, PeriodicWorkload(rate_hz=500, count=400))
        dep.start()
        sim.run_for(1_500_000)
        dep.stop()
        assert chaos.batches_dropped > 0
        assert dep.metrics.batches_dropped == chaos.batches_dropped
        assert dep.ism.stats.seq_gaps > 0
        # Everything outside the window still arrived.
        assert dep.ism.stats.records_received > 0

    def test_delay_window_keeps_all_records(self):
        sim = Simulator(seed=7)
        sink = CollectingConsumer()
        chaos = FaultInjector(
            [
                FaultWindow(
                    start_us=300_000,
                    end_us=600_000,
                    mode="delay",
                    extra_delay_us=50_000,
                )
            ]
        )
        dep = SimDeployment(
            sim,
            DeploymentConfig(),
            consumers=[sink],
            sync_algorithm="none",
            chaos=chaos,
        )
        node = dep.add_node()
        dep.attach_workload(node, PeriodicWorkload(rate_hz=500, count=400))
        dep.start()
        sim.run_for(2_000_000)
        dep.stop()
        assert chaos.batches_delayed > 0
        assert dep.ism.stats.records_received == 400
        assert dep.metrics.batches_dropped == 0


# ----------------------------------------------------------------------
# the chaos acceptance run: cuts + ISM restarts, exactly-once
# ----------------------------------------------------------------------

class TestChaosExactlyOnce:
    def test_cuts_and_ism_restarts_deliver_exactly_once(self):
        """EXS → ChaosProxy → ISM, with the proxy severing connections at
        random byte offsets and the ISM listener torn down and restarted
        mid-run.  The manager survives restarts (warm failover) and its
        admission watermark plus the EXS outbox must yield exactly-once
        delivery of every record."""
        n_phase = 400
        ring = ring_for_records(50_000)
        sensor = Sensor(ring, node_id=1)
        exs = ExternalSensor(
            1,
            1,
            ring,
            CorrectedClock(now_micros),
            ExsConfig(batch_max_records=8, flush_timeout_us=1_000),
        )
        sink = CollectingConsumer()
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)), [sink]
        )
        listener = MessageListener()
        host, port = listener.address
        # Cut every few KB: small batches (8 records ≈ a few hundred
        # bytes) mean multiple batches per cut window, and cuts land
        # mid-frame more often than between frames.
        proxy = ChaosProxy(
            host, port, ChaosConfig(cut_after_bytes=(2_000, 6_000), seed=42)
        )
        runner = ReconnectingExs(
            exs,
            *proxy.address,
            select_timeout_s=0.002,
            max_attempts=500,
            backoff_s=0.01,
            max_backoff_s=0.05,
            ack_timeout_s=0.5,
        )
        thread = threading.Thread(target=runner.run, daemon=True)
        thread.start()
        try:
            # Phase 1: stream through the cutting proxy.
            for k in range(n_phase):
                sensor.notice_ints(1, k)
            server = IsmServer(manager, listener)
            server.serve(duration_s=30.0, until_records=n_phase)
            assert manager.stats.records_received == n_phase

            # ISM crash: listener goes away mid-run, comes back on the
            # same port; the proxy keeps cutting throughout.
            before_conn = int(runner.connections)
            before_fail = int(runner.failed_attempts)
            listener.close()
            for k in range(n_phase, 2 * n_phase):
                sensor.notice_ints(1, k)
            # The runner must actually experience the outage: either a
            # reconnect attempt through the proxy dies against the closed
            # upstream, or the connect itself is refused.
            wait_until(
                lambda: runner.connections > before_conn
                or runner.failed_attempts > before_fail
            )
            listener = MessageListener(host, port)
            proxy.upstream_port = port  # same port; explicit for clarity
            server = IsmServer(manager, listener)
            server.serve(duration_s=30.0, until_records=2 * n_phase)

            assert manager.stats.records_received == 2 * n_phase
            values = [r.values[0] for r in sink.records]
            # Exactly once: no loss, no duplication.
            assert sorted(values) == list(range(2 * n_phase))
            # The chaos actually happened — otherwise this proves nothing.
            assert proxy.connections_cut >= 1
            assert runner.connections >= 2
        finally:
            runner.stop()
            thread.join(timeout=10)
            proxy.stop()
            listener.close()

    def test_retransmits_dedupe_under_chaos(self):
        """Same harness, asserting the at-least-once wire really did
        retransmit and the ISM really did dedupe (not just a lucky
        fault-free run)."""
        n = 600
        ring = ring_for_records(50_000)
        sensor = Sensor(ring, node_id=1)
        exs = ExternalSensor(
            1,
            1,
            ring,
            CorrectedClock(now_micros),
            ExsConfig(batch_max_records=8, flush_timeout_us=1_000),
        )
        sink = CollectingConsumer()
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)), [sink]
        )
        listener = MessageListener()
        host, port = listener.address
        proxy = ChaosProxy(
            host, port, ChaosConfig(cut_after_bytes=(1_000, 3_000), seed=7)
        )
        runner = ReconnectingExs(
            exs,
            *proxy.address,
            select_timeout_s=0.002,
            max_attempts=500,
            backoff_s=0.01,
            max_backoff_s=0.05,
            ack_timeout_s=0.5,
        )
        thread = threading.Thread(target=runner.run, daemon=True)
        thread.start()
        try:
            for k in range(n):
                sensor.notice_ints(1, k)
            server = IsmServer(manager, listener)
            server.serve(duration_s=30.0, until_records=n)
            values = [r.values[0] for r in sink.records]
            assert sorted(values) == list(range(n))
            assert proxy.connections_cut >= 2
            # Aggressive cutting forces retransmission of batches whose
            # acks were lost with the connection; dedup must have fired.
            assert runner.outbox.retransmitted_batches > 0
        finally:
            runner.stop()
            thread.join(timeout=10)
            proxy.stop()
            listener.close()
