"""Unit tests for the causally-related-event matcher."""

import pytest
from tests.conftest import make_record

from repro.core.cre import CausalMatcher, CreConfig
from repro.core.records import EventRecord, FieldType


def reason(rid: int, ts: int, event_id: int = 1) -> EventRecord:
    return EventRecord(
        event_id=event_id,
        timestamp=ts,
        field_types=(FieldType.X_REASON,),
        values=(rid,),
    )


def conseq(cid: int, ts: int, event_id: int = 2) -> EventRecord:
    return EventRecord(
        event_id=event_id,
        timestamp=ts,
        field_types=(FieldType.X_CONSEQ,),
        values=(cid,),
    )


class TestPassThrough:
    def test_plain_record_untouched(self):
        matcher = CausalMatcher()
        record = make_record()
        assert matcher.process(record, now=0) == [record]

    def test_stats_start_zero(self):
        matcher = CausalMatcher()
        assert matcher.stats.tachyons_fixed == 0
        assert matcher.parked_count == 0


class TestOrderedArrival:
    def test_reason_then_conseq_flows_through(self):
        matcher = CausalMatcher()
        r = reason(7, ts=100)
        c = conseq(7, ts=200)
        assert matcher.process(r, now=100) == [r]
        assert matcher.process(c, now=200) == [c]
        assert matcher.stats.tachyons_fixed == 0

    def test_tachyonic_conseq_timestamp_overridden(self):
        fired = []
        matcher = CausalMatcher(on_tachyon=lambda: fired.append(1))
        matcher.process(reason(7, ts=100), now=100)
        out = matcher.process(conseq(7, ts=90), now=110)  # before its reason!
        assert len(out) == 1
        assert out[0].timestamp == 101  # reason.ts + epsilon
        assert matcher.stats.tachyons_fixed == 1
        assert fired == [1]

    def test_equal_timestamp_still_overridden(self):
        matcher = CausalMatcher()
        matcher.process(reason(7, ts=100), now=100)
        out = matcher.process(conseq(7, ts=100), now=100)
        assert out[0].timestamp == 101

    def test_epsilon_configurable(self):
        matcher = CausalMatcher(CreConfig(epsilon_us=50))
        matcher.process(reason(7, ts=100), now=100)
        out = matcher.process(conseq(7, ts=10), now=100)
        assert out[0].timestamp == 150


class TestParkedConsequences:
    def test_conseq_without_reason_is_parked(self):
        matcher = CausalMatcher()
        assert matcher.process(conseq(9, ts=50), now=50) == []
        assert matcher.parked_count == 1
        assert matcher.stats.parked == 1

    def test_reason_releases_parked_conseq(self):
        matcher = CausalMatcher()
        matcher.process(conseq(9, ts=50), now=50)
        r = reason(9, ts=40)
        out = matcher.process(r, now=60)
        assert out[0] == r
        assert out[1].timestamp == 50  # no override needed (50 > 40)
        assert matcher.parked_count == 0

    def test_released_conseq_overridden_when_tachyonic(self):
        fired = []
        matcher = CausalMatcher(on_tachyon=lambda: fired.append(1))
        matcher.process(conseq(9, ts=50), now=50)
        out = matcher.process(reason(9, ts=80), now=60)
        assert out[1].timestamp == 81
        assert matcher.stats.tachyons_fixed == 1
        assert fired == [1]

    def test_multiple_conseqs_released_together(self):
        matcher = CausalMatcher()
        matcher.process(conseq(9, ts=10, event_id=100), now=10)
        matcher.process(conseq(9, ts=20, event_id=101), now=20)
        out = matcher.process(reason(9, ts=5), now=30)
        assert len(out) == 3
        assert {r.event_id for r in out[1:]} == {100, 101}

    def test_conseq_waiting_on_multiple_reasons(self):
        record = EventRecord(
            event_id=5,
            timestamp=100,
            field_types=(FieldType.X_CONSEQ, FieldType.X_CONSEQ),
            values=(1, 2),
        )
        matcher = CausalMatcher()
        assert matcher.process(record, now=100) == []
        assert matcher.process(reason(1, ts=10), now=110)[1:] == []
        out = matcher.process(reason(2, ts=20), now=120)
        assert len(out) == 2  # the second reason plus the released conseq
        assert out[1].event_id == 5

    def test_record_with_reason_and_conseq_roles(self):
        both = EventRecord(
            event_id=5,
            timestamp=100,
            field_types=(FieldType.X_REASON, FieldType.X_CONSEQ),
            values=(2, 1),
        )
        matcher = CausalMatcher()
        matcher.process(reason(1, ts=50), now=50)
        out = matcher.process(both, now=100)
        assert out == [both]
        # Its reason id (2) is now registered.
        follow = matcher.process(conseq(2, ts=150), now=150)
        assert follow == [conseq(2, ts=150)]


class TestTimeouts:
    def test_parked_conseq_released_on_timeout(self):
        matcher = CausalMatcher(CreConfig(timeout_us=1_000))
        c = conseq(9, ts=50)
        matcher.process(c, now=50)
        assert matcher.expire(now=1_000) == []
        out = matcher.expire(now=1_051)
        assert out == [c]  # delivered uncorrected, not destroyed
        assert matcher.stats.timed_out_consequences == 1
        assert matcher.parked_count == 0

    def test_stale_reason_expired(self):
        matcher = CausalMatcher(CreConfig(timeout_us=1_000))
        matcher.process(reason(9, ts=50), now=50)
        matcher.expire(now=2_000)
        assert matcher.stats.timed_out_reasons == 1
        # After expiry, a conseq for that id parks again.
        assert matcher.process(conseq(9, ts=60), now=2_000) == []

    def test_multi_id_conseq_released_once_on_timeout(self):
        record = EventRecord(
            event_id=5,
            timestamp=100,
            field_types=(FieldType.X_CONSEQ, FieldType.X_CONSEQ),
            values=(1, 2),
        )
        matcher = CausalMatcher(CreConfig(timeout_us=100))
        matcher.process(record, now=100)
        out = matcher.expire(now=1_000)
        assert out == [record]
        assert matcher.stats.timed_out_consequences == 1
        assert matcher.parked_count == 0


class TestSyncRequests:
    def test_sync_requested_once_per_processed_record(self):
        fired = []
        matcher = CausalMatcher(on_tachyon=lambda: fired.append(1))
        # Two parked consequences, both tachyonic vs the same reason: one
        # process() call must collapse to a single sync request.
        matcher.process(conseq(9, ts=10, event_id=1), now=10)
        matcher.process(conseq(9, ts=20, event_id=2), now=20)
        matcher.process(reason(9, ts=500), now=30)
        assert matcher.stats.tachyons_fixed == 2
        assert fired == [1]

    def test_no_sync_without_tachyon(self):
        fired = []
        matcher = CausalMatcher(on_tachyon=lambda: fired.append(1))
        matcher.process(reason(1, ts=10), now=10)
        matcher.process(conseq(1, ts=20), now=20)
        assert fired == []

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CreConfig(timeout_us=-1)
        with pytest.raises(ValueError):
            CreConfig(epsilon_us=0)
