"""Property-based tests (hypothesis) for the self-observability layer.

Three invariant families the metrics subsystem's correctness rests on:

* **parallel Welford** — ``RunningStats.merge`` over an arbitrary split of
  a sample stream agrees with single-stream accumulation (count exactly;
  mean/M2 to floating-point tolerance);
* **histogram merge** — associative and commutative, with sample
  conservation (every observation lands in exactly one bin, under- and
  overflow included);
* **counter/snapshot monotonicity** — counters never go down, and
  successive registry snapshots observe non-decreasing values.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import Counter, FixedHistogram, MetricsRegistry
from repro.util.stats import RunningStats

# Finite, sane-magnitude floats: the instruments measure real quantities
# (microseconds, bytes, depths), not denormals or 1e300 outliers.
samples = st.lists(
    st.floats(
        min_value=-1e9,
        max_value=1e9,
        allow_nan=False,
        allow_infinity=False,
    ),
    max_size=200,
)

edge_lists = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=2,
    max_size=12,
    unique=True,
).map(lambda xs: tuple(sorted(xs)))


def stats_of(xs):
    acc = RunningStats()
    acc.extend(xs)
    return acc


def assert_stats_equal(a: RunningStats, b: RunningStats) -> None:
    assert a.count == b.count
    assert math.isclose(a.mean, b.mean, rel_tol=1e-9, abs_tol=1e-6)
    # M2 (hence variance) accumulates rounding differently per order;
    # allow a tolerance scaled to the magnitude of the samples.
    assert math.isclose(a.variance, b.variance, rel_tol=1e-6, abs_tol=1e-3)
    if a.count:
        assert a.minimum == b.minimum
        assert a.maximum == b.maximum


class TestRunningStatsMerge:
    @given(xs=samples, split=st.integers(min_value=0, max_value=200))
    @settings(max_examples=200)
    def test_merge_equals_single_stream(self, xs, split):
        split = min(split, len(xs))
        merged = stats_of(xs[:split]).merge(stats_of(xs[split:]))
        assert_stats_equal(merged, stats_of(xs))

    @given(xs=samples, ys=samples)
    def test_merge_commutes(self, xs, ys):
        a, b = stats_of(xs), stats_of(ys)
        assert_stats_equal(a.merge(b), b.merge(a))

    @given(xs=samples, ys=samples, zs=samples)
    def test_merge_associates(self, xs, ys, zs):
        a, b, c = stats_of(xs), stats_of(ys), stats_of(zs)
        assert_stats_equal(a.merge(b).merge(c), a.merge(b.merge(c)))

    @given(xs=samples)
    def test_merge_with_empty_is_identity(self, xs):
        a = stats_of(xs)
        assert_stats_equal(a.merge(RunningStats()), a)
        assert_stats_equal(RunningStats().merge(a), a)


def hist_of(edges, xs):
    h = FixedHistogram("h", edges)
    for x in xs:
        h.observe(x)
    return h.snapshot()


class TestHistogramMerge:
    @given(edges=edge_lists, xs=samples, ys=samples, zs=samples)
    @settings(max_examples=100)
    def test_merge_associates(self, edges, xs, ys, zs):
        a, b, c = (hist_of(edges, s) for s in (xs, ys, zs))
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.counts == right.counts
        assert left.underflow == right.underflow
        assert left.overflow == right.overflow
        assert_stats_equal(left.stats, right.stats)

    @given(edges=edge_lists, xs=samples, ys=samples)
    def test_merge_commutes(self, edges, xs, ys):
        a, b = hist_of(edges, xs), hist_of(edges, ys)
        ab, ba = a.merge(b), b.merge(a)
        assert ab.counts == ba.counts
        assert ab.underflow == ba.underflow
        assert ab.overflow == ba.overflow
        assert_stats_equal(ab.stats, ba.stats)

    @given(edges=edge_lists, xs=samples, ys=samples)
    def test_merge_conserves_samples(self, edges, xs, ys):
        merged = hist_of(edges, xs).merge(hist_of(edges, ys))
        binned = sum(merged.counts) + merged.underflow + merged.overflow
        assert binned == len(xs) + len(ys)
        assert merged.count == len(xs) + len(ys)

    @given(edges=edge_lists, xs=samples)
    def test_every_sample_lands_in_exactly_one_bin(self, edges, xs):
        snap = hist_of(edges, xs)
        assert sum(snap.counts) + snap.underflow + snap.overflow == len(xs)
        assert snap.count == len(xs)


class TestCounterMonotonicity:
    @given(increments=st.lists(st.integers(min_value=0, max_value=10**6)))
    def test_counter_never_decreases(self, increments):
        c = Counter("n")
        seen = 0
        for n in increments:
            c.inc(n)
            assert c.value >= seen
            seen = c.value
        assert c.value == sum(increments)

    @given(
        increments=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=1000),
            ),
            max_size=50,
        )
    )
    def test_snapshot_sequence_is_monotone(self, increments):
        registry = MetricsRegistry()
        previous: dict[str, float] = {}
        for name, n in increments:
            registry.counter(name).inc(n)
            snap = registry.snapshot()
            for key, floor in previous.items():
                assert snap.get(key, 0.0) >= floor
            previous = {k: snap.get(k) for k in ("a", "b", "c") if k in snap}
        final = registry.snapshot()
        totals: dict[str, int] = {}
        for name, n in increments:
            totals[name] = totals.get(name, 0) + n
        for name, total in totals.items():
            assert final.get(name) == float(total)
