"""Unit tests for link and disturbance models."""

import random

import pytest

from repro.sim.network import DisturbanceModel, LinkModel, LinkModelConfig, lan_disturbed, lan_quiet


class TestLinkModel:
    def test_delay_at_least_base(self):
        link = LinkModel(LinkModelConfig(base_delay_us=200, jitter_mean_us=50))
        for t in range(0, 10_000, 100):
            assert link.sample_delay(t) >= 200

    def test_no_jitter_is_deterministic(self):
        link = LinkModel(LinkModelConfig(base_delay_us=300, jitter_mean_us=0))
        assert link.sample_delay(0) == 300
        assert link.sample_delay(10) == 300

    def test_jitter_mean_approximately_respected(self):
        link = LinkModel(
            LinkModelConfig(base_delay_us=100, jitter_mean_us=50),
            random.Random(3),
        )
        samples = [link.sample_delay(i) for i in range(5000)]
        mean = sum(samples) / len(samples)
        assert 140 <= mean <= 160

    def test_bandwidth_adds_serialization_time(self):
        link = LinkModel(
            LinkModelConfig(base_delay_us=100, jitter_mean_us=0, bandwidth_bytes_per_us=19.0)
        )
        small = link.sample_delay(0, nbytes=0)
        large = link.sample_delay(0, nbytes=19_000)
        assert large - small == 1000

    def test_sample_counter(self):
        link = LinkModel()
        link.sample_delay(0)
        link.sample_delay(1)
        assert link.samples == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LinkModelConfig(base_delay_us=0)
        with pytest.raises(ValueError):
            LinkModelConfig(jitter_mean_us=-1)
        with pytest.raises(ValueError):
            LinkModelConfig(bandwidth_bytes_per_us=0)


class TestDisturbances:
    def test_bursts_inflate_delay(self):
        config = LinkModelConfig(
            base_delay_us=100,
            jitter_mean_us=0,
            disturbance=DisturbanceModel(
                mean_interval_us=10_000,
                mean_duration_us=5_000,
                extra_delay_us=1_000,
                extra_jitter_us=0,
            ),
        )
        link = LinkModel(config, random.Random(5))
        samples = [link.sample_delay(t) for t in range(0, 200_000, 100)]
        quiet = [s for s in samples if s == 100]
        noisy = [s for s in samples if s >= 1_100]
        assert quiet and noisy
        assert len(quiet) + len(noisy) == len(samples)  # nothing in between

    def test_disturbed_sample_counter(self):
        link = lan_disturbed(random.Random(1))
        for t in range(0, 300_000_000, 50_000):
            link.in_burst(t)
            link.sample_delay(t)
        assert 0 < link.disturbed_samples < link.samples

    def test_quiet_lan_never_disturbed(self):
        link = lan_quiet(random.Random(1))
        for t in range(0, 10_000_000, 10_000):
            assert not link.in_burst(t)
        assert link.disturbed_samples == 0

    def test_burst_state_advances_with_time(self):
        config = LinkModelConfig(
            base_delay_us=10,
            jitter_mean_us=0,
            disturbance=DisturbanceModel(
                mean_interval_us=1_000, mean_duration_us=1_000
            ),
        )
        link = LinkModel(config, random.Random(2))
        states = [link.in_burst(t) for t in range(0, 50_000, 10)]
        # Both phases observed, and transitions happen.
        assert True in states and False in states
        flips = sum(1 for a, b in zip(states, states[1:]) if a != b)
        assert flips >= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            DisturbanceModel(mean_interval_us=0)
        with pytest.raises(ValueError):
            DisturbanceModel(extra_delay_us=-1)
