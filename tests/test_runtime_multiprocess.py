"""True multi-process integration: spawned application + EXS processes
against an in-process ISM server, over shared memory and real sockets.

This is the deployment the paper describes — application and external
sensor as separate OS processes sharing a memory segment — compressed to
one node for CI practicality.
"""

import multiprocessing as mp
import time

import pytest

from repro.core.consumers import CollectingConsumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.runtime import attach_shared_ring, create_shared_ring
from repro.runtime.exs_proc import exs_process_main, resilient_exs_main
from repro.runtime.ism_proc import IsmServer
from repro.wire.chaos import ChaosConfig, ChaosProxy
from repro.wire.tcp import MessageListener


def _app_main(ring_name: str, n_records: int, node_id: int) -> None:
    shared = attach_shared_ring(ring_name)
    try:
        sensor = Sensor(shared.ring, node_id=node_id)
        sent = 0
        while sent < n_records:
            if sensor.notice_ints(7, sent, 2, 3, 4, 5, 6):
                sent += 1
            else:
                time.sleep(0.001)  # ring full; let the EXS catch up
    finally:
        shared.close()


@pytest.fixture(scope="module")
def mp_ctx():
    return mp.get_context("spawn")


class TestMultiProcess:
    def test_single_node_pipeline(self, mp_ctx):
        n = 10_000
        shared = create_shared_ring(1 << 20)
        consumer = CollectingConsumer()
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=1_000)), [consumer]
        )
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)
        app = mp_ctx.Process(target=_app_main, args=(shared.name, n, 1))
        exs = mp_ctx.Process(
            target=exs_process_main, args=(shared.name, host, port, 1, 1, n)
        )
        app.start()
        exs.start()
        try:
            server.serve(duration_s=60.0, until_records=n)
        finally:
            app.join(timeout=10)
            exs.join(timeout=10)
            if exs.is_alive():
                exs.terminate()
            listener.close()
            shared.close()
        assert manager.stats.records_received == n
        assert manager.stats.seq_gaps == 0
        values = [r.values[0] for r in consumer.records]
        assert sorted(values) == list(range(n))  # nothing lost or duplicated
        assert values == sorted(values)  # delivered in order

    def test_two_nodes_merge(self, mp_ctx):
        n_per_node = 4_000
        shares = [create_shared_ring(1 << 20) for _ in range(2)]
        consumer = CollectingConsumer()
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=2_000)), [consumer]
        )
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)
        procs = []
        for idx, shared in enumerate(shares, start=1):
            procs.append(
                mp_ctx.Process(target=_app_main, args=(shared.name, n_per_node, idx))
            )
            procs.append(
                mp_ctx.Process(
                    target=exs_process_main,
                    args=(shared.name, host, port, idx, idx, n_per_node),
                )
            )
        for p in procs:
            p.start()
        try:
            server.serve(duration_s=60.0, until_records=2 * n_per_node)
        finally:
            for p in procs:
                p.join(timeout=10)
                if p.is_alive():
                    p.terminate()
            listener.close()
            for shared in shares:
                shared.close()
        assert manager.stats.records_received == 2 * n_per_node
        by_node = {1: [], 2: []}
        for record in consumer.records:
            by_node[record.node_id].append(record.values[0])
        for node_values in by_node.values():
            assert node_values == sorted(node_values)
        ts = [r.timestamp for r in consumer.records]
        inversions = sum(1 for a, b in zip(ts, ts[1:]) if b < a)
        assert inversions / len(ts) < 0.02

    @pytest.mark.timeout(180)
    def test_chaos_kill_restart_exactly_once(self, mp_ctx):
        """The acceptance-criteria chaos run with real OS processes: an
        application and a resilient EXS process ship through a ChaosProxy
        that severs connections at random byte offsets, while the ISM
        listener is torn down and restarted mid-run.  Every record must
        appear exactly once in the final output."""
        n = 3_000
        shared = create_shared_ring(1 << 20)
        consumer = CollectingConsumer()
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=1_000)), [consumer]
        )
        listener = MessageListener()
        host, port = listener.address
        proxy = ChaosProxy(
            host, port, ChaosConfig(cut_after_bytes=(8_000, 24_000), seed=11)
        )
        proxy_host, proxy_port = proxy.address
        app = mp_ctx.Process(target=_app_main, args=(shared.name, n, 1))
        exs = mp_ctx.Process(
            target=resilient_exs_main,
            args=(shared.name, proxy_host, proxy_port, 1, 1, n),
        )
        app.start()
        exs.start()
        try:
            # Phase 1: stream through the cutting proxy until roughly half
            # the workload has been admitted.
            server = IsmServer(manager, listener)
            server.serve(duration_s=60.0, until_records=n // 2)

            # ISM crash mid-run: listener and server die, the manager
            # (admission watermark + consumer) survives as warm state, a
            # fresh server comes back on the same port.
            listener.close()
            # Deliberate outage window (not a synchronization wait): the
            # port stays closed long enough that the EXS process actually
            # experiences the crash and exercises its reconnect path.
            time.sleep(0.1)
            listener = MessageListener(host, port)
            server = IsmServer(manager, listener)
            server.serve(duration_s=60.0, until_records=n)
        finally:
            app.join(timeout=20)
            exs.join(timeout=30)
            if app.is_alive():
                app.terminate()
            if exs.is_alive():
                exs.terminate()
            proxy.stop()
            listener.close()
            shared.close()
        assert manager.stats.records_received == n
        values = [r.values[0] for r in consumer.records]
        assert sorted(values) == list(range(n))  # exactly once, all of them
        assert values == sorted(values)  # and in order
