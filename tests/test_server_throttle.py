"""Integration test: AutoThrottle wired into a live IsmServer."""

import threading
import time

from repro.clocksync.clocks import CorrectedClock
from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.runtime import AutoThrottle, ExsProcess, IsmServer, ThrottleConfig
from repro.util.timebase import now_micros
from repro.wire.tcp import MessageListener, connect


class TestServerThrottleIntegration:
    def test_overload_triggers_source_sampling(self):
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
            [CollectingConsumer()],
        )
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)
        server.throttle = AutoThrottle(
            server.set_filter,
            ThrottleConfig(target_rate_hz=500.0, max_sample_every=16),
        )
        server.throttle_period_s = 0.1
        server._next_throttle = time.monotonic()

        ring = ring_for_records(200_000)
        sensor = Sensor(ring, node_id=1)
        exs = ExternalSensor(
            1, 1, ring, CorrectedClock(now_micros),
            ExsConfig(batch_max_records=128, flush_timeout_us=2_000),
        )
        proc = ExsProcess(exs, connect(host, port), select_timeout_s=0.002)
        exs_thread = threading.Thread(target=proc.run, daemon=True)

        stop_producing = threading.Event()

        def producer():
            k = 0
            while not stop_producing.is_set():
                sensor.notice_ints(1, k % 2**31)
                k += 1
                if k % 500 == 0:
                    time.sleep(0.001)  # ~hundreds of kHz offered, >> target

        producer_thread = threading.Thread(target=producer, daemon=True)
        try:
            exs_thread.start()
            producer_thread.start()
            # Serve until the throttle has reacted to the overload.
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline and not server.throttle.sample_every:
                server.serve(duration_s=0.3)
            assert server.throttle.sample_every.get(1, 1) > 1
            assert any(
                action.startswith("tighten")
                for _, _, action in server.throttle.decisions
            )
            # The EXS really did install the filter and is dropping.
            assert exs.filter is not None
            prev_filtered = exs.stats.records_filtered
            server.serve(duration_s=0.5)
            assert exs.stats.records_filtered > prev_filtered
        finally:
            stop_producing.set()
            producer_thread.join(timeout=5)
            proc.stop()
            exs_thread.join(timeout=5)
            listener.close()
