"""Integration tests for EXS automatic reconnection."""

import threading
import time

import pytest
from tests.conftest import wait_until

from repro.clocksync.clocks import CorrectedClock
from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.runtime.exs_proc import ReconnectingExs
from repro.runtime.ism_proc import IsmServer
from repro.util.timebase import now_micros
from repro.wire.tcp import MessageListener


def make_lis():
    ring = ring_for_records(50_000)
    sensor = Sensor(ring, node_id=1)
    exs = ExternalSensor(
        1, 1, ring, CorrectedClock(now_micros),
        ExsConfig(batch_max_records=32, flush_timeout_us=2_000),
    )
    return sensor, exs


def serve_phase(listener, manager, until_records):
    server = IsmServer(manager, listener)
    server.serve(duration_s=20.0, until_records=until_records)
    return server


class TestReconnectingExs:
    def test_survives_ism_restart(self):
        sensor, exs = make_lis()
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
            [CollectingConsumer()],
        )
        listener = MessageListener()
        host, port = listener.address

        runner = ReconnectingExs(
            exs, host, port,
            select_timeout_s=0.002,
            max_attempts=50,
            backoff_s=0.02,
            max_backoff_s=0.1,
        )
        thread = threading.Thread(target=runner.run, daemon=True)
        thread.start()
        try:
            # Phase 1: normal flow.
            for k in range(100):
                sensor.notice_ints(1, k)
            serve_phase(listener, manager, until_records=100)
            assert manager.stats.records_received == 100

            # "Crash" the ISM: close the listener and all its accepted
            # connections by letting the server object go; reopen on the
            # SAME port so the EXS's retry loop can find it again.
            listener.close()
            # Wait for the runner to notice the dead connection: its
            # first reconnect attempt against the closed port fails.
            wait_until(lambda: runner.failed_attempts >= 1)
            # Records written during the outage buffer in the ring.
            for k in range(100, 200):
                sensor.notice_ints(1, k)
            listener = MessageListener(host, port)

            serve_phase(listener, manager, until_records=200)
            assert manager.stats.records_received == 200
            assert runner.connections >= 2
        finally:
            runner.stop()
            thread.join(timeout=10)
            listener.close()

    def test_gives_up_after_max_attempts(self):
        sensor, exs = make_lis()
        # Nothing listens on this port.
        probe = MessageListener()
        host, port = probe.address
        probe.close()
        runner = ReconnectingExs(
            exs, host, port, max_attempts=3, backoff_s=0.01, max_backoff_s=0.02
        )
        t0 = time.monotonic()
        runner.run()  # returns instead of spinning forever
        assert time.monotonic() - t0 < 5.0
        assert runner.failed_attempts == 3
        assert runner.connections == 0

    def test_stop_interrupts_retries(self):
        sensor, exs = make_lis()
        probe = MessageListener()
        host, port = probe.address
        probe.close()
        runner = ReconnectingExs(
            exs, host, port, max_attempts=10_000, backoff_s=0.05
        )
        thread = threading.Thread(target=runner.run, daemon=True)
        thread.start()
        # Ensure the runner is inside its retry loop before stopping it.
        wait_until(lambda: runner.failed_attempts >= 1)
        runner.stop()
        thread.join(timeout=5)
        assert not thread.is_alive()

    def test_validation(self):
        sensor, exs = make_lis()
        with pytest.raises(ValueError):
            ReconnectingExs(exs, "127.0.0.1", 1, max_attempts=0)

    def test_backoff_uses_decorrelated_jitter(self):
        """Backoff delays are drawn from [base, 3·previous] (capped), and
        two runners with different RNGs diverge — no reconnect lockstep
        after a shared ISM outage."""
        import random

        sensor, exs = make_lis()
        runner = ReconnectingExs(
            exs,
            "127.0.0.1",
            1,
            backoff_s=0.1,
            max_backoff_s=2.0,
            jitter_rng=random.Random(1),
        )
        delay = runner.backoff_s
        for _ in range(100):
            nxt = runner._next_backoff(delay)
            assert runner.backoff_s <= nxt <= min(2.0, max(0.1, delay * 3))
            delay = nxt

        sensor2, exs2 = make_lis()
        other = ReconnectingExs(
            exs2,
            "127.0.0.1",
            1,
            backoff_s=0.1,
            max_backoff_s=2.0,
            jitter_rng=random.Random(2),
        )
        mine = [runner._next_backoff(0.1) for _ in range(10)]
        theirs = [other._next_backoff(0.1) for _ in range(10)]
        assert mine != theirs

    def test_shared_outbox_survives_sessions(self):
        """The outbox is owned by the runner, not a session: batches left
        unacked when one connection dies are retransmitted on the next."""
        sensor, exs = make_lis()
        runner = ReconnectingExs(exs, "127.0.0.1", 1, max_attempts=1)
        runner.outbox.append(0, b"payload")
        runner.run()  # no listener: the attempt fails
        assert runner.outbox.unacked == 1  # nothing silently dropped
