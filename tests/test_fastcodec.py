"""Byte-identity and round-trip properties of the schema-specialized codec.

The fast codec (:mod:`repro.wire.fastcodec`) must be invisible on the
wire: for every field type, record width, and knob combination, the bytes
it emits are identical to the seed dynamic codec's, and decoding either
output yields equal records.  These tests sweep that whole matrix.
"""

from __future__ import annotations

import pytest

from repro.core.records import EventRecord, FieldType, intern_schema
from repro.wire import fastcodec, protocol
from repro.xdr import XdrDecodeError

# Cycles of valid, round-trip-exact values per field type (floats restricted
# to exactly f32-representable values so equality survives the 4-byte trip).
_VALUE_CYCLES = {
    FieldType.X_BYTE: (-128, 0, 127, -1),
    FieldType.X_UBYTE: (0, 1, 255, 128),
    FieldType.X_SHORT: (-(2**15), 0, 2**15 - 1, 42),
    FieldType.X_USHORT: (0, 2**16 - 1, 7, 512),
    FieldType.X_INT: (-(2**31), 2**31 - 1, 0, -12345),
    FieldType.X_UINT: (0, 2**32 - 1, 99, 2**31),
    FieldType.X_HYPER: (-(2**63), 2**63 - 1, 0, -(2**40)),
    FieldType.X_UHYPER: (0, 2**64 - 1, 2**63, 17),
    FieldType.X_FLOAT: (1.5, -0.25, 0.0, 1024.0),
    FieldType.X_DOUBLE: (3.141592653589793, -1e300, 0.0, 2.5),
    FieldType.X_STRING: ("", "hello", "héllo wörld", "x" * 17),
    FieldType.X_OPAQUE: (b"", b"\x00\xff", b"abc", b"\x01" * 9),
    FieldType.X_TS: (0, 1_000_000, -(2**62), 2**62),
    FieldType.X_REASON: (0, 1, 2**32 - 1, 77),
    FieldType.X_CONSEQ: (0, 3, 2**32 - 1, 8),
}

_MODES = [
    pytest.param(True, False, id="compressed-absolute"),
    pytest.param(True, True, id="compressed-delta"),
    pytest.param(False, False, id="plain-absolute"),
    pytest.param(False, True, id="plain-delta"),
]


def _records(ftype: FieldType, width: int) -> list[EventRecord]:
    cycle = _VALUE_CYCLES[ftype]
    return [
        EventRecord(
            event_id=100 + r,
            timestamp=1_000_000 + 10 * r,
            field_types=(ftype,) * width,
            values=tuple(cycle[(r + i) % len(cycle)] for i in range(width)),
        )
        for r in range(3)
    ]


@pytest.mark.parametrize("compress_meta,delta_ts", _MODES)
@pytest.mark.parametrize("width", range(13))
@pytest.mark.parametrize("ftype", list(FieldType))
def test_fast_codec_byte_identical_and_round_trips(ftype, width, compress_meta, delta_ts):
    records = _records(ftype, width)
    fast = protocol.encode_batch_records(
        5, 9, records, compress_meta=compress_meta, delta_ts=delta_ts
    )
    seed = protocol.encode_batch_records(
        5, 9, records,
        compress_meta=compress_meta, delta_ts=delta_ts, use_fastpath=False,
    )
    assert fast == seed

    decoded_fast = protocol.decode_message(fast)
    decoded_seed = protocol.decode_message(seed, use_fastpath=False)
    assert decoded_fast == decoded_seed
    assert list(decoded_fast.records) == records


def test_mixed_schema_batch_byte_identical():
    """Interleaved schema runs — fixed, variable-length, wide — stay
    byte-identical and round-trip through the mixed fast/dynamic loop."""
    records = []
    for i in range(4):
        records.append(
            EventRecord(
                event_id=i, timestamp=1_000_000 + i,
                field_types=(FieldType.X_INT,) * 6, values=(i, 2, 3, 4, 5, 6),
            )
        )
        records.append(
            EventRecord(
                event_id=50 + i, timestamp=1_000_100 + i,
                field_types=(FieldType.X_STRING, FieldType.X_UINT),
                values=(f"s{i}", i),
            )
        )
        records.append(
            EventRecord(
                event_id=90 + i, timestamp=1_000_200 + i,
                field_types=(FieldType.X_HYPER,) * 9,
                values=tuple(range(9)),
            )
        )
    fast = protocol.encode_batch_records(1, 0, records)
    seed = protocol.encode_batch_records(1, 0, records, use_fastpath=False)
    assert fast == seed
    assert list(protocol.decode_message(fast).records) == records


def test_delta_escape_stays_on_dynamic_path():
    far = EventRecord(
        event_id=1, timestamp=2**40,
        field_types=(FieldType.X_INT,), values=(1,),
    )
    near = EventRecord(
        event_id=2, timestamp=100,
        field_types=(FieldType.X_INT,), values=(2,),
    )
    fast = protocol.encode_batch_records(1, 0, [near, far], delta_ts=True)
    seed = protocol.encode_batch_records(
        1, 0, [near, far], delta_ts=True, use_fastpath=False
    )
    assert fast == seed
    assert list(protocol.decode_message(fast).records) == [near, far]


def test_decoded_records_share_interned_field_types():
    records = [
        EventRecord(
            event_id=i, timestamp=1_000_000 + i,
            field_types=(FieldType.X_INT,) * 6, values=(i, 2, 3, 4, 5, 6),
        )
        for i in range(5)
    ]
    batch = protocol.decode_message(protocol.encode_batch_records(1, 0, records))
    first = batch.records[0].field_types
    assert all(r.field_types is first for r in batch.records)
    # ...and the tuple is the canonical interned one.
    assert intern_schema(first).field_types is first


def test_truncated_batch_raises_through_fast_path():
    records = [
        EventRecord(
            event_id=1, timestamp=1_000_000,
            field_types=(FieldType.X_INT,) * 6, values=(1, 2, 3, 4, 5, 6),
        )
        for _ in range(4)
    ]
    payload = protocol.encode_batch_records(1, 0, records)
    for cut in (len(payload) - 3, len(payload) - 21, 40):
        with pytest.raises(XdrDecodeError):
            protocol.decode_message(payload[:cut])


def test_corrupt_meta_nibble_raises_through_fast_path():
    record = EventRecord(
        event_id=1, timestamp=1_000_000,
        field_types=(FieldType.X_INT,) * 6, values=(1, 2, 3, 4, 5, 6),
    )
    payload = bytearray(protocol.encode_batch_records(1, 0, [record]))
    meta_offset = 4 * 6 + 8 + 4  # header words + base ts + event id
    payload[meta_offset + 1] = 0xFF  # END sentinels where types belong
    with pytest.raises(protocol.ProtocolError):
        protocol.decode_message(bytes(payload))


def test_extra_trailing_bytes_raise_through_fast_path():
    record = EventRecord(
        event_id=1, timestamp=1_000_000,
        field_types=(FieldType.X_INT,) * 6, values=(1, 2, 3, 4, 5, 6),
    )
    payload = protocol.encode_batch_records(1, 0, [record]) + b"\x00\x00\x00\x00"
    with pytest.raises(XdrDecodeError):
        protocol.decode_message(payload)


def test_codec_cache_is_shared_between_encode_and_decode():
    ft = (FieldType.X_DOUBLE, FieldType.X_UINT)
    codec = fastcodec.codec_for_types(ft)
    assert codec is not None
    mv = memoryview(
        protocol.encode_batch_records(
            1, 0,
            [EventRecord(event_id=1, timestamp=0, field_types=ft, values=(1.5, 2))],
        )
    )
    peeked = fastcodec.peek_codec(mv, 32, len(mv))  # 32 = batch header size
    assert peeked is codec


def test_variable_length_schema_has_no_fast_codec():
    assert fastcodec.codec_for_types((FieldType.X_STRING,)) is None
    assert fastcodec.codec_for_types((FieldType.X_OPAQUE, FieldType.X_INT)) is None
    assert fastcodec.codec_for_types(()) is not None  # empty record is fixed
