"""Unit tests for profiling-mode sensors (hybrid-approach emulation)."""

import pytest
from tests.conftest import make_record
from tests.test_clocks import FakeTime

from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.profiles.aggregate import PROFILE_EVENT_ID, ProfileDecoder, ProfilingSensor


def make_profiling_sensor(flush_us: int = 1_000_000):
    t = FakeTime(0)
    sensor = Sensor(ring_for_records(10_000), node_id=4, clock=t)
    return t, sensor, ProfilingSensor(sensor, flush_interval_us=flush_us)


class TestProfilingSensor:
    def test_samples_do_not_emit_records(self):
        t, sensor, prof = make_profiling_sensor()
        for _ in range(100):
            prof.sample(7)
        assert prof.samples == 100
        assert prof.summaries_emitted == 0
        assert not sensor.ring

    def test_flush_interval_emits_summary(self):
        t, sensor, prof = make_profiling_sensor(flush_us=1_000)
        prof.sample(7, 2.0)
        t.value = 1_500  # past the interval
        prof.sample(7, 4.0)
        assert prof.summaries_emitted == 1
        record = sensor.ring.pop()
        assert record.event_id == PROFILE_EVENT_ID
        event_id, count, total, mn, mx, start = record.values
        assert (event_id, count) == (7, 2)
        assert total == pytest.approx(6.0)
        assert (mn, mx) == (2.0, 4.0)
        assert start == 0

    def test_manual_flush(self):
        t, sensor, prof = make_profiling_sensor()
        prof.sample(1)
        prof.sample(2, 5.0)
        assert prof.flush() == 2
        assert prof.summaries_emitted == 2
        # Flushing again with empty accumulators emits nothing.
        assert prof.flush() == 0

    def test_separate_accumulators_per_event(self):
        t, sensor, prof = make_profiling_sensor()
        prof.sample(1, 10.0)
        prof.sample(2, 20.0)
        prof.flush()
        records = sensor.ring.drain()
        by_event = {r.values[0]: r.values for r in records}
        assert by_event[1][2] == pytest.approx(10.0)
        assert by_event[2][2] == pytest.approx(20.0)

    def test_window_resets_after_emit(self):
        t, sensor, prof = make_profiling_sensor(flush_us=1_000)
        prof.sample(7, 100.0)
        t.value = 2_000
        prof.sample(7, 1.0)  # triggers flush of the 2-sample window
        t.value = 2_100
        prof.sample(7, 2.0)
        prof.flush()
        records = sensor.ring.drain()
        assert len(records) == 2
        # Second window holds only the post-flush sample.
        assert records[1].values[1] == 1
        assert records[1].values[2] == pytest.approx(2.0)

    def test_interval_validation(self):
        t, sensor, _ = make_profiling_sensor()
        with pytest.raises(ValueError):
            ProfilingSensor(sensor, flush_interval_us=0)


class TestProfileDecoder:
    def test_roundtrip_through_records(self):
        t, sensor, prof = make_profiling_sensor()
        for value in (1.0, 3.0, 5.0):
            prof.sample(9, value)
        prof.flush()
        decoder = ProfileDecoder()
        for record in sensor.ring.drain():
            decoder.deliver(record)
        summary = decoder.profiles[(4, 9)]
        assert summary.count == 3
        assert summary.mean == pytest.approx(3.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0
        assert summary.windows == 1

    def test_multiple_windows_fold(self):
        t, sensor, prof = make_profiling_sensor(flush_us=10)
        prof.sample(9, 1.0)
        t.value = 100
        prof.sample(9, 3.0)  # folds, then flushes window 1 (2 samples)
        t.value = 105
        prof.sample(9, 5.0)  # lands in window 2
        prof.flush()
        decoder = ProfileDecoder()
        for record in sensor.ring.drain():
            decoder.deliver(record)
        summary = decoder.profiles[(4, 9)]
        assert summary.count == 3
        assert summary.windows == 2
        assert summary.total == pytest.approx(9.0)

    def test_non_summary_records_pass_through(self):
        decoder = ProfileDecoder()
        decoder.deliver(make_record())
        assert decoder.other_records == 1
        assert decoder.profiles == {}

    def test_usable_as_ism_consumer(self):
        from repro.core.consumers import Consumer

        assert isinstance(ProfileDecoder(), Consumer)


class TestVolumeReduction:
    def test_profiling_ships_far_fewer_records(self):
        """The §2 claim: profiling emulation cuts data volume."""
        t, sensor, prof = make_profiling_sensor(flush_us=1_000_000)
        n = 10_000
        for k in range(n):
            t.value = k * 100  # 10 kHz sampling for 1 simulated second
            prof.sample(7, float(k))
        prof.flush()
        summaries = len(sensor.ring.drain())
        assert summaries <= 2
        assert n / summaries >= 5_000  # >5000x reduction
