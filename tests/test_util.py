"""Unit tests for time base and statistics helpers."""


import pytest
from hypothesis import given, strategies as st

from repro.util.stats import Histogram, RunningStats, percentile
from repro.util.timebase import (
    MICROS_PER_SEC,
    check_timestamp,
    micros_to_seconds,
    now_micros,
    seconds_to_micros,
)


class TestTimebase:
    def test_now_micros_is_monotonic_enough(self):
        a = now_micros()
        b = now_micros()
        assert b >= a
        assert a > 1_500_000_000 * MICROS_PER_SEC  # after 2017, sanity

    def test_conversions_roundtrip(self):
        assert seconds_to_micros(1.5) == 1_500_000
        assert micros_to_seconds(2_500_000) == 2.5
        assert seconds_to_micros(micros_to_seconds(123_456)) == 123_456

    def test_check_timestamp_bounds(self):
        assert check_timestamp(0) == 0
        assert check_timestamp(2**63 - 1) == 2**63 - 1
        with pytest.raises(ValueError):
            check_timestamp(2**63)
        with pytest.raises(ValueError):
            check_timestamp(-(2**63) - 1)


class TestRunningStats:
    def test_known_values(self):
        stats = RunningStats()
        stats.extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.count == 8
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.138, abs=1e-3)
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0

    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_single_sample(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.variance == 0.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=100))
    def test_matches_two_pass_computation(self, xs):
        stats = RunningStats()
        stats.extend(xs)
        mean = sum(xs) / len(xs)
        var = sum((x - mean) ** 2 for x in xs) / (len(xs) - 1)
        assert stats.mean == pytest.approx(mean, rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(var, rel=1e-6, abs=1e-6)

    @given(
        st.lists(st.floats(-1e6, 1e6), max_size=50),
        st.lists(st.floats(-1e6, 1e6), max_size=50),
    )
    def test_merge_equals_concatenation(self, xs, ys):
        a, b, c = RunningStats(), RunningStats(), RunningStats()
        a.extend(xs)
        b.extend(ys)
        c.extend(xs + ys)
        merged = a.merge(b)
        assert merged.count == c.count
        assert merged.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-4)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_interpolation(self):
        assert percentile([0, 10], 25) == 2.5

    def test_extremes(self):
        data = [5, 1, 9]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 9

    def test_single_element(self):
        assert percentile([7], 99) == 7

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestHistogram:
    def test_binning(self):
        hist = Histogram(edges=[0, 10, 20, 30])
        hist.extend([5, 15, 15, 25, -1, 30, 100])
        assert hist.counts == [1, 2, 1]
        assert hist.underflow == 1
        assert hist.overflow == 2
        assert hist.total == 7

    def test_boundary_goes_to_upper_bin(self):
        hist = Histogram(edges=[0, 10, 20])
        hist.add(10)
        assert hist.counts == [0, 1]

    def test_fraction_below(self):
        hist = Histogram(edges=[0, 100, 200, 400])
        hist.extend([50, 150, 150, 350])
        assert hist.fraction_below(200) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            hist.fraction_below(123)

    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(edges=[1])
        with pytest.raises(ValueError):
            Histogram(edges=[1, 1])
        with pytest.raises(ValueError):
            Histogram(edges=[0, 10], counts=[1, 2])

    def test_many_bins_binary_search(self):
        edges = list(range(0, 1001, 10))
        hist = Histogram(edges=edges)
        for x in range(0, 1000):
            hist.add(x + 0.5)
        assert all(c == 10 for c in hist.counts)
