"""The durable commit log (:mod:`repro.log`): codec, recovery, offsets.

Five invariant families:

* **entry codec** — encode/decode is lossless for arbitrary records
  (hypothesis, reusing the suite's record strategy);
* **torn tails** — truncating a segment at *every* byte boundary and
  recovering yields exactly the committed record prefix, never garbage
  and never a lost committed record;
* **recovery** — reopening resumes offsets and source watermarks; a
  checkpoint is an ack frontier, so recovery discards appended-but-
  never-checkpointed records (they were never acked);
* **consumer offsets** — commit / re-attach resumes; replay from offset
  0 is byte-identical to live delivery order;
* **failure discipline** — injected ENOSPC / short write / fsync
  failure poisons the log (appends and syncs raise from then on) while
  reads keep serving the committed prefix.
"""

from __future__ import annotations

import errno
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import native
from repro.core.consumers import LogConsumer
from repro.core.ackgate import AckGate
from repro.core.merge import OrderedMerger
from repro.core.records import EventRecord, FieldType
from repro.log import (
    CHECKPOINT_FILE,
    CommitLog,
    DiskFaults,
    LogConfig,
    OffsetOutOfRange,
    iter_log,
    scan_segment,
    segment_path,
)
from repro.log.segment import SEGMENT_HEADER, encode_entry, iter_entries
from tests.conftest import make_record
from tests.test_properties import records


def _record(i: int, node: int = 1) -> EventRecord:
    return EventRecord(
        event_id=7,
        timestamp=1_000_000 + i,
        field_types=(FieldType.X_UINT,),
        values=(i,),
        node_id=node,
    )


def _fill(log: CommitLog, n: int, start: int = 0) -> list[EventRecord]:
    recs = [_record(i) for i in range(start, start + n)]
    for i in range(0, n, 5):  # chunked so segment rolls get a chance
        log.append_many(recs[i : i + 5])
    return recs


# ----------------------------------------------------------------------
# entry codec (hypothesis)
# ----------------------------------------------------------------------
class TestEntryCodec:
    @given(records())
    @settings(max_examples=60)
    def test_roundtrip(self, record):
        data = encode_entry(record)
        out = list(iter_entries(data, 0))
        assert len(out) == 1
        decoded, pos, end = out[0]
        assert decoded == record
        assert pos == 0 and end == len(data)

    @given(st.lists(records(max_fields=3), max_size=5), st.data())
    @settings(max_examples=40)
    def test_arbitrary_truncation_yields_prefix(self, recs, data):
        buf = b"".join(encode_entry(r) for r in recs)
        cut = data.draw(st.integers(min_value=0, max_value=len(buf)))
        decoded = [r for r, _p, _e in iter_entries(buf[:cut], 0)]
        # The decode stops at the first incomplete or corrupt entry and
        # never invents records: a prefix of the originals, nothing else.
        assert decoded == recs[: len(decoded)]
        ends = []
        pos = 0
        for r in recs:
            pos += len(encode_entry(r))
            ends.append(pos)
        expected = sum(1 for e in ends if e <= cut)
        assert len(decoded) == expected

    @given(records())
    @settings(max_examples=30)
    def test_corrupt_crc_rejected(self, record):
        data = bytearray(encode_entry(record))
        data[-1] ^= 0xFF  # flip a payload byte: CRC must catch it
        assert list(iter_entries(bytes(data), 0)) == []


# ----------------------------------------------------------------------
# torn tails: every byte boundary
# ----------------------------------------------------------------------
class TestTornTail:
    def test_recovery_at_every_byte_boundary(self, tmp_path):
        # Build a small real segment, then recover a copy truncated at
        # every possible byte length.  The recovered log must hold
        # exactly the records whose frames fit — the committed prefix.
        src = tmp_path / "src"
        log = CommitLog(src, LogConfig(fsync="off"))
        recs = _fill(log, 6)
        log.sync()
        log.close()
        seg = segment_path(str(src), 0)
        data = open(seg, "rb").read()
        ends = [SEGMENT_HEADER.size]
        for r in recs:
            ends.append(ends[-1] + len(encode_entry(r)))
        for cut in range(SEGMENT_HEADER.size, len(data) + 1):
            trial = tmp_path / f"cut{cut}"
            os.makedirs(trial)
            with open(os.path.join(trial, os.path.basename(seg)), "wb") as f:
                f.write(data[:cut])
            recovered = CommitLog(trial, LogConfig(fsync="off"))
            expected = sum(1 for e in ends[1:] if e <= cut)
            assert recovered.end_offset == expected, f"cut={cut}"
            assert recovered.read(0, 100) == recs[:expected]
            torn = cut - ends[expected]
            assert int(recovered.torn_bytes_truncated) == torn
            # And appends resume cleanly after the truncation.
            recovered.append(_record(99))
            assert recovered.read(expected, 10) == [_record(99)]
            recovered.close()

    def test_iter_log_is_read_only_on_torn_tail(self, tmp_path):
        log = CommitLog(tmp_path / "log", LogConfig(fsync="off"))
        recs = _fill(log, 4)
        log.sync()
        log.close()
        seg = segment_path(str(tmp_path / "log"), 0)
        with open(seg, "ab") as f:
            f.write(b"\x07\x00\x00\x00garbage")  # torn frame
        size = os.path.getsize(seg)
        assert list(iter_log(tmp_path / "log")) == recs
        assert os.path.getsize(seg) == size  # nothing truncated


# ----------------------------------------------------------------------
# append / read / roll / retention
# ----------------------------------------------------------------------
class TestCommitLog:
    def test_append_read_roundtrip_across_segments(self, tmp_path):
        log = CommitLog(tmp_path, LogConfig(segment_bytes=256, fsync="off"))
        recs = [_record(i) for i in range(50)]
        for record in recs:  # rolls are checked per append call
            log.append(record)
        assert log.segment_count > 1  # the roll actually happened
        assert log.end_offset == 50
        assert log.read(0, 1000) == recs
        assert list(log.iter_from(0)) == recs
        assert log.read(17, 5) == recs[17:22]
        assert log.read(50, 10) == []
        assert list(iter_log(tmp_path, 17)) == recs[17:]
        log.close()

    def test_append_returns_assigned_offset(self, tmp_path):
        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        assert log.append(_record(0)) == 0
        assert log.append_many([_record(1), _record(2)]) == 1
        assert log.append_many([]) == 3
        log.close()

    def test_retention_by_bytes_retires_sealed_segments(self, tmp_path):
        cfg = LogConfig(segment_bytes=256, retain_bytes=600, fsync="off")
        log = CommitLog(tmp_path, cfg)
        _fill(log, 80)
        assert int(log.segments_retired) > 0
        assert log.start_offset > 0
        with pytest.raises(OffsetOutOfRange):
            log.read(0)
        # The retained suffix is intact.
        assert log.read(log.start_offset, 1000) == [
            _record(i) for i in range(log.start_offset, 80)
        ]
        log.close()

    def test_roll_by_time(self, tmp_path):
        clock = [0.0]
        cfg = LogConfig(segment_interval_s=10.0, fsync="off")
        log = CommitLog(tmp_path, cfg, time_fn=lambda: clock[0])
        log.append(_record(0))
        clock[0] = 11.0
        log.append(_record(1))
        assert log.segment_count == 2
        log.close()

    def test_fsync_policies(self, tmp_path):
        batch = CommitLog(tmp_path / "b", LogConfig(fsync="batch"))
        batch.append(_record(0))
        assert batch.durable_offset == 1  # durable before append returns
        assert int(batch.fsyncs) >= 1
        batch.close()

        off = CommitLog(tmp_path / "o", LogConfig(fsync="off"))
        off.append(_record(0))
        assert off.durable_offset == 0
        assert off.sync() == 1
        assert off.durable_offset == 1
        off.close()

        clock = [0.0]
        interval = CommitLog(
            tmp_path / "i",
            LogConfig(fsync="interval", fsync_interval_s=1.0),
            time_fn=lambda: clock[0],
        )
        interval.append(_record(0))
        assert interval.durable_offset == 0  # within the interval
        clock[0] = 2.0
        interval.append(_record(1))
        assert interval.durable_offset == 2  # cadence hit: both synced
        interval.close()

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            LogConfig(fsync="always")
        with pytest.raises(ValueError):
            LogConfig(segment_bytes=4)
        with pytest.raises(ValueError):
            LogConfig(index_interval_bytes=0)

    def test_metrics_adoption(self, tmp_path):
        from repro.obs.collect import wire_commit_log
        from repro.obs.metrics import MetricsRegistry

        log = CommitLog(tmp_path, LogConfig(fsync="batch"))
        registry = MetricsRegistry()
        wire_commit_log(registry, log)
        _fill(log, 5)
        snap = registry.snapshot()
        assert snap.get("log.records_appended") == 5
        assert snap.get("log.end_offset") == 5
        assert snap.get("log.durable_offset") == 5
        assert snap.get("log.segments") == 1
        assert snap.get("log.broken") == 0
        assert snap.get("log.fsyncs") >= 1
        log.close()


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
class TestRecovery:
    def test_reopen_resumes_offsets_and_watermarks(self, tmp_path):
        log = CommitLog(tmp_path, LogConfig(segment_bytes=256, fsync="off"))
        recs = _fill(log, 30)
        log.sync({1: 3, 2: 7})
        log.close()

        log = CommitLog(tmp_path, LogConfig(segment_bytes=256, fsync="off"))
        assert log.end_offset == 30
        assert log.source_watermarks() == {1: 3, 2: 7}
        more = [_record(i) for i in range(30, 40)]
        assert log.append_many(more) == 30
        assert log.read(0, 100) == recs + more
        log.close()

    def test_checkpoint_is_the_ack_frontier(self, tmp_path):
        # fsync=off: records past the last checkpointed sync were never
        # acked, so recovery must discard them — keeping them would
        # duplicate the retransmissions already on their way.
        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        _fill(log, 10)
        log.sync({1: 1})  # checkpoint at 10
        _fill(log, 5, start=10)  # appended, never synced, never acked
        # No close(): the process "dies" here.
        log._file.close()
        log._idx_file.close()

        recovered = CommitLog(tmp_path, LogConfig(fsync="off"))
        assert recovered.end_offset == 10
        assert int(recovered.checkpoint_truncated_records) == 5
        assert recovered.source_watermarks() == {1: 1}
        assert recovered.read(0, 100) == [_record(i) for i in range(10)]
        recovered.close()

    def test_checkpoint_truncation_drops_whole_tail_segments(self, tmp_path):
        log = CommitLog(tmp_path, LogConfig(segment_bytes=256, fsync="off"))
        _fill(log, 10)
        log.sync({1: 1})
        _fill(log, 40, start=10)  # rolls several unacked segments
        assert log.segment_count > 2
        log._file.close()
        log._idx_file.close()

        recovered = CommitLog(tmp_path, LogConfig(segment_bytes=256, fsync="off"))
        assert recovered.end_offset == 10
        assert int(recovered.checkpoint_truncated_records) == 40
        recovered.close()

    def test_uncheckpointed_log_gets_max_salvage(self, tmp_path):
        # Without a checkpoint no ack was ever gated on the log, so
        # recovery keeps every intact record (torn-tail scan only).
        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        recs = _fill(log, 8)
        log._file.close()
        log._idx_file.close()
        recovered = CommitLog(tmp_path, LogConfig(fsync="off"))
        assert recovered.read(0, 100) == recs
        recovered.close()

    def test_part_litter_is_removed(self, tmp_path):
        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        log.close()
        litter = tmp_path / (CHECKPOINT_FILE + ".part")
        litter.write_bytes(b"{}")
        CommitLog(tmp_path, LogConfig(fsync="off")).close()
        assert not litter.exists()

    def test_sparse_index_survives_recovery(self, tmp_path):
        cfg = LogConfig(index_interval_bytes=64, fsync="off")
        log = CommitLog(tmp_path, cfg)
        recs = _fill(log, 40)
        log.sync()
        log.close()
        recovered = CommitLog(tmp_path, cfg)
        # Mid-segment read exercises the index floor path.
        assert recovered.read(25, 5) == recs[25:30]
        recovered.close()


# ----------------------------------------------------------------------
# consumer groups
# ----------------------------------------------------------------------
class TestConsumerGroups:
    def test_commit_and_reattach_resumes(self, tmp_path):
        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        recs = _fill(log, 20)
        consumer = log.consumer("analytics")
        assert consumer.read(8) == recs[:8]
        consumer.commit()
        assert log.committed_offset("analytics") == 8
        assert log.lag("analytics") == 12

        # Re-attach (fresh handle, as a restarted process would).
        again = log.consumer("analytics")
        assert again.position == 8
        assert again.read(100) == recs[8:]
        assert again.lag == 0
        log.close()

    def test_replay_from_zero_is_byte_identical_to_live(self, tmp_path):
        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        live: list[EventRecord] = []
        for i in range(25):
            record = _record(i)
            log.append(record)
            live.append(record)  # delivery order as a live consumer saw it
        replay = log.consumer("late", start=0)
        replayed = replay.read(1000)
        assert replayed == live
        live_bytes = b"".join(native.pack_record(r) for r in live)
        replay_bytes = b"".join(native.pack_record(r) for r in replayed)
        assert replay_bytes == live_bytes
        log.close()

    def test_offsets_survive_reopen(self, tmp_path):
        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        _fill(log, 10)
        consumer = log.consumer("g1")
        consumer.read(4)
        consumer.commit()
        log.sync()
        log.close()
        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        assert log.groups() == {"g1": 4}
        assert log.consumer("g1").position == 4
        log.close()

    def test_seek_and_commit_validation(self, tmp_path):
        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        _fill(log, 5)
        consumer = log.consumer("g")
        with pytest.raises(OffsetOutOfRange):
            consumer.seek(6)
        with pytest.raises(OffsetOutOfRange):
            log.commit_offset("g", 99)
        with pytest.raises(ValueError):
            log.consumer("../escape").commit()
        log.close()

    def test_retired_offset_clamps_to_start(self, tmp_path):
        cfg = LogConfig(segment_bytes=256, retain_bytes=600, fsync="off")
        log = CommitLog(tmp_path, cfg)
        _fill(log, 80)
        log.commit_offset("slow", 0)
        assert log.start_offset > 0
        consumer = log.consumer("slow")
        assert consumer.position == log.start_offset
        log.close()


# ----------------------------------------------------------------------
# disk-fault injection (satellite: failure discipline)
# ----------------------------------------------------------------------
class TestDiskFaults:
    def test_enospc_poisons_the_log(self, tmp_path):
        faults = DiskFaults(enospc_after_bytes=100)
        log = CommitLog(tmp_path, LogConfig(fsync="off"), faults=faults)
        written = 0
        with pytest.raises(OSError) as excinfo:
            for i in range(100):
                log.append(_record(i))
                written += 1
        assert excinfo.value.errno == errno.ENOSPC
        assert log.broken is not None
        assert int(log.append_errors) == 1
        # Poisoned: every later append and sync re-raises...
        with pytest.raises(OSError):
            log.append(_record(0))
        with pytest.raises(OSError):
            log.sync()
        # ...but reads keep serving the committed prefix.
        assert log.read(0, 100) == [_record(i) for i in range(written)]
        log.close()

    def test_short_write_leaves_recoverable_torn_frame(self, tmp_path):
        entry_len = len(encode_entry(_record(0)))
        faults = DiskFaults(short_write_at_bytes=10 * entry_len + 4)
        log = CommitLog(tmp_path, LogConfig(fsync="off"), faults=faults)
        log.append_many([_record(i) for i in range(10)])
        with pytest.raises(OSError):
            log.append(_record(10))  # torn: only 4 bytes reach the disk
        log._file.close()
        log._idx_file.close()

        recovered = CommitLog(tmp_path, LogConfig(fsync="off"))
        assert recovered.end_offset == 10
        assert int(recovered.torn_bytes_truncated) == 4
        assert recovered.read(0, 100) == [_record(i) for i in range(10)]
        recovered.close()

    def test_fsync_failure_poisons_batch_policy(self, tmp_path):
        faults = DiskFaults()
        log = CommitLog(tmp_path, LogConfig(fsync="batch"), faults=faults)
        log.append(_record(0))
        faults.fail_fsync = True
        with pytest.raises(OSError):
            log.append(_record(1))
        assert log.broken is not None
        with pytest.raises(OSError):
            log.sync({1: 5})
        # The checkpoint must not advance past a failed fsync: acks
        # quoted from it would reference records that never hit disk.
        assert log.source_watermarks() == {}
        log.close()

    def test_runtime_fault_arming(self, tmp_path):
        # Faults are mutable at runtime — arm ENOSPC mid-stream.
        faults = DiskFaults()
        log = CommitLog(tmp_path, LogConfig(fsync="off"), faults=faults)
        _fill(log, 5)
        faults.enospc_after_bytes = faults.bytes_written  # next write fails
        with pytest.raises(OSError):
            log.append(_record(5))
        assert int(faults.writes_failed) == 1
        log.close()


# ----------------------------------------------------------------------
# LogConsumer
# ----------------------------------------------------------------------
class TestLogConsumer:
    def test_deliver_appends_and_counts(self, tmp_path):
        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        sink = LogConsumer(log)
        sink.deliver(_record(0))
        sink.deliver_many([_record(1), _record(2)])
        assert sink.delivered == 3
        assert log.end_offset == 3
        assert sink.sync({1: 2}) == 3
        assert sink.source_watermarks() == {1: 2}
        sink.close()  # close_log=False: the log stays open
        assert log.append(_record(3)) == 3
        log.close()

    def test_close_log_ownership(self, tmp_path):
        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        LogConsumer(log, close_log=True).close()
        with pytest.raises(RuntimeError):
            log.append(_record(0))


# ----------------------------------------------------------------------
# AckGate (shared by shard workers and durable-mode servers)
# ----------------------------------------------------------------------
class TestAckGate:
    def test_ack_advances_only_when_records_released(self):
        gate = AckGate()
        gate.on_admitted(1, seq=0, n_records=10)
        gate.on_admitted(1, seq=1, n_records=10)
        assert not gate.advance({1: 5}, parked_now=0)
        assert gate.acked(1) is None
        assert gate.advance({1: 10}, parked_now=0)
        assert gate.acked(1) == 0
        assert gate.advance({1: 20}, parked_now=0)
        assert gate.acked(1) == 1

    def test_parked_records_block_every_ack(self):
        gate = AckGate()
        gate.on_admitted(1, seq=0, n_records=10)
        # Released counts say yes, but the CRE still parks a record: the
        # released set is not yet the delivered set, so nothing acks.
        assert not gate.advance({1: 10}, parked_now=1)
        assert gate.acked(1) is None
        assert gate.advance({1: 10}, parked_now=0)

    def test_committed_lags_acked_until_commit(self):
        gate = AckGate()
        gate.on_admitted(1, seq=0, n_records=5)
        gate.advance({1: 5}, parked_now=0)
        assert gate.acked(1) == 0
        assert gate.committed(1) is None  # not safe to quote yet
        gate.commit()
        assert gate.committed(1) == 0
        assert gate.committed_watermarks() == {1: 0}

    def test_dirty_tracking_and_duplicates(self):
        gate = AckGate()
        gate.on_admitted(1, seq=0, n_records=5)
        gate.advance({1: 5}, parked_now=0)
        assert gate.has_dirty
        assert gate.take_dirty() == [1]
        assert not gate.has_dirty
        gate.mark_dirty(1)  # duplicate batch wants a re-ack
        assert gate.take_dirty() == [1]

    def test_resume_seeds_both_watermarks(self):
        gate = AckGate({1: 7})
        assert gate.acked(1) == 7
        assert gate.committed(1) == 7
        gate.on_admitted(1, seq=8, n_records=3)
        gate.advance({1: 3}, parked_now=0)
        assert gate.acked(1) == 8
        assert not gate.has_pending


# ----------------------------------------------------------------------
# OrderedMerger.low_watermark (durable sharded acks gate on it)
# ----------------------------------------------------------------------
class TestMergerLowWatermark:
    def test_none_while_any_shard_undeclared(self):
        merger = OrderedMerger()
        merger.add_shard(0)
        merger.add_shard(1)
        assert merger.low_watermark() is None
        merger.advance(0, 50)
        assert merger.low_watermark() is None
        merger.advance(1, 30)
        assert merger.low_watermark() == 30

    def test_closed_shards_do_not_gate(self):
        merger = OrderedMerger()
        merger.add_shard(0)
        merger.add_shard(1)
        merger.advance(0, 50)
        merger.close_shard(1)
        assert merger.low_watermark() == 50


# ----------------------------------------------------------------------
# Trace.from_log
# ----------------------------------------------------------------------
class TestTraceFromLog:
    def test_from_log_object_and_directory(self, tmp_path):
        from repro.analysis.trace import Trace

        log = CommitLog(tmp_path, LogConfig(fsync="off"))
        recs = _fill(log, 12)
        trace = Trace.from_log(log)
        assert list(trace) == recs
        assert Trace.from_log(log, start=5).records == tuple(recs[5:])
        log.sync()
        log.close()
        assert list(Trace.from_log(str(tmp_path))) == recs


# ----------------------------------------------------------------------
# CLI: brisk-log and brisk-replay on a log directory
# ----------------------------------------------------------------------
class TestLogCli:
    @pytest.fixture
    def log_dir(self, tmp_path):
        log = CommitLog(
            tmp_path / "log", LogConfig(segment_bytes=512, fsync="off")
        )
        _fill(log, 40)
        log.sync({1: 3})
        consumer = log.consumer("grp")
        consumer.read(10)
        consumer.commit()
        log.close()
        return str(tmp_path / "log")

    def test_info(self, log_dir, capsys):
        from repro.tools.log_cli import main

        assert main(["info", log_dir]) == 0
        out = capsys.readouterr().out
        assert "segment" in out
        assert "offsets [0, 40)" in out
        assert "durable_end=40" in out
        assert "group grp: offset 10, lag 30" in out

    def test_info_empty_dir(self, tmp_path, capsys):
        from repro.tools.log_cli import main

        assert main(["info", str(tmp_path)]) == 1

    def test_tail_newest_and_from_offset(self, log_dir, capsys):
        from repro.tools.log_cli import main

        assert main(["tail", log_dir, "-n", "5"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        assert main(["tail", log_dir, "--from-offset", "38"]) == 0
        assert len(capsys.readouterr().out.strip().splitlines()) == 2

    def test_truncate_check_clean_and_torn(self, log_dir, capsys):
        from repro.tools.log_cli import main

        assert main(["truncate-check", log_dir]) == 0
        assert "clean" in capsys.readouterr().out
        # Tear the tail segment: exit 1, and the log is untouched.
        bases = sorted(
            int(name[:-4])
            for name in os.listdir(log_dir)
            if name.endswith(".seg")
        )
        tail = segment_path(log_dir, bases[-1])
        with open(tail, "ab") as f:
            f.write(b"\xff\xff\xff\xff torn")
        size = os.path.getsize(tail)
        assert main(["truncate-check", log_dir]) == 1
        assert "torn tail" in capsys.readouterr().out
        assert os.path.getsize(tail) == size

    def test_offsets_list_and_set(self, log_dir, capsys):
        from repro.tools.log_cli import main

        assert main(["offsets", log_dir]) == 0
        assert "grp\t10\t30" in capsys.readouterr().out
        assert main(["offsets", log_dir, "--set", "replay=0"]) == 0
        capsys.readouterr()
        assert main(["offsets", log_dir]) == 0
        assert "replay\t0\t40" in capsys.readouterr().out
        assert main(["offsets", log_dir, "--set", "bad"]) == 2
        assert main(["offsets", log_dir, "--set", "grp=999"]) == 2

    def test_replay_cli_reads_log_directory(self, log_dir, tmp_path, capsys):
        from repro.picl.format import PiclReader
        from repro.tools.replay_cli import main

        out = tmp_path / "replayed.picl"
        assert main([log_dir, str(out)]) == 0
        with open(out) as stream:
            assert sum(1 for _ in PiclReader(stream)) == 40
        capsys.readouterr()
        assert main([log_dir, str(out), "--from-offset", "30"]) == 0
        with open(out) as stream:
            assert sum(1 for _ in PiclReader(stream)) == 10


# ----------------------------------------------------------------------
# checkpoint file shape (tooling depends on it)
# ----------------------------------------------------------------------
def test_checkpoint_is_sorted_json(tmp_path):
    log = CommitLog(tmp_path, LogConfig(fsync="off"))
    _fill(log, 3)
    log.sync({2: 9, 1: 4})
    with open(tmp_path / CHECKPOINT_FILE, encoding="ascii") as stream:
        payload = json.load(stream)
    assert payload == {
        "durable_end": 3,
        "sources": {"1": 4, "2": 9},
        "fsync": "off",
    }
    log.close()


def test_scan_segment_reports_positions_and_last_ts(tmp_path):
    log = CommitLog(tmp_path, LogConfig(fsync="off"))
    recs = _fill(log, 5)
    log.sync()
    log.close()
    scan = scan_segment(segment_path(str(tmp_path), 0))
    assert scan.record_count == 5
    assert scan.last_timestamp == recs[-1].timestamp
    assert len(scan.positions) == 5
    assert scan.positions[0] == SEGMENT_HEADER.size
    assert scan.valid_end == scan.file_size


def test_make_record_appends_via_log_consumer(tmp_path):
    # The suite's canonical benchmark record survives the log unchanged.
    log = CommitLog(tmp_path, LogConfig(fsync="off"))
    record = make_record(timestamp=42_000_000, node_id=3)
    LogConsumer(log).deliver(record)
    assert log.read(0, 1) == [record]
    log.close()
