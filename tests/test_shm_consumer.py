"""Tests for the shared-memory output buffer and the brisk-tail tool."""

import multiprocessing as mp
import threading

import pytest
from tests.conftest import make_record

from repro.core.consumers import Consumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.sorting import SorterConfig
from repro.runtime.shm_consumer import SharedMemoryConsumer, SharedMemoryReader
from repro.tools import tail_cli
from repro.wire import protocol


class TestSharedMemoryConsumer:
    def test_records_cross_to_reader(self):
        consumer = SharedMemoryConsumer(capacity_bytes=64 * 1024)
        try:
            reader = SharedMemoryReader(consumer.name)
            try:
                records = [make_record(event_id=i, timestamp=i) for i in range(5)]
                for record in records:
                    consumer.deliver(record)
                assert reader.drain() == records
                assert consumer.delivered == 5
            finally:
                reader.close()
        finally:
            consumer.close()

    def test_satisfies_consumer_protocol(self):
        consumer = SharedMemoryConsumer(capacity_bytes=4096)
        try:
            assert isinstance(consumer, Consumer)
        finally:
            consumer.close()

    def test_slow_tool_drops_counted(self):
        consumer = SharedMemoryConsumer(capacity_bytes=4096)
        try:
            while consumer.dropped == 0:
                consumer.deliver(make_record())
            assert consumer.delivered > 0
        finally:
            consumer.close()

    def test_closed_consumer_rejects(self):
        consumer = SharedMemoryConsumer(capacity_bytes=4096)
        consumer.close()
        with pytest.raises(RuntimeError):
            consumer.deliver(make_record())
        consumer.close()  # idempotent

    def test_usable_as_ism_output(self):
        consumer = SharedMemoryConsumer(capacity_bytes=256 * 1024)
        try:
            reader = SharedMemoryReader(consumer.name)
            try:
                manager = InstrumentationManager(
                    IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
                    [consumer],
                )
                manager.register_source(1, 1)
                records = tuple(
                    make_record(event_id=5, timestamp=100 + k) for k in range(20)
                )
                manager.on_message(
                    protocol.Batch(exs_id=1, seq=0, records=records), now=0
                )
                manager.tick(now=10**9)
                received = reader.drain()
                assert len(received) == 20
                assert all(r.node_id == 1 for r in received)
            finally:
                reader.close()
        finally:
            consumer.close()

    def test_poll_waits_for_data(self):
        consumer = SharedMemoryConsumer(capacity_bytes=64 * 1024)
        try:
            reader = SharedMemoryReader(consumer.name)
            try:
                timer = threading.Timer(
                    0.1, consumer.deliver, [make_record(event_id=9)]
                )
                timer.start()
                records = reader.poll(timeout_s=5.0)
                timer.join()
                assert [r.event_id for r in records] == [9]
            finally:
                reader.close()
        finally:
            consumer.close()

    def test_poll_times_out_empty(self):
        consumer = SharedMemoryConsumer(capacity_bytes=4096)
        try:
            reader = SharedMemoryReader(consumer.name)
            try:
                assert reader.poll(timeout_s=0.05) == []
            finally:
                reader.close()
        finally:
            consumer.close()

    def test_stream_stops_after_count(self):
        consumer = SharedMemoryConsumer(capacity_bytes=64 * 1024)
        try:
            reader = SharedMemoryReader(consumer.name)
            try:
                for k in range(10):
                    consumer.deliver(make_record(event_id=k))
                out = list(reader.stream(stop_after=4))
                assert [r.event_id for r in out] == [0, 1, 2, 3]
            finally:
                reader.close()
        finally:
            consumer.close()


def _reader_process(name: str, count: int, queue) -> None:
    reader = SharedMemoryReader(name)
    try:
        records = list(reader.stream(stop_after=count, idle_timeout_s=10.0))
        queue.put([r.event_id for r in records])
    finally:
        reader.close()


class TestCrossProcess:
    def test_tool_in_another_process(self):
        ctx = mp.get_context("spawn")
        consumer = SharedMemoryConsumer(capacity_bytes=256 * 1024)
        queue = ctx.Queue()
        tool = ctx.Process(
            target=_reader_process, args=(consumer.name, 50, queue)
        )
        tool.start()
        try:
            for k in range(50):
                consumer.deliver(make_record(event_id=k))
            ids = queue.get(timeout=30)
            assert ids == list(range(50))
        finally:
            tool.join(timeout=10)
            if tool.is_alive():
                tool.terminate()
            consumer.close()


class TestTailCli:
    def test_prints_picl_lines(self, capsys):
        consumer = SharedMemoryConsumer(capacity_bytes=64 * 1024)
        try:
            for k in range(3):
                consumer.deliver(make_record(event_id=k, timestamp=1000 + k))
            rc = tail_cli.main(
                [consumer.name, "--count", "3", "--idle-timeout", "2"]
            )
            out = capsys.readouterr().out
            assert rc == 0
            assert len(out.strip().splitlines()) == 3
            assert out.startswith("-3 0 1000")
        finally:
            consumer.close()

    def test_missing_segment(self, capsys):
        assert tail_cli.main(["definitely_not_a_segment"]) == 1
