"""Shared fixtures and helpers for the BRISK test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.records import EventRecord, FieldType


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; reseeded per test."""
    return random.Random(0xB215C)


def make_record(
    event_id: int = 1,
    timestamp: int = 1_000_000,
    n_ints: int = 6,
    node_id: int = 0,
    **extra,
) -> EventRecord:
    """The paper's benchmark record: *n_ints* integer fields."""
    return EventRecord(
        event_id=event_id,
        timestamp=timestamp,
        field_types=(FieldType.X_INT,) * n_ints,
        values=tuple(range(1, n_ints + 1)),
        node_id=node_id,
        **extra,
    )


def make_mixed_record(timestamp: int = 5_000_000) -> EventRecord:
    """A record exercising every field-type family."""
    return EventRecord(
        event_id=9,
        timestamp=timestamp,
        field_types=(
            FieldType.X_BYTE,
            FieldType.X_USHORT,
            FieldType.X_UINT,
            FieldType.X_HYPER,
            FieldType.X_FLOAT,
            FieldType.X_DOUBLE,
            FieldType.X_STRING,
            FieldType.X_OPAQUE,
        ),
        values=(-5, 65_000, 2**31, -(2**40), 1.5, 3.25, "héllo", b"\x00\xff"),
        node_id=3,
    )
