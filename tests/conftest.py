"""Shared fixtures and helpers for the BRISK test suite."""

from __future__ import annotations

import random
import time
from typing import Any, Callable

import pytest

from repro.core.records import EventRecord, FieldType


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite golden conformance artifacts instead of comparing",
    )


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG; reseeded per test."""
    return random.Random(0xB215C)


def wait_until(
    predicate: Callable[[], Any],
    timeout: float = 5.0,
    interval: float = 0.005,
    message: str | None = None,
) -> Any:
    """Poll *predicate* until it returns a truthy value, then return it.

    The suite's replacement for fixed ``time.sleep`` waits on real
    threads and processes: it converges as soon as the condition holds
    (fast machines don't pay the worst case) and only fails after a
    generous *timeout* (slow machines don't flake).
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(
                message or f"condition not met within {timeout}s: {predicate}"
            )
        time.sleep(interval)


def make_record(
    event_id: int = 1,
    timestamp: int = 1_000_000,
    n_ints: int = 6,
    node_id: int = 0,
    **extra,
) -> EventRecord:
    """The paper's benchmark record: *n_ints* integer fields."""
    return EventRecord(
        event_id=event_id,
        timestamp=timestamp,
        field_types=(FieldType.X_INT,) * n_ints,
        values=tuple(range(1, n_ints + 1)),
        node_id=node_id,
        **extra,
    )


def make_mixed_record(timestamp: int = 5_000_000) -> EventRecord:
    """A record exercising every field-type family."""
    return EventRecord(
        event_id=9,
        timestamp=timestamp,
        field_types=(
            FieldType.X_BYTE,
            FieldType.X_USHORT,
            FieldType.X_UINT,
            FieldType.X_HYPER,
            FieldType.X_FLOAT,
            FieldType.X_DOUBLE,
            FieldType.X_STRING,
            FieldType.X_OPAQUE,
        ),
        values=(-5, 65_000, 2**31, -(2**40), 1.5, 3.25, "héllo", b"\x00\xff"),
        node_id=3,
    )
