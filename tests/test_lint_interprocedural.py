"""brisk-lint v2: call graph, effect fixpoint, BRK6xx/7xx/8xx checkers,
transitive BRK204, symbol fingerprints, and the --graph/--explain CLI.

Unit trees are built in tmp_path with the real ``src/repro/...`` layout
so module qnames (and therefore project seeds) resolve exactly as in the
repo; fixture mini-roots under ``tests/lint_fixtures/`` cover one
true-positive and one true-negative tree per new rule family.
"""

import shutil
import time as _time
from pathlib import Path

from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.callgraph import build_callgraph
from repro.lint.cli import main as lint_main
from repro.lint.effects import Effect, project_analysis
from repro.lint.engine import load_tree
from repro.lint.runner import run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lint_fixtures"


def make_tree(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
    return load_tree([tmp_path / "src"], root=tmp_path)


def edges_of(graph, caller_suffix):
    info = graph.lookup(caller_suffix)
    assert info is not None, f"no function matches {caller_suffix}"
    return {(e.callee, e.kind) for e in graph.callees(info.qname)}


def lint_fixture(name, select=()):
    sub = FIXTURES / name
    return run_lint([sub / "src"], root=sub, select=list(select))


# ----------------------------------------------------------------------
# call graph resolution
# ----------------------------------------------------------------------


class TestCallGraph:
    def test_import_alias_resolution(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/util.py": "def helper():\n    return 1\n",
            "src/repro/core/user.py": (
                "from repro.core.util import helper as h\n"
                "def caller():\n    return h()\n"
            ),
        })
        graph = build_callgraph(tree)
        assert ("repro.core.util.helper", "call") in edges_of(graph, "caller")

    def test_method_resolution_via_attr_type(self, tmp_path):
        # Two classes define commit() so uniqueness cannot resolve it;
        # only the __init__ assignment type can.
        tree = make_tree(tmp_path, {
            "src/repro/core/gate.py": (
                "class Gate:\n    def commit(self):\n        return 1\n"
                "class Log:\n    def commit(self):\n        return 2\n"
            ),
            "src/repro/core/owner.py": (
                "from repro.core.gate import Gate\n"
                "class Owner:\n"
                "    def __init__(self):\n"
                "        self.gate = Gate()\n"
                "    def release(self):\n"
                "        return self.gate.commit()\n"
            ),
        })
        graph = build_callgraph(tree)
        assert ("repro.core.gate.Gate.commit", "method") in edges_of(
            graph, "Owner.release"
        )

    def test_local_alias_of_self_attr(self, tmp_path):
        # gate = self._gate; gate.commit() — the PR's new inference.
        tree = make_tree(tmp_path, {
            "src/repro/core/gate.py": (
                "class Gate:\n    def commit(self):\n        return 1\n"
                "class Log:\n    def commit(self):\n        return 2\n"
            ),
            "src/repro/core/owner.py": (
                "from repro.core.gate import Gate\n"
                "class Owner:\n"
                "    def __init__(self):\n"
                "        self._gate = Gate()\n"
                "    def release(self):\n"
                "        gate = self._gate\n"
                "        return gate.commit()\n"
            ),
        })
        graph = build_callgraph(tree)
        assert ("repro.core.gate.Gate.commit", "method") in edges_of(
            graph, "Owner.release"
        )

    def test_functools_partial_edge(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/mod.py": (
                "import functools\n"
                "def work(x):\n    return x\n"
                "def wire():\n    return functools.partial(work, 1)\n"
            ),
        })
        graph = build_callgraph(tree)
        assert ("repro.core.mod.work", "partial") in edges_of(graph, "wire")

    def test_callback_argument_edge(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/mod.py": (
                "import threading\n"
                "class Owner:\n"
                "    def _loop(self):\n        return None\n"
                "    def start(self):\n"
                "        return threading.Thread(target=self._loop)\n"
            ),
        })
        graph = build_callgraph(tree)
        assert ("repro.core.mod.Owner._loop", "callback") in edges_of(
            graph, "Owner.start"
        )

    def test_unique_bare_name_fallback(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/ring.py": (
                "class Ring:\n    def drain_all(self):\n        return []\n"
            ),
            "src/repro/core/user.py": (
                "def pump(ring):\n    return ring.drain_all()\n"
            ),
        })
        graph = build_callgraph(tree)
        assert ("repro.core.ring.Ring.drain_all", "unique") in edges_of(
            graph, "pump"
        )

    def test_ambiguous_bare_name_stays_unresolved(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/two.py": (
                "class A:\n    def act(self):\n        return 1\n"
                "class B:\n    def act(self):\n        return 2\n"
            ),
            "src/repro/core/user.py": (
                "def call(obj):\n    return obj.act()\n"
            ),
        })
        graph = build_callgraph(tree)
        info = graph.lookup("call")
        assert graph.callees(info.qname) == []
        assert [d for d, _ in graph.unresolved[info.qname]] == ["obj.act"]

    def test_instantiation_edges_to_init(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/mod.py": (
                "class Thing:\n"
                "    def __init__(self):\n        self.x = 1\n"
                "def build():\n    return Thing()\n"
            ),
        })
        graph = build_callgraph(tree)
        assert ("repro.core.mod.Thing.__init__", "instantiate") in edges_of(
            graph, "build"
        )

    def test_base_class_method_walk(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/mod.py": (
                "class Base:\n    def tick(self):\n        return 1\n"
                "class Derived(Base):\n    pass\n"
                "class Owner:\n"
                "    def __init__(self):\n        self.d = Derived()\n"
                "    def go(self):\n        return self.d.tick()\n"
            ),
        })
        graph = build_callgraph(tree)
        assert ("repro.core.mod.Base.tick", "method") in edges_of(
            graph, "Owner.go"
        )


# ----------------------------------------------------------------------
# effect fixpoint
# ----------------------------------------------------------------------


class TestEffects:
    def test_transitive_chain_and_shortest_path(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/mod.py": (
                "import time\n"
                "def a():\n    return b()\n"
                "def b():\n    return c()\n"
                "def c():\n    time.sleep(1)\n"
            ),
        })
        analysis = project_analysis(tree)
        fx = analysis.effects_of("repro.core.mod.a")
        assert fx.local == Effect.NONE
        assert fx.transitive & Effect.BLOCKS_SLEEP
        chain = analysis.chain_to("repro.core.mod.a", Effect.BLOCKS_SLEEP)
        assert [callee for _, callee in chain] == [
            "repro.core.mod.b", "repro.core.mod.c"
        ]

    def test_recursion_cycle_terminates(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/mod.py": (
                "import time\n"
                "def a(n):\n    return b(n)\n"
                "def b(n):\n"
                "    if n:\n        return a(n - 1)\n"
                "    time.sleep(1)\n"
            ),
        })
        analysis = project_analysis(tree)
        for name in ("a", "b"):
            fx = analysis.effects_of(f"repro.core.mod.{name}")
            assert fx.transitive & Effect.BLOCKS_SLEEP

    def test_timebase_barrier_masks_clock(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/util/timebase.py": (
                "import time\n"
                "def now():\n    return time.time()\n"
            ),
            "src/repro/sim/mod.py": (
                "from repro.util.timebase import now\n"
                "def step():\n    return now()\n"
            ),
        })
        analysis = project_analysis(tree)
        inner = analysis.effects_of("repro.util.timebase.now")
        assert inner.local & Effect.READS_CLOCK
        assert not analysis.outward("repro.util.timebase.now") & Effect.READS_CLOCK
        caller = analysis.effects_of("repro.sim.mod.step")
        assert not caller.transitive & Effect.READS_CLOCK

    def test_callback_edges_do_not_propagate(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/mod.py": (
                "import threading\n"
                "class Owner:\n"
                "    def _loop(self):\n"
                "        while True:\n            self.q.get()\n"
                "    def start(self):\n"
                "        return threading.Thread(target=self._loop)\n"
            ),
        })
        analysis = project_analysis(tree)
        loop = analysis.effects_of("repro.core.mod.Owner._loop")
        assert loop.local & Effect.BLOCKS_QUEUE
        start = analysis.effects_of("repro.core.mod.Owner.start")
        assert not start.transitive & Effect.BLOCKS_QUEUE

    def test_guarded_reads_are_not_blocking(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/mod.py": (
                "import select\n"
                "def guarded(conn):\n"
                "    select.select([conn], [], [], 0.1)\n"
                "    return conn.recv(4096)\n"
                "def bounded(q):\n"
                "    return q.get(timeout=0.1)\n"
                "def bare(conn):\n"
                "    return conn.recv(4096)\n"
            ),
        })
        analysis = project_analysis(tree)
        assert not analysis.effects_of("repro.core.mod.guarded").local & Effect.BLOCKS_RECV
        assert not analysis.effects_of("repro.core.mod.bounded").local & Effect.BLOCKS_QUEUE
        assert analysis.effects_of("repro.core.mod.bare").local & Effect.BLOCKS_RECV

    def test_analysis_is_cached_per_tree(self, tmp_path):
        tree = make_tree(tmp_path, {
            "src/repro/core/mod.py": "def f():\n    return 1\n",
        })
        assert project_analysis(tree) is project_analysis(tree)


# ----------------------------------------------------------------------
# BRK6xx deep loop discipline
# ----------------------------------------------------------------------


class TestDeepLoop:
    def test_bad_fixture_fires_each_rule_once(self):
        result = lint_fixture("loop_deep_bad", select=["BRK6"])
        assert [(f.rule, f.line) for f in sorted(
            result.new, key=lambda f: f.rule
        )] == [("BRK601", 16), ("BRK602", 17), ("BRK603", 18)]
        (brk601,) = [f for f in result.new if f.rule == "BRK601"]
        assert "_flush -> _push_retry" in brk601.message
        assert "time.sleep" in brk601.message

    def test_good_fixture_is_quiet(self):
        result = lint_fixture("loop_deep_good", select=["BRK6"])
        assert result.new == [], "\n".join(f.render() for f in result.new)

    def test_dedupe_one_finding_per_terminal(self, tmp_path):
        # Two pumps reaching the same sleep: one finding, shortest chain.
        shutil.copytree(FIXTURES / "loop_deep_bad", tmp_path / "tree")
        target = tmp_path / "tree/src/repro/runtime/ism_proc.py"
        target.write_text(target.read_text() + (
            "\n"
            "    def run2(self):\n"
            "        while not self.stop:\n"
            "            select.select([self.conn], [], [], 0.01)\n"
            "            self._indirect()\n"
            "\n"
            "    def _indirect(self):\n"
            "        self._flush()\n"
        ))
        result = run_lint(
            [tmp_path / "tree/src"], root=tmp_path / "tree", select=["BRK601"]
        )
        assert len(result.new) == 1
        assert result.new[0].line == 16  # the shorter chain wins


# ----------------------------------------------------------------------
# BRK7xx durability ordering
# ----------------------------------------------------------------------


class TestDurability:
    def test_bad_fixture_fires_each_rule(self):
        result = lint_fixture("durability_bad", select=["BRK7"])
        assert sorted((f.rule, f.line) for f in result.new) == [
            ("BRK701", 17),   # take_dirty with no preceding sync
            ("BRK702", 31),   # acked() feeding a HelloReply
            ("BRK703", 37),   # output-ring drain into merger.push
            ("BRK704", 25),   # fall-through sync handler
        ]

    def test_good_fixture_is_quiet(self):
        result = lint_fixture("durability_good", select=["BRK7"])
        assert result.new == [], "\n".join(f.render() for f in result.new)


# ----------------------------------------------------------------------
# BRK8xx capability gating
# ----------------------------------------------------------------------


class TestCapGate:
    def test_bad_fixture_fires_each_rule(self):
        result = lint_fixture("capgate_bad", select=["BRK8"])
        assert sorted((f.rule, f.line) for f in result.new) == [
            ("BRK801", 12),
            ("BRK802", 16),
            ("BRK803", 20),
            ("BRK804", 29),
        ]

    def test_good_fixture_is_quiet(self):
        result = lint_fixture("capgate_good", select=["BRK8"])
        assert result.new == [], "\n".join(f.render() for f in result.new)

    def test_early_bail_does_not_satisfy_brk804(self):
        # The emit() in capgate_bad computes the cap AND has a
        # cap-mentioning early return, yet must still flag: that is the
        # exact shape of the relay bug this rule exists for.
        result = lint_fixture("capgate_bad", select=["BRK804"])
        assert [f.rule for f in result.new] == ["BRK804"]


# ----------------------------------------------------------------------
# BRK204 transitive determinism
# ----------------------------------------------------------------------


class TestTransitiveDeterminism:
    def test_zone_chain_to_out_of_zone_clock_flags(self):
        result = lint_fixture("determinism_deep_bad", select=["BRK204"])
        assert [(f.rule, f.path) for f in result.new] == [
            ("BRK204", "src/repro/sim/stepper.py")
        ]
        assert "host_now" in result.new[0].message
        assert "time.time" in result.new[0].message

    def test_timebase_barrier_is_quiet(self):
        result = lint_fixture("determinism_deep_good", select=["BRK204"])
        assert result.new == [], "\n".join(f.render() for f in result.new)


# ----------------------------------------------------------------------
# symbol-based fingerprints: line-number independence round trip
# ----------------------------------------------------------------------


class TestSymbolFingerprints:
    def _baselined_tree(self, tmp_path):
        shutil.copytree(FIXTURES / "exceptions_bad", tmp_path / "tree")
        root = tmp_path / "tree"
        first = run_lint([root / "src"], root=root)
        assert first.new, "fixture must produce findings"
        baseline = root / "lint-baseline.toml"
        write_baseline(
            baseline,
            [(f, first.fingerprint_of(f)) for f in first.new],
            symbols={
                first.fingerprint_of(f): first.symbol_of(f)
                for f in first.new
            },
        )
        return root, baseline

    def test_insert_above_keeps_baseline(self, tmp_path):
        root, baseline = self._baselined_tree(tmp_path)
        target = root / "src/repro/core/handlers.py"
        target.write_text(
            "# pushed everything down\nNEW_CONSTANT = 1\n\n\n"
            + target.read_text()
        )
        result = run_lint([root / "src"], root=root, baseline_path=baseline)
        assert result.new == [], "\n".join(f.render() for f in result.new)
        assert result.stale_baseline == []

    def test_moving_function_keeps_baseline(self, tmp_path):
        root, baseline = self._baselined_tree(tmp_path)
        target = root / "src/repro/core/handlers.py"
        # Moving the whole file to the bottom of a grown module is the
        # strongest "function moved" case: every def changes lineno.
        target.write_text(
            "def _pushed_down_filler():\n    return 0\n\n\n"
            + target.read_text()
        )
        result = run_lint([root / "src"], root=root, baseline_path=baseline)
        assert result.new == []

    def test_editing_flagged_line_invalidates(self, tmp_path):
        root, baseline = self._baselined_tree(tmp_path)
        target = root / "src/repro/core/handlers.py"
        text = target.read_text()
        assert "except Exception:" in text
        target.write_text(
            text.replace("except Exception:", "except BaseException:", 1)
        )
        result = run_lint([root / "src"], root=root, baseline_path=baseline)
        assert result.new, "edited line must re-surface as new"
        assert result.stale_baseline, "old fingerprint must go stale"

    def test_baseline_records_symbols(self, tmp_path, capsys):
        shutil.copytree(FIXTURES / "exceptions_bad", tmp_path / "tree")
        root = tmp_path / "tree"
        assert lint_main(
            [str(root / "src"), "--root", str(root), "--write-baseline"]
        ) == 0
        capsys.readouterr()
        entries = load_baseline(root / "lint-baseline.toml")
        assert entries
        for entry in entries.values():
            assert entry.symbol.startswith("repro."), entry


# ----------------------------------------------------------------------
# CLI: --graph and --explain
# ----------------------------------------------------------------------


class TestDebugCli:
    def test_graph_renders_resolution(self, capsys):
        code = lint_main([
            "--graph", "ShardWorker.run",
            str(REPO_ROOT / "src"), "--root", str(REPO_ROOT),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "repro.runtime.shard.ShardWorker.run" in out
        assert "RUNS_SELECT" in out
        assert "callees" in out and "(method)" in out

    def test_graph_unknown_symbol_is_usage_error(self, capsys):
        code = lint_main([
            "--graph", "no.such.symbol",
            str(REPO_ROOT / "src"), "--root", str(REPO_ROOT),
        ])
        assert code == 2
        assert "no function matches" in capsys.readouterr().err

    def test_graph_ambiguous_symbol_lists_candidates(self, capsys):
        code = lint_main([
            "--graph", "run",
            str(REPO_ROOT / "src"), "--root", str(REPO_ROOT),
        ])
        assert code == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_explain_known_rule(self, capsys):
        assert lint_main(["--explain", "BRK701"]) == 0
        out = capsys.readouterr().out
        assert "BRK701" in out and "crash" in out

    def test_explain_unknown_rule(self, capsys):
        assert lint_main(["--explain", "BRK999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_explain_is_case_insensitive(self, capsys):
        assert lint_main(["--explain", "brk601"]) == 0
        assert "BRK601" in capsys.readouterr().out


# ----------------------------------------------------------------------
# the real tree, through the new families only + the perf budget
# ----------------------------------------------------------------------


class TestRealTreeInterprocedural:
    def test_new_families_clean_on_real_tree(self):
        result = run_lint(
            [REPO_ROOT / "src"],
            root=REPO_ROOT,
            select=["BRK204", "BRK6", "BRK7", "BRK8"],
        )
        assert result.new == [], "\n".join(f.render() for f in result.new)
        # The deliberate bounded waits are pragma'd, not silently absent.
        assert {f.rule for f in result.pragma_suppressed} == {"BRK601"}

    def test_full_run_stays_within_ci_budget(self):
        start = _time.perf_counter()
        run_lint([REPO_ROOT / "src"], root=REPO_ROOT)
        elapsed = _time.perf_counter() - start
        # One parse + one fixpoint: ~2-3 s warm on CI hardware.  The 20 s
        # ceiling is the alarm for an accidentally quadratic checker.
        assert elapsed < 20.0, f"lint run took {elapsed:.1f}s"

    def test_one_analysis_shared_by_all_checkers(self):
        tree = load_tree([REPO_ROOT / "src"], root=REPO_ROOT)
        run_lint([], root=REPO_ROOT, tree=tree)
        assert "project_analysis" in tree.caches
