#!/usr/bin/env python
"""Adaptive monitoring: the ISM steering its own data sources.

A bursty application floods the instrumentation system; an
:class:`~repro.runtime.throttle.AutoThrottle` loop watches the receive
rate and pushes sampling filters down to the external sensor whenever the
target rate is exceeded — then relaxes them when the burst passes.  All
of it uses the kernel's own primitives (``SetFilter`` over the control
channel), demonstrating the §2 knobs closing into a feedback loop.

Run:  python examples/adaptive_monitoring.py
"""

from repro.core.consumers import CollectingConsumer
from repro.runtime.throttle import AutoThrottle, ThrottleConfig
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.workload import BurstyWorkload, PoissonWorkload
from repro.wire import protocol


def main() -> None:
    sim = Simulator(seed=17)
    collected = CollectingConsumer()
    dep = SimDeployment(
        sim,
        DeploymentConfig(exs_poll_interval_us=10_000, ism_tick_interval_us=5_000),
        [collected],
    )
    steady = dep.add_node()
    bursty = dep.add_node()
    dep.attach_workload(steady, PoissonWorkload(rate_hz=300))
    dep.attach_workload(
        bursty,
        BurstyWorkload(burst_rate_hz=20_000, burst_len=4_000, gap_us=2_000_000),
    )
    dep.start()

    # Wire the throttle: the "push" applies a SetFilter to the right EXS
    # exactly as the TCP server would, minus the socket.
    def push_filter(exs_id: int, spec) -> None:
        node = dep.nodes[exs_id - 1]
        node.exs.on_set_filter(protocol.SetFilter.from_spec(spec))

    throttle = AutoThrottle(
        push_filter,
        ThrottleConfig(target_rate_hz=2_000.0, max_sample_every=64),
    )

    def control_tick() -> None:
        counts = {
            node.exs.exs_id: node.exs.stats.records_shipped
            for node in dep.nodes
        }
        throttle.observe(sim.now, counts)

    sim.schedule_every(250_000, control_tick)
    dep.run(20.0)
    dep.stop()

    print(f"delivered {len(collected.records)} records; "
          f"control decisions: {len(throttle.decisions)}")
    emitted = sum(n.sensor.emitted for n in dep.nodes)
    filtered = sum(n.exs.stats.records_filtered for n in dep.nodes)
    print(f"application emitted {emitted}; source filters dropped {filtered} "
          f"({filtered / emitted * 100:.0f}%)")

    print("\ncontrol-loop activity (rate observed -> action):")
    interesting = [d for d in throttle.decisions if d[2] not in ("hold", "warmup")]
    for now_us, rate, action in interesting[:12]:
        print(f"  t={now_us / 1e6:6.2f}s  {rate:9,.0f} ev/s  {action}")
    if len(interesting) > 12:
        print(f"  ... and {len(interesting) - 12} more adjustments")

    tightened = sum(1 for _, _, a in throttle.decisions if a.startswith("tighten"))
    relaxed = sum(1 for _, _, a in throttle.decisions if a.startswith("relax"))
    print(f"\ntightened {tightened}x during bursts, relaxed {relaxed}x after; "
          f"final sampling: {throttle.sample_every or 'none (full detail)'}")


if __name__ == "__main__":
    main()
