#!/usr/bin/env python
"""Visual objects: the ISM's CORBA-style on-line visualization path.

§3.5: the ISM "may pass instrumentation data to a list of CORBA-enabled
visual objects ... components of an object-oriented framework for the
development of on-line performance visualization".  The reproduction
substitutes in-process *visual objects* — anything with a
``process_picl(line)`` method — receiving the same per-record PICL string
the CORBA call would carry.

Two visual objects consume a simulated 4-node run:

* ``RateMeter`` — per-node event-rate bars,
* ``LatencyTracker`` — a histogram of inter-event gaps.

Run:  python examples/realtime_visualizer.py
"""

from repro.core.consumers import VisualObjectConsumer
from repro.picl.format import TimestampMode, parse_line
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.workload import BurstyWorkload, PoissonWorkload
from repro.util.stats import Histogram


class RateMeter:
    """Counts events per node; renders ASCII bars on demand."""

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}

    def process_picl(self, line: str) -> None:
        record = parse_line(line)
        self.counts[record.node] = self.counts.get(record.node, 0) + 1

    def render(self, duration_s: float) -> str:
        top = max(self.counts.values())
        rows = []
        for node in sorted(self.counts):
            count = self.counts[node]
            bar = "#" * round(40 * count / top)
            rows.append(
                f"  node {node}: {bar:<40} {count / duration_s:8.0f} ev/s"
            )
        return "\n".join(rows)


class LatencyTracker:
    """Histogram of inter-event gaps in the merged, sorted stream."""

    def __init__(self) -> None:
        self.histogram = Histogram(
            edges=[0, 100, 300, 1_000, 3_000, 10_000, 100_000]
        )
        self._last_ts: float | None = None

    def process_picl(self, line: str) -> None:
        record = parse_line(line)
        ts = float(record.timestamp) * 1e6  # relative seconds → µs
        if self._last_ts is not None and ts >= self._last_ts:
            self.histogram.add(ts - self._last_ts)
        self._last_ts = ts

    def render(self) -> str:
        rows = []
        edges = self.histogram.edges
        for i, count in enumerate(self.histogram.counts):
            label = f"{edges[i]:>6.0f}-{edges[i + 1]:<6.0f} us"
            bar = "#" * min(40, count // 50)
            rows.append(f"  {label} {bar} {count}")
        return "\n".join(rows)


def main() -> None:
    duration_s = 10.0
    sim = Simulator(seed=9)
    meter = RateMeter()
    tracker = LatencyTracker()
    visual = VisualObjectConsumer(
        [meter, tracker], mode=TimestampMode.RELATIVE_SECONDS
    )
    dep = SimDeployment(sim, DeploymentConfig(), consumers=[visual])
    nodes = dep.add_nodes(4, max_offset_us=5_000, max_drift_ppm=5)
    # Heterogeneous workloads so the bars differ.
    dep.attach_workload(nodes[0], PoissonWorkload(rate_hz=800))
    dep.attach_workload(nodes[1], PoissonWorkload(rate_hz=400))
    dep.attach_workload(nodes[2], BurstyWorkload(
        burst_rate_hz=5_000, burst_len=50, gap_us=300_000))
    dep.attach_workload(nodes[3], PoissonWorkload(rate_hz=100))
    dep.run(duration_s)
    dep.stop()

    print(f"{visual.delivered} records delivered to "
          f"{visual.attached_count} visual objects as PICL strings\n")
    print("event rate per node:")
    print(meter.render(duration_s))
    print("\ninter-event gap distribution (merged stream):")
    print(tracker.render())


if __name__ == "__main__":
    main()
