#!/usr/bin/env python
"""Transparent monitoring: instrument an application without editing it.

§2 asks that "tools can be built based on the IS to instrument the target
system automatically, so that the users can only specify what to monitor,
from which aspect, and at which level".  This example monitors a small
numerical application three ways, all through the same BRISK pipeline:

1. **spans** — one decorator marks a phase; busy intervals fall out;
2. **function tracing** — ``FunctionTracer`` emits call/return events for
   everything in this module, zero code edits;
3. **profiling mode** — ``ProfilingSensor`` aggregates per-iteration
   samples in the LIS and ships only summaries (the §2 hybrid-approach
   emulation), cutting data volume by orders of magnitude.

Afterwards the analysis toolkit digests the trace: per-function call
counts, span utilization, and the profile aggregates — and a perturbation
model estimates how much the instrumentation itself distorted the run.

Run:  python examples/transparent_monitoring.py
"""

from repro.analysis.perturbation import compensate_trace, estimate_intrusion
from repro.analysis.statistics import utilization_timeline
from repro.analysis.trace import Trace
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.instrument.spans import SpanEvents, instrumented
from repro.instrument.tracer import FunctionTracer, TracerEvents
from repro.profiles.aggregate import ProfileDecoder, ProfilingSensor

ring = ring_for_records(200_000)
sensor = Sensor(ring, node_id=1)
profiler = ProfilingSensor(sensor, flush_interval_us=200_000)


# ----------------------------------------------------------------------
# The "application": a toy iterative solver.
# ----------------------------------------------------------------------
@instrumented(sensor, label="solve")
def solve(n_iterations: int) -> float:
    residual = 1.0
    for step in range(n_iterations):
        residual = relax(residual)
        # Profiling mode: sample the residual instead of tracing a record
        # per iteration.
        profiler.sample(event_id=500, value=residual)
    return residual


def relax(residual: float) -> float:
    return residual * 0.995 + 1e-6


@instrumented(sensor, label="checkpoint")
def checkpoint(step: int) -> None:
    total = sum(range(200))  # stand-in for I/O work
    assert total >= 0


def application() -> None:
    for phase in range(3):
        solve(400)
        checkpoint(phase)


def main() -> None:
    with FunctionTracer(sensor, include=(__name__, "__main__")) as tracer:
        application()
    profiler.flush()

    trace = Trace(ring.drain())
    print(f"collected {len(trace)} records "
          f"({tracer.calls_traced} traced calls, "
          f"{profiler.samples} profiled samples)\n")

    # --- function-level view (from the tracer) -------------------------
    calls = trace.events(TracerEvents().call)
    counts: dict[int, int] = {}
    for record in calls:
        counts[record.values[0]] = counts.get(record.values[0], 0) + 1
    names = tracer.function_names
    print("call counts (transparent tracing):")
    for fid, count in sorted(counts.items(), key=lambda kv: -kv[1])[:5]:
        print(f"  {names[fid]:<50} {count:>6}")

    # --- span view ------------------------------------------------------
    util = utilization_timeline(
        trace, SpanEvents().begin, SpanEvents().end, bin_width_us=50_000
    )
    busy = util[1]
    print(f"\nspan utilization: busy in {sum(1 for b in busy if b > 0)} of "
          f"{len(busy)} 50 ms bins")

    # --- profile view ----------------------------------------------------
    decoder = ProfileDecoder()
    for record in trace:
        decoder.deliver(record)
    summary = decoder.profiles[(1, 500)]
    print(f"\nresidual profile (profiling mode, {summary.windows} summaries "
          f"instead of {summary.count} records):")
    print(f"  samples {summary.count}, mean {summary.mean:.4f}, "
          f"min {summary.minimum:.4f}, max {summary.maximum:.4f}")

    # --- perturbation analysis -------------------------------------------
    model = estimate_intrusion(samples=2_000)
    compensated, report = compensate_trace(trace, model)
    print(f"\nperturbation analysis:")
    print(f"  modelled notice cost: {model.cost_of(2):.2f} us")
    print(f"  instrumentation overhead injected into the run: "
          f"{report.overhead_injected_us / 1000:.2f} ms over "
          f"{report.events_compensated} events")
    print(f"  trace duration before/after compensation: "
          f"{trace.duration_us / 1000:.2f} / "
          f"{compensated.duration_us / 1000:.2f} ms")


if __name__ == "__main__":
    main()
