#!/usr/bin/env python
"""On-line sorting tuning: explore the E7 ordering/latency trade-off.

Feeds "streams of artificially delayed event records" (the paper's E7
input) through the ISM's on-line sorter under different time-frame
strategies, and prints the resulting out-of-order fraction versus the
latency the sorter adds.  Use it to pick knobs for your own workload.

Run:  python examples/sorting_tuning.py
"""

import random

from repro.core.sorting import OnlineSorter, SorterConfig
from repro.sim.workload import make_delayed_streams, merge_by_arrival


def evaluate(config: SorterConfig, streams) -> tuple[float, float, float]:
    sorter = OnlineSorter(config)
    merged = merge_by_arrival(streams)
    for source, record, arrival in merged:
        sorter.push(source, record, now=arrival)
        sorter.extract(now=arrival)
    sorter.flush(now=merged[-1][2] + 1)
    stats = sorter.stats
    return (
        100.0 * stats.out_of_order / max(1, stats.released),
        stats.hold_time_us.mean / 1000,
        sorter.frame_us / 1000,
    )


def main() -> None:
    streams = make_delayed_streams(
        random.Random(7),
        n_sources=4,
        rate_hz=2_000,
        duration_s=3.0,
        base_delay_us=500,
        jitter_mean_us=300,
        straggler_prob=0.01,
        straggler_extra_us=30_000,
    )
    worst = max(s.max_lateness_us for s in streams)
    print(f"input: 4 sources x 2000 ev/s, stragglers up to "
          f"{worst / 1000:.0f} ms late\n")

    strategies = {
        "latency-critical (paper): T = latest lateness, slow decay": SorterConfig(
            initial_frame_us=1_000, growth_signal="arrival", decay_lambda=0.05
        ),
        "general (paper): watermark growth, long half-life": SorterConfig(
            initial_frame_us=1_000, growth_signal="watermark", decay_lambda=0.05
        ),
        "aggressive decay (anti-pattern)": SorterConfig(
            initial_frame_us=1_000, growth_signal="watermark", decay_lambda=20.0
        ),
        "fixed huge frame (perfect order, max latency)": SorterConfig(
            initial_frame_us=1_000_000, growth_factor=1.0, decay_lambda=0.0
        ),
        "no delay at all (pure merge)": SorterConfig(
            initial_frame_us=0, decay_lambda=0.0, growth_factor=1e-9
        ),
    }

    header = f"{'strategy':<55} {'out-of-order':>12} {'added latency':>14} {'final T':>9}"
    print(header)
    print("-" * len(header))
    for label, config in strategies.items():
        ooo, hold_ms, frame_ms = evaluate(config, streams)
        print(f"{label:<55} {ooo:>11.2f}% {hold_ms:>11.1f} ms {frame_ms:>7.1f} ms")

    print("\nreading the table: ordering quality costs delivery latency; the")
    print("adaptive strategies find the knee automatically (paper, section 3.6)")


if __name__ == "__main__":
    main()
