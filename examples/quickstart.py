#!/usr/bin/env python
"""Quickstart: the full BRISK pipeline in one process.

Covers the whole §3 data path on one node:

    application --NOTICE--> ring buffer --EXS--> XDR batch --ISM-->
        on-line sort --> consumers (memory buffer + PICL trace)

Run:  python examples/quickstart.py
"""

import io

from repro import (
    CorrectedClock,
    ExsConfig,
    ExternalSensor,
    FieldType,
    InstrumentationManager,
    IsmConfig,
    MemoryBufferConsumer,
    PiclFileConsumer,
    RecordSchema,
    Sensor,
    compile_notice,
    ring_for_records,
)
from repro.core.sorting import SorterConfig
from repro.util.timebase import now_micros
from repro.wire import protocol


def main() -> None:
    # ------------------------------------------------------------------
    # LIS side: internal sensors write into the node's ring buffer.
    # ------------------------------------------------------------------
    ring = ring_for_records(10_000)
    sensor = Sensor(ring, node_id=1)

    # The dynamic NOTICE: convenient, validates field types.
    for i in range(5):
        sensor.notice(
            100,
            (FieldType.X_INT, i),
            (FieldType.X_STRING, f"iteration {i}"),
            (FieldType.X_DOUBLE, i * 0.5),
        )

    # The specialized NOTICE (the paper's custom-macro tool): compiled for
    # a fixed schema, several times faster on the hot path.
    fast_notice = compile_notice(RecordSchema((FieldType.X_INT,) * 6))
    for i in range(5):
        fast_notice(sensor, 200, i, 2, 3, 4, 5, 6)

    print(f"emitted {sensor.emitted} records into the ring "
          f"({ring.used} bytes used)")

    # ------------------------------------------------------------------
    # EXS: drain, apply the clock correction, batch, XDR-encode.
    # ------------------------------------------------------------------
    exs = ExternalSensor(
        exs_id=1,
        node_id=1,
        ring=ring,
        clock=CorrectedClock(now_micros),
        config=ExsConfig(batch_max_records=64),
    )
    encoded_batches = exs.flush()
    print(f"EXS shipped {exs.stats.records_shipped} records in "
          f"{len(encoded_batches)} XDR batch(es), "
          f"{exs.stats.bytes_shipped} bytes total")

    # ------------------------------------------------------------------
    # ISM: decode, merge-sort on-line, deliver to consumers.
    # ------------------------------------------------------------------
    memory = MemoryBufferConsumer()
    trace = io.StringIO()
    picl = PiclFileConsumer(trace)
    ism = InstrumentationManager(
        IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
        consumers=[memory, picl],
    )
    ism.register_source(exs_id=1, node_id=1)
    now = now_micros()
    for payload in encoded_batches:
        ism.on_message(protocol.decode_message(payload), now)
    ism.flush(now)

    print(f"ISM delivered {ism.stats.records_delivered} records")
    print("\nfirst records from the memory buffer (native layout):")
    for record in memory.records()[:3]:
        print(f"  event={record.event_id} node={record.node_id} "
              f"ts={record.timestamp} values={record.values}")

    print("\nPICL trace head:")
    for line in trace.getvalue().splitlines()[:3]:
        print(f"  {line}")

    # Output is globally timestamp-sorted across everything delivered.
    timestamps = [r.timestamp for r in memory.records()]
    assert timestamps == sorted(timestamps)
    print("\noutput verified timestamp-sorted — quickstart OK")


if __name__ == "__main__":
    main()
