#!/usr/bin/env python
"""Causal tracing: X_REASON / X_CONSEQ across badly synchronized nodes.

A client node sends requests to a server node; the server's clock runs
half a second *behind*, so by raw timestamps every reply appears to happen
before its request — tachyons everywhere.  Marking the pairs with BRISK's
causal system types makes the ISM:

1. park each reply until its request has been processed,
2. override tachyonic reply timestamps to land just after the request,
3. trigger extra clock-synchronization rounds that actually pull the
   clocks together.

Run:  python examples/causal_tracing.py
"""

from repro.core.consumers import CollectingConsumer
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator

N_REQUESTS = 25
SERVER_LAG_US = 500_000  # the server clock starts 0.5 s behind


def main() -> None:
    sim = Simulator(seed=2)
    collected = CollectingConsumer()
    dep = SimDeployment(
        sim,
        # No warmup: the first pairs hit the raw half-second skew.
        DeploymentConfig(warmup_sync_rounds=0, sync_period_us=60_000_000),
        consumers=[collected],
    )
    client = dep.add_node(offset_us=0)
    server = dep.add_node(offset_us=-SERVER_LAG_US)
    dep.start()

    def request_reply(request_id: int) -> None:
        # The client instruments the request as a REASON...
        client.sensor.notice_reason(event_id=1, reason_id=request_id)
        # ...and 2 ms later (network + service time) the server
        # instruments the reply as the CONSEQUENCE.
        sim.schedule(
            2_000,
            lambda: server.sensor.notice_conseq(event_id=2, conseq_id=request_id),
        )

    for k in range(N_REQUESTS):
        sim.schedule(100_000 + k * 200_000, request_reply, k)

    dep.run(8.0)
    dep.stop()

    cre = dep.ism.cre.stats
    print(f"requests/replies delivered: {len(collected.records)}")
    print(f"replies parked awaiting their request: {cre.parked}")
    print(f"tachyons corrected (timestamps overridden): {cre.tachyons_fixed}")
    print(f"extra clock-sync rounds triggered: {dep.metrics.extra_sync_rounds}")
    print(f"clock skew after causal-driven syncs: "
          f"{dep.true_skew_spread():.0f} us (started at {SERVER_LAG_US} us)")

    # Verify: in the delivered trace, every reply follows its request.
    position = {}
    for idx, record in enumerate(collected.records):
        marker = (record.reason_ids or record.conseq_ids)[0]
        position[(record.event_id, marker)] = (idx, record.timestamp)
    violations = 0
    for k in range(N_REQUESTS):
        req_pos, req_ts = position[(1, k)]
        rep_pos, rep_ts = position[(2, k)]
        if rep_pos < req_pos or rep_ts <= req_ts:
            violations += 1
    print(f"causal violations in the delivered trace: {violations}/{N_REQUESTS}")
    assert violations == 0
    print("every reply follows its request — causal tracing OK")


if __name__ == "__main__":
    main()
