#!/usr/bin/env python
"""End-to-end demo of the command-line tools, as real subprocesses.

What a first-time operator would do, scripted:

1. start ``brisk-ism`` in one process (serving TCP, logging PICL);
2. run an application under ``brisk-monitor`` in another, shipping its
   transparent function trace to the ISM over the socket;
3. analyze the resulting trace with ``brisk-trace-stats`` and
   ``brisk-replay``.

Everything is invoked as ``python -m repro.tools.<tool>`` so the demo
works without installed console scripts.

Run:  python examples/cli_tools_demo.py
"""

import pathlib
import subprocess
import sys
import tempfile
import time

WORKLOAD = '''
def transform(x):
    return x * x % 997

def pipeline(n):
    return sum(transform(k) for k in range(n))

if __name__ == "__main__":
    total = sum(pipeline(50) for _ in range(20))
    print(f"workload result: {total}")
'''


def run(args: list[str], **kwargs) -> subprocess.CompletedProcess:
    print(f"$ {' '.join(args)}")
    return subprocess.run(
        [sys.executable, "-m"] + args,
        capture_output=True,
        text=True,
        timeout=120,
        **kwargs,
    )


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="brisk-demo-"))
    script = workdir / "app.py"
    script.write_text(WORKLOAD)
    trace_path = workdir / "run.picl"

    # 1. ISM server in the background.
    ism = subprocess.Popen(
        [
            sys.executable, "-m", "repro.tools.ism_cli",
            "--port", "0",
            "--picl", str(trace_path),
            "--sync-period", "0",
            "--duration", "60",
            "--until-records", "100",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        # Parse the announced ephemeral port.
        line = ism.stdout.readline()
        print(line.strip())
        port = int(line.strip().rsplit(":", 1)[1])

        # 2. Monitor the application, shipping to the ISM.
        result = run(
            [
                "repro.tools.monitor_cli",
                "--include", "__main__",
                "--ism", f"127.0.0.1:{port}",
                str(script),
            ]
        )
        print(result.stdout.strip())
        print(result.stderr.strip())
        assert result.returncode == 0

        ism.wait(timeout=60)
        print(ism.stdout.read().strip())
    finally:
        if ism.poll() is None:
            ism.terminate()

    # 3. Analyze the trace the ISM logged.
    time.sleep(0.1)
    stats = run(["repro.tools.trace_stats_cli", str(trace_path), "--events"])
    print("\n--- brisk-trace-stats ---")
    print(stats.stdout.strip())
    assert "records:" in stats.stdout

    sorted_path = workdir / "sorted.picl"
    replay = run(
        ["repro.tools.replay_cli", str(trace_path), str(sorted_path), "--relative"]
    )
    print("\n--- brisk-replay ---")
    print(replay.stdout.strip())
    assert sorted_path.exists()
    print(f"\nartifacts in {workdir}")


if __name__ == "__main__":
    main()
