#!/usr/bin/env python
"""Monitoring a parallel application: an SPMD stencil computation.

The workload the paper's introduction motivates: a parallel/distributed
application whose behaviour you need to *see* — here a 1-D Jacobi stencil
partitioned across four simulated nodes with halo exchanges between
iterations.  The monitoring stack earns its keep on every layer:

* an **event catalog** names the event types, shipped in-band;
* **spans** mark the compute phase of every iteration per node;
* a **causal channel** marks every halo exchange, so cross-node
  dependencies survive skewed clocks;
* the **analysis toolkit** turns the delivered trace into a Gantt chart,
  a rate heatmap, per-event counts, and causal-chain statistics.

Run:  python examples/stencil_monitoring.py
"""

import numpy as np

from repro.analysis.causality import build_causal_graph
from repro.analysis.timeline import extract_spans, render_gantt, render_rate_heatmap
from repro.analysis.trace import Trace
from repro.core.catalog import EventCatalog
from repro.core.consumers import CollectingConsumer
from repro.core.records import FieldType, RecordSchema
from repro.instrument.messaging import CausalChannel
from repro.instrument.spans import SpanEvents
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator

N_NODES = 4
N_ITERATIONS = 30
CELLS_PER_NODE = 64
COMPUTE_TIME_US = 3_000
EXCHANGE_DELAY_US = 400

EV_ITER_DONE = 300
SPANS = SpanEvents()


def main() -> None:
    sim = Simulator(seed=23)
    collected = CollectingConsumer()
    dep = SimDeployment(
        sim,
        DeploymentConfig(exs_poll_interval_us=10_000),
        [collected],
    )
    nodes = dep.add_nodes(N_NODES, max_offset_us=3_000, max_drift_ppm=10)
    channels = [CausalChannel(node.sensor) for node in nodes]

    # Name the event types; definitions travel inside the trace itself.
    catalog = EventCatalog()
    catalog.define(SPANS.begin, "iteration.begin")
    catalog.define(SPANS.end, "iteration.end")
    catalog.define(EV_ITER_DONE, "iteration.residual",
                   RecordSchema((FieldType.X_UINT, FieldType.X_DOUBLE)))
    catalog.define(0xD0, "halo.send")
    catalog.define(0xD1, "halo.recv")
    dep.start()
    catalog.announce(nodes[0].sensor)

    # The "application": data lives here; virtual time is advanced by
    # scheduling each phase explicitly.
    state = [np.linspace(i, i + 1, CELLS_PER_NODE) for i in range(N_NODES)]

    def begin_iteration(step: int) -> None:
        # Compute-phase begin markers: the end markers fire after the
        # modelled compute time, so spans extend over virtual time.
        for rank, node in enumerate(nodes):
            node.sensor.notice(
                SPANS.begin,
                (FieldType.X_UINT, step),
                (FieldType.X_STRING, f"iter{step}"),
            )
            # Each node's compute time varies a little (load imbalance).
            duration = COMPUTE_TIME_US + sim.rng.randint(0, 800) * (rank + 1) // 2
            sim.schedule(duration, finish_rank, step, rank)

    done_count = [0]

    def finish_rank(step: int, rank: int) -> None:
        node = nodes[rank]
        left = state[rank - 1][-1] if rank > 0 else state[0][0]
        right = state[rank + 1][0] if rank < N_NODES - 1 else state[-1][-1]
        padded = np.concatenate([[left], state[rank], [right]])
        updated = 0.5 * padded[1:-1] + 0.25 * (padded[:-2] + padded[2:])
        residual = float(np.abs(updated - state[rank]).max())
        state[rank] = updated
        node.sensor.notice(
            SPANS.end,
            (FieldType.X_UINT, step),
            (FieldType.X_STRING, f"iter{step}"),
        )
        node.sensor.notice(
            EV_ITER_DONE,
            (FieldType.X_UINT, step),
            (FieldType.X_DOUBLE, residual),
        )
        # Halo exchange with causal marking: each boundary send is a
        # reason; the matching receive on the neighbour is a consequence.
        if rank < N_NODES - 1:
            token = channels[rank].note_send(tag=step)
            sim.schedule(
                EXCHANGE_DELAY_US,
                lambda t=token, r=rank: channels[r + 1].note_recv(t, tag=step),
            )
        done_count[0] += 1
        if done_count[0] % N_NODES == 0 and step + 1 < N_ITERATIONS:
            sim.schedule(1_000, begin_iteration, step + 1)

    sim.schedule(50_000, begin_iteration, 0)
    dep.run(2.0)
    dep.stop()

    trace = Trace(collected.records, presorted=True)
    rebuilt_catalog = EventCatalog.from_trace(trace)
    print(f"delivered {len(trace)} records from {len(trace.node_ids)} nodes; "
          f"catalog carries {len(rebuilt_catalog)} event definitions\n")

    print("per-event counts (names from the in-band catalog):")
    for event_id in trace.event_ids:
        if event_id == 0xF0E:
            continue
        count = len(trace.events(event_id))
        print(f"  {rebuilt_catalog.name_of(event_id):<24} {count:>6}")

    spans = extract_spans(trace, SPANS.begin, SPANS.end)
    window = [s for s in spans if s.label in ("iter0", "iter1", "iter2")]
    print(f"\ncompute spans, first three iterations "
          f"({len(spans)} spans total):")
    print(render_gantt(window, width=56))

    print("\nevent-rate heatmap:")
    print(render_rate_heatmap(trace, bins=56))

    graph = build_causal_graph(trace)
    lags = graph.edge_lag_stats()
    print(f"\nhalo exchanges: {graph.n_edges} causal edges, "
          f"send->recv lag mean {lags.mean:.0f} us "
          f"(true exchange delay {EXCHANGE_DELAY_US} us)")
    print(f"tachyons repaired by the ISM: {dep.ism.cre.stats.tachyons_fixed}")

    residuals = trace.events(EV_ITER_DONE)
    last = max(r.values[1] for r in residuals if r.values[0] == N_ITERATIONS - 1)
    print(f"solver residual after {N_ITERATIONS} iterations: {last:.3e}")


if __name__ == "__main__":
    main()
