#!/usr/bin/env python
"""Distributed deployment: real processes, shared memory, TCP, clock sync.

The paper's architecture, live on one machine:

* two *application* processes, each writing NOTICE records into its
  node's shared-memory ring buffer;
* two *external sensor* processes, each draining its node's ring and
  shipping XDR batches to the ISM over TCP (and answering clock-sync
  probes);
* one *ISM* (this process): accepts the connections, runs the BRISK
  clock-synchronization master, merges the streams on-line, and writes a
  PICL trace.

Run:  python examples/distributed_pipeline.py
"""

import multiprocessing as mp
import pathlib
import tempfile
import time

from repro import InstrumentationManager, IsmConfig, Sensor
from repro.clocksync.brisk_sync import BriskSyncConfig
from repro.core.consumers import CollectingConsumer, PiclFileConsumer
from repro.core.sorting import SorterConfig
from repro.runtime import attach_shared_ring, create_shared_ring
from repro.runtime.exs_proc import exs_process_main
from repro.runtime.ism_proc import IsmServer
from repro.wire.tcp import MessageListener

EVENTS_PER_NODE = 5_000


def application_main(ring_name: str, node_id: int, n_events: int) -> None:
    """The instrumented application: a simple looping workload."""
    shared = attach_shared_ring(ring_name)
    try:
        sensor = Sensor(shared.ring, node_id=node_id)
        sent = 0
        while sent < n_events:
            # The paper's benchmark record: six integer fields.
            if sensor.notice_ints(7, sent, node_id, 3, 4, 5, 6):
                sent += 1
            else:
                time.sleep(0.001)  # ring momentarily full; EXS will drain
    finally:
        shared.close()


def main() -> None:
    mp.set_start_method("spawn", force=True)

    # ISM side: consumers, manager, listener, server with clock sync.
    collected = CollectingConsumer()
    trace_path = pathlib.Path(tempfile.gettempdir()) / "brisk_trace.picl"
    trace_file = open(trace_path, "w")
    manager = InstrumentationManager(
        IsmConfig(sorter=SorterConfig(initial_frame_us=2_000)),
        consumers=[collected, PiclFileConsumer(trace_file, close_stream=True)],
    )
    listener = MessageListener()
    host, port = listener.address
    server = IsmServer(
        manager, listener,
        sync_config=BriskSyncConfig(probes_per_round=4),
        sync_period_s=1.0,
    )
    print(f"ISM listening on {host}:{port}")

    # Node side: one shared ring + app process + EXS process per node.
    shares, procs = [], []
    for node_id in (1, 2):
        shared = create_shared_ring(1 << 20)
        shares.append(shared)
        procs.append(mp.Process(
            target=application_main,
            args=(shared.name, node_id, EVENTS_PER_NODE),
        ))
        procs.append(mp.Process(
            target=exs_process_main,
            args=(shared.name, host, port, node_id, node_id, EVENTS_PER_NODE),
        ))
    for p in procs:
        p.start()

    t0 = time.perf_counter()
    server.serve(duration_s=60.0, until_records=2 * EVENTS_PER_NODE)
    elapsed = time.perf_counter() - t0

    for p in procs:
        p.join(timeout=10)
    listener.close()
    for shared in shares:
        shared.close()
    manager.close()

    print(f"\nreceived {manager.stats.records_received} records from "
          f"{len(manager.sources)} nodes in {elapsed:.2f}s "
          f"({manager.stats.records_received / elapsed:,.0f} ev/s)")
    print(f"clock-sync rounds completed: {server.sync_rounds_completed}")
    print(f"batch sequence gaps: {manager.stats.seq_gaps}")

    by_node: dict[int, list[int]] = {}
    for record in collected.records:
        by_node.setdefault(record.node_id, []).append(record.values[0])
    for node_id, values in sorted(by_node.items()):
        ordered = values == sorted(values)
        print(f"node {node_id}: {len(values)} records, "
              f"per-node order preserved: {ordered}")

    timestamps = [r.timestamp for r in collected.records]
    inversions = sum(1 for a, b in zip(timestamps, timestamps[1:]) if b < a)
    print(f"cross-node timestamp inversions: {inversions}/{len(timestamps)}")
    print(f"PICL trace written to {trace_path}")


if __name__ == "__main__":
    main()
