#!/usr/bin/env python
"""Clock-synchronization study: the paper's E6 experiment, interactively.

Eight simulated workstations with drifting clocks, BRISK synchronization
at a 5-second polling period, ten simulated minutes — once on a quiet LAN
and once with disturbance bursts — plus the Cristian baseline.  Prints an
ASCII time series of the ground-truth clock spread.

Run:  python examples/clock_sync_study.py
"""

import statistics

from repro.clocksync.brisk_sync import BriskSyncConfig
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.network import DisturbanceModel, LinkModelConfig
from repro.sim.workload import PoissonWorkload

QUIET = LinkModelConfig(base_delay_us=200, jitter_mean_us=20)
DISTURBED = LinkModelConfig(
    base_delay_us=200,
    jitter_mean_us=50,
    disturbance=DisturbanceModel(
        mean_interval_us=30_000_000,
        mean_duration_us=5_000_000,
        extra_delay_us=300,
        extra_jitter_us=600,
    ),
)


def run(link: LinkModelConfig, algorithm: str, minutes: float = 10.0):
    sim = Simulator(seed=42)
    config = DeploymentConfig(
        sync_period_us=5_000_000,
        sync=BriskSyncConfig(probes_per_round=4, rtt_gate_us=700),
        link=link,
        exs_poll_interval_us=100_000,
        ism_tick_interval_us=50_000,
    )
    dep = SimDeployment(sim, config, [], sync_algorithm=algorithm)
    dep.add_nodes(8, max_offset_us=20_000, max_drift_ppm=5)
    for node in dep.nodes:
        dep.attach_workload(node, PoissonWorkload(rate_hz=20))
    dep.start()
    dep.monitor_skew(interval_us=5_000_000)
    dep.run(minutes * 60.0)
    return dep.metrics.skew_spread_samples


def sparkline(samples, width: int = 60) -> str:
    blocks = " .:-=+*#%@"
    values = [s for _, s in samples][-width:]
    top = max(values) or 1.0
    return "".join(
        blocks[min(len(blocks) - 1, int(v / top * (len(blocks) - 1)))]
        for v in values
    )


def describe(label: str, samples) -> None:
    steady = [s for t, s in samples if t >= 60_000_000]
    print(f"\n{label}")
    print(f"  spread over time: [{sparkline(samples)}]")
    print(f"  steady state: median {statistics.median(steady):7.1f} us, "
          f"p95 {sorted(steady)[int(len(steady) * 0.95)]:7.1f} us, "
          f"max {max(steady):7.1f} us")
    under_200 = sum(1 for s in steady if s < 200) / len(steady)
    print(f"  fraction under 200 us: {under_200 * 100:.0f}%")


def main() -> None:
    print("8 nodes, +/-20 ms initial offsets, +/-5 ppm drift, "
          "5 s polling, 10 simulated minutes")
    describe("BRISK sync, quiet LAN", run(QUIET, "brisk"))
    describe("BRISK sync, disturbed LAN", run(DISTURBED, "brisk"))
    describe("Cristian baseline, quiet LAN", run(QUIET, "cristian"))
    describe("no synchronization (free-running clocks)", run(QUIET, "none"))
    print("\npaper: tens of us quiet; mostly <200 us under disturbances")


if __name__ == "__main__":
    main()
