"""E4 — worst-case record latency and the select-wait floor.

Paper: "the worst-case lower bound was found to depend on waiting select
system calls, which can delay an event record for up to 40 ms."

Reproduction in the simulator (controlled phases, exact measurement): a
single event is injected at a random phase relative to the EXS's 40 ms
poll period; its end-to-end latency is the poll-phase wait plus batching
flush plus transfer plus the sorter frame.  The shape to hold: the latency
distribution is dominated by (and bounded below its maximum by) the poll
period — the paper's select wait.
"""

import statistics

from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig
from repro.core.sorting import SorterConfig
from repro.core.ism import IsmConfig
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator

POLL_US = 40_000  # the paper's select timeout


def run_phase_sweep(n_phases: int = 60) -> list[int]:
    latencies: list[int] = []
    for phase_idx in range(n_phases):
        sim = Simulator(seed=1000 + phase_idx)
        config = DeploymentConfig(
            exs_poll_interval_us=POLL_US,
            ism_tick_interval_us=1_000,
            exs=ExsConfig(batch_max_records=64, flush_timeout_us=0),
            ism=IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
            track_latency=True,
        )
        dep = SimDeployment(sim, config, [CollectingConsumer()])
        node = dep.add_node()
        dep.start()
        phase = (phase_idx * POLL_US) // n_phases
        sim.schedule(100_000 + phase, node.emit, 0)
        dep.run(0.5)
        dep.stop()
        assert len(dep.metrics.latency_us) == 1
        latencies.append(dep.metrics.latency_us[0])
    return latencies


def test_latency_phase_distribution(benchmark, report):
    latencies = benchmark.pedantic(run_phase_sweep, rounds=1, iterations=1)
    lo, hi = min(latencies), max(latencies)
    med = statistics.median(latencies)
    report.row(f"single-event latency across poll phases (sim):")
    report.row(f"  min={lo / 1000:.1f} ms  median={med / 1000:.1f} ms  max={hi / 1000:.1f} ms")
    report.row(f"  poll (select) period: {POLL_US / 1000:.0f} ms")
    report.row("paper: select waits delay a record by up to 40 ms")
    # The spread across phases is governed by the poll period...
    assert hi - lo > 0.8 * POLL_US
    # ...and the worst case is poll wait + transfer + tick slop, not more.
    assert hi < POLL_US + 15_000


def test_latency_floor_with_fast_polling(benchmark, report):
    """Shrinking the select timeout shrinks the worst case — the knob the
    paper's latency-critical users would turn."""

    def run() -> int:
        worst = 0
        for phase_idx in range(20):
            sim = Simulator(seed=2000 + phase_idx)
            config = DeploymentConfig(
                exs_poll_interval_us=5_000,
                ism_tick_interval_us=500,
                exs=ExsConfig(batch_max_records=64, flush_timeout_us=0),
                ism=IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
                track_latency=True,
            )
            dep = SimDeployment(sim, config, [CollectingConsumer()])
            node = dep.add_node()
            dep.start()
            sim.schedule(100_000 + phase_idx * 250, node.emit, 0)
            dep.run(0.5)
            dep.stop()
            worst = max(worst, dep.metrics.latency_us[0])
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    report.row(f"worst case at 5 ms polling: {worst / 1000:.1f} ms")
    assert worst < 15_000
