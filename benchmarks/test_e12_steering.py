"""E12 — adaptive steering: overload shedding and pushdown cost.

Two acceptance gates for the monitor/steering loop:

* **sim** (deterministic, host-independent): a hot node offers 10× the
  per-node load and pushes the modelled ISM past saturation.  Without a
  monitor the backlog — and with it delivered latency — grows for as
  long as the run lasts.  With a shedding spec the monitor trips, pushes
  ``sample_every`` down to the hot EXS, and the system drains back to
  bounded latency while the quiet nodes keep full fidelity.  All
  asserted on virtual time.
* **EXS-side pushdown cost** (wall clock, best-of-N): draining a ring
  through an installed compiled filter of the shape the monitor pushes
  (event blocklist, ``sample_every=1``) that admits every record must
  cost at most 10% throughput versus no filter — steering a source must
  be close to free when nothing is dropped.  A pushed-down *field test*
  additionally pays one interleaved unpack per record; its measured cost
  is reported and held behind a looser regression floor, with the
  break-even documented in the tuning guide (a predicate dropping even a
  modest fraction of records wins it back, since a drop skips decode,
  correction, encode, and shipping).
"""

import time

from repro.clocksync.clocks import CorrectedClock
from repro.core.consumers import CallbackConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.filtering import FieldTest, FilterSpec
from repro.core.ringbuffer import ring_for_records
from repro.core.sensor import Sensor
from repro.monitor.spec import Action, Condition, MonitorRule, MonitorSpec
from repro.util.timebase import now_micros
from repro.wire import protocol

# --- sim overload model ------------------------------------------------
QUIET_NODES = 3
QUIET_HZ = 200.0
HOT_HZ = 10 * QUIET_HZ
#: Modelled ISM cost per record: the offered 2.6k rec/s make ρ ≈ 1.56 —
#: past saturation, so the unshedded backlog can only grow.
SERVICE_US = 600.0
SIM_SECONDS = 6.0
SHED_SAMPLE_EVERY = 50

# --- pushdown cost -----------------------------------------------------
DRAIN_RECORDS = 30_000
DRAIN_ROUNDS = 7


def shedding_spec() -> MonitorSpec:
    return MonitorSpec(
        rules=(
            MonitorRule(
                name="shed-hot",
                when=Condition(
                    kind="rate", event_id=1, above=800.0, window_us=500_000
                ),
                do=(Action(kind="set_sampling",
                           sample_every=SHED_SAMPLE_EVERY),),
            ),
        ),
        bucket_us=100_000,
    )


def run_overload_point(monitored: bool) -> dict:
    """One deterministic deployment run under 10× hot-node overload."""
    from repro.sim.deployment import DeploymentConfig, SimDeployment
    from repro.sim.engine import Simulator
    from repro.sim.workload import PeriodicWorkload

    sim = Simulator(seed=11)
    dep = SimDeployment(
        sim,
        DeploymentConfig(
            monitor=shedding_spec() if monitored else None,
            monitor_interval_us=100_000,
            ism_service_time_us=SERVICE_US,
            track_latency=True,
        ),
        [CallbackConsumer(lambda r: None)],
        sync_algorithm="none",
    )
    hot = dep.add_node(offset_us=0, drift_ppm=0.0)
    dep.attach_workload(hot, PeriodicWorkload(rate_hz=HOT_HZ))
    for _ in range(QUIET_NODES):
        quiet = dep.add_node(offset_us=0, drift_ppm=0.0)
        dep.attach_workload(quiet, PeriodicWorkload(rate_hz=QUIET_HZ))
    backlog_trace: list[int] = []
    held_trace: list[int] = []
    dep.start()
    stop_sampling = sim.schedule_every(
        200_000,
        lambda: (
            backlog_trace.append(max(0, dep._ism_busy_until[0] - sim.now)),
            held_trace.append(dep.ism.sorter.held),
        ),
    )
    dep.run(SIM_SECONDS)
    stop_sampling()
    dep.stop()

    lat = dep.metrics.latency_us
    quarter = max(1, len(lat) // 4)
    head = sorted(lat[:quarter])
    tail = sorted(lat[-quarter:])
    return {
        "delivered": len(lat),
        "hot_shipped": hot.exs.stats.records_shipped,
        "hot_emitted": hot.sensor.emitted,
        "head_median_us": head[len(head) // 2],
        "tail_median_us": tail[len(tail) // 2],
        "tail_p95_us": tail[round(0.95 * (len(tail) - 1))],
        "end_backlog_us": max(backlog_trace[-3:]),
        "max_held": max(held_trace),
        "actions": dep.monitor.actions_fired if monitored else 0,
    }


def test_e12_sim_overload_shedding(benchmark, report):
    def study():
        return {
            "baseline": run_overload_point(False),
            "monitored": run_overload_point(True),
        }

    points = benchmark.pedantic(study, rounds=1, iterations=1)
    base, mon = points["baseline"], points["monitored"]
    report.table(
        "run        delivered  lat med (head->tail)   end backlog  max heap",
        [
            (
                f"{name:>9}",
                f"{p['delivered']:>9,}",
                f"{p['head_median_us'] / 1e3:7.0f} -> "
                f"{p['tail_median_us'] / 1e3:.0f} ms",
                f"{p['end_backlog_us'] / 1e6:8.2f} s",
                f"{p['max_held']:>8,}",
            )
            for name, p in points.items()
        ],
    )
    report.row(
        f"model: 1 hot node x {HOT_HZ:.0f} ev/s + {QUIET_NODES} x "
        f"{QUIET_HZ:.0f} ev/s, {SERVICE_US:.0f} us/record ISM "
        f"(rho = 1.56), shed to 1/{SHED_SAMPLE_EVERY}"
    )
    report.row(
        f"monitored: {mon['actions']} actions, hot node shipped "
        f"{mon['hot_shipped']:,}/{mon['hot_emitted']:,} emitted"
    )
    report.row(
        "floors: baseline latency degrades (tail > 2x head, > 1.5 s) on a "
        "growing backlog; monitored stays bounded (tail <= head, < 600 ms, "
        "end backlog < 1/4 baseline) -- all deterministic"
    )
    # The unmonitored run must actually degrade — otherwise the overload
    # is gone and the comparison is vacuous.
    assert base["end_backlog_us"] > 1_500_000
    assert base["tail_median_us"] > 1_500_000
    assert base["tail_median_us"] > 2 * base["head_median_us"]
    # The shedding spec keeps the steered run bounded: latency stops
    # growing once the backlog drains (what remains is the sorter's
    # adaptive frame decaying from the saturation episode, not queueing).
    assert mon["actions"] >= 1
    assert mon["hot_shipped"] < 0.4 * mon["hot_emitted"]
    assert mon["tail_median_us"] <= 1.1 * mon["head_median_us"], (
        f"monitored latency still growing: head {mon['head_median_us']} -> "
        f"tail {mon['tail_median_us']} us"
    )
    assert mon["tail_median_us"] < 600_000, (
        f"monitored tail latency {mon['tail_median_us']} us: shedding "
        "did not keep delivery bounded"
    )
    assert mon["end_backlog_us"] < base["end_backlog_us"] / 4
    # The real sorter heap stays bounded (a few hundred records — the
    # overload queues in the modelled CPU, and shedding keeps it there
    # rather than letting the sorter's parked set grow).
    assert mon["max_held"] < 10_000


def drain_throughput(spec: FilterSpec | None) -> float:
    """Best-of-N wall-clock EXS drain rate with an optional installed
    filter (records/second)."""
    best = 0.0
    for _ in range(DRAIN_ROUNDS):
        ring = ring_for_records(DRAIN_RECORDS + 16)
        sensor = Sensor(ring, node_id=1)
        for k in range(DRAIN_RECORDS):
            sensor.notice_ints(1, k, k + 1, k + 2, k + 3, k + 4, k + 5)
        exs = ExternalSensor(
            1, 1, ring, CorrectedClock(now_micros),
            ExsConfig(batch_max_records=256),
        )
        if spec is not None:
            exs.on_set_filter(protocol.SetFilter.from_spec(spec, epoch=1))
        t0 = time.perf_counter()
        while exs.stats.records_drained < DRAIN_RECORDS:
            for _encoded in exs.poll(now_micros()):
                pass
        for _encoded in exs.flush():
            pass
        elapsed = time.perf_counter() - t0
        if spec is not None:
            # The filter is non-trivial but admits everything: the cost
            # being measured must not come from records quietly dropped.
            assert exs.stats.records_filtered == 0
        assert exs.stats.records_shipped == DRAIN_RECORDS
        best = max(best, DRAIN_RECORDS / elapsed)
    return best


def test_e12_exs_pushdown_overhead(benchmark, report):
    # The spec shape the E12 monitor actually pushes when steering: an
    # event blocklist at sample_every=1.  Every record passes it.
    steering = FilterSpec(blocked_events=frozenset({999}))
    # A pushed-down field test additionally pays one interleaved unpack
    # per record (still pre-decode, pre-encode).
    predicate = FilterSpec(
        blocked_events=frozenset({999}),
        field_tests=(FieldTest(0, "ge", 0),),
    )

    def study():
        return {
            "plain": drain_throughput(None),
            "steering": drain_throughput(steering),
            "predicate": drain_throughput(predicate),
        }

    rates = benchmark.pedantic(study, rounds=1, iterations=1)
    steering_ratio = rates["steering"] / rates["plain"]
    predicate_ratio = rates["predicate"] / rates["plain"]
    report.row(
        f"EXS drain: {rates['plain']:,.0f} ev/s plain, "
        f"{rates['steering']:,.0f} ev/s steering filter "
        f"({steering_ratio:.2%}), {rates['predicate']:,.0f} ev/s with "
        f"field test ({predicate_ratio:.2%}, best of {DRAIN_ROUNDS})"
    )
    report.row(
        "floors: all-pass steering filter (blocklist, sample_every=1) "
        "keeps >= 90% of unfiltered throughput; field-test predicate "
        ">= 65% (breaks even once it drops ~20% of records -- a drop "
        "skips decode/correction/encode/ship)"
    )
    assert steering_ratio >= 0.90, (
        f"steering filter costs {1 - steering_ratio:.1%} EXS throughput "
        "(budget: 10%)"
    )
    assert predicate_ratio >= 0.65, (
        f"field-test pushdown costs {1 - predicate_ratio:.1%} EXS "
        "throughput (regression floor: 35%)"
    )
