"""E1 — CPU cost of an average NOTICE call.

Paper: "The CPU time taken by an average NOTICE varied from 3.6 to 18.6
microseconds on three different platforms."  The spread came from
platform differences; here the corresponding spread comes from the three
sensor configurations the library offers (fastest → slowest):

* ``specialized`` — a :func:`compile_notice`-generated packer (the paper's
  custom-macro tool, ablation A2),
* ``dynamic`` — the stock dynamically-typed :meth:`Sensor.notice`,
* ``dynamic+string`` — dynamic with a variable-length field.

The shape to reproduce: all configurations land in the same order of
magnitude (microseconds, not milliseconds), and specialization beats the
dynamic path by a clear factor.
"""

from repro.core.records import FieldType, RecordSchema
from repro.core.ringbuffer import OverflowPolicy, RingBuffer, HEADER_SIZE
from repro.core.sensor import Sensor, compile_notice

SIX_INTS = RecordSchema((FieldType.X_INT,) * 6)


def make_sensor() -> Sensor:
    # Overwrite-old keeps the ring from ever rejecting pushes, so the
    # benchmark measures steady-state cost rather than drop handling.
    ring = RingBuffer(
        bytearray(HEADER_SIZE + (1 << 20)), OverflowPolicy.OVERWRITE_OLD
    )
    return Sensor(ring, node_id=1)


def test_notice_dynamic_six_ints(benchmark, report):
    sensor = make_sensor()
    result = benchmark(sensor.notice_ints, 7, 1, 2, 3, 4, 5, 6)
    assert result
    us = benchmark.stats.stats.mean * 1e6
    report.row(f"dynamic NOTICE, 6 int fields: {us:.2f} us/call")
    report.row("paper: 3.6..18.6 us across three platforms")


def test_notice_specialized_six_ints(benchmark, report):
    sensor = make_sensor()
    fast = compile_notice(SIX_INTS)
    result = benchmark(fast, sensor, 7, 1, 2, 3, 4, 5, 6)
    assert result
    us = benchmark.stats.stats.mean * 1e6
    report.row(f"specialized NOTICE, 6 int fields: {us:.2f} us/call")


def test_notice_dynamic_with_string(benchmark, report):
    sensor = make_sensor()
    result = benchmark(
        sensor.notice,
        7,
        (FieldType.X_INT, 42),
        (FieldType.X_STRING, "phase-change"),
        (FieldType.X_DOUBLE, 3.25),
    )
    assert result
    us = benchmark.stats.stats.mean * 1e6
    report.row(f"dynamic NOTICE, int+string+double: {us:.2f} us/call")


def test_notice_specialized_wide_record(benchmark, report):
    # The specialization tool supports wider-than-8 records (§3.2).
    schema = RecordSchema((FieldType.X_INT,) * 12)
    fast = compile_notice(schema)
    sensor = make_sensor()
    benchmark(fast, sensor, 7, *range(12))
    us = benchmark.stats.stats.mean * 1e6
    report.row(f"specialized NOTICE, 12 int fields: {us:.2f} us/call")


def test_a2_specialization_speedup(benchmark, report):
    """A2 — specialization must beat the dynamic path (one-shot study)."""
    import time

    def study():
        sensor = make_sensor()
        fast = compile_notice(SIX_INTS)
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            sensor.notice_ints(7, 1, 2, 3, 4, 5, 6)
        dynamic_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(n):
            fast(sensor, 7, 1, 2, 3, 4, 5, 6)
        fast_s = time.perf_counter() - t0
        return dynamic_s / n * 1e6, fast_s / n * 1e6

    dynamic_us, fast_us = benchmark.pedantic(study, rounds=1, iterations=1)
    speedup = dynamic_us / fast_us
    report.row(
        f"A2 speedup from specialization: {speedup:.2f}x "
        f"(dynamic {dynamic_us:.2f} us, specialized {fast_us:.2f} us)"
    )
    assert speedup > 1.5
