"""E6 — clock-synchronization quality over 8 nodes, 5 s polling, 10 min.

Paper: "The clock synchronization algorithm was able to keep EXS clocks
(8 of them, using 5 s polling period over 10 minutes) within [tens of]
microseconds under light working conditions, and most of the time under
200 microseconds at times when disturbances of various sources in the LAN
interfered with it."

Reproduction on the simulation substrate (DESIGN.md §2 substitution):
eight drifting clocks (±20 ms initial offsets, ±5 ppm drift), BRISK sync
at a 5 s period for 10 simulated minutes, ground-truth max pairwise skew
sampled each second.  Two link regimes: quiet LAN and a LAN with
disturbance bursts.  Also A3: BRISK's modified algorithm versus the plain
Cristian baseline — convergence speed and the advance-only property.
"""

import statistics

from repro.clocksync.brisk_sync import BriskSyncConfig
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.network import DisturbanceModel, LinkModelConfig
from repro.sim.workload import PoissonWorkload

DURATION_S = 600.0  # the paper's 10 minutes
WARMUP_S = 60.0  # let the algorithm converge before judging steady state


def run_sync_experiment(
    link: LinkModelConfig,
    sync_algorithm: str = "brisk",
    seed: int = 42,
    n_nodes: int = 8,
    drift_ppm: float = 5.0,
    cristian_max_step_us: int | None = None,
) -> list[tuple[int, float]]:
    sim = Simulator(seed=seed)
    config = DeploymentConfig(
        sync_period_us=5_000_000,
        # The RTT gate (Cristian's probabilistic probe rejection) guards
        # the advance-only corrections against disturbance-inflated RTTs.
        sync=BriskSyncConfig(
            probes_per_round=4, threshold_us=100.0, rtt_gate_us=700
        ),
        link=link,
        exs_poll_interval_us=100_000,
        ism_tick_interval_us=50_000,
        cristian_max_step_us=cristian_max_step_us,
    )
    dep = SimDeployment(sim, config, [], sync_algorithm=sync_algorithm)
    dep.add_nodes(n_nodes, max_offset_us=20_000, max_drift_ppm=drift_ppm)
    # Light instrumentation traffic so the data path exists.
    for node in dep.nodes:
        dep.attach_workload(node, PoissonWorkload(rate_hz=20))
    dep.start()
    dep.monitor_skew(interval_us=1_000_000)
    dep.run(DURATION_S)
    return dep.metrics.skew_spread_samples


QUIET = LinkModelConfig(base_delay_us=200, jitter_mean_us=20)
DISTURBED = LinkModelConfig(
    base_delay_us=200,
    jitter_mean_us=50,
    disturbance=DisturbanceModel(
        mean_interval_us=30_000_000,
        mean_duration_us=5_000_000,
        extra_delay_us=300,
        extra_jitter_us=600,
    ),
)


def steady_state(samples: list[tuple[int, float]]) -> list[float]:
    cutoff = WARMUP_S * 1_000_000
    return [spread for t, spread in samples if t >= cutoff]


def test_quiet_lan_skew(benchmark, report):
    samples = benchmark.pedantic(
        run_sync_experiment, args=(QUIET,), rounds=1, iterations=1
    )
    steady = steady_state(samples)
    med = statistics.median(steady)
    p95 = sorted(steady)[int(len(steady) * 0.95)]
    report.row(f"8 nodes, 5 s polling, 10 min, quiet LAN (steady state):")
    report.row(f"  median spread {med:.0f} us, p95 {p95:.0f} us, max {max(steady):.0f} us")
    report.row("paper: within tens of us under light conditions")
    assert med < 150  # tens-of-µs regime (Python sim: same order)
    assert max(steady) < 500


def test_disturbed_lan_skew(benchmark, report):
    samples = benchmark.pedantic(
        run_sync_experiment, args=(DISTURBED,), rounds=1, iterations=1
    )
    steady = steady_state(samples)
    under_200 = sum(1 for s in steady if s < 200) / len(steady)
    report.row(f"8 nodes, 5 s polling, 10 min, disturbed LAN (steady state):")
    report.row(
        f"  median {statistics.median(steady):.0f} us, "
        f"max {max(steady):.0f} us, fraction <200us: {under_200 * 100:.0f}%"
    )
    report.row("paper: most of the time under 200 us during disturbances")
    assert under_200 > 0.5  # "most of the time"


def test_a3_brisk_vs_cristian_convergence(benchmark, report):
    """A3 — convergence speed versus the Cristian baseline.

    Cristian's published algorithm does not jump clocks: corrections are
    amortized (slewed) to preserve local interval measurements — here
    bounded at 2.5 ms per 5 s round, a generous 500 µs/s slew.  BRISK
    jumps its clocks *forward* in one step, which is safe precisely
    because it is advance-only; that is where its faster convergence
    comes from.  The idealized instant-step Cristian is reported too.
    """

    def study():
        out = {}
        cases = {
            "brisk": dict(sync_algorithm="brisk"),
            "cristian (amortized)": dict(
                sync_algorithm="cristian", cristian_max_step_us=2_500
            ),
            "cristian (instant, idealized)": dict(sync_algorithm="cristian"),
        }
        for label, kwargs in cases.items():
            samples = run_sync_experiment(QUIET, seed=7, **kwargs)
            converged_at = next((t for t, s in samples if s < 1_000), None)
            steady = steady_state(samples)
            out[label] = (converged_at, statistics.median(steady))
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"{label:<30}",
            f"converged<1ms at {t / 1e6:6.1f} s" if t else "never <1ms",
            f"steady median {med:7.1f} us",
        )
        for label, (t, med) in out.items()
    ]
    report.table("algorithm  convergence  steady-state", rows)
    report.row("paper: the modification converges faster than Cristian's original")
    brisk_t, _ = out["brisk"]
    amortized_t, _ = out["cristian (amortized)"]
    assert brisk_t is not None
    assert brisk_t < (amortized_t if amortized_t is not None else float("inf"))


def test_sync_quality_vs_node_count(benchmark, report):
    """Extension: does mutual synchrony degrade with ensemble size?

    The paper measured 8 nodes because only 8 workstations were free; the
    simulator lifts that constraint.  The shape to expect: the steady
    spread grows slowly (max over N noisy estimates), not linearly — the
    algorithm's above-average gate scales.
    """

    def study():
        out = {}
        for n in (2, 4, 8, 16):
            samples = run_sync_experiment(QUIET, seed=13, n_nodes=n)
            steady = steady_state(samples)
            out[n] = statistics.median(steady)
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (f"{n:>2} nodes", f"steady median {med:7.1f} us")
        for n, med in out.items()
    ]
    report.table("ensemble size  mutual spread", rows)
    report.row("extension beyond the paper's 8 available workstations")
    # Sub-linear growth: 16 nodes must not cost 8x the 2-node spread.
    assert out[16] < out[2] * 8
    # And everything stays in the paper's quiet-LAN regime.
    assert all(med < 300 for med in out.values())


def test_a3_advance_only_property(benchmark, report):
    """BRISK never steps a clock back; the baseline does (design trade)."""

    def study():
        results = {}
        for algo in ("brisk", "cristian"):
            sim = Simulator(seed=21)
            config = DeploymentConfig(
                sync_period_us=5_000_000, link=QUIET, warmup_sync_rounds=1
            )
            dep = SimDeployment(sim, config, [], sync_algorithm=algo)
            dep.add_nodes(4, max_offset_us=20_000, max_drift_ppm=5)
            dep.start()
            dep.run(120.0)
            master = dep.sync_master
            negatives = sum(
                1
                for round_report in master.history
                for c in round_report.corrections.values()
                if c < 0
            )
            positives = sum(
                1
                for round_report in master.history
                for c in round_report.corrections.values()
                if c > 0
            )
            results[algo] = (negatives, positives)
        return results

    results = benchmark.pedantic(study, rounds=1, iterations=1)
    for algo, (neg, pos) in results.items():
        report.row(f"{algo}: {neg} backward corrections, {pos} forward, in 2 min")
    report.row("paper: BRISK corrections are advance-only")
    assert results["brisk"][0] == 0 and results["brisk"][1] > 0
    assert results["cristian"][0] > 0
