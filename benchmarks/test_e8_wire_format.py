"""E8 — record size in the XDR-based transfer protocol.

Paper: "Including the time-stamp and type information, each
instrumentation data record requires 40 bytes in the XDR-based transfer
protocol" (for the six-integer-field benchmark record).

This reproduces the exact figure and sweeps record width and field types,
plus the encode/decode speed of the codec itself.
"""

import time

from repro.core.records import EventRecord, FieldType
from repro.wire import protocol


def _best(fn, rounds: int = 40) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def int_record(n_fields: int) -> EventRecord:
    return EventRecord(
        event_id=1,
        timestamp=1_000_000,
        field_types=(FieldType.X_INT,) * n_fields,
        values=tuple(range(n_fields)),
    )


def test_paper_40_byte_record(benchmark, report):
    record = int_record(6)

    def measure() -> int:
        return protocol.record_wire_size(record)

    size = benchmark(measure)
    report.row(f"6 x X_INT record: {size} bytes on the wire")
    report.row("paper: 40 bytes including time-stamp and type information")
    assert size == 40


def test_size_vs_field_count(benchmark, report):
    def study():
        return {n: protocol.record_wire_size(int_record(n)) for n in
                (0, 1, 2, 4, 6, 8, 12, 16)}

    sizes = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [(f"{n:>2} int fields", f"{size:>3} bytes") for n, size in sizes.items()]
    report.table("fields  wire size", rows)
    # Fixed cost (event id + meta word + timestamp) is 16 bytes; each int
    # field adds exactly 4 until the meta needs extension words.
    assert sizes[0] == 16
    assert sizes[6] == 40
    assert sizes[8] == 16 + 4 + 8 * 4  # one meta extension word


def test_size_per_field_type(benchmark, report):
    cases = {
        "X_BYTE": (FieldType.X_BYTE, 1),
        "X_INT": (FieldType.X_INT, 1),
        "X_HYPER": (FieldType.X_HYPER, 1),
        "X_DOUBLE": (FieldType.X_DOUBLE, 1.0),
        "X_TS": (FieldType.X_TS, 1),
        "X_STRING(5)": (FieldType.X_STRING, "hello"),
        "X_OPAQUE(3)": (FieldType.X_OPAQUE, b"abc"),
    }

    def study():
        out = {}
        for name, (ftype, value) in cases.items():
            record = EventRecord(
                event_id=1, timestamp=0, field_types=(ftype,), values=(value,)
            )
            out[name] = protocol.record_wire_size(record)
        return out

    sizes = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [(f"{name:<12}", f"{size:>3} bytes") for name, size in sizes.items()]
    report.table("one-field record  wire size", rows)
    assert sizes["X_BYTE"] == 20   # XDR pads small ints to 4 bytes
    assert sizes["X_HYPER"] == 24
    assert sizes["X_STRING(5)"] == 16 + 4 + 8  # length + padded body


def test_batch_encode_speed(benchmark, report):
    records = [int_record(6) for _ in range(256)]
    payload = benchmark(protocol.encode_batch_records, 1, 0, records)
    rate = 256 / benchmark.stats.stats.mean
    report.row(f"encode: {rate:,.0f} records/s ({len(payload)} B per 256-record batch)")
    seed = 256 / _best(
        lambda: protocol.encode_batch_records(1, 0, records, use_fastpath=False)
    )
    report.row(f"seed dynamic path: {seed:,.0f} records/s")


def test_batch_decode_speed(benchmark, report):
    records = [int_record(6) for _ in range(256)]
    payload = protocol.encode_batch_records(1, 0, records)
    batch = benchmark(protocol.decode_message, payload)
    assert len(batch.records) == 256
    rate = 256 / benchmark.stats.stats.mean
    report.row(f"decode: {rate:,.0f} records/s")
    seed = 256 / _best(lambda: protocol.decode_message(payload, use_fastpath=False))
    report.row(f"seed dynamic path: {seed:,.0f} records/s")
