"""A7 — ablation: hybrid-approach (profiling) emulation versus tracing.

§2: "BRISK should be able to emulate other methods/techniques (e.g., a
hybrid monitoring approach for tracing or profiling) by a software,
event-based monitoring approach."

Hybrid hardware monitors earn their keep by reducing what crosses into
the monitoring system.  BRISK's software emulation is the profiling-mode
sensor (:mod:`repro.profiles`): aggregate in the LIS, ship summaries.
The ablation measures both sides of the trade at the same application
event rate:

* data volume — records and wire bytes leaving the node,
* intrusion — application-side CPU per monitored event,
* fidelity — what survives (aggregates vs the full event sequence).
"""

import time

from repro.clocksync.clocks import CorrectedClock
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.records import FieldType
from repro.core.ringbuffer import OverflowPolicy, RingBuffer, HEADER_SIZE
from repro.core.sensor import Sensor
from repro.profiles.aggregate import ProfilingSensor
from repro.util.timebase import now_micros

N_EVENTS = 20_000


class _PacedClock:
    """Advances 100 µs per read: a 10 kHz monitored event rate, so the
    profiling windows fill as they would in a real 2-second run."""

    def __init__(self) -> None:
        self.value = 0

    def __call__(self) -> int:
        self.value += 100
        return self.value


def fresh_lis():
    ring = RingBuffer(
        bytearray(HEADER_SIZE + (1 << 22)), OverflowPolicy.OVERWRITE_OLD
    )
    sensor = Sensor(ring, node_id=1, clock=_PacedClock())
    exs = ExternalSensor(
        1, 1, ring, CorrectedClock(now_micros),
        ExsConfig(batch_max_records=256, drain_limit=10**6),
    )
    return sensor, exs


def run_tracing() -> dict:
    sensor, exs = fresh_lis()
    t0 = time.perf_counter()
    for k in range(N_EVENTS):
        sensor.notice(7, (FieldType.X_DOUBLE, k * 0.5))
    app_cpu = time.perf_counter() - t0
    payloads = exs.flush()
    return {
        "records": exs.stats.records_shipped,
        "bytes": sum(len(p) for p in payloads),
        "app_us_per_event": app_cpu / N_EVENTS * 1e6,
    }


def run_profiling(flush_interval_us: int) -> dict:
    sensor, exs = fresh_lis()
    profiler = ProfilingSensor(sensor, flush_interval_us=flush_interval_us)
    t0 = time.perf_counter()
    for k in range(N_EVENTS):
        profiler.sample(7, k * 0.5)
    profiler.flush()
    app_cpu = time.perf_counter() - t0
    payloads = exs.flush()
    return {
        "records": exs.stats.records_shipped,
        "bytes": sum(len(p) for p in payloads),
        "app_us_per_event": app_cpu / N_EVENTS * 1e6,
    }


def test_profiling_vs_tracing(benchmark, report):
    def study():
        return {
            "tracing (record/event)": run_tracing(),
            "profiling, 100 ms windows": run_profiling(100_000),
            "profiling, 1 s windows": run_profiling(1_000_000),
        }

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"{label:<26}",
            f"{m['records']:>6} records shipped",
            f"{m['bytes']:>9,} B",
            f"{m['app_us_per_event']:6.2f} us/event",
        )
        for label, m in out.items()
    ]
    report.table("mode  volume  wire  intrusion", rows)
    report.row(
        "paper (section 2): hybrid tracing/profiling approaches emulated by the"
    )
    report.row("event-based kernel; profiling trades detail for volume+intrusion")
    tracing = out["tracing (record/event)"]
    prof = out["profiling, 1 s windows"]
    # Volume collapses by orders of magnitude...
    assert prof["records"] * 100 <= tracing["records"]
    assert prof["bytes"] * 50 <= tracing["bytes"]
    # ...and the application-side cost per event drops as well.
    assert prof["app_us_per_event"] < tracing["app_us_per_event"]
