"""A4 — ablation of the conservative correction rules (§3.3).

The paper motivates two deliberately conservative choices:

* **above-average-only**: "only the EXS clocks whose relative skews are
  above the average are advanced ... to account for the network noise
  and, in a conservative manner, take care not to promote another EXS
  clock as the fastest one erroneously";
* **damped correction near convergence**: "if the average value is above
  a small threshold, the correction value is equal to the relative skew;
  otherwise, it is a fixed portion of the relative skew (0.7 ...)".

Ablation: run the algorithm on noisy probes with the rules enabled versus
neutralized (threshold 0 → never damp; damping 1.0 → never reduce) and
measure steady-state mutual dispersion and the total advance applied (the
ensemble's positive drift — the price the paper acknowledges).

Also compares the two probe estimators (minimum-RTT vs averaging).
"""

import random
import statistics

from repro.clocksync.brisk_sync import BriskSyncConfig, BriskSyncMaster
from repro.clocksync.probes import ProbeSample, probe_average, probe_best_of


class NoisySlave:
    """A drifting slave probed through jittery round trips."""

    def __init__(self, slave_id: int, skew_us: float, rng: random.Random):
        self.slave_id = slave_id
        self.true_skew = skew_us
        self.rng = rng
        self.total_advance = 0

    def probe(self) -> ProbeSample:
        # Asymmetric jitter: the reply leg is noisier than the request leg,
        # biasing naive estimates — the regime the rules guard against.
        d1 = 200 + self.rng.expovariate(1 / 40)
        d2 = 200 + self.rng.expovariate(1 / 120)
        rtt = d1 + d2
        measured = self.true_skew + (d2 - d1) / 2
        return ProbeSample(skew_us=measured, rtt_us=round(rtt))

    def adjust(self, correction_us: int) -> None:
        self.true_skew += correction_us
        self.total_advance += correction_us

    def drift(self, us: float) -> None:
        self.true_skew += us


def run_variant(
    config: BriskSyncConfig, probe_strategy, seed: int, rounds: int = 60
) -> tuple[float, float]:
    rng = random.Random(seed)
    slaves = [
        NoisySlave(i, rng.uniform(-5_000, 5_000), rng) for i in range(8)
    ]
    drifts = [rng.uniform(-0.5, 0.5) for _ in slaves]  # µs per round-gap tick
    master = BriskSyncMaster(slaves, config, probe_strategy=probe_strategy)
    spreads = []
    for r in range(rounds):
        for slave, d in zip(slaves, drifts):
            slave.drift(d * 50)  # inter-round drift
        master.run_round()
        if r >= rounds // 2:
            skews = [s.true_skew for s in slaves]
            spreads.append(max(skews) - min(skews))
    total_advance = sum(s.total_advance for s in slaves)
    return statistics.median(spreads), total_advance


def test_conservative_rules_vs_neutralized(benchmark, report):
    def study():
        variants = {
            "paper rules (avg gate + 0.7 damping)": BriskSyncConfig(
                threshold_us=100.0, damping=0.7
            ),
            "no damping (always full correction)": BriskSyncConfig(
                threshold_us=0.0, damping=0.7  # threshold 0: never damped
            ),
        }
        return {
            label: run_variant(cfg, probe_best_of, seed=5)
            for label, cfg in variants.items()
        }

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"{label:<38}",
            f"steady spread {spread:7.1f} us",
            f"total advance {advance / 1000:8.1f} ms",
        )
        for label, (spread, advance) in out.items()
    ]
    report.table("variant  dispersion  ensemble drift", rows)
    report.row("paper: damping is conservative; the price is slower convergence")
    paper_spread, paper_advance = out["paper rules (avg gate + 0.7 damping)"]
    full_spread, full_advance = out["no damping (always full correction)"]
    # Full corrections chase noise: the ensemble ratchets forward faster.
    assert paper_advance < full_advance
    # And the conservative rules must not cost much dispersion.
    assert paper_spread < full_spread * 2.0


def test_probe_estimators(benchmark, report):
    def study():
        cfg = BriskSyncConfig(threshold_us=100.0, damping=0.7)
        return {
            "min-RTT of 4": run_variant(cfg, probe_best_of, seed=11),
            "average of 4": run_variant(cfg, probe_average, seed=11),
        }

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (f"{label:<14}", f"steady spread {spread:7.1f} us")
        for label, (spread, _) in out.items()
    ]
    report.table("estimator  dispersion", rows)
    report.row("min-RTT sampling bounds the estimate error; averaging keeps the")
    report.row("asymmetric-delay bias (Cristian 1989)")
    # Under asymmetric jitter, min-RTT must not be worse than averaging.
    assert out["min-RTT of 4"][0] <= out["average of 4"][0] * 1.25
