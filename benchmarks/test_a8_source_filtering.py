"""A8 — ablation: filtering at the source versus at the consumer.

§2's flexibility requirement ("users can only specify what to monitor")
meets §3.4's economics ("transferring ... through the network is several
orders of magnitude slower than through memory"): when the user wants one
event type out of many, *where* the filter runs decides how much data
crosses the wire and how much ISM CPU the discarded records burn.

Setup: a node emits 10 event types uniformly; the user wants one of them.
Three placements:

* no filter — everything ships, the tool discards 90% on its own;
* consumer filter — everything ships; a ``FilteringConsumer`` discards at
  the ISM's output (saves the tool, not the system);
* source filter — the ISM pushes a ``SetFilter`` to the EXS; 90% never
  leaves the node.
"""

from repro.clocksync.clocks import CorrectedClock
from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.filtering import FilterSpec, FilteringConsumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.ringbuffer import OverflowPolicy, RingBuffer, HEADER_SIZE
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.util.timebase import now_micros
from repro.wire import protocol

N_EVENTS = 20_000
WANTED_EVENT = 3


def run_placement(placement: str) -> dict:
    ring = RingBuffer(
        bytearray(HEADER_SIZE + (1 << 22)), OverflowPolicy.DROP_NEW
    )
    sensor = Sensor(ring, node_id=1)
    exs = ExternalSensor(
        1, 1, ring, CorrectedClock(now_micros),
        ExsConfig(batch_max_records=256, drain_limit=10**6),
    )
    spec = FilterSpec(allowed_events={WANTED_EVENT})
    if placement == "source":
        exs.on_set_filter(protocol.SetFilter.from_spec(spec))

    collected = CollectingConsumer()
    consumer = (
        FilteringConsumer(collected, spec)
        if placement == "consumer"
        else collected
    )
    manager = InstrumentationManager(
        IsmConfig(sorter=SorterConfig(initial_frame_us=0)), [consumer]
    )
    manager.register_source(1, 1)

    for k in range(N_EVENTS):
        sensor.notice_ints(k % 10, k, 2, 3, 4, 5, 6)
    wire_bytes = 0
    now = now_micros()
    for payload in exs.flush():
        wire_bytes += len(payload)
        manager.on_message(protocol.decode_message(payload), now)
    manager.flush(now)

    tool_records = (
        len(collected.records)
        if placement != "none"
        else sum(1 for r in collected.records if r.event_id == WANTED_EVENT)
    )
    return {
        "wire_bytes": wire_bytes,
        "ism_records": manager.stats.records_received,
        "tool_records": tool_records,
    }


def test_filter_placement(benchmark, report):
    def study():
        return {p: run_placement(p) for p in ("none", "consumer", "source")}

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"{placement:<10}",
            f"wire {m['wire_bytes']:>9,} B",
            f"ISM handled {m['ism_records']:>6}",
            f"tool saw {m['tool_records']:>5}",
        )
        for placement, m in out.items()
    ]
    report.table("filter placement  transfer  ISM load  tool view", rows)
    report.row("pushing the filter to the source removes ~90% of transfer AND")
    report.row("ISM load; every placement gives the tool the same records")
    # All placements give the tool identical data...
    views = {m["tool_records"] for m in out.values()}
    assert len(views) == 1
    # ...but only the source placement unloads the wire and the ISM.
    assert out["source"]["wire_bytes"] < out["none"]["wire_bytes"] / 5
    assert out["source"]["ism_records"] < out["none"]["ism_records"] / 5
    assert out["consumer"]["wire_bytes"] == out["none"]["wire_bytes"]
