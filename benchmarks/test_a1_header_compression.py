"""A1 — ablation: compressed versus plain meta-information headers.

§3.4: "The external sensor packages instrumentation data in XDR format
with the meta-information header compressed ... Minimizing the slack in
instrumentation data messages is important since transferring of (likely
large volumes of) event records through the network is several orders of
magnitude slower than through memory."

The ablation quantifies what compression buys (bytes per record / batch)
and what it costs (encode/decode time), plus the optional delta-timestamp
knob stacked on top.
"""

from repro.core.records import EventRecord, FieldType
from repro.wire import protocol

RECORDS = [
    EventRecord(
        event_id=1,
        timestamp=1_000_000 + i * 100,
        field_types=(FieldType.X_INT,) * 6,
        values=(i, 2, 3, 4, 5, 6),
    )
    for i in range(256)
]


def test_bytes_saved_by_compression(benchmark, report):
    def study():
        out = {}
        for label, opts in (
            ("plain meta", dict(compress_meta=False)),
            ("compressed meta", dict(compress_meta=True)),
            ("compressed + delta ts", dict(compress_meta=True, delta_ts=True)),
        ):
            payload = protocol.encode_batch_records(1, 0, RECORDS, **opts)
            out[label] = len(payload) / len(RECORDS)
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    base = out["plain meta"]
    rows = [
        (f"{label:<22}", f"{per:6.1f} B/record", f"saves {100 * (1 - per / base):5.1f}%")
        for label, per in out.items()
    ]
    report.table("header mode  bytes  saving", rows)
    # A count word plus six uint32 type codes (28 B) collapse into one
    # meta word (4 B): 24 bytes saved per record.
    assert out["plain meta"] - out["compressed meta"] == 24.0
    assert out["compressed + delta ts"] < out["compressed meta"]


def test_encode_cost_compressed(benchmark):
    benchmark(protocol.encode_batch_records, 1, 0, RECORDS, compress_meta=True)


def test_encode_cost_plain(benchmark):
    benchmark(protocol.encode_batch_records, 1, 0, RECORDS, compress_meta=False)


def test_decode_cost_compressed(benchmark):
    payload = protocol.encode_batch_records(1, 0, RECORDS, compress_meta=True)
    benchmark(protocol.decode_message, payload)


def test_decode_cost_plain(benchmark):
    payload = protocol.encode_batch_records(1, 0, RECORDS, compress_meta=False)
    benchmark(protocol.decode_message, payload)


def test_roundtrip_equivalence(benchmark, report):
    """Compression is purely an encoding concern: decoded records match."""

    def study() -> bool:
        a = protocol.decode_message(
            protocol.encode_batch_records(1, 0, RECORDS, compress_meta=True)
        )
        b = protocol.decode_message(
            protocol.encode_batch_records(1, 0, RECORDS, compress_meta=False)
        )
        return a.records == b.records

    assert benchmark.pedantic(study, rounds=1, iterations=1)
    report.row("compressed and plain headers decode to identical records")
