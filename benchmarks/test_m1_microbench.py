"""M1 — microbenchmarks of the kernel's hot data structures.

Not a paper experiment: a performance-regression harness for the pieces
every experiment sits on.  If one of these moves by a magnitude, every
E-number above it moves too.
"""

import random

from repro.core import native
from repro.core.cre import CausalMatcher
from repro.core.records import EventRecord, FieldType
from repro.core.ringbuffer import HEADER_SIZE, OverflowPolicy, RingBuffer
from repro.core.sorting import OnlineSorter, SorterConfig
from repro.xdr import XdrDecoder, XdrEncoder

RECORD = EventRecord(
    event_id=7,
    timestamp=1_000_000,
    field_types=(FieldType.X_INT,) * 6,
    values=(1, 2, 3, 4, 5, 6),
)
PACKED = native.pack_record(RECORD)


def test_native_pack(benchmark):
    benchmark(native.pack_record, RECORD)


def test_native_unpack(benchmark):
    benchmark(native.unpack_record, PACKED)


def test_native_timestamp_peek(benchmark):
    benchmark(native.timestamp_of, PACKED)


def test_ring_push_pop_cycle(benchmark):
    ring = RingBuffer(
        bytearray(HEADER_SIZE + (1 << 16)), OverflowPolicy.OVERWRITE_OLD
    )

    def cycle():
        ring.push_bytes(PACKED)
        return ring.pop_bytes()

    assert benchmark(cycle) == PACKED


def test_xdr_encoder_int_burst(benchmark):
    def burst():
        enc = XdrEncoder()
        for k in range(64):
            enc.pack_int(k)
        return enc.getvalue()

    assert len(benchmark(burst)) == 256


def test_xdr_decoder_int_burst(benchmark):
    enc = XdrEncoder()
    for k in range(64):
        enc.pack_int(k)
    payload = enc.getvalue()

    def burst():
        dec = XdrDecoder(payload)
        total = 0
        for _ in range(64):
            total += dec.unpack_int()
        return total

    assert benchmark(burst) == sum(range(64))


def test_sorter_push_extract(benchmark):
    rng = random.Random(1)
    items = [
        (rng.randrange(8), make_ts_record(i), i * 100)
        for i in range(512)
    ]

    def run():
        sorter = OnlineSorter(SorterConfig(initial_frame_us=0))
        for source, record, now in items:
            sorter.push(source, record, now)
            sorter.extract(now)
        return sorter.stats.released

    benchmark(run)


def make_ts_record(i: int) -> EventRecord:
    return EventRecord(
        event_id=1,
        timestamp=i * 97 % 50_000,
        field_types=(),
        values=(),
    )


def test_cre_noncausal_passthrough(benchmark):
    matcher = CausalMatcher()
    result = benchmark(matcher.process, RECORD, 0)
    assert result == [RECORD]


def test_system_metrics_sample(benchmark):
    """Generic external sensor: one full /proc sampling pass."""
    import pathlib

    import pytest

    if not pathlib.Path("/proc/self/stat").exists():
        pytest.skip("no procfs on this platform")
    from repro.core.ringbuffer import ring_for_records
    from repro.core.sensor import Sensor
    from repro.core.system_sensor import SystemMetricsSensor

    ring = RingBuffer(
        bytearray(HEADER_SIZE + (1 << 20)), OverflowPolicy.OVERWRITE_OLD
    )
    metrics = SystemMetricsSensor(Sensor(ring, node_id=1), announce=False)
    emitted = benchmark(metrics.sample)
    assert emitted >= 3


def _routing_server(shards: int):
    """A ShardedIsmServer prepared for routing-only measurement: workers
    never start and ``_forward`` is replaced by a counter, so the
    benchmark isolates the dispatcher's per-frame routing decision."""
    from repro.core.consumers import CallbackConsumer
    from repro.runtime.ism_proc import ShardedIsmServer
    from repro.wire.tcp import MessageListener

    listener = MessageListener()
    server = ShardedIsmServer(
        [CallbackConsumer(lambda r: None)], listener, shards=shards
    )
    forwarded = [0]

    def forward(idx, payload):
        forwarded[0] += 1

    server._forward = forward
    return server, listener, forwarded


def _routing_frames(n: int) -> list[bytes]:
    from repro.wire import protocol

    return [
        protocol.encode_batch_records(5, seq, [RECORD]) for seq in range(n)
    ]


def test_dispatch_route_cached(benchmark):
    """Hot path: the connection's shard route is pinned, so routing a
    frame is one dict hit — no exs-id peek, no decode."""
    server, listener, forwarded = _routing_server(shards=4)
    conn = object()  # routing only keys dicts by the connection
    server._conn_shard[conn] = 1
    frames = _routing_frames(512)
    try:
        benchmark(server._route_frames, conn, frames)
    finally:
        listener.close()
    assert forwarded[0] >= len(frames)


def test_dispatch_route_peek(benchmark):
    """Fallback: a multiplexed connection whose sources span shards
    re-peeks the exs id out of every frame's header."""
    server, listener, forwarded = _routing_server(shards=4)
    conn = object()
    server._exs_shard[5] = 1  # pinned per-source, not per-connection
    frames = _routing_frames(512)
    try:
        benchmark(server._route_frames, conn, frames)
    finally:
        listener.close()
    assert forwarded[0] >= len(frames)


def test_cre_reason_conseq_pair(benchmark):
    reason = EventRecord(
        event_id=1, timestamp=10,
        field_types=(FieldType.X_REASON,), values=(1,),
    )
    conseq = EventRecord(
        event_id=2, timestamp=20,
        field_types=(FieldType.X_CONSEQ,), values=(1,),
    )

    def pair():
        matcher = CausalMatcher()
        matcher.process(reason, 10)
        return matcher.process(conseq, 20)

    assert len(benchmark(pair)) == 1
