"""E2 — CPU utilization of the external sensor.

Paper: "The CPU utilization of the EXS on a Sun workstation where it
shares the CPU with the target application was shown negligible (under 1%)
at event rates of up to 38,000 per second."

Reproduction: measure the EXS's per-record CPU cost for a full poll cycle
(drain the ring, correct timestamps, batch, XDR-encode) and convert it to
the fraction of one CPU consumed at swept event rates.  The shape to hold:
utilization grows linearly with rate, and the per-record cost is small
enough that realistic rates leave the application most of the CPU.

A Python EXS is ~an order of magnitude costlier per record than the C one,
so the "<1 % at 38k ev/s" point maps to a proportionally lower rate here;
the result file reports the measured break-even rates explicitly.
"""

import time

from repro.clocksync.clocks import CorrectedClock
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.ringbuffer import OverflowPolicy, RingBuffer, HEADER_SIZE
from repro.core.sensor import Sensor
from repro.util.timebase import now_micros


def build_lis() -> tuple[Sensor, ExternalSensor]:
    ring = RingBuffer(
        bytearray(HEADER_SIZE + (1 << 22)), OverflowPolicy.DROP_NEW
    )
    sensor = Sensor(ring, node_id=1)
    exs = ExternalSensor(
        1, 1, ring, CorrectedClock(now_micros),
        ExsConfig(batch_max_records=256, drain_limit=100_000),
    )
    return sensor, exs


def test_exs_poll_cycle_cost(benchmark, report):
    """Time one poll cycle over a 256-record backlog (one full batch)."""
    sensor, exs = build_lis()

    def fill():
        for i in range(256):
            sensor.notice_ints(7, i, 2, 3, 4, 5, 6)
        return (), {}

    batches = benchmark.pedantic(
        exs.poll, setup=fill, rounds=200, warmup_rounds=5
    )
    per_record_us = benchmark.stats.stats.mean * 1e6 / 256
    report.row(f"EXS cost per record (drain+correct+batch+encode): {per_record_us:.2f} us")
    rows = []
    for rate in (1_000, 5_000, 10_000, 38_000):
        utilization = per_record_us * rate / 1e6
        rows.append((f"{rate:>7} ev/s", f"{utilization * 100:6.2f} % of one CPU"))
    report.table("rate        utilization", rows)
    one_pct_rate = 0.01 * 1e6 / per_record_us
    report.row(f"rate at 1% CPU: {one_pct_rate:,.0f} ev/s")
    report.row("paper: <1% at 38,000 ev/s (C implementation)")
    # Sanity: modest rates stay well under full-CPU saturation.
    assert per_record_us * 1_000 / 1e6 < 0.05


def test_exs_idle_poll_is_cheap(benchmark, report):
    """An empty poll (the common case between bursts) must be ~free."""
    _, exs = build_lis()
    benchmark(exs.poll)
    us = benchmark.stats.stats.mean * 1e6
    report.row(f"idle EXS poll: {us:.2f} us")
    assert us < 100
