"""E11 — durable commit log: append throughput and ack latency by policy.

PR 8 put a durable segmented log under the delivery stream and gated
upstream acks on it.  The cost question that decides whether durable
mode is usable: what does each fsync policy pay, per appended record and
per acked batch, against the buffered PICL trace file the pipeline wrote
before (the paper's §3.4 consumer)?

Three measurements:

* **append throughput** — records/second through ``append_many`` for
  ``fsync=off`` / ``interval`` / ``batch``, and the buffered
  ``PiclFileConsumer`` baseline on the same records;
* **ack latency** — the durable ack path is append + ``sync`` (fsync +
  checkpoint); per-batch latency for each policy, since that is what
  stands between an EXS batch and its ack in durable mode;
* **fsync accounting** — count and mean latency from the log's own
  ``log.fsync_us`` histogram, showing where each policy spends.

Host-independent assertions only: every policy must persist the byte-
identical record sequence, durable-offset semantics must match the
policy, and ``fsync=off`` appends must not lose to ``fsync=batch``
(strictly fewer syscalls).  Absolute rates are reported, not gated —
the CI-gated floor lives in ``test_pipeline_guard.py``.
"""

from __future__ import annotations

import time

from repro.core.records import EventRecord, FieldType
from repro.log import CommitLog, LogConfig
from repro.picl.format import TimestampMode

N_RECORDS = 20_000
BATCH = 250
POLICIES = ("off", "interval", "batch")


def _records(n: int) -> list[EventRecord]:
    return [
        EventRecord(
            event_id=7,
            timestamp=1_000_000 + i,
            field_types=(FieldType.X_INT,) * 6,
            values=(i, 2, 3, 4, 5, 6),
            node_id=1,
        )
        for i in range(n)
    ]


def _chunks(records: list[EventRecord]) -> list[list[EventRecord]]:
    return [records[i : i + BATCH] for i in range(0, len(records), BATCH)]


def _append_run(tmp_path, policy: str, records) -> tuple[float, CommitLog]:
    log = CommitLog(tmp_path / f"append-{policy}", LogConfig(fsync=policy))
    t0 = time.perf_counter()
    for chunk in _chunks(records):
        log.append_many(chunk)
    elapsed = time.perf_counter() - t0
    return elapsed, log


def _picl_run(tmp_path, records) -> float:
    from repro.core.consumers import PiclFileConsumer

    stream = open(tmp_path / "baseline.picl", "w", encoding="ascii")
    consumer = PiclFileConsumer(
        stream, TimestampMode.UTC_MICROS, close_stream=True
    )
    t0 = time.perf_counter()
    for chunk in _chunks(records):
        consumer.deliver_many(chunk)
    elapsed = time.perf_counter() - t0
    consumer.close()
    return elapsed


def test_e11_append_throughput_by_policy(tmp_path, report):
    records = _records(N_RECORDS)
    picl_s = _picl_run(tmp_path, records)
    rows = [
        (
            "picl-buffered",
            f"{N_RECORDS / picl_s:>12,.0f}",
            f"{'-':>8}",
            f"{'-':>10}",
        )
    ]
    elapsed: dict[str, float] = {}
    for policy in POLICIES:
        seconds, log = _append_run(tmp_path, policy, records)
        elapsed[policy] = seconds
        # Identical persistence whatever the policy: same records, in
        # order, and the policy's durable-offset semantics hold.
        assert list(log.iter_from(0)) == records
        if policy == "batch":
            assert log.durable_offset == N_RECORDS
        fsyncs = int(log.fsyncs)
        hist = log.fsync_hist.snapshot()
        mean_us = hist.mean if hist.count else 0.0
        rows.append(
            (
                f"log fsync={policy}",
                f"{N_RECORDS / seconds:>12,.0f}",
                f"{fsyncs:>8}",
                f"{mean_us:>10.1f}",
            )
        )
        log.close()
    report.table(
        f"{'writer':<18}  {'records/s':>12}  {'fsyncs':>8}  {'mean us':>10}",
        rows,
    )
    report.row(
        f"log(off)/picl elapsed ratio: {elapsed['off'] / picl_s:.2f}"
    )
    # fsync=off does strictly less work per append than fsync=batch.
    assert elapsed["off"] <= elapsed["batch"] * 1.15, (
        f"fsync=off appends ({elapsed['off'] * 1e3:.1f} ms) lost to "
        f"fsync=batch ({elapsed['batch'] * 1e3:.1f} ms)"
    )


def test_e11_ack_latency_by_policy(tmp_path, report):
    # The durable ack path per EXS batch: append_many + sync(sources).
    # sync fsyncs whatever the policy (that is the point of the gate), so
    # the spread between policies prices their *append-side* fsyncs.
    records = _records(N_RECORDS // 4)
    rows = []
    for policy in POLICIES:
        log = CommitLog(tmp_path / f"ack-{policy}", LogConfig(fsync=policy))
        latencies_us: list[float] = []
        for seq, chunk in enumerate(_chunks(records)):
            t0 = time.perf_counter_ns()
            log.append_many(chunk)
            log.sync({1: seq})
            latencies_us.append((time.perf_counter_ns() - t0) / 1_000.0)
        assert log.durable_offset == len(records)
        assert log.source_watermarks() == {1: len(_chunks(records)) - 1}
        log.close()
        latencies_us.sort()
        mean = sum(latencies_us) / len(latencies_us)
        p99 = latencies_us[int(len(latencies_us) * 0.99) - 1]
        rows.append(
            (
                f"fsync={policy}",
                f"{mean:>10.1f}",
                f"{latencies_us[len(latencies_us) // 2]:>10.1f}",
                f"{p99:>10.1f}",
            )
        )
    report.table(
        f"{'policy':<16}  {'mean us':>10}  {'p50 us':>10}  {'p99 us':>10}",
        rows,
    )
