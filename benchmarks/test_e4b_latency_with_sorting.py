"""E4b — latency in combination with on-line sorting (the paper's declared
future work).

Paper: "Extensive latency measurements (in combination with on-line
sorting) are part of future work".  This benchmark runs that experiment:
end-to-end event latency on a loaded multi-node deployment, decomposed
against the sorting time frame — the component the single-event E4 cannot
see.

Expectation (and result): total latency ≈ transport floor (poll + flush +
link) **plus** the sorter's effective frame; sweeping the initial frame
with adaptation disabled shifts the distribution by exactly that frame,
while the adaptive frame buys near-minimum latency at a bounded
out-of-order rate.
"""

import statistics

from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig
from repro.core.ism import IsmConfig
from repro.core.sorting import SorterConfig
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.workload import PoissonWorkload


def run_loaded(sorter: SorterConfig, seed: int = 11) -> dict:
    sim = Simulator(seed=seed)
    config = DeploymentConfig(
        exs_poll_interval_us=10_000,
        ism_tick_interval_us=2_000,
        exs=ExsConfig(batch_max_records=64, flush_timeout_us=5_000),
        ism=IsmConfig(sorter=sorter),
        track_latency=True,
    )
    dep = SimDeployment(sim, config, [CollectingConsumer()])
    for node in dep.add_nodes(4, max_offset_us=1_000, max_drift_ppm=5):
        dep.attach_workload(node, PoissonWorkload(rate_hz=500))
    dep.run(10.0)
    dep.stop()
    lat = sorted(dep.metrics.latency_us)
    return {
        "p50_ms": statistics.median(lat) / 1000,
        "p99_ms": lat[int(len(lat) * 0.99)] / 1000,
        "ooo_frac": dep.ism.sorter.stats.out_of_order
        / max(1, dep.ism.sorter.stats.released),
        "frame_ms": dep.ism.sorter.frame_us / 1000,
    }


def test_latency_vs_fixed_sorting_frame(benchmark, report):
    """Fixed frames: latency shifts one-for-one with T."""

    def study():
        out = {}
        for frame_ms in (0, 20, 50, 100):
            sorter = SorterConfig(
                initial_frame_us=frame_ms * 1000,
                growth_factor=1e-9,  # adaptation effectively off
                decay_lambda=0.0,
            )
            out[frame_ms] = run_loaded(sorter)
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"T = {frame_ms:>3} ms fixed",
            f"p50 {m['p50_ms']:7.2f} ms",
            f"p99 {m['p99_ms']:7.2f} ms",
            f"out-of-order {m['ooo_frac'] * 100:6.3f}%",
        )
        for frame_ms, m in out.items()
    ]
    report.table("frame  latency-p50  latency-p99  ordering", rows)
    report.row("paper future work: latency measurements with on-line sorting;")
    report.row("total latency = transport floor + sorting frame")
    # The frame adds to the median almost exactly.
    base = out[0]["p50_ms"]
    for frame_ms in (20, 50, 100):
        added = out[frame_ms]["p50_ms"] - base
        assert abs(added - frame_ms) < frame_ms * 0.3 + 5
    # And buys ordering: the largest frame must be (near) perfectly ordered.
    assert out[100]["ooo_frac"] < out[0]["ooo_frac"] / 5


def test_adaptive_frame_finds_the_knee(benchmark, report):
    """The adaptive frame should sit near the transport floor's spread —
    paying only the latency the actual lateness demands."""

    def study():
        adaptive = run_loaded(
            SorterConfig(
                initial_frame_us=1_000,
                growth_signal="arrival",
                decay_lambda=0.05,
            )
        )
        floor = run_loaded(
            SorterConfig(initial_frame_us=0, growth_factor=1e-9, decay_lambda=0.0)
        )
        return {"adaptive": adaptive, "no frame (floor)": floor}

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"{label:<18}",
            f"p50 {m['p50_ms']:7.2f} ms",
            f"p99 {m['p99_ms']:7.2f} ms",
            f"out-of-order {m['ooo_frac'] * 100:6.3f}%",
            f"T_end {m['frame_ms']:6.2f} ms",
        )
        for label, m in out.items()
    ]
    report.table("strategy  latency  ordering  frame", rows)
    adaptive, floor = out["adaptive"], out["no frame (floor)"]
    # Far better ordered than the floor...
    assert adaptive["ooo_frac"] < floor["ooo_frac"] / 3
    # ...at a bounded latency premium over it.
    assert adaptive["p50_ms"] < floor["p50_ms"] + 60
