"""Pipeline-regression guard: the staged ISM ingestion must never be slower.

A fast smoke benchmark (no pytest-benchmark fixture, plain best-of-N
timing; total runtime a few seconds) that fails if any stage of the
pipelined receive path — bulk ring drain, schema-specialized native
decode, batched sort/deliver, or the end-to-end TCP stream — loses to
the per-record path it replaced, or falls below the throughput floor
recorded on the benchmark host.  Equivalence is asserted in the same
breath: a stage that wins by changing records or bytes is also a
failure.

The absolute floors derive from ``benchmarks/results`` after PR 2
(E3 single-stream socket ≈ 87–123k ev/s, E5 8-EXS aggregate ≈ 100k ev/s,
seed ≈ 53k / 48k); they sit far enough under the measured numbers to
absorb host noise while still catching a regression back to seed-level
throughput.
"""

from __future__ import annotations

import threading
import time

from repro.clocksync.clocks import CorrectedClock
from repro.core import native
from repro.core.consumers import CallbackConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.records import EventRecord, FieldType
from repro.core.ringbuffer import HEADER_SIZE, OverflowPolicy, RingBuffer
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.runtime.exs_proc import ExsProcess
from repro.runtime.ism_proc import IsmServer
from repro.util.timebase import now_micros
from repro.wire import protocol
from repro.wire.tcp import MessageListener, connect

_REPEATS = 7

#: Recorded floors (events/second on the benchmark host; see module
#: docstring).  Chosen ≈ 2x the seed's numbers and well under the
#: post-pipeline measurements so only a real regression trips them.
_E3_SOCKET_FLOOR_EV_S = 40_000
_E5_FANIN_FLOOR_EV_S = 100_000


def _best(fn, repeats: int = _REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _records(n: int, node_id: int = 0) -> list[EventRecord]:
    return [
        EventRecord(
            event_id=7,
            timestamp=1_000_000 + i,
            field_types=(FieldType.X_INT,) * 6,
            values=(i, 2, 3, 4, 5, 6),
            node_id=node_id,
        )
        for i in range(n)
    ]


def _filled_ring(n: int) -> RingBuffer:
    ring = RingBuffer(bytearray(HEADER_SIZE + (1 << 20)), OverflowPolicy.DROP_NEW)
    for record in _records(n):
        ring.push(record)
    return ring


# ----------------------------------------------------------------------
# stage guards: batch path vs the per-record path it replaced
# ----------------------------------------------------------------------

def test_bulk_drain_not_slower_than_per_record_pop():
    n = 2048
    bulk_ring = _filled_ring(n)
    bulk_payloads = bulk_ring.drain_bytes()
    pop_ring = _filled_ring(n)
    pop_payloads = []
    while (payload := pop_ring.pop_bytes()) is not None:
        pop_payloads.append(payload)
    assert bulk_payloads == pop_payloads  # identical bytes, or no deal

    bulk = _best(lambda: _filled_ring(n).drain_bytes())

    def per_record():
        ring = _filled_ring(n)
        while ring.pop_bytes() is not None:
            pass

    assert bulk <= _best(per_record), "bulk drain lost to per-record pops"


def test_specialized_native_decode_not_slower_than_dynamic():
    payloads = [native.pack_record(r) for r in _records(512)]
    # Warm the specialization cache, then race it against a run with the
    # cache held empty (the seed per-field loop).
    fast_records = [native.unpack_record(p)[0] for p in payloads]
    saved = native._SPECIALIZED
    native._SPECIALIZED = {}
    try:
        slow_records = [native.unpack_record(p)[0] for p in payloads]
        assert fast_records == slow_records
        slow = _best(lambda: [native.unpack_record(p) for p in payloads])
    finally:
        native._SPECIALIZED = saved
    fast = _best(lambda: [native.unpack_record(p) for p in payloads])
    assert fast <= slow, (
        f"specialized native decode ({fast * 1e6:.0f} µs) slower than "
        f"per-field loop ({slow * 1e6:.0f} µs)"
    )


def _pump(manager: InstrumentationManager, payloads: list[bytes]) -> None:
    now = 2_000_000_000
    for payload in payloads:
        manager.on_message(protocol.decode_message(payload), now)
        manager.tick(now)
        now += 1000
    manager.flush(now)


def test_batched_delivery_not_slower_than_per_record():
    records = _records(10_000)
    payloads = [
        protocol.encode_batch_records(1, seq, records[i : i + 250])
        for seq, i in enumerate(range(0, len(records), 250))
    ]

    def run(delivery_batch: int) -> tuple[list[EventRecord], float]:
        out: list[EventRecord] = []
        manager = InstrumentationManager(
            IsmConfig(
                sorter=SorterConfig(initial_frame_us=0),
                delivery_batch=delivery_batch,
            ),
            [CallbackConsumer(out.append)],
        )
        manager.register_source(1, 1)
        elapsed = _best(lambda: _pump(manager, payloads), repeats=1)
        return out, elapsed

    batched_out, _ = run(1024)
    per_record_out, _ = run(1)
    assert batched_out == per_record_out  # identical delivery, or no deal

    batched = _best(lambda: run(1024)[1], repeats=3)
    per_record = _best(lambda: run(1)[1], repeats=3)
    assert batched <= per_record * 1.10, (
        f"batched delivery ({batched * 1e3:.1f} ms) slower than "
        f"per-record ({per_record * 1e3:.1f} ms)"
    )


# ----------------------------------------------------------------------
# throughput floors: E3 single stream and E5-style 8-source fan-in
# ----------------------------------------------------------------------

def test_e3_socket_throughput_floor():
    n_events = 20_000
    received = [0]
    manager = InstrumentationManager(
        IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
        [CallbackConsumer(lambda r: received.__setitem__(0, received[0] + 1))],
    )
    listener = MessageListener()
    host, port = listener.address
    server = IsmServer(manager, listener)
    ring = RingBuffer(bytearray(HEADER_SIZE + (1 << 22)), OverflowPolicy.DROP_NEW)
    sensor = Sensor(ring, node_id=1)
    exs = ExternalSensor(
        1, 1, ring, CorrectedClock(now_micros),
        ExsConfig(batch_max_records=250, flush_timeout_us=1_000,
                  drain_limit=100_000),
    )
    emitted = 0
    while emitted < n_events:
        if sensor.notice_ints(7, emitted, 2, 3, 4, 5, 6):
            emitted += 1
    proc = ExsProcess(exs, connect(host, port), select_timeout_s=0.001)
    thread = threading.Thread(target=proc.run, daemon=True)
    t0 = time.perf_counter()
    thread.start()
    server.serve(duration_s=30.0, until_records=n_events)
    elapsed = time.perf_counter() - t0
    proc.stop()
    thread.join(timeout=5)
    listener.close()
    assert received[0] == n_events
    rate = n_events / elapsed
    assert rate >= _E3_SOCKET_FLOOR_EV_S, (
        f"E3 single-stream socket throughput {rate:,.0f} ev/s fell below "
        f"the recorded floor {_E3_SOCKET_FLOOR_EV_S:,} ev/s"
    )


def _socket_stream_elapsed(
    n_events: int, acked: bool, metrics: bool = False
) -> float:
    """One fresh single-stream socket run; returns wall-clock seconds.

    ``acked=False`` reproduces the seed's fire-and-forget transport
    (no acks, no resume handshake, no heartbeats, an outbox deep enough
    to never backpressure); ``acked=True`` is the default guaranteed
    path.  ``metrics=True`` additionally wires a full
    :class:`~repro.obs.metrics.MetricsRegistry` over both ends — the
    EXS poll/drain timers and the ISM tick timer plus all pull gauges —
    to price the observability layer's hot-path cost.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.runtime.exs_proc import ExsOutbox

    received = [0]
    manager = InstrumentationManager(
        IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
        [CallbackConsumer(lambda r: received.__setitem__(0, received[0] + 1))],
        metrics=MetricsRegistry() if metrics else None,
    )
    listener = MessageListener()
    host, port = listener.address
    server = IsmServer(manager, listener, ack_batches=acked)
    ring = RingBuffer(bytearray(HEADER_SIZE + (1 << 22)), OverflowPolicy.DROP_NEW)
    sensor = Sensor(ring, node_id=1)
    exs = ExternalSensor(
        1, 1, ring, CorrectedClock(now_micros),
        ExsConfig(batch_max_records=250, flush_timeout_us=1_000,
                  drain_limit=100_000),
        metrics=MetricsRegistry() if metrics else None,
    )
    emitted = 0
    while emitted < n_events:
        if sensor.notice_ints(7, emitted, 2, 3, 4, 5, 6):
            emitted += 1
    if acked:
        proc = ExsProcess(exs, connect(host, port), select_timeout_s=0.001)
    else:
        proc = ExsProcess(
            exs,
            connect(host, port),
            select_timeout_s=0.001,
            outbox=ExsOutbox(depth=1_000_000),
            resume=False,
            ack_timeout_s=None,
            heartbeat_interval_s=None,
        )
    thread = threading.Thread(target=proc.run, daemon=True)
    t0 = time.perf_counter()
    thread.start()
    server.serve(duration_s=30.0, until_records=n_events)
    elapsed = time.perf_counter() - t0
    proc.stop()
    thread.join(timeout=5)
    listener.close()
    assert received[0] == n_events
    return elapsed


def test_acked_path_within_ten_percent_of_fire_and_forget():
    """The delivery guarantees must be nearly free at steady state: one
    cumulative Ack per pump cycle and an outbox append per batch.  Race
    the default acked path against the seed's fire-and-forget transport
    and fail if the guaranteed path costs more than 10%."""
    n_events = 20_000
    acked = _best(lambda: _socket_stream_elapsed(n_events, acked=True), repeats=3)
    bare = _best(lambda: _socket_stream_elapsed(n_events, acked=False), repeats=3)
    assert acked <= bare * 1.10, (
        f"acked path ({n_events / acked:,.0f} ev/s) more than 10% slower "
        f"than fire-and-forget ({n_events / bare:,.0f} ev/s)"
    )


def test_metrics_enabled_within_five_percent_of_metrics_off():
    """Self-observability must be nearly free on the hot path: stage
    timers are two ``perf_counter_ns`` calls per EXS poll / ISM tick, and
    every occupancy metric is a pull gauge that costs nothing until a
    snapshot is taken.  Race the E3 single-stream run with a fully wired
    registry on both ends against the metrics-off default.

    Run-to-run variance of the socket pipeline (scheduler, TCP, GC) is
    far larger than the effect under test, so the arms are sampled as
    back-to-back pairs and judged on the *cleanest* pair: a real hot-path
    regression slows every pair, while a load spike dirties only some."""
    n_events = 20_000
    ratios = []
    for _ in range(5):
        off = _socket_stream_elapsed(n_events, acked=True)
        on = _socket_stream_elapsed(n_events, acked=True, metrics=True)
        ratios.append(on / off)
    assert min(ratios) <= 1.05, (
        f"metrics-enabled pipeline more than 5% slower than metrics-off "
        f"in every paired run (on/off ratios: "
        f"{', '.join(f'{r:.3f}' for r in ratios)})"
    )


def test_e5_fanin_sort_deliver_floor():
    # The E5-specific risk is the 8-way merge: per-record heap traffic
    # across 8 FIFO queues.  Feed 8 interleaved sources straight into the
    # manager (no transport — process spawn noise has no place in a
    # guard) and floor the aggregate decode+sort+deliver rate.
    n_sources = 8
    per_source = 5_000
    payloads: list[bytes] = []
    for src in range(1, n_sources + 1):
        records = _records(per_source, node_id=src)
        payloads.extend(
            protocol.encode_batch_records(src, seq, records[i : i + 250])
            for seq, i in enumerate(range(0, per_source, 250))
        )
    # Interleave sources the way concurrent streams arrive.
    batches_per_source = per_source // 250
    order = [
        payloads[src * batches_per_source + b]
        for b in range(batches_per_source)
        for src in range(n_sources)
    ]

    def run() -> int:
        delivered = [0]
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0, max_held=10**6)),
            [CallbackConsumer(lambda r: delivered.__setitem__(0, delivered[0] + 1))],
        )
        for src in range(1, n_sources + 1):
            manager.register_source(src, src)
        _pump(manager, order)
        return delivered[0]

    assert run() == n_sources * per_source
    elapsed = _best(run, repeats=3)
    rate = n_sources * per_source / elapsed
    assert rate >= _E5_FANIN_FLOOR_EV_S, (
        f"8-source fan-in rate {rate:,.0f} ev/s fell below the recorded "
        f"floor {_E5_FANIN_FLOOR_EV_S:,} ev/s"
    )


def test_log_append_within_fifteen_percent_of_buffered_picl(tmp_path):
    """The durable commit log's price of admission (PR 8): with
    ``fsync=off`` — the policy whose per-append work is purely CPU, the
    same as the baseline's — appending the delivery stream must stay
    within 15% of the buffered PICL trace writer it sits beside.  Binary
    framing + CRC racing text formatting; equivalence is asserted first
    (the log must read back the identical records)."""
    from repro.core.consumers import PiclFileConsumer
    from repro.log import CommitLog, LogConfig
    from repro.picl.format import TimestampMode

    records = _records(10_000)
    chunks = [records[i : i + 250] for i in range(0, len(records), 250)]
    fresh = iter(range(10_000))

    def log_run() -> None:
        log = CommitLog(
            tmp_path / f"log{next(fresh)}", LogConfig(fsync="off")
        )
        for chunk in chunks:
            log.append_many(chunk)
        log_run.last = log  # noqa: B010 - handed to the equivalence check

    def picl_run() -> None:
        stream = open(
            tmp_path / f"trace{next(fresh)}.picl", "w", encoding="ascii"
        )
        consumer = PiclFileConsumer(
            stream, TimestampMode.UTC_MICROS, close_stream=True
        )
        for chunk in chunks:
            consumer.deliver_many(chunk)
        consumer.close()

    log_run()
    assert list(log_run.last.iter_from(0)) == records  # identical, or no deal
    log_run.last.close()

    log_best = _best(log_run, repeats=3)
    picl_best = _best(picl_run, repeats=3)
    assert log_best <= picl_best * 1.15, (
        f"fsync=off log appends ({10_000 / log_best:,.0f} ev/s) fell more "
        f"than 15% behind the buffered PICL writer "
        f"({10_000 / picl_best:,.0f} ev/s)"
    )


def test_e5b_sharded_scaling_floor():
    """The sharded-ISM acceptance floor: 8 shards >= 3x 1 shard.

    Runs on the deterministic finite-server sim model (seeded workload,
    virtual time), so the guard holds regardless of how many physical
    cores the CI host happens to have; the socket-path counterpart in
    ``test_e5b_sharded_scaling.py`` asserts the same floor on wall-clock
    time when cores allow.
    """
    from repro.sim.deployment import DeploymentConfig, SimDeployment
    from repro.sim.engine import Simulator
    from repro.sim.workload import PoissonWorkload

    def capacity(shards: int) -> float:
        sim = Simulator(seed=5)
        dep = SimDeployment(
            sim,
            DeploymentConfig(
                ism_service_time_us=500.0,
                ism_shards=shards,
                exs_poll_interval_us=10_000,
            ),
            [CallbackConsumer(lambda r: None)],
        )
        # 4x the per-shard capacity offered per node: every shard stays
        # saturated at both scale points.
        for node in dep.add_nodes(8, max_offset_us=100, max_drift_ppm=1):
            dep.attach_workload(node, PoissonWorkload(rate_hz=4_000))
        dep.run(2.0)
        return dep.ism.stats.records_received / 2.0

    single, sharded = capacity(1), capacity(8)
    assert sharded >= 3.0 * single, (
        f"sharded scaling floor broken: 8 shards {sharded:,.0f} ev/s "
        f"< 3x 1-shard {single:,.0f} ev/s"
    )
