"""Shared helpers for the evaluation benchmarks.

Every benchmark regenerates one of the paper's reported measurements
(DESIGN.md §4).  Besides the pytest-benchmark timing table, each experiment
writes a human-readable results file under ``benchmarks/results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from a
plain ``pytest benchmarks/ --benchmark-only`` run (whose stdout pytest
captures).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class ExperimentReport:
    """Accumulates result lines for one experiment and writes them out."""

    def __init__(self, name: str, title: str) -> None:
        self.name = name
        self.title = title
        self.lines: list[str] = []

    def row(self, text: str) -> None:
        """Add one result row (also echoed to stdout for -s runs)."""
        self.lines.append(text)
        print(text)

    def table(self, header: str, rows: list[tuple]) -> None:
        """Add a fixed-width table."""
        self.row(header)
        self.row("-" * len(header))
        for cells in rows:
            self.row("  ".join(str(c) for c in cells))

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        body = f"# {self.title}\n" + "\n".join(self.lines) + "\n"
        path.write_text(body)


@pytest.fixture
def report(request):
    """Per-test experiment report, flushed on teardown."""
    name = request.node.name.replace("[", "_").replace("]", "")
    rep = ExperimentReport(name, request.node.nodeid)
    yield rep
    if rep.lines:
        rep.flush()
