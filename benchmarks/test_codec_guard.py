"""Codec-regression guard: the specialized wire codec must never be slower.

A fast smoke benchmark (no pytest-benchmark fixture, plain best-of-N
timing; total runtime well under a second) that fails if the
schema-specialized codec path loses to — or silently stops beating — the
seed dynamic path, so a refactor cannot quietly bypass or regress the
fast path.  Byte identity is asserted in the same breath: a fast path
that wins by changing the wire format is also a failure.
"""

from __future__ import annotations

import time

from repro.core.records import EventRecord, FieldType
from repro.wire import protocol

_N_RECORDS = 256
_REPEATS = 7


def _records() -> list[EventRecord]:
    return [
        EventRecord(
            event_id=7,
            timestamp=1_000_000 + i,
            field_types=(FieldType.X_INT,) * 6,
            values=(i, 2, 3, 4, 5, 6),
        )
        for i in range(_N_RECORDS)
    ]


def _best(fn, repeats: int = _REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_specialized_encode_not_slower_than_dynamic():
    records = _records()
    fast_bytes = protocol.encode_batch_records(1, 0, records)
    slow_bytes = protocol.encode_batch_records(1, 0, records, use_fastpath=False)
    assert fast_bytes == slow_bytes  # identical wire output, or no deal

    fast = _best(lambda: protocol.encode_batch_records(1, 0, records))
    slow = _best(
        lambda: protocol.encode_batch_records(1, 0, records, use_fastpath=False)
    )
    assert fast <= slow, (
        f"specialized encode ({fast * 1e6:.0f} µs/batch) slower than "
        f"dynamic ({slow * 1e6:.0f} µs/batch)"
    )


def test_specialized_decode_not_slower_than_dynamic():
    payload = protocol.encode_batch_records(1, 0, _records())
    assert protocol.decode_message(payload) == protocol.decode_message(
        payload, use_fastpath=False
    )

    fast = _best(lambda: protocol.decode_message(payload))
    slow = _best(lambda: protocol.decode_message(payload, use_fastpath=False))
    assert fast <= slow, (
        f"specialized decode ({fast * 1e6:.0f} µs/batch) slower than "
        f"dynamic ({slow * 1e6:.0f} µs/batch)"
    )
