"""E9 — schema-specialized wire codec vs. the dynamic per-field codec.

The paper's custom-NOTICE-macro utility specializes the sensor hot path
to a fixed schema (A2 measures that at 2.7×); this experiment measures
the same specialization applied to the transfer protocol's codec: one
precompiled ``struct.Struct`` per schema versus one Python method call
per four bytes.  The headline pipeline rates the paper reports (38,000
ev/s at the EXS, 90,000 ev/s end-to-end) all sit downstream of this
codec, so its cost is the ceiling on everything E2–E5 measure.
"""

from __future__ import annotations

import time

from repro.core.records import EventRecord, FieldType
from repro.wire import protocol

N_RECORDS = 256
ROUNDS = 40


def six_int_records(n: int = N_RECORDS) -> list[EventRecord]:
    return [
        EventRecord(
            event_id=7,
            timestamp=1_000_000 + i,
            field_types=(FieldType.X_INT,) * 6,
            values=(i, 2, 3, 4, 5, 6),
        )
        for i in range(n)
    ]


def _best(fn, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_encode_specialized_vs_dynamic(benchmark, report):
    records = six_int_records()
    payload = benchmark(protocol.encode_batch_records, 1, 0, records)
    fast_s = benchmark.stats.stats.mean
    slow_s = _best(
        lambda: protocol.encode_batch_records(1, 0, records, use_fastpath=False)
    )
    report.row(
        f"specialized encode: {N_RECORDS / fast_s:,.0f} records/s "
        f"({len(payload)} B per {N_RECORDS}-record batch)"
    )
    report.row(f"dynamic encode:     {N_RECORDS / slow_s:,.0f} records/s")
    report.row(f"speedup: {slow_s / fast_s:.1f}x (target: >= 2x)")
    assert slow_s / fast_s >= 2.0


def test_decode_specialized_vs_dynamic(benchmark, report):
    payload = protocol.encode_batch_records(1, 0, six_int_records())
    batch = benchmark(protocol.decode_message, payload)
    assert len(batch.records) == N_RECORDS
    fast_s = benchmark.stats.stats.mean
    slow_s = _best(lambda: protocol.decode_message(payload, use_fastpath=False))
    report.row(f"specialized decode: {N_RECORDS / fast_s:,.0f} records/s")
    report.row(f"dynamic decode:     {N_RECORDS / slow_s:,.0f} records/s")
    report.row(f"speedup: {slow_s / fast_s:.1f}x (target: >= 2x)")
    assert slow_s / fast_s >= 2.0


def test_mixed_schema_batch_speedup(benchmark, report):
    """Schema runs broken by variable-length records: the fast path must
    still win on the fixed-size majority while falling back per-record."""
    records = []
    for i in range(N_RECORDS):
        if i % 16 == 15:
            records.append(
                EventRecord(
                    event_id=9,
                    timestamp=1_000_000 + i,
                    field_types=(FieldType.X_STRING, FieldType.X_UINT),
                    values=(f"tag-{i}", i),
                )
            )
        else:
            records.append(
                EventRecord(
                    event_id=7,
                    timestamp=1_000_000 + i,
                    field_types=(FieldType.X_INT,) * 6,
                    values=(i, 2, 3, 4, 5, 6),
                )
            )
    payload = protocol.encode_batch_records(1, 0, records)

    def round_trip():
        return protocol.decode_message(
            protocol.encode_batch_records(1, 0, records)
        )

    batch = benchmark(round_trip)
    assert len(batch.records) == N_RECORDS
    fast_s = benchmark.stats.stats.mean
    slow_s = _best(
        lambda: protocol.decode_message(
            protocol.encode_batch_records(1, 0, records, use_fastpath=False),
            use_fastpath=False,
        )
    )
    report.row(
        f"mixed batch (15/16 fixed-schema) round trip: "
        f"{N_RECORDS / fast_s:,.0f} records/s specialized, "
        f"{N_RECORDS / slow_s:,.0f} records/s dynamic "
        f"({slow_s / fast_s:.1f}x)"
    )
    assert protocol.encode_batch_records(1, 0, records) == protocol.encode_batch_records(
        1, 0, records, use_fastpath=False
    )
