"""E3 — maximum EXS → ISM event throughput.

Paper: "the maximum throughput achieved between an EXS and ISM was 90,000
events per second" on Sun Ultra-1 / 155 Mbps ATM.

Two measurements:

* ``pipeline`` — the full software path with the transport removed
  (encode at the EXS, decode + sort + deliver at the ISM in one process):
  the upper bound set by codec + sorter CPU.
* ``socket`` — the same path over a real localhost TCP stream with the
  EXS on a thread, reproducing the paper's single-stream configuration.

The shape to hold: a single stream sustains tens of thousands of events
per second, and the socket adds modest overhead over the pipeline bound
(the bottleneck is CPU, not the wire — exactly the paper's observation).
"""

import threading
import time

from repro.clocksync.clocks import CorrectedClock
from repro.core.consumers import CallbackConsumer
from repro.core.exs import ExsConfig, ExternalSensor
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.ringbuffer import OverflowPolicy, RingBuffer, HEADER_SIZE
from repro.core.sensor import Sensor
from repro.core.sorting import SorterConfig
from repro.core.records import EventRecord, FieldType
from repro.runtime.exs_proc import ExsProcess
from repro.runtime.ism_proc import IsmServer
from repro.util.timebase import now_micros
from repro.wire import protocol
from repro.wire.tcp import MessageListener, connect

N_EVENTS = 40_000
BATCH = 256


def make_records(n: int) -> list[EventRecord]:
    return [
        EventRecord(
            event_id=7,
            timestamp=1_000_000 + i,
            field_types=(FieldType.X_INT,) * 6,
            values=(i, 2, 3, 4, 5, 6),
        )
        for i in range(n)
    ]


def test_throughput_pipeline_no_transport(benchmark, report):
    records = make_records(N_EVENTS)
    payloads = [
        protocol.encode_batch_records(1, seq, records[i : i + BATCH])
        for seq, i in enumerate(range(0, N_EVENTS, BATCH))
    ]

    def run() -> int:
        delivered = [0]
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
            [CallbackConsumer(lambda r: delivered.__setitem__(0, delivered[0] + 1))],
        )
        manager.register_source(1, 1)
        now = 2_000_000_000
        for payload in payloads:
            manager.on_message(protocol.decode_message(payload), now)
            manager.tick(now)
            now += 1000
        manager.flush(now)
        return delivered[0]

    delivered = benchmark.pedantic(run, rounds=3, warmup_rounds=1)
    assert delivered == N_EVENTS
    rate = N_EVENTS / benchmark.stats.stats.mean
    report.row(f"pipeline (decode+sort+deliver, no transport): {rate:,.0f} ev/s")
    report.row("paper: 90,000 ev/s max over ATM (C implementation)")


def test_throughput_single_stream_socket(benchmark, report):
    def run() -> float:
        received = [0]
        manager = InstrumentationManager(
            IsmConfig(sorter=SorterConfig(initial_frame_us=0)),
            [CallbackConsumer(lambda r: received.__setitem__(0, received[0] + 1))],
        )
        listener = MessageListener()
        host, port = listener.address
        server = IsmServer(manager, listener)

        ring = RingBuffer(
            bytearray(HEADER_SIZE + (1 << 22)), OverflowPolicy.DROP_NEW
        )
        sensor = Sensor(ring, node_id=1)
        exs = ExternalSensor(
            1, 1, ring, CorrectedClock(now_micros),
            ExsConfig(batch_max_records=BATCH, flush_timeout_us=1_000,
                      drain_limit=100_000),
        )
        proc = ExsProcess(exs, connect(host, port), select_timeout_s=0.001)

        emitted = 0
        while emitted < N_EVENTS:
            if sensor.notice_ints(7, emitted, 2, 3, 4, 5, 6):
                emitted += 1
        thread = threading.Thread(target=proc.run, daemon=True)
        t0 = time.perf_counter()
        thread.start()
        server.serve(duration_s=30.0, until_records=N_EVENTS)
        elapsed = time.perf_counter() - t0
        proc.stop()
        thread.join(timeout=5)
        listener.close()
        assert manager.stats.records_received == N_EVENTS
        return elapsed

    elapsed = benchmark.pedantic(run, rounds=3, warmup_rounds=0)
    rate = N_EVENTS / elapsed
    report.row(f"single EXS→ISM TCP stream: {rate:,.0f} ev/s")
    report.row("paper: 90,000 ev/s max (C implementation, shape: same order)")
    assert rate > 10_000  # tens of thousands per second minimum
