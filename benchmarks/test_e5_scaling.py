"""E5 — distributed operation: aggregate throughput versus EXS count.

Paper: "The CPU demand by the ISM was the bottleneck for achieving high
event throughput, but the ISM was able to maintain the maximum aggregate
event throughput almost constant with up to 8 EXS nodes."

Reproduction over real sockets: N saturating sender processes (the
transport-only EXS stand-in from ``_e5_helpers``) blast pre-encoded
batches at one single-threaded ISM server.  The shape to hold:

* aggregate throughput is set by the ISM's CPU (it does not grow with N),
* it also does not *collapse* with N — the merge is per-queue-head, so
  fan-in costs O(log N), not O(N), per record.
"""

import multiprocessing as mp
import sys
import time

import pytest

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _e5_helpers import saturating_sender

from repro.core.consumers import CallbackConsumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.sorting import SorterConfig
from repro.runtime.ism_proc import IsmServer
from repro.wire.tcp import MessageListener

RECORDS_PER_NODE = 25_000
BATCH = 250


def run_scale_point(n_nodes: int) -> float:
    """Return aggregate events/second into one ISM from *n_nodes*."""
    ctx = mp.get_context("spawn")
    total = n_nodes * RECORDS_PER_NODE
    manager = InstrumentationManager(
        IsmConfig(sorter=SorterConfig(initial_frame_us=0, max_held=10**6)),
        [CallbackConsumer(lambda r: None)],
    )
    listener = MessageListener()
    host, port = listener.address
    server = IsmServer(manager, listener)
    senders = [
        ctx.Process(
            target=saturating_sender,
            args=(host, port, idx + 1, RECORDS_PER_NODE, BATCH),
        )
        for idx in range(n_nodes)
    ]
    for p in senders:
        p.start()
    t0 = time.perf_counter()
    server.serve(duration_s=120.0, until_records=total)
    elapsed = time.perf_counter() - t0
    for p in senders:
        p.join(timeout=10)
        if p.is_alive():  # pragma: no cover - hygiene
            p.terminate()
    listener.close()
    assert manager.stats.records_received == total
    return total / elapsed


def test_aggregate_throughput_vs_nodes(benchmark, report):
    def study():
        return {n: run_scale_point(n) for n in (1, 2, 4, 8)}

    rates = benchmark.pedantic(study, rounds=1, iterations=1)
    base = rates[1]
    rows = [
        (f"{n} EXS", f"{rate:>10,.0f} ev/s", f"{rate / base:5.2f}x of 1-node")
        for n, rate in rates.items()
    ]
    report.table("nodes  aggregate  relative", rows)
    report.row("paper: aggregate ~constant for 1..8 EXS (ISM CPU-bound)")
    # Aggregate must stay within a band around the single-node capacity:
    # neither scaling up linearly (the ISM is the bottleneck) nor
    # collapsing (fan-in must stay cheap).
    for n, rate in rates.items():
        assert rate > 0.5 * base, f"collapse at {n} nodes: {rate:.0f} vs {base:.0f}"
        assert rate < 2.0 * base, f"unexpected scaling at {n} nodes"


def test_sim_saturation_curve(benchmark, report):
    """The same bottleneck in the simulator's finite-server ISM model.

    Offered load sweeps from well under to well over the modelled ISM
    capacity (50 µs/record → 20,000 records/s); delivered throughput must
    track the offer below capacity and clamp at capacity above it — the
    knee the paper's observation implies.
    """
    from repro.core.consumers import CallbackConsumer
    from repro.sim.deployment import DeploymentConfig, SimDeployment
    from repro.sim.engine import Simulator
    from repro.sim.workload import PoissonWorkload

    capacity = 20_000  # records/s at 50 µs/record

    def run_offer(offered_hz: int) -> float:
        sim = Simulator(seed=offered_hz)
        dep = SimDeployment(
            sim,
            DeploymentConfig(
                ism_service_time_us=50.0,
                exs_poll_interval_us=10_000,
            ),
            [CallbackConsumer(lambda r: None)],
        )
        for node in dep.add_nodes(4, max_offset_us=100, max_drift_ppm=1):
            dep.attach_workload(node, PoissonWorkload(rate_hz=offered_hz // 4))
        dep.run(5.0)
        return dep.ism.stats.records_received / 5.0

    def study():
        return {o: run_offer(o) for o in (5_000, 10_000, 20_000, 40_000, 80_000)}

    rates = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"offered {offered:>7,} ev/s",
            f"delivered {rate:>9,.0f} ev/s",
            f"{min(1.0, rate / capacity) * 100:5.1f}% of capacity",
        )
        for offered, rate in rates.items()
    ]
    report.table("offered  delivered  utilization", rows)
    report.row(f"modelled ISM capacity: {capacity:,} records/s (50 us/record)")
    # Below the knee: delivery tracks the offer.
    assert rates[5_000] == pytest.approx(5_000, rel=0.15)
    assert rates[10_000] == pytest.approx(10_000, rel=0.15)
    # Above the knee: delivery clamps at capacity regardless of offer.
    assert rates[40_000] == pytest.approx(capacity, rel=0.15)
    assert rates[80_000] == pytest.approx(capacity, rel=0.15)
