"""A6 — ablation of the EXS batching / latency-control knobs (§2, §3.1).

"Throughput and latency of the instrumentation data transfer ... these two
requirements are in contradiction" — BRISK resolves it with per-EXS tuning
knobs: batch size caps and the flush timeout.  The sweep measures, in the
simulator, the end-to-end event latency distribution and the message count
(batches shipped — the per-message overhead proxy) across the knob grid.

The shape to hold: bigger batches / longer flush timeouts cut message
count (throughput efficiency) and pay in latency; the flush timeout bounds
the latency a lazy batch can add.
"""

import statistics

from repro.core.consumers import CollectingConsumer
from repro.core.exs import ExsConfig
from repro.core.ism import IsmConfig
from repro.core.sorting import SorterConfig
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator
from repro.sim.workload import PoissonWorkload


def run_config(batch_max: int, flush_us: int, seed: int = 31) -> dict:
    sim = Simulator(seed=seed)
    config = DeploymentConfig(
        exs_poll_interval_us=5_000,
        ism_tick_interval_us=2_000,
        exs=ExsConfig(batch_max_records=batch_max, flush_timeout_us=flush_us),
        ism=IsmConfig(sorter=SorterConfig(initial_frame_us=1_000)),
        track_latency=True,
    )
    dep = SimDeployment(sim, config, [CollectingConsumer()])
    for node in dep.add_nodes(2, max_offset_us=100, max_drift_ppm=1):
        dep.attach_workload(node, PoissonWorkload(rate_hz=1_000))
    dep.run(10.0)
    dep.stop()
    lat = dep.metrics.latency_us
    batches = sum(n.exs.stats.batches_shipped for n in dep.nodes)
    records = sum(n.exs.stats.records_shipped for n in dep.nodes)
    return {
        "p50_ms": statistics.median(lat) / 1000,
        "p99_ms": sorted(lat)[int(len(lat) * 0.99)] / 1000,
        "records_per_batch": records / batches,
        "batches": batches,
    }


def test_batching_latency_tradeoff(benchmark, report):
    def study():
        grid = [
            (8, 5_000),
            (64, 5_000),
            (64, 40_000),
            (512, 40_000),
            (512, 200_000),
        ]
        return {(b, f): run_config(b, f) for b, f in grid}

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"batch<={b:<4} flush={f / 1000:5.0f}ms",
            f"p50 {m['p50_ms']:6.2f} ms",
            f"p99 {m['p99_ms']:7.2f} ms",
            f"{m['records_per_batch']:6.1f} rec/batch",
        )
        for (b, f), m in out.items()
    ]
    report.table("knobs  latency-p50  latency-p99  batching", rows)
    report.row("paper (§2): throughput and latency are in contradiction; the")
    report.row("knobs trade between them")
    tight = out[(8, 5_000)]
    lazy = out[(512, 200_000)]
    # The lazy end amortizes far better per message...
    assert lazy["records_per_batch"] > tight["records_per_batch"] * 4
    # ...and pays for it in delivery latency.
    assert lazy["p50_ms"] > tight["p50_ms"] * 2
    # The flush timeout bounds the worst case wherever it is set.
    for (b, f), m in out.items():
        assert m["p99_ms"] < (f + 3 * 5_000 + 10_000) / 1000 + 5
