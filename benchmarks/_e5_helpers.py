"""Spawned-process helpers for the E5 scaling benchmark.

Kept in a separate importable module because ``multiprocessing`` with the
``spawn`` start method must be able to import the child's target function.
"""

from __future__ import annotations

from repro.core.records import EventRecord, FieldType
from repro.wire import protocol
from repro.wire.tcp import connect


def saturating_sender(
    host: str, port: int, exs_id: int, n_records: int, batch_size: int
) -> None:
    """Connect as one EXS and ship *n_records* as fast as possible.

    Batches are pre-encoded so the sender is pure transport: the benchmark
    measures the ISM's capacity (the paper's bottleneck), not sender CPU.
    """
    template = [
        EventRecord(
            event_id=7,
            timestamp=1_000_000 + i,
            field_types=(FieldType.X_INT,) * 6,
            values=(i, 2, 3, 4, 5, 6),
        )
        for i in range(batch_size)
    ]
    payloads = [
        protocol.encode_batch_records(exs_id, seq, template)
        for seq in range(n_records // batch_size)
    ]
    conn = connect(host, port)
    try:
        conn.send(protocol.Hello(exs_id=exs_id, node_id=exs_id))
        for payload in payloads:
            conn.send_raw(payload)
        conn.send(protocol.Bye(reason="sender done"))
    finally:
        conn.close()
