"""E10 — relay aggregation tier: fan-in capacity versus flat topology.

E5b broke the ISM's *compute* ceiling by sharding sort/deliver across
workers.  This experiment targets the other axis the paper's hierarchy
exists for: the dispatcher's **fan-in** ceiling.  With a flat topology
every EXS holds its own connection and every batch arrives as its own
frame; the serial dispatcher pays a per-frame cost, so offered frame rate
— not record rate — is what saturates it.  A relay tier multiplexes many
EXS onto few upstream connections and coalesces their batches into fat
frames, so the same record load reaches the ISM in far fewer frames.

Two paths:

* **sim** (deterministic, host-independent): 1,000 EXS behind a 2-level
  relay tree (fan-in 32 → 32 relays → 1 root) versus 1,000 flat
  connections, with a modelled per-frame dispatcher cost.  The flat
  topology saturates the dispatcher; the relayed one must deliver at
  least as many records while presenting exactly one ISM-side
  connection.  Asserted unconditionally — this is the acceptance proof.
* **socket** (the real runtime): spawned saturating senders through one
  real ``RelayServer`` into an ``IsmServer``.  Exact end-to-end record
  counts, a single upstream connection fronting every source, and an
  actual coalescing ratio > 1 are asserted on any host; wall-clock
  throughput is reported, not gated.
"""

import multiprocessing as mp
import sys
import threading
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _e5_helpers import saturating_sender

from repro.core.consumers import CallbackConsumer
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.runtime.ism_proc import IsmServer
from repro.runtime.relay_proc import RelayConfig, RelayServer
from repro.wire.tcp import MessageListener

# --- sim model ---------------------------------------------------------
SIM_NODES = 1_000
RELAY_FANIN = 32
RELAY_LEVELS = 2
SIM_RATE_HZ = 50
SIM_SECONDS = 2.0
#: Serial dispatcher cost per inbound frame.  1,000 flat EXS polling at
#: 10 ms offer ~14k frames/s; at 100 us/frame the dispatcher can admit
#: only 10k/s — saturated.  The relay tree collapses the same load to a
#: few hundred frames/s.
FRAME_OVERHEAD_US = 100.0

# --- socket path -------------------------------------------------------
SOCKET_SENDERS = 16
RECORDS_PER_SENDER = 5_000
BATCH = 250


def run_sim_point(relayed: bool) -> dict:
    """One deterministic deployment run; returns the numbers that matter."""
    from repro.sim.deployment import DeploymentConfig, SimDeployment
    from repro.sim.engine import Simulator
    from repro.sim.workload import PoissonWorkload

    sim = Simulator(seed=11)
    dep = SimDeployment(
        sim,
        DeploymentConfig(
            exs_poll_interval_us=10_000,
            ism_frame_overhead_us=FRAME_OVERHEAD_US,
            relay_fanin=RELAY_FANIN if relayed else 0,
            relay_levels=RELAY_LEVELS,
            relay_flush_interval_us=5_000,
        ),
        [CallbackConsumer(lambda r: None)],
        # Clock sync off: its blocking startup round would advance virtual
        # time, stretching the measurement window out from under the
        # offered load and hiding dispatcher saturation.
        sync_algorithm="none",
    )
    for node in dep.add_nodes(SIM_NODES):
        dep.attach_workload(node, PoissonWorkload(rate_hz=SIM_RATE_HZ))
    dep.run(SIM_SECONDS)
    m = dep.metrics
    return {
        "delivered": dep.ism.stats.records_received,
        "ism_conns": dep.ism_side_connections,
        "frames_in": m.ism_frames_in,
        "relay_frames_out": m.relay_frames_out,
        "relay_batches_in": m.relay_batches_in,
        "busy_us": m.dispatcher_busy_us,
    }


def test_e10_sim_relay_fanin(benchmark, report):
    def study():
        return {"flat": run_sim_point(False), "relayed": run_sim_point(True)}

    points = benchmark.pedantic(study, rounds=1, iterations=1)
    flat, relayed = points["flat"], points["relayed"]
    report.table(
        "topology  ISM conns  delivered  frames in  dispatcher busy",
        [
            (
                f"{name:>7}",
                f"{p['ism_conns']:>9,}",
                f"{p['delivered']:>9,} rec",
                f"{p['frames_in']:>9,}",
                f"{p['busy_us'] / 1e6:6.2f} s",
            )
            for name, p in points.items()
        ],
    )
    report.row(
        f"model: {SIM_NODES:,} EXS x {SIM_RATE_HZ} ev/s, "
        f"{FRAME_OVERHEAD_US:.0f} us/frame dispatcher cost, "
        f"relay fan-in {RELAY_FANIN} x {RELAY_LEVELS} levels"
    )
    report.row(
        f"coalescing: {relayed['relay_batches_in']:,} batches -> "
        f"{relayed['relay_frames_out']:,} relay frames"
    )
    report.row(
        "floors: relayed ISM conns == 1, relayed delivered >= flat, "
        "relayed frame load < 1/10 flat (all deterministic)"
    )
    # The whole point of the tier: connection count collapses from one
    # per EXS to one per root relay.
    assert flat["ism_conns"] == SIM_NODES
    assert relayed["ism_conns"] == 1
    # The flat dispatcher is saturated (more service time assigned than
    # virtual time available); the relayed one must not be, and must
    # deliver at least as much.
    assert flat["busy_us"] >= SIM_SECONDS * 1e6, (
        f"flat dispatcher not saturated ({flat['busy_us']} us busy): "
        "the experiment no longer exercises the fan-in ceiling"
    )
    assert relayed["delivered"] >= flat["delivered"], (
        f"relayed {relayed['delivered']} < flat {flat['delivered']}"
    )
    assert relayed["frames_in"] * 10 <= flat["frames_in"], (
        f"coalescing too weak: {relayed['frames_in']} relayed frames vs "
        f"{flat['frames_in']} flat"
    )


def run_socket_relayed() -> tuple[float, RelayServer, int]:
    """Saturating senders through one real relay into one real ISM."""
    ctx = mp.get_context("spawn")
    total = SOCKET_SENDERS * RECORDS_PER_SENDER
    delivered = [0]

    def count(_record):
        delivered[0] += 1

    manager = InstrumentationManager(IsmConfig(), [CallbackConsumer(count)])
    listener = MessageListener()
    server = IsmServer(manager, listener)
    host, port = listener.address
    server_thread = threading.Thread(
        target=server.serve,
        kwargs={"duration_s": 120.0, "until_records": total},
        daemon=True,
    )
    relay = RelayServer(RelayConfig(upstream_host=host, upstream_port=port))
    relay_thread = threading.Thread(
        target=relay.serve, kwargs={"duration_s": 119.0}, daemon=True
    )
    rhost, rport = relay.address
    senders = [
        ctx.Process(
            target=saturating_sender,
            args=(rhost, rport, idx + 1, RECORDS_PER_SENDER, BATCH),
        )
        for idx in range(SOCKET_SENDERS)
    ]
    server_thread.start()
    relay_thread.start()
    for p in senders:
        p.start()
    t0 = time.perf_counter()
    try:
        server_thread.join(timeout=120.0)
        elapsed = time.perf_counter() - t0
    finally:
        for p in senders:
            p.join(timeout=10)
            if p.is_alive():  # pragma: no cover - hygiene
                p.terminate()
        relay.stop()
        relay_thread.join(timeout=10)
        server.stop()
        server_thread.join(timeout=10)
    upstream_conns = len(server._conn_sources)
    # Exactly-once through the extra hop is host-independent.
    assert delivered[0] == total, f"{delivered[0]} != {total} via relay"
    assert manager.stats.duplicate_batches == 0
    return total / elapsed, relay, upstream_conns


def test_e10_socket_relay_smoke(benchmark, report):
    rate, relay, upstream_conns = benchmark.pedantic(
        run_socket_relayed, rounds=1, iterations=1
    )
    batches = int(relay.batches_in)
    frames = int(relay.frames_out)
    report.row(
        f"{SOCKET_SENDERS} senders x {RECORDS_PER_SENDER:,} records "
        f"through one relay: {rate:,.0f} ev/s aggregate"
    )
    report.row(
        f"ISM-side connections: {upstream_conns} "
        f"(fronting {SOCKET_SENDERS} sources)"
    )
    report.row(
        f"coalescing: {batches:,} batches -> {frames:,} upstream frames "
        f"({batches / max(1, frames):.1f} batches/frame)"
    )
    report.row(
        "floors: exact delivery, zero duplicates, 1 upstream conn, "
        "coalesce ratio > 1 (wall-clock rate reported, not gated)"
    )
    # One socket fronts every downstream source.
    assert upstream_conns == 1, f"{upstream_conns} ISM-side connections"
    assert int(relay.records_out) == SOCKET_SENDERS * RECORDS_PER_SENDER
    # With 16 concurrent senders and a 5 ms coalesce window the relay
    # must actually merge batches, not degenerate to pass-through.
    assert frames < batches, f"no coalescing: {frames} frames, {batches} batches"
