"""M2 — microbenchmarks of the analysis (tool) layer.

Trace loading and querying are interactive-path operations for the tools
built on the kernel; this harness keeps them honest on large traces.
"""

import io
import random

from repro.analysis.causality import build_causal_graph
from repro.analysis.statistics import rate_series
from repro.analysis.trace import Trace
from repro.core.records import EventRecord, FieldType
from repro.picl.format import dumps

N = 50_000


def big_records() -> list[EventRecord]:
    rng = random.Random(5)
    return [
        EventRecord(
            event_id=rng.randrange(10),
            timestamp=1_700_000_000_000_000 + k * 100 + rng.randrange(50),
            field_types=(FieldType.X_INT,) * 6,
            values=(k % 2**31, 2, 3, 4, 5, 6),
            node_id=rng.randrange(8),
        )
        for k in range(N)
    ]


RECORDS = big_records()
TRACE = Trace(RECORDS)


def test_trace_construction(benchmark, report):
    trace = benchmark(Trace, RECORDS)
    rate = N / benchmark.stats.stats.mean
    report.row(f"Trace construction: {rate:,.0f} records/s")
    assert len(trace) == N


def test_trace_between_query(benchmark):
    mid = TRACE.start_us + TRACE.duration_us // 2
    window = benchmark(TRACE.between, mid, mid + 1_000_000)
    assert len(window) > 0


def test_rate_series_numpy_path(benchmark, report):
    series = benchmark(rate_series, TRACE, 1_000_000)
    rate = N / benchmark.stats.stats.mean
    report.row(f"rate_series: {rate:,.0f} records/s binned")
    assert series.mean_hz > 0


def test_native_save_load_roundtrip(benchmark, tmp_path, report):
    path = tmp_path / "big.bin"

    def roundtrip() -> int:
        TRACE.save_native(path)
        return len(Trace.from_native_file(path))

    count = benchmark.pedantic(roundtrip, rounds=3, warmup_rounds=1)
    assert count == N
    rate = 2 * N / benchmark.stats.stats.mean
    report.row(f"native save+load: {rate:,.0f} records/s")


def test_picl_parse(benchmark, report):
    text = dumps(RECORDS[:5_000])

    def parse() -> Trace:
        return Trace.from_picl(io.StringIO(text))

    trace = benchmark(parse)
    assert len(trace) == 5_000
    rate = 5_000 / benchmark.stats.stats.mean
    report.row(f"PICL parse: {rate:,.0f} records/s")


def test_causal_graph_build(benchmark, report):
    rng = random.Random(9)
    causal = []
    for k in range(5_000):
        causal.append(
            EventRecord(
                event_id=1, timestamp=k * 100,
                field_types=(FieldType.X_REASON,), values=(k,), node_id=1,
            )
        )
        causal.append(
            EventRecord(
                event_id=2, timestamp=k * 100 + 50,
                field_types=(FieldType.X_CONSEQ,), values=(k,), node_id=2,
            )
        )
    trace = Trace(causal)
    graph = benchmark(build_causal_graph, trace)
    assert graph.n_edges == 5_000
    rate = len(causal) / benchmark.stats.stats.mean
    report.row(f"causal graph build: {rate:,.0f} records/s")
