"""E5b — sharded ISM: aggregate sort/deliver throughput versus workers.

E5 pinned the paper's observation that one ISM process is the throughput
ceiling: aggregate rate stays ~constant as EXS count grows.  E5b measures
the PR that breaks that bound — the dispatcher/shard-worker split — and
must show the opposite shape: aggregate delivered throughput growing with
the shard count while every delivery guarantee still holds.

Two paths:

* **sim** (deterministic, host-independent): the finite-server ISM model
  with ``ism_shards`` parallel servers.  Offered load saturates every
  configuration, so delivered throughput is pure capacity — the scaling
  curve is exact and the 8-shard >= 3x 1-shard floor is asserted
  unconditionally (this is the acceptance proof; it does not need 8 real
  CPUs).
* **socket** (the real runtime): saturating senders against a
  ``ShardedIsmServer``.  Exact end-to-end record counts are asserted on
  any host; the wall-clock scaling floor is asserted only when the host
  actually has the cores to run 8 workers in parallel.
"""

import multiprocessing as mp
import os
import sys
import time

sys.path.insert(0, __file__.rsplit("/", 1)[0])
from _e5_helpers import saturating_sender

from repro.core.consumers import CallbackConsumer
from repro.core.ism import IsmConfig
from repro.core.sorting import SorterConfig
from repro.runtime.ism_proc import ShardedIsmServer
from repro.wire.tcp import MessageListener

NODES = 8
SHARD_POINTS = (1, 2, 4, 8)

# --- sim model: 500 us of ISM CPU per record => 2,000 records/s/shard ---
SIM_SERVICE_US = 500.0
SIM_OFFER_HZ_PER_NODE = 4_000
SIM_SECONDS = 3.0

# --- socket path -------------------------------------------------------
RECORDS_PER_NODE = 10_000
BATCH = 250


def run_sim_point(shards: int) -> float:
    """Delivered records/second with *shards* modelled ISM workers."""
    from repro.sim.deployment import DeploymentConfig, SimDeployment
    from repro.sim.engine import Simulator
    from repro.sim.workload import PoissonWorkload

    sim = Simulator(seed=11)
    dep = SimDeployment(
        sim,
        DeploymentConfig(
            ism_service_time_us=SIM_SERVICE_US,
            ism_shards=shards,
            exs_poll_interval_us=10_000,
        ),
        [CallbackConsumer(lambda r: None)],
    )
    for node in dep.add_nodes(NODES, max_offset_us=100, max_drift_ppm=1):
        dep.attach_workload(node, PoissonWorkload(rate_hz=SIM_OFFER_HZ_PER_NODE))
    dep.run(SIM_SECONDS)
    return dep.ism.stats.records_received / SIM_SECONDS


def test_e5b_sim_sharded_scaling(benchmark, report):
    def study():
        return {n: run_sim_point(n) for n in SHARD_POINTS}

    rates = benchmark.pedantic(study, rounds=1, iterations=1)
    base = rates[1]
    report.table(
        "shards  delivered  relative",
        [
            (f"{n} shards", f"{rate:>10,.0f} ev/s", f"{rate / base:5.2f}x of 1-shard")
            for n, rate in rates.items()
        ],
    )
    report.row(
        f"model: {SIM_SERVICE_US:.0f} us/record/shard, "
        f"{NODES} EXS x {SIM_OFFER_HZ_PER_NODE:,} ev/s offered (saturating)"
    )
    report.row("floor: 8-shard >= 3x 1-shard (measured deterministic)")
    # Every configuration is saturated, so capacity must scale with the
    # worker count: monotone, and at least 3x by 8 shards.
    points = list(SHARD_POINTS)
    for prev, cur in zip(points, points[1:]):
        assert rates[cur] >= rates[prev] * 0.98, (
            f"non-monotone: {cur} shards {rates[cur]:.0f} < "
            f"{prev} shards {rates[prev]:.0f}"
        )
    assert rates[8] >= 3.0 * base, (
        f"scaling floor broken: 8 shards {rates[8]:.0f} ev/s "
        f"< 3x 1-shard {base:.0f} ev/s"
    )


def run_socket_point(shards: int) -> float:
    """Wall-clock aggregate rate through a real sharded server."""
    ctx = mp.get_context("spawn")
    total = NODES * RECORDS_PER_NODE
    listener = MessageListener()
    host, port = listener.address
    server = ShardedIsmServer(
        [CallbackConsumer(lambda r: None)],
        listener,
        shards=shards,
        partition_by="node",
        ism_config=IsmConfig(
            sorter=SorterConfig(initial_frame_us=0, max_held=10**6)
        ),
        ordered_merge=False,
        commit_interval_s=0.02,
    )
    server.start_workers()  # spawn cost stays out of the timed region
    senders = [
        ctx.Process(
            target=saturating_sender,
            args=(host, port, idx + 1, RECORDS_PER_NODE, BATCH),
        )
        for idx in range(NODES)
    ]
    for p in senders:
        p.start()
    t0 = time.perf_counter()
    server.serve(duration_s=180.0, until_records=total)
    elapsed = time.perf_counter() - t0
    for p in senders:
        p.join(timeout=10)
        if p.is_alive():  # pragma: no cover - hygiene
            p.terminate()
    received = server.records_received
    server.close()
    listener.close()
    # Exactly-once is host-independent: every record arrives once, no
    # matter how oversubscribed the CPU is.
    assert received == total, f"{received} != {total} at {shards} shards"
    return total / elapsed


def test_e5b_socket_sharded_scaling(benchmark, report):
    cores = len(os.sched_getaffinity(0))

    def study():
        return {n: run_socket_point(n) for n in SHARD_POINTS}

    rates = benchmark.pedantic(study, rounds=1, iterations=1)
    base = rates[1]
    report.table(
        "shards  aggregate  relative",
        [
            (f"{n} shards", f"{rate:>10,.0f} ev/s", f"{rate / base:5.2f}x of 1-shard")
            for n, rate in rates.items()
        ],
    )
    report.row(f"host cores: {cores}")
    if cores >= 10:
        # Dispatcher + 8 workers + senders genuinely run in parallel:
        # hold the wall-clock scaling floor here too.
        assert rates[8] >= 3.0 * base, (
            f"socket scaling floor broken: 8 shards {rates[8]:.0f} ev/s "
            f"< 3x 1-shard {base:.0f} ev/s"
        )
        report.row("floor: 8-shard >= 3x 1-shard (asserted, >=10 cores)")
    else:
        report.row(
            "floor not asserted: host lacks the cores for real "
            "parallelism (delivery counts still asserted exactly)"
        )
