"""E7 — on-line sorting under artificially delayed event streams.

Paper: "The on-line sorting algorithm was evaluated using streams of
artificially delayed event records, and by varying four quantitative and
qualitative parameters.  We found that setting the time frame T to be as
large as the latest late event's lateness is a good strategy for
latency-critical applications, and that in all other applications a small
exponent constant for reducing T (i.e., a large T's half-life) helps."

The sweep below varies the same four parameter families:

1. growth signal (qualitative): ``arrival`` — T tracks the latest late
   event's lateness — versus ``watermark``;
2. decay constant λ (quantitative): small (long half-life) versus large;
3. initial time frame (quantitative);
4. input delay profile (quantitative): jitter magnitude and straggler
   frequency/size.

Metrics per cell: out-of-order release fraction (ordering quality) and
mean hold time in the sorter (added latency).  The paper's two findings
are asserted at the bottom.
"""

import random

from repro.core.sorting import OnlineSorter, SorterConfig
from repro.sim.workload import make_delayed_streams, merge_by_arrival


def run_sorter(config: SorterConfig, streams) -> dict:
    sorter = OnlineSorter(config)
    merged = merge_by_arrival(streams)
    for source, record, arrival in merged:
        sorter.push(source, record, now=arrival)
        sorter.extract(now=arrival)
    # Drain at the stream's end rather than far in the future, so records
    # parked at shutdown do not inflate the hold-time statistic.
    sorter.flush(now=merged[-1][2] + 1)
    stats = sorter.stats
    return {
        "ooo_frac": stats.out_of_order / max(1, stats.released),
        "hold_mean_ms": stats.hold_time_us.mean / 1000,
        "final_frame_ms": sorter.frame_us / 1000,
        "released": stats.released,
    }


def spiky_streams(seed: int = 3):
    return make_delayed_streams(
        random.Random(seed),
        n_sources=4,
        rate_hz=2_000,
        duration_s=3.0,
        base_delay_us=500,
        jitter_mean_us=300,
        straggler_prob=0.01,
        straggler_extra_us=30_000,
    )


def smooth_streams(seed: int = 3):
    return make_delayed_streams(
        random.Random(seed),
        n_sources=4,
        rate_hz=2_000,
        duration_s=3.0,
        base_delay_us=500,
        jitter_mean_us=100,
        straggler_prob=0.0,
    )


def test_growth_signal_strategies(benchmark, report):
    """Qualitative knob: how T grows (the paper's recommended strategy)."""

    def study():
        out = {}
        for signal in ("arrival", "watermark"):
            config = SorterConfig(
                initial_frame_us=1_000,
                growth_signal=signal,
                decay_lambda=0.05,
            )
            out[signal] = run_sorter(config, spiky_streams())
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"{signal:<10}",
            f"out-of-order {m['ooo_frac'] * 100:6.2f}%",
            f"hold {m['hold_mean_ms']:6.2f} ms",
            f"T_end {m['final_frame_ms']:6.2f} ms",
        )
        for signal, m in out.items()
    ]
    report.table("growth signal  ordering  latency  frame", rows)
    report.row(
        "paper: T as large as the latest late event's lateness is a good "
        "strategy for latency-critical applications"
    )
    # The recommended strategy orders clearly better...
    assert out["arrival"]["ooo_frac"] < out["watermark"]["ooo_frac"] * 0.75
    # ...without holding records longer than the worst observed lateness.
    max_lateness_ms = max(s.max_lateness_us for s in spiky_streams()) / 1000
    assert out["arrival"]["hold_mean_ms"] < max_lateness_ms * 1.5


def test_decay_constant_sweep(benchmark, report):
    """Quantitative knob: λ — a small constant (long half-life) helps."""

    def study():
        out = {}
        for lam in (0.02, 0.2, 2.0, 20.0):
            # Watermark growth: the conservative adaptation where decay
            # actually bites (arrival growth re-learns the frame from the
            # next late event almost immediately).
            config = SorterConfig(
                initial_frame_us=1_000,
                growth_signal="watermark",
                decay_lambda=lam,
            )
            out[lam] = run_sorter(config, spiky_streams())
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"lambda={lam:<6}",
            f"out-of-order {m['ooo_frac'] * 100:6.3f}%",
            f"hold {m['hold_mean_ms']:6.2f} ms",
        )
        for lam, m in out.items()
    ]
    report.table("decay  ordering  latency", rows)
    report.row("paper: a small exponent constant (large T half-life) helps")
    lams = sorted(out)
    # Ordering quality degrades sharply as decay gets aggressive: the
    # longest half-life orders several times better than the shortest.
    assert out[lams[0]]["ooo_frac"] < out[lams[-1]]["ooo_frac"] / 3


def test_initial_frame_sweep(benchmark, report):
    """Quantitative knob: where T starts from."""

    def study():
        out = {}
        for t0 in (0, 1_000, 10_000, 1_000_000):
            config = SorterConfig(
                initial_frame_us=t0, growth_signal="arrival", decay_lambda=0.05
            )
            out[t0] = run_sorter(config, spiky_streams())
        return out

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"T0={t0 / 1000:>7.1f}ms",
            f"out-of-order {m['ooo_frac'] * 100:6.3f}%",
            f"hold {m['hold_mean_ms']:6.2f} ms",
        )
        for t0, m in out.items()
    ]
    report.table("initial frame  ordering  latency", rows)
    # A frame beyond the worst lateness orders perfectly but pays in
    # latency — the trade-off the adaptive scheme automates.
    assert out[1_000_000]["ooo_frac"] == 0.0
    assert out[1_000_000]["hold_mean_ms"] > out[1_000]["hold_mean_ms"]


def test_delay_profile_sweep(benchmark, report):
    """Quantitative knob: the input's delay distribution."""

    def study():
        config = lambda: SorterConfig(
            initial_frame_us=1_000, growth_signal="arrival", decay_lambda=0.05
        )
        return {
            "smooth": run_sorter(config(), smooth_streams()),
            "spiky": run_sorter(config(), spiky_streams()),
        }

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"{name:<7}",
            f"out-of-order {m['ooo_frac'] * 100:6.3f}%",
            f"hold {m['hold_mean_ms']:6.2f} ms",
            f"T_end {m['final_frame_ms']:6.2f} ms",
        )
        for name, m in out.items()
    ]
    report.table("profile  ordering  latency  frame", rows)
    # Stragglers force a larger frame (more latency) than smooth input.
    assert out["spiky"]["hold_mean_ms"] > out["smooth"]["hold_mean_ms"]


def test_sorter_throughput(benchmark, report):
    """Raw sorter speed — it must not be the ISM bottleneck's bottleneck."""
    streams = spiky_streams()
    merged = merge_by_arrival(streams)

    def run():
        sorter = OnlineSorter(
            SorterConfig(initial_frame_us=1_000, decay_lambda=0.05)
        )
        for source, record, arrival in merged:
            sorter.push(source, record, now=arrival)
            sorter.extract(now=arrival)
        sorter.flush(now=10**12)
        return sorter.stats.released

    released = benchmark(run)
    rate = released / benchmark.stats.stats.mean
    report.row(f"sorter throughput: {rate:,.0f} records/s through push+extract")
