"""A5 — ablation: causal marking helps keep the clocks synchronized.

§3.6 (last paragraph): "instrumenting some causally-related events using
BRISK may help BRISK to keep the EXS clocks better synchronized.  This
would, in turn, reduce the probability of tachyon occurrences related to
the other causally-related events, through the extra synchronization
rounds."

Setup: two nodes whose clocks drift apart between the slow periodic sync
rounds, exchanging cause→effect message pairs.  With CRE marking on, each
detected tachyon triggers an immediate extra round; with marking off the
system only syncs on its period.  Measured: ground-truth skew and the
number of *unmarked* causal violations (pairs whose timestamps invert).
"""

from repro.core.consumers import CollectingConsumer
from repro.sim.deployment import DeploymentConfig, SimDeployment
from repro.sim.engine import Simulator

#: Cause→effect transit: effect emitted this long after its cause.
CAUSE_EFFECT_GAP_US = 300


def run_causal_workload(mark_causally: bool, seed: int = 13) -> dict:
    sim = Simulator(seed=seed)
    consumer = CollectingConsumer()
    # Slow periodic sync so drift accumulates between rounds; node B's
    # clock loses 40 us/s against node A.
    config = DeploymentConfig(
        sync_period_us=30_000_000,
        warmup_sync_rounds=1,
    )
    dep = SimDeployment(sim, config, [consumer])
    a = dep.add_node(offset_us=0, drift_ppm=20.0)
    b = dep.add_node(offset_us=0, drift_ppm=-20.0)
    dep.start()

    n_pairs = 200
    for k in range(n_pairs):
        when = 200_000 + k * 400_000

        def emit_pair(k=k, when=when):
            if mark_causally:
                a.sensor.notice_reason(1, k)
                sim.schedule(
                    CAUSE_EFFECT_GAP_US, lambda: b.sensor.notice_conseq(2, k)
                )
            else:
                a.sensor.notice_ints(1, k)
                sim.schedule(
                    CAUSE_EFFECT_GAP_US, lambda: b.sensor.notice_ints(2, k)
                )

        sim.schedule(when, emit_pair)
    dep.run(90.0)
    dep.stop()

    # Ground truth: pair (1, k) happened before (2, k); count timestamp
    # inversions in the delivered trace.
    ts = {}
    for record in consumer.records:
        key = (record.event_id, record.values[0] if record.values else
               (record.reason_ids or record.conseq_ids)[0])
        ts[key] = record.timestamp
    violations = sum(
        1
        for k in range(n_pairs)
        if (1, k) in ts and (2, k) in ts and ts[(2, k)] <= ts[(1, k)]
    )
    return {
        "violations": violations,
        "pairs": n_pairs,
        "extra_rounds": dep.metrics.extra_sync_rounds,
        "total_rounds": dep.metrics.sync_rounds,
        "final_skew": dep.true_skew_spread(),
    }


def test_causal_marking_reduces_tachyons(benchmark, report):
    def study():
        return {
            "marked (X_REASON/X_CONSEQ)": run_causal_workload(True),
            "unmarked (plain events)": run_causal_workload(False),
        }

    out = benchmark.pedantic(study, rounds=1, iterations=1)
    rows = [
        (
            f"{label:<28}",
            f"violations {m['violations']:>3}/{m['pairs']}",
            f"extra rounds {m['extra_rounds']:>3}",
            f"final skew {m['final_skew']:7.1f} us",
        )
        for label, m in out.items()
    ]
    report.table("marking  causal violations  sync  skew", rows)
    report.row("paper: marked causal events trigger extra rounds, keeping the")
    report.row("clocks tighter and reducing tachyons overall")
    marked = out["marked (X_REASON/X_CONSEQ)"]
    unmarked = out["unmarked (plain events)"]
    # Marked pairs are *corrected* by the CRE matcher: zero violations in
    # the delivered trace.
    assert marked["violations"] == 0
    # Without marking, drift between the slow rounds produces tachyons.
    assert unmarked["violations"] > 0
    # The marked run invested extra synchronization rounds...
    assert marked["extra_rounds"] > 0
    assert unmarked["extra_rounds"] == 0
    # ...and ends with clocks at least as tight.
    assert marked["final_skew"] <= unmarked["final_skew"] * 1.1
