"""BRISK's modified Cristian algorithm (§3.3).

Differences from the original, as the paper states them:

1. **The master's time is only a common reference point.**  For measurement
   it matters that the EXS clocks be close to *each other*, not to the ISM.
2. **Election**: the EXS clock with the maximum positive skew relative to
   the ISM — the most-ahead clock — is selected as the target.
3. **Relative skews**: skews of the other EXS clocks (and their average)
   are computed relative to the elected clock, as absolute values.
4. **Conservative correction**: only clocks whose relative skew exceeds the
   average are advanced.  This accounts for network noise and avoids
   erroneously promoting another clock as the fastest.
5. **Damping near convergence**: when the average relative skew is above a
   small threshold, the correction equals the full relative skew; otherwise
   it is a fixed portion of it (0.7 in the paper's implementation), because
   the clocks "cannot be perfectly synchronized in practice".
6. **Advance-only**: slaves only ever move forward, at the cost of a small
   positive drift of the ensemble relative to true time.

The paper claims this converges faster than Cristian's original toward the
*mutual* synchrony that matters; benchmark E6/A3 reproduces that comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.clocksync.probes import ProbeSample, ProbeStrategy, SyncSlave, probe_best_of


@dataclass(frozen=True, slots=True)
class BriskSyncConfig:
    """Tuning knobs of the modified algorithm.

    ``threshold_us`` is the paper's "small threshold" on the average
    relative skew separating the aggressive regime (full correction) from
    the conservative one; ``damping`` is the fixed portion applied in the
    conservative regime (0.7 in the paper's implementation).

    ``rtt_gate_us`` applies Cristian's probabilistic probe rejection: a
    slave whose best probe this round exceeded the gate has an error bound
    too loose to act on, so it is excluded from election *and* correction
    for the round.  Advance-only corrections make this essential under
    network disturbances — a correction derived from an inflated-RTT
    sample cannot be undone, it can only ratchet the whole ensemble up.
    """

    probes_per_round: int = 4
    threshold_us: float = 100.0
    damping: float = 0.7
    rtt_gate_us: int | None = None

    def __post_init__(self) -> None:
        if self.probes_per_round < 1:
            raise ValueError("probes_per_round must be >= 1")
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if self.threshold_us < 0:
            raise ValueError("threshold_us must be >= 0")
        if self.rtt_gate_us is not None and self.rtt_gate_us < 1:
            raise ValueError("rtt_gate_us must be >= 1 when set")


@dataclass
class RoundReport:
    """Full observability for one synchronization round."""

    round_id: int
    #: slave_id → probe sample (skew measured against the master).
    samples: dict[int, ProbeSample] = field(default_factory=dict)
    #: The elected (most-ahead) slave.
    elected: int = -1
    #: slave_id → skew relative to the elected clock (>= 0).
    relative_skews: dict[int, float] = field(default_factory=dict)
    #: Average relative skew over the non-elected slaves.
    average_relative_skew: float = 0.0
    #: slave_id → advance-only correction actually sent (µs).
    corrections: dict[int, int] = field(default_factory=dict)
    #: True when the conservative (damped) regime was active.
    damped: bool = False
    #: Slaves excluded this round by the RTT gate (probe too noisy).
    gated: list[int] = field(default_factory=list)


class BriskSyncMaster:
    """The ISM side of BRISK's clock synchronization."""

    def __init__(
        self,
        slaves: Sequence[SyncSlave],
        config: BriskSyncConfig = BriskSyncConfig(),
        probe_strategy: ProbeStrategy = probe_best_of,
    ) -> None:
        if not slaves:
            raise ValueError("need at least one slave")
        self.slaves = list(slaves)
        self.config = config
        self.probe_strategy = probe_strategy
        self.rounds_run = 0
        self.history: list[RoundReport] = []
        #: Set by the ISM's causal matcher when a tachyon between marked
        #: events proves the clocks are apart (§3.6); the deployment loop
        #: runs an extra round as soon as it sees the flag.
        self.extra_round_requested = False

    # ------------------------------------------------------------------
    def request_extra_round(self) -> None:
        """Ask for an immediate extra round (tachyon detected, §3.6)."""
        self.extra_round_requested = True

    def consume_extra_round_request(self) -> bool:
        """Return-and-clear the extra-round flag (deployment loop helper)."""
        requested = self.extra_round_requested
        self.extra_round_requested = False
        return requested

    # ------------------------------------------------------------------
    def run_round(self) -> RoundReport:
        """Execute one full synchronization round."""
        self.rounds_run += 1
        report = RoundReport(round_id=self.rounds_run)

        # Phase 1: poll every slave as in Cristian's algorithm.
        for slave in self.slaves:
            report.samples[slave.slave_id] = self.probe_strategy(
                slave, self.config.probes_per_round
            )

        # Probabilistic rejection: usable slaves are those whose best
        # probe met the RTT gate (all of them when the gate is off).
        gate = self.config.rtt_gate_us
        usable = [
            s
            for s in self.slaves
            if gate is None or report.samples[s.slave_id].rtt_us <= gate
        ]
        report.gated = [s.slave_id for s in self.slaves if s not in usable]
        if len(usable) < 2:
            # Nothing trustworthy to mutually synchronize this round.
            report.elected = usable[0].slave_id if usable else -1
            self.history.append(report)
            return report

        # Phase 2: elect the most-ahead clock (max positive skew vs ISM).
        elected = max(usable, key=lambda s: report.samples[s.slave_id].skew_us)
        report.elected = elected.slave_id

        # Phase 3: relative skews vs the elected clock, and their average.
        elected_skew = report.samples[elected.slave_id].skew_us
        others = [s for s in usable if s is not elected]
        for slave in others:
            rel = abs(elected_skew - report.samples[slave.slave_id].skew_us)
            report.relative_skews[slave.slave_id] = rel
        avg = sum(report.relative_skews.values()) / len(others)
        report.average_relative_skew = avg
        report.damped = avg <= self.config.threshold_us

        # Phase 4/5: correct only above-average skews; damp near convergence.
        # (>= rather than >: with strict inequality a two-slave system —
        # where the lone relative skew IS the average — would never converge.)
        for slave in others:
            rel = report.relative_skews[slave.slave_id]
            if rel < avg:
                continue
            # Floor, never round: a correction that overshoots the elected
            # clock would wrongly promote this slave as the fastest.
            if report.damped:
                correction = int(rel * self.config.damping)
            else:
                correction = int(rel)
            if correction > 0:
                slave.adjust(correction)
                report.corrections[slave.slave_id] = correction

        self.history.append(report)
        return report

    # ------------------------------------------------------------------
    def last_dispersion(self) -> float:
        """Max−min measured skew in the most recent round (µs).

        A master-side convergence proxy: the spread of the slave clocks as
        seen through the probes.  Ground truth (simulator only) comes from
        :meth:`repro.sim.deployment.SimDeployment.true_skew_spread`.
        """
        if not self.history:
            raise RuntimeError("no rounds run yet")
        skews = [s.skew_us for s in self.history[-1].samples.values()]
        return max(skews) - min(skews)
