"""Distributed clock synchronization (§3.3).

BRISK synchronizes the external-sensor clocks with "a modification of
Cristian's centralized clock synchronization algorithm": the ISM (master)
polls the EXSes (slaves) in rounds, but the master's own time serves only as
a *common reference* — what matters for measurement is that the EXS clocks
sit close to **each other**, not close to the ISM.  The algorithm elects the
most-ahead EXS clock, corrects the others toward it (advance-only), and is
deliberately conservative: only above-average skews are corrected, and the
correction is damped to 0.7 of the skew once the system is near convergence.

Modules
-------
* :mod:`repro.clocksync.clocks` — clock models: drifting hardware clocks,
  correction-carrying corrected clocks.
* :mod:`repro.clocksync.probes` — Cristian-style probing (minimum-RTT
  sample selection) over an abstract slave interface.
* :mod:`repro.clocksync.cristian` — the original algorithm, kept as the
  baseline for ablation A3.
* :mod:`repro.clocksync.brisk_sync` — the paper's modified algorithm.
"""

from repro.clocksync.clocks import (
    DriftingClock,
    CorrectedClock,
    PerfectClock,
)
from repro.clocksync.probes import ProbeSample, SyncSlave, probe_best_of
from repro.clocksync.cristian import CristianMaster
from repro.clocksync.brisk_sync import BriskSyncMaster, BriskSyncConfig, RoundReport

__all__ = [
    "DriftingClock",
    "CorrectedClock",
    "PerfectClock",
    "ProbeSample",
    "SyncSlave",
    "probe_best_of",
    "CristianMaster",
    "BriskSyncMaster",
    "BriskSyncConfig",
    "RoundReport",
]
