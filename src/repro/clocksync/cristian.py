"""Cristian's centralized clock synchronization — the baseline (ablation A3).

The original algorithm the paper modifies: "a master polls the slaves,
determines differences between its clock and the slaves' clocks, and updates
the slave clocks".  Every slave is steered toward the *master's* clock each
round, with a signed correction — slave clocks may step backwards, which is
precisely the behaviour BRISK's variant (see
:mod:`repro.clocksync.brisk_sync`) trades away for advance-only corrections
toward the fastest slave.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.clocksync.probes import ProbeSample, ProbeStrategy, SyncSlave, probe_best_of


@dataclass
class CristianRoundReport:
    """What one Cristian round observed and did."""

    round_id: int
    #: slave_id → minimum-RTT probe sample this round.
    samples: dict[int, ProbeSample] = field(default_factory=dict)
    #: slave_id → signed correction sent (negative = stepped back).
    corrections: dict[int, int] = field(default_factory=dict)


class CristianMaster:
    """The unmodified master-slave algorithm.

    Parameters
    ----------
    slaves:
        The slave handles to keep synchronized.
    probes_per_round:
        How many probes per slave per round (minimum-RTT sample kept).
    probe_strategy:
        Sample-selection strategy; see :mod:`repro.clocksync.probes`.
    max_step_us:
        When set, corrections are clamped to +/- ``max_step_us`` per
        round — the *amortized* adjustment of Cristian's published
        algorithm, which slews clocks gradually instead of jumping them
        (a jump would break local interval measurements).  ``None`` gives
        the idealized instant-step variant.
    """

    def __init__(
        self,
        slaves: Sequence[SyncSlave],
        probes_per_round: int = 4,
        probe_strategy: ProbeStrategy = probe_best_of,
        max_step_us: int | None = None,
    ) -> None:
        if not slaves:
            raise ValueError("need at least one slave")
        if max_step_us is not None and max_step_us < 1:
            raise ValueError("max_step_us must be >= 1 when set")
        self.slaves = list(slaves)
        self.probes_per_round = probes_per_round
        self.probe_strategy = probe_strategy
        self.max_step_us = max_step_us
        self.rounds_run = 0
        self.history: list[CristianRoundReport] = []

    def run_round(self) -> CristianRoundReport:
        """Poll every slave, then steer each toward the master clock."""
        self.rounds_run += 1
        report = CristianRoundReport(round_id=self.rounds_run)
        for slave in self.slaves:
            sample = self.probe_strategy(slave, self.probes_per_round)
            report.samples[slave.slave_id] = sample
        for slave in self.slaves:
            skew = report.samples[slave.slave_id].skew_us
            correction = -round(skew)  # cancel the measured skew exactly
            if self.max_step_us is not None:
                correction = max(-self.max_step_us, min(self.max_step_us, correction))
            if correction:
                slave.adjust(correction)
            report.corrections[slave.slave_id] = correction
        self.history.append(report)
        return report
