"""Cristian-style clock probing.

Cristian's insight (the "probabilistic" in *Probabilistic clock
synchronization*, 1989) is that a single request/reply round trip bounds the
remote clock reading's error by half the round-trip time; probing repeatedly
and keeping the **minimum-RTT** sample tightens that bound.  Both the
baseline and BRISK's modified algorithm build on the same probe primitive,
so it lives here once.

The transport is abstracted behind :class:`SyncSlave`: the simulator
implements it over simulated links, the real runtime over the TCP message
connection (``TimeRequest``/``TimeReply``), and the unit tests over direct
clock reads with synthetic delays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol, runtime_checkable


@dataclass(frozen=True, slots=True)
class ProbeSample:
    """One completed probe round trip.

    ``skew_us`` is the estimated slave−master clock difference at the moment
    the reply arrived: ``(slave_time + rtt/2) − master_arrival_time``.
    ``rtt_us`` is the full round-trip time; the estimate's error bound is
    ``rtt/2`` minus the minimum one-way delay.
    """

    skew_us: float
    rtt_us: int


@runtime_checkable
class SyncSlave(Protocol):
    """What the master needs from a slave: probing and correction."""

    #: Stable identifier used in round reports.
    slave_id: int

    def probe(self) -> ProbeSample:
        """Execute one request/reply round trip and return the sample."""

    def adjust(self, correction_us: int) -> None:
        """Deliver a clock correction to the slave."""


def probe_best_of(slave: SyncSlave, attempts: int) -> ProbeSample:
    """Probe *attempts* times; return the minimum-RTT sample.

    The minimum-RTT sample has the tightest error bound, so Cristian-style
    algorithms discard the rest.  ``attempts`` is the per-round repetition
    the paper describes ("this is repeated a number of times for each slave
    to average the results" — minimum-RTT selection dominates plain
    averaging when delays are asymmetric, and both are supported:
    see :func:`probe_average`).
    """
    if attempts < 1:
        raise ValueError("need at least one probe attempt")
    best: ProbeSample | None = None
    for _ in range(attempts):
        sample = slave.probe()
        if best is None or sample.rtt_us < best.rtt_us:
            best = sample
    assert best is not None
    return best


def probe_average(slave: SyncSlave, attempts: int) -> ProbeSample:
    """Probe *attempts* times; return the mean-skew sample (paper's wording).

    Averaging suppresses symmetric jitter but is biased by asymmetric
    delays; exposed so benchmark A4 can compare the two estimators.
    """
    if attempts < 1:
        raise ValueError("need at least one probe attempt")
    samples = [slave.probe() for _ in range(attempts)]
    mean_skew = sum(s.skew_us for s in samples) / len(samples)
    mean_rtt = round(sum(s.rtt_us for s in samples) / len(samples))
    return ProbeSample(skew_us=mean_skew, rtt_us=mean_rtt)


#: Signature shared by the two probe estimators above.
ProbeStrategy = Callable[[SyncSlave, int], ProbeSample]


class FunctionSlave:
    """Adapter turning plain callables into a :class:`SyncSlave`.

    Used by unit tests and the pure-algorithm benchmarks, where a slave is
    just "a function that returns a sample" with no transport behind it.
    """

    __slots__ = ("slave_id", "_probe", "_adjust")

    def __init__(
        self,
        slave_id: int,
        probe: Callable[[], ProbeSample],
        adjust: Callable[[int], None],
    ) -> None:
        self.slave_id = slave_id
        self._probe = probe
        self._adjust = adjust

    def probe(self) -> ProbeSample:
        """Delegate to the wrapped probe callable."""
        return self._probe()

    def adjust(self, correction_us: int) -> None:
        """Delegate to the wrapped adjust callable."""
        self._adjust(correction_us)
