"""Clock models.

A workstation clock as seen by ``gettimeofday`` differs from true time by an
initial offset plus a slow frequency error (drift, parts-per-million), and is
quantized to the timer resolution.  :class:`DriftingClock` models exactly
that observable; everything the synchronization algorithms can learn about a
clock, they learn through reads of it, so the model is sufficient for
reproducing the paper's clock-sync measurements (substitution table,
DESIGN.md §2).

:class:`CorrectedClock` is the EXS-side view: raw local time plus "a
correction value maintained by the EXS" (§3.2).  BRISK's algorithm only
ever *advances* the correction; :meth:`CorrectedClock.advance` enforces
that, while the Cristian baseline uses :meth:`CorrectedClock.step`, which
may move the clock backwards (the behaviour BRISK avoids because a
backwards step can reorder local events).
"""

from __future__ import annotations

from typing import Callable

TrueTimeFn = Callable[[], int]


class PerfectClock:
    """A clock that reads true time exactly (the simulator's reference)."""

    __slots__ = ("_true_time",)

    def __init__(self, true_time: TrueTimeFn) -> None:
        self._true_time = true_time

    def read(self) -> int:
        """Current time in microseconds."""
        return self._true_time()

    def read_at(self, true_now: int) -> int:
        """Reading this clock would give at true time *true_now* (which is
        simply *true_now* for a perfect clock)."""
        return true_now

    def __call__(self) -> int:
        return self.read()


class DriftingClock:
    """A hardware clock with offset, frequency drift, and quantization.

    ``read() = quantize(offset + (1 + drift_ppm·1e-6) · true_time)``

    Parameters
    ----------
    true_time:
        Source of true time in microseconds (the simulator's clock, or
        ``now_micros`` when modelling on top of the real clock).
    offset_us:
        Initial offset of this clock from true time.
    drift_ppm:
        Frequency error in parts per million.  ±50 ppm is typical of
        mid-1990s workstation oscillators; a clock at +50 ppm gains
        3 ms/minute, which is why the paper re-polls every 5 s.
    quantum_us:
        Reading granularity (``gettimeofday`` resolution).
    """

    __slots__ = ("_true_time", "offset_us", "drift_ppm", "quantum_us")

    def __init__(
        self,
        true_time: TrueTimeFn,
        offset_us: int = 0,
        drift_ppm: float = 0.0,
        quantum_us: int = 1,
    ) -> None:
        if quantum_us < 1:
            raise ValueError("quantum must be >= 1 microsecond")
        self._true_time = true_time
        self.offset_us = offset_us
        self.drift_ppm = drift_ppm
        self.quantum_us = quantum_us

    def read(self) -> int:
        """Current *local* time in microseconds."""
        return self.read_at(self._true_time())

    def read_at(self, true_now: int) -> int:
        """Reading this clock would give at true time *true_now*.

        The simulator uses this to evaluate a clock at a message's arrival
        instant without mutating simulation state.
        """
        raw = self.offset_us + true_now + true_now * self.drift_ppm * 1e-6
        return int(raw) // self.quantum_us * self.quantum_us

    def __call__(self) -> int:
        return self.read()

    def error_at(self, true_now: int) -> float:
        """Exact (unquantized) error of this clock vs true time.

        Only the simulator may call this — real algorithms never see true
        time; it exists so benchmarks can report ground-truth skew.
        """
        return self.offset_us + true_now * self.drift_ppm * 1e-6


class CorrectedClock:
    """Raw local clock plus the EXS-maintained correction value.

    This is the clock whose readings are embedded into record timestamps
    (``X_TS``) and returned to clock-sync probes.
    """

    __slots__ = ("base", "correction_us", "corrections_applied")

    def __init__(self, base: Callable[[], int]) -> None:
        self.base = base
        self.correction_us = 0
        #: Number of corrections ever applied (round-trip observability).
        self.corrections_applied = 0

    def read(self) -> int:
        """Corrected local time in microseconds."""
        return self.base() + self.correction_us

    def read_at(self, true_now: int) -> int:
        """Corrected reading at true time *true_now* (simulator only;
        requires a base clock exposing ``read_at``)."""
        return self.base.read_at(true_now) + self.correction_us  # type: ignore[attr-defined]

    def __call__(self) -> int:
        return self.read()

    def advance(self, delta_us: int) -> None:
        """Apply a BRISK correction: strictly non-negative.

        Raises :class:`ValueError` on a negative delta — a master that asks
        a BRISK slave to step backwards is violating the §3.3 contract, and
        silently accepting it would reintroduce the event-reordering hazard
        the algorithm exists to avoid.
        """
        if delta_us < 0:
            raise ValueError(f"BRISK corrections are advance-only, got {delta_us}")
        self.correction_us += delta_us
        self.corrections_applied += 1

    def step(self, delta_us: int) -> None:
        """Apply a signed correction (Cristian baseline; may step back)."""
        self.correction_us += delta_us
        self.corrections_applied += 1
