"""TP — BRISK's transfer protocol between LIS (external sensor) and ISM.

:mod:`repro.wire.protocol` defines the message layer: XDR-encoded batches of
instrumentation records with *compressed meta-information headers* (§3.4),
plus the control messages carrying clock-synchronization polls and
corrections.  :mod:`repro.wire.tcp` binds the message layer to real TCP
stream sockets with record marking; the simulator carries the same message
objects over simulated links instead.
"""

from repro.wire.protocol import (
    MAGIC,
    MsgType,
    Batch,
    Hello,
    TimeRequest,
    TimeReply,
    Adjust,
    Bye,
    SetFilter,
    encode_message,
    encode_message_view,
    decode_message,
    encode_batch_records,
    record_wire_size,
)
from repro.wire.tcp import MessageConnection, MessageListener, connect

__all__ = [
    "MAGIC",
    "MsgType",
    "Batch",
    "Hello",
    "TimeRequest",
    "TimeReply",
    "Adjust",
    "Bye",
    "SetFilter",
    "encode_message",
    "encode_message_view",
    "decode_message",
    "encode_batch_records",
    "record_wire_size",
    "MessageConnection",
    "MessageListener",
    "connect",
]
