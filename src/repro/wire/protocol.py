"""BRISK message layer: XDR batches with compressed meta headers (§3.4).

The paper's transfer protocol does *not* use XDR "in the typical way, with
rpcgen and static typing": every record is dynamically typed, so each record
travels with a meta-information header describing its fields — and that
header is *compressed*, because "minimizing the slack in instrumentation
data messages is important".

Record wire layout (compressed meta, the default)::

    u32  event_id
    u32  meta          n_fields in the top byte; six 4-bit type codes in
                       the low 24 bits (extension words of eight codes each
                       follow for records wider than six fields)
    i64  timestamp     microseconds UTC (already EXS-corrected)
    ...  field payloads, XDR-encoded per type

A six-``X_INT``-field record therefore costs 4 + 4 + 8 + 6·4 = **40 bytes**,
the figure the paper reports.  With compression disabled (ablation A1) the
meta section degenerates to the naive XDR spelling — a counted array of
uint32 type codes — costing ``4 + 4·n`` bytes instead of ``4·ceil`` words.

An optional *delta timestamp* knob (one of the §2 tuning knobs; off by
default to match the paper's 40-byte figure) encodes each timestamp as a
32-bit delta against the batch's base timestamp, with an escape to the full
form for out-of-range deltas.

Control messages (``Hello``/``TimeRequest``/``TimeReply``/``Adjust``/``Bye``)
share the connection with batches; the clock-synchronization algorithms in
:mod:`repro.clocksync` speak them.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from enum import IntEnum
from typing import TYPE_CHECKING, Any, Callable, Sequence

if TYPE_CHECKING:
    from repro.core.filtering import FieldTest, FilterSpec

from repro.core.filtering import FIELD_TEST_OPS
from repro.core.records import FIELD_TYPE_END, EventRecord, FieldType
from repro.wire import fastcodec
from repro.xdr import XdrDecodeError, XdrDecoder, XdrEncoder

#: Protocol magic: identifies a BRISK stream and its wire version.
MAGIC = 0xB215C001

#: Largest record width the meta header can express.
MAX_WIRE_FIELDS = 255

_I32_MIN, _I32_MAX = -(2**31), 2**31 - 1
#: Escape sentinel for the delta-timestamp encoding.
_DELTA_ESCAPE = _I32_MIN


class MsgType(IntEnum):
    """Top-level message discriminator."""

    BATCH = 1        #: instrumentation data batch (EXS → ISM)
    HELLO = 2        #: connection preamble (EXS → ISM)
    TIME_REQ = 3     #: clock-sync probe (ISM → EXS)
    TIME_REPLY = 4   #: clock-sync probe answer (EXS → ISM)
    ADJUST = 5       #: clock correction (ISM → EXS)
    BYE = 6          #: orderly shutdown (either direction)
    SET_FILTER = 7   #: push a source-side record filter (ISM → EXS)
    ACK = 8          #: cumulative batch acknowledgment (ISM → EXS)
    HELLO_REPLY = 9  #: resume point answering a Hello (ISM → EXS)
    HEARTBEAT = 10   #: idle-liveness beacon (EXS → ISM)
    COMPRESSED = 11  #: zlib envelope around one complete message payload
    ACK_BUNDLE = 12  #: per-cycle bundle of cumulative acks (ISM → relay)


#: Capability bits a peer advertises in ``Hello.capabilities`` and a
#: server answers in ``HelloReply.capabilities``.  Both fields ride the
#: trailing-word extension scheme, so capability negotiation is invisible
#: to legacy peers: a sender may only use a feature after the *receiving*
#: side advertised the matching bit.
CAP_COMPRESS = 0x1    #: receiver accepts ``MsgType.COMPRESSED`` envelopes
CAP_ACK_BUNDLE = 0x2  #: peer accepts ``MsgType.ACK_BUNDLE`` control frames
CAP_SEQ_RANGE = 0x4   #: receiver accepts coalesced batches with ``first_seq``
CAP_STEERING = 0x8    #: receiver accepts extended ``SetFilter`` frames
#: (epoch / routing target / field tests as trailing words)

#: Upper bound a COMPRESSED envelope may claim for its decompressed size;
#: a corrupt or hostile length word must not drive a giant allocation.
MAX_DECOMPRESSED_BYTES = 64 << 20


class ProtocolError(XdrDecodeError):
    """The stream is framed correctly but violates the BRISK protocol."""


# ----------------------------------------------------------------------
# message dataclasses
# ----------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Batch:
    """A batch of records from one external sensor.

    ``seq`` increments per batch per EXS; the ISM checks it to detect
    transport-level loss (impossible over healthy TCP, cheap to verify).

    A relay that coalesces several consecutive downstream batches into one
    upstream frame preserves the original sequence numbers: the coalesced
    frame carries ``seq`` = the *last* contained batch's sequence and
    ``first_seq`` = the first's, so the receiver's cumulative-ack and
    dedup watermarks keep their end-to-end meaning.  ``first_seq`` rides
    behind ``_FLAG_SEQ_RANGE`` and is only emitted toward peers that
    advertised :data:`CAP_SEQ_RANGE`; a plain batch is byte-identical to
    the original wire format.
    """

    exs_id: int
    seq: int
    records: tuple[EventRecord, ...]
    first_seq: int | None = None


@dataclass(frozen=True, slots=True)
class Hello:
    """Connection preamble identifying the EXS and its node."""

    exs_id: int
    node_id: int
    #: Event records/sec the sensor side was configured for; advisory,
    #: lets the ISM size its queues.
    advertised_rate: int = 0
    #: Whether the sender consumes :class:`Ack`/:class:`HelloReply`
    #: traffic.  Encoded as a trailing word only when True, so a plain
    #: Hello is byte-identical to the original wire format and a
    #: fire-and-forget sender that never reads is never written to
    #: (writing to a peer that already closed raises an RST that can
    #: discard its still-buffered batches).
    wants_ack: bool = False
    #: Capability bits (``CAP_*``) the sender can *receive*.  Second
    #: trailing extension word; when set, the ``wants_ack`` word is
    #: emitted too (XDR is positional), which is safe because only
    #: capability-aware peers ever set this field.
    capabilities: int = 0


@dataclass(frozen=True, slots=True)
class Ack:
    """Cumulative batch acknowledgment (ISM → EXS).

    ``up_to_seq`` is the highest batch sequence number the ISM has
    *admitted* (pushed past dedup into the sorter) for this EXS; every
    batch with ``seq <= up_to_seq`` may be released from the sender's
    in-flight outbox.  Acks are sent once per pump cycle, not per batch,
    so the acknowledgment traffic stays O(cycles) rather than O(batches).
    """

    exs_id: int
    up_to_seq: int


@dataclass(frozen=True, slots=True)
class HelloReply:
    """Answer to a Hello carrying the ISM's resume point (ISM → EXS).

    ``last_seq`` is the last admitted batch sequence for this EXS, or
    ``-1`` when the ISM holds no state for it (first contact, or a
    restarted ISM without resume state).  A reconnecting EXS drops
    outbox entries up to ``last_seq`` and retransmits the remainder, so
    the at-least-once wire converges to exactly-once delivery.

    ``capabilities`` answers the Hello's capability bits with the subset
    the server supports.  It is a trailing extension word emitted *only*
    toward peers whose Hello advertised capabilities — legacy decoders
    reject trailing bytes, and a legacy peer by definition sent none.
    """

    exs_id: int
    last_seq: int = -1
    capabilities: int = 0


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Idle-liveness beacon (EXS → ISM).

    Sent when the data path has been quiet for the heartbeat interval so
    the ISM's idle-deadline sweep can tell a quiet peer from a hung one.
    """

    exs_id: int = 0


@dataclass(frozen=True, slots=True)
class AckBundle:
    """Per-cycle bundle of cumulative acks (ISM → relay).

    A relay multiplexes many EXS streams over one connection; acking each
    per cycle as individual :class:`Ack` frames would make the control
    plane O(sources).  Peers that advertised :data:`CAP_ACK_BUNDLE`
    receive one bundle per pump cycle instead: ``acks`` holds
    ``(exs_id, up_to_seq)`` pairs with the same cumulative semantics as
    :class:`Ack`.
    """

    acks: tuple[tuple[int, int], ...]


@dataclass(frozen=True, slots=True)
class TimeRequest:
    """Cristian-style probe: "what is your clock now?"."""

    probe_id: int


@dataclass(frozen=True, slots=True)
class TimeReply:
    """Probe answer carrying the slave's (corrected) clock reading."""

    probe_id: int
    slave_time: int


@dataclass(frozen=True, slots=True)
class Adjust:
    """Clock correction: the slave must *advance* its correction term.

    ``correction`` is in microseconds and, per §3.3, is never negative —
    BRISK only ever advances EXS clocks toward the fastest one.
    """

    correction: int
    round_id: int = 0


@dataclass(frozen=True, slots=True)
class Bye:
    """Orderly shutdown; ``reason`` is advisory free text."""

    reason: str = ""


@dataclass(frozen=True, slots=True)
class SetFilter:
    """Push a source-side record filter to an external sensor (§2).

    The wire form mirrors :class:`repro.core.filtering.FilterSpec`:
    ``allow_all_events`` distinguishes "no whitelist" from an empty one.

    The steering extension rides trailing words, emitted only when set
    and only toward peers that advertised :data:`CAP_STEERING` — a plain
    SetFilter stays byte-identical to the original wire format:

    * ``filter_epoch`` — monotone per-sender spec version.  Receivers
      ignore epochs older than the installed one and treat a re-send of
      the installed epoch as a no-op (sampling counters survive), which
      is what makes the ISM's re-apply-on-reconnect idempotent.
    * ``target_exs_id`` — routing hint for relays, which multiplex many
      EXS streams over one upstream connection and otherwise could not
      tell which downstream source the spec is for (0 = the connection's
      only peer, the point-to-point case).
    * ``field_tests`` — pushed-down value predicates, compiled at the
      receiver (:mod:`repro.core.predicate`) to run on packed payloads.
    """

    allow_all_events: bool = True
    allowed_events: tuple[int, ...] = ()
    blocked_events: tuple[int, ...] = ()
    sample_every: int = 1
    filter_epoch: int = 0
    target_exs_id: int = 0
    field_tests: tuple["FieldTest", ...] = ()

    @classmethod
    def from_spec(
        cls,
        spec: "FilterSpec",
        *,
        epoch: int = 0,
        target_exs_id: int = 0,
    ) -> "SetFilter":
        """Build the wire message from a ``FilterSpec``.

        Node filtering is intentionally absent: an EXS only ever ships its
        own node's records, so the knob is meaningless at the source.
        """
        return cls(
            allow_all_events=spec.allowed_events is None,
            allowed_events=tuple(sorted(spec.allowed_events or ())),
            blocked_events=tuple(sorted(spec.blocked_events)),
            sample_every=spec.sample_every,
            filter_epoch=epoch,
            target_exs_id=target_exs_id,
            field_tests=spec.field_tests,
        )

    def to_spec(self) -> "FilterSpec":
        """Rebuild the ``FilterSpec`` on the receiving side."""
        from repro.core.filtering import FilterSpec

        return FilterSpec(
            allowed_events=(
                None if self.allow_all_events else frozenset(self.allowed_events)
            ),
            blocked_events=frozenset(self.blocked_events),
            sample_every=self.sample_every,
            field_tests=self.field_tests,
        )

    def downgraded(self) -> "SetFilter":
        """The legacy wire form for peers without :data:`CAP_STEERING`.

        Drops the extension words.  Field tests cannot be expressed to a
        legacy peer; shedding degrades to the identity/sampling part of
        the spec (records the tests would have dropped still ship —
        conservative, never lossy).
        """
        if not (self.filter_epoch or self.target_exs_id or self.field_tests):
            return self
        return SetFilter(
            allow_all_events=self.allow_all_events,
            allowed_events=self.allowed_events,
            blocked_events=self.blocked_events,
            sample_every=self.sample_every,
        )


Message = (
    Batch
    | Hello
    | HelloReply
    | Ack
    | AckBundle
    | Heartbeat
    | TimeRequest
    | TimeReply
    | Adjust
    | Bye
    | SetFilter
)


# ----------------------------------------------------------------------
# field payload codecs
# ----------------------------------------------------------------------

def _encode_field(enc: XdrEncoder, ftype: FieldType, value: Any) -> None:
    if ftype in (
        FieldType.X_BYTE,
        FieldType.X_SHORT,
        FieldType.X_INT,
    ):
        enc.pack_int(value)
    elif ftype in (
        FieldType.X_UBYTE,
        FieldType.X_USHORT,
        FieldType.X_UINT,
        FieldType.X_REASON,
        FieldType.X_CONSEQ,
    ):
        enc.pack_uint(value)
    elif ftype is FieldType.X_HYPER or ftype is FieldType.X_TS:
        enc.pack_hyper(value)
    elif ftype is FieldType.X_UHYPER:
        enc.pack_uhyper(value)
    elif ftype is FieldType.X_FLOAT:
        enc.pack_float(value)
    elif ftype is FieldType.X_DOUBLE:
        enc.pack_double(value)
    elif ftype is FieldType.X_STRING:
        enc.pack_string(value)
    else:  # X_OPAQUE
        enc.pack_opaque(bytes(value))


def _decode_field(dec: XdrDecoder, ftype: FieldType) -> int | float | str | bytes:
    if ftype in (FieldType.X_BYTE, FieldType.X_SHORT, FieldType.X_INT):
        return dec.unpack_int()
    if ftype in (
        FieldType.X_UBYTE,
        FieldType.X_USHORT,
        FieldType.X_UINT,
        FieldType.X_REASON,
        FieldType.X_CONSEQ,
    ):
        return dec.unpack_uint()
    if ftype is FieldType.X_HYPER or ftype is FieldType.X_TS:
        return dec.unpack_hyper()
    if ftype is FieldType.X_UHYPER:
        return dec.unpack_uhyper()
    if ftype is FieldType.X_FLOAT:
        return dec.unpack_float()
    if ftype is FieldType.X_DOUBLE:
        return dec.unpack_double()
    if ftype is FieldType.X_STRING:
        return dec.unpack_string()
    return dec.unpack_opaque()


# ----------------------------------------------------------------------
# meta header
# ----------------------------------------------------------------------

def _encode_meta_compressed(enc: XdrEncoder, types: Sequence[FieldType]) -> None:
    """Pack the field-type list as nibbles: count byte + 6 codes in word 0,
    then 8 codes per extension word."""
    n = len(types)
    word = n << 24
    for i, t in enumerate(types[:6]):
        word |= int(t) << (20 - 4 * i)
    enc.pack_uint(word)
    rest = types[6:]
    for base in range(0, len(rest), 8):
        chunk = rest[base : base + 8]
        word = 0
        for i, t in enumerate(chunk):
            word |= int(t) << (28 - 4 * i)
        # Unused nibbles carry the end sentinel so a truncated-width bug
        # cannot decode as X_BYTE fields.
        for i in range(len(chunk), 8):
            word |= FIELD_TYPE_END << (28 - 4 * i)
        enc.pack_uint(word)


def _decode_meta_compressed(dec: XdrDecoder) -> tuple[FieldType, ...]:
    word = dec.unpack_uint()
    n = word >> 24
    if n > MAX_WIRE_FIELDS:
        raise ProtocolError(f"record claims {n} fields")
    types: list[FieldType] = []
    for i in range(min(n, 6)):
        types.append(_nibble_to_type((word >> (20 - 4 * i)) & 0xF))
    remaining = n - len(types)
    while remaining > 0:
        word = dec.unpack_uint()
        for i in range(min(remaining, 8)):
            types.append(_nibble_to_type((word >> (28 - 4 * i)) & 0xF))
        remaining = n - len(types)
    return tuple(types)


def _nibble_to_type(nibble: int) -> FieldType:
    if nibble == FIELD_TYPE_END:
        raise ProtocolError("field count exceeds encoded type codes")
    try:
        return FieldType(nibble)
    except ValueError as exc:
        raise ProtocolError(f"unknown field type code {nibble}") from exc


def _encode_meta_plain(enc: XdrEncoder, types: Sequence[FieldType]) -> None:
    """The naive rpcgen-style spelling: a counted array of uint32 codes."""
    enc.pack_uint(len(types))
    for t in types:
        enc.pack_uint(int(t))


def _decode_meta_plain(dec: XdrDecoder) -> tuple[FieldType, ...]:
    n = dec.unpack_uint()
    if n > MAX_WIRE_FIELDS:
        raise ProtocolError(f"record claims {n} fields")
    return tuple(_nibble_to_type(dec.unpack_uint()) for _ in range(n))


# ----------------------------------------------------------------------
# batch encode/decode
# ----------------------------------------------------------------------

_FLAG_COMPRESS_META = 0x1
_FLAG_DELTA_TS = 0x2
_FLAG_SEQ_RANGE = 0x4


def _encode_record_dynamic(
    enc: XdrEncoder,
    record: EventRecord,
    encode_meta: Callable[[XdrEncoder, Sequence[FieldType]], None],
    delta_ts: bool,
    base_ts: int,
) -> None:
    """The seed per-field encode path; also the fast path's fallback."""
    enc.pack_uint(record.event_id)
    encode_meta(enc, record.field_types)
    if delta_ts:
        delta = record.timestamp - base_ts
        if _I32_MIN < delta <= _I32_MAX:
            enc.pack_int(delta)
        else:
            enc.pack_int(_DELTA_ESCAPE)
            enc.pack_hyper(record.timestamp)
    else:
        enc.pack_hyper(record.timestamp)
    for ftype, value in zip(record.field_types, record.values):
        _encode_field(enc, ftype, value)


def encode_batch_records(
    exs_id: int,
    seq: int,
    records: Sequence[EventRecord],
    *,
    compress_meta: bool = True,
    delta_ts: bool = False,
    use_fastpath: bool = True,
    enc: XdrEncoder | None = None,
    first_seq: int | None = None,
) -> bytes:
    """Encode a data batch message (``MsgType.BATCH``) to bytes.

    ``compress_meta`` and ``delta_ts`` are the §2 "tuning knobs" exercised
    by ablations A1 and E8.  With the default knobs, runs of consecutive
    same-schema records are emitted through the precompiled per-schema
    codec (:mod:`repro.wire.fastcodec`) — one ``Struct.pack`` per record;
    schemas with variable-length fields, the ablation modes, and
    ``use_fastpath=False`` all take the seed dynamic path.  Output is
    byte-identical either way.  Pass a reusable *enc* (it is reset) to
    amortize buffer allocation across batches.

    ``first_seq`` marks a relay-coalesced batch covering downstream
    sequences ``first_seq..seq``; it adds one word behind
    ``_FLAG_SEQ_RANGE`` and must only go to :data:`CAP_SEQ_RANGE` peers.
    """
    if enc is None:
        enc = XdrEncoder()
    else:
        enc.reset()
    enc.pack_uint(MAGIC)
    enc.pack_uint(MsgType.BATCH)
    flags = (_FLAG_COMPRESS_META if compress_meta else 0) | (
        _FLAG_DELTA_TS if delta_ts else 0
    )
    if first_seq is not None:
        flags |= _FLAG_SEQ_RANGE
    enc.pack_uint(flags)
    enc.pack_uint(exs_id)
    enc.pack_uint(seq)
    if first_seq is not None:
        enc.pack_uint(first_seq)
    enc.pack_uint(len(records))
    base_ts = records[0].timestamp if records else 0
    enc.pack_hyper(base_ts)
    if use_fastpath and compress_meta and not delta_ts:
        append = enc.append_raw
        last_types: tuple | None = None
        codec: fastcodec.SchemaCodec | None = None
        for record in records:
            ft = record.field_types
            if ft != last_types:
                codec = fastcodec.codec_for_types(ft)
                last_types = ft
            if codec is not None:
                try:
                    mw = codec.meta_words
                    if len(mw) == 1:
                        append(
                            codec.pack(
                                record.event_id,
                                mw[0],
                                record.timestamp,
                                *record.values,
                            )
                        )
                    else:
                        append(
                            codec.pack(
                                record.event_id,
                                *mw,
                                record.timestamp,
                                *record.values,
                            )
                        )
                    continue
                except (struct.error, OverflowError):
                    # Out-of-domain value (e.g. an overflowing X_FLOAT):
                    # re-encode dynamically for the canonical error.
                    pass
            _encode_record_dynamic(
                enc, record, _encode_meta_compressed, delta_ts, base_ts
            )
    else:
        encode_meta = (
            _encode_meta_compressed if compress_meta else _encode_meta_plain
        )
        for record in records:
            _encode_record_dynamic(enc, record, encode_meta, delta_ts, base_ts)
    return enc.getvalue()


def _decode_record_dynamic(
    dec: XdrDecoder,
    decode_meta: Callable[[XdrDecoder], tuple[FieldType, ...]],
    delta_ts: bool,
    base_ts: int,
    node_id: int = 0,
) -> EventRecord:
    """The seed per-field decode path; also the fast path's fallback."""
    event_id = dec.unpack_uint()
    types = decode_meta(dec)
    if delta_ts:
        delta = dec.unpack_int()
        ts = dec.unpack_hyper() if delta == _DELTA_ESCAPE else base_ts + delta
    else:
        ts = dec.unpack_hyper()
    values = tuple(_decode_field(dec, t) for t in types)
    return EventRecord(
        event_id=event_id,
        timestamp=ts,
        field_types=types,
        values=values,
        node_id=node_id,
    )


def _decode_batch(
    dec: XdrDecoder, *, use_fastpath: bool = True, node_id: int = 0
) -> Batch:
    flags = dec.unpack_uint()
    exs_id = dec.unpack_uint()
    seq = dec.unpack_uint()
    first_seq = dec.unpack_uint() if flags & _FLAG_SEQ_RANGE else None
    count = dec.unpack_uint()
    base_ts = dec.unpack_hyper()
    compress = bool(flags & _FLAG_COMPRESS_META)
    delta_ts = bool(flags & _FLAG_DELTA_TS)
    decode_meta = _decode_meta_compressed if compress else _decode_meta_plain
    records: list[EventRecord] = []
    append = records.append
    if use_fastpath and compress and not delta_ts:
        # Zero-copy batch decode: whole records unpack straight out of the
        # buffer via the cached per-schema struct; the XdrDecoder cursor is
        # only engaged for records the cache cannot specialize.
        mv = dec.buffer
        end = len(mv)
        pos = dec.position
        peek = fastcodec.peek_codec
        from_wire = EventRecord.from_wire
        for _ in range(count):
            codec = peek(mv, pos, end)
            if codec is not None:
                try:
                    vals = codec.unpack_from(mv, pos)
                except struct.error:
                    codec = None  # truncated: dynamic path raises canonically
            if codec is not None:
                pos += codec.size
                append(
                    from_wire(vals[0], vals[1], codec.field_types, vals[2:], node_id)
                )
            else:
                dec.seek(pos)
                append(
                    _decode_record_dynamic(dec, decode_meta, delta_ts, base_ts, node_id)
                )
                pos = dec.position
        dec.seek(pos)
    else:
        for _ in range(count):
            append(
                _decode_record_dynamic(dec, decode_meta, delta_ts, base_ts, node_id)
            )
    dec.done()
    return Batch(
        exs_id=exs_id, seq=seq, records=tuple(records), first_seq=first_seq
    )


#: Fixed-size schemas have one wire size per (schema, knobs) — answered
#: from here after the first computation so the EXS's per-record batch
#: accounting costs a dict hit, not meta math plus a codec lookup.
_WIRE_SIZE_CACHE: dict[tuple, int] = {}
_WIRE_SIZE_CACHE_MAX = 4096


def record_wire_size(
    record: EventRecord, *, compress_meta: bool = True, delta_ts: bool = False
) -> int:
    """Per-record bytes on the wire (excluding the batch header).

    Used by benchmark E8 to reproduce the paper's "each instrumentation data
    record requires 40 bytes" figure, and by the EXS's batch accounting on
    every record — fixed-size schemas answer from the codec cache in O(1).
    """
    key = (record.field_types, compress_meta, delta_ts)
    size = _WIRE_SIZE_CACHE.get(key)
    if size is not None:
        return size
    n = len(record.field_types)
    if compress_meta:
        meta = 4 + 4 * max(0, -(-(n - 6) // 8)) if n > 6 else 4
    else:
        meta = 4 + 4 * n
    ts = 4 if delta_ts else 8  # escape path ignored: sizes for in-range deltas
    codec = fastcodec.codec_for_types(record.field_types)
    if codec is not None:
        size = 4 + meta + ts + codec.payload_size
        if len(_WIRE_SIZE_CACHE) < _WIRE_SIZE_CACHE_MAX:
            _WIRE_SIZE_CACHE[key] = size
        return size
    return 4 + meta + ts + record.schema.payload_wire_size(record.values)


# ----------------------------------------------------------------------
# compressed envelope
# ----------------------------------------------------------------------

def compress_frame(
    payload: bytes | bytearray | memoryview, *, level: int = 1
) -> bytes:
    """Wrap one complete encoded message payload in a COMPRESSED envelope.

    Layout: ``MAGIC, COMPRESSED, u32 raw_len, opaque zlib(payload)``.
    :func:`decode_message` unwraps it transparently, so the envelope is a
    pure transport concern — but it may only be sent to peers that
    advertised :data:`CAP_COMPRESS` (a legacy receiver sees an unknown
    message type and drops the connection).  ``level=1`` favors
    throughput: relay coalescing already removed most of the slack, so
    deeper search buys little.
    """
    raw = bytes(payload)
    enc = XdrEncoder()
    enc.pack_uint(MAGIC)
    enc.pack_uint(MsgType.COMPRESSED)
    enc.pack_uint(len(raw))
    enc.pack_opaque(zlib.compress(raw, level))
    return enc.getvalue()


#: Byte offset of the zlib stream inside a COMPRESSED envelope:
#: magic(4) + type(4) + raw_len(4) + opaque count(4).
_COMPRESSED_DATA_OFFSET = 16


def peek_compressed(payload: bytes | bytearray | memoryview) -> tuple[int, int]:
    """Peek ``(inner_msg_type, inner_exs_id)`` of a COMPRESSED envelope.

    Decompresses only the first 16 inner bytes — enough for the routing
    dispatcher to read a batch's type and exs id without inflating the
    records.  ``exs_id`` is only meaningful when the inner type is
    ``BATCH``; it is ``-1`` for inner messages shorter than 16 bytes.
    """
    try:
        head = zlib.decompressobj().decompress(
            memoryview(payload)[_COMPRESSED_DATA_OFFSET:], 16
        )
    except zlib.error as exc:
        raise ProtocolError(f"corrupt compressed frame: {exc}") from exc
    if len(head) < 8:
        raise ProtocolError("compressed frame too short to peek")
    magic = int.from_bytes(head[0:4], "big")
    if magic != MAGIC:
        raise ProtocolError(f"bad inner magic 0x{magic:08X}")
    mtype = int.from_bytes(head[4:8], "big")
    exs_id = int.from_bytes(head[12:16], "big") if len(head) >= 16 else -1
    return mtype, exs_id


# ----------------------------------------------------------------------
# control messages + top-level dispatch
# ----------------------------------------------------------------------

#: A SetFilter frame may carry at most this many field tests; the
#: compiled evaluator is a linear conjunction, so a hostile frame must
#: not smuggle an unbounded per-record loop into the EXS hot path.
MAX_FIELD_TESTS = 64


def _decode_field_tests(dec: XdrDecoder) -> tuple["FieldTest", ...]:
    """Decode the SetFilter trailing field-test array."""
    from repro.core.filtering import FieldTest

    count = dec.unpack_uint()
    if count > MAX_FIELD_TESTS:
        raise ProtocolError(f"SetFilter claims {count} field tests")
    tests = []
    for _ in range(count):
        field_index = dec.unpack_uint()
        op_code = dec.unpack_uint()
        if op_code >= len(FIELD_TEST_OPS):
            raise ProtocolError(f"unknown field-test op code {op_code}")
        value_kind = dec.unpack_uint()
        if value_kind == 1:
            value: int | float = dec.unpack_double()
        elif value_kind == 0:
            value = dec.unpack_hyper()
        else:
            raise ProtocolError(f"unknown field-test value kind {value_kind}")
        try:
            tests.append(FieldTest(field_index, FIELD_TEST_OPS[op_code], value))
        except ValueError as exc:
            raise ProtocolError(f"invalid field test: {exc}") from exc
    return tuple(tests)


def encode_message(msg: Message, **batch_opts: Any) -> bytes:
    """Encode any protocol message to bytes (batch knobs via kwargs)."""
    return _encode_message(msg, **batch_opts).getvalue()


def encode_message_view(msg: Message, **batch_opts: Any) -> memoryview:
    """Encode any protocol message, returning a zero-copy view.

    The view aliases the encoder's internal buffer (no ``bytes`` snapshot);
    the TCP transport hands it straight to the socket layer.  The buffer
    stays alive as long as the view does.
    """
    return _encode_message(msg, **batch_opts).getbuffer()


def _encode_message(msg: Message, **batch_opts: Any) -> XdrEncoder:
    if isinstance(msg, Batch):
        enc = batch_opts.pop("enc", None)
        if enc is None:  # no `or`: an empty reusable encoder is falsy
            enc = XdrEncoder()
        encode_batch_records(
            msg.exs_id, msg.seq, msg.records, first_seq=msg.first_seq,
            enc=enc, **batch_opts
        )
        return enc
    enc = XdrEncoder()
    enc.pack_uint(MAGIC)
    if isinstance(msg, Hello):
        enc.pack_uint(MsgType.HELLO)
        enc.pack_uint(msg.exs_id)
        enc.pack_uint(msg.node_id)
        enc.pack_uint(msg.advertised_rate)
        if msg.wants_ack or msg.capabilities:
            # Trailing extension words; absent = False (legacy framing).
            # Capabilities force the wants_ack word out too: XDR is
            # positional, and only capability-aware peers set them.
            enc.pack_uint(1 if msg.wants_ack else 0)
        if msg.capabilities:
            enc.pack_uint(msg.capabilities)
    elif isinstance(msg, Ack):
        enc.pack_uint(MsgType.ACK)
        enc.pack_uint(msg.exs_id)
        enc.pack_uint(msg.up_to_seq)
    elif isinstance(msg, AckBundle):
        enc.pack_uint(MsgType.ACK_BUNDLE)
        enc.pack_uint(len(msg.acks))
        for ack_exs_id, up_to_seq in msg.acks:
            enc.pack_uint(ack_exs_id)
            enc.pack_uint(up_to_seq)
    elif isinstance(msg, HelloReply):
        enc.pack_uint(MsgType.HELLO_REPLY)
        enc.pack_uint(msg.exs_id)
        enc.pack_int(msg.last_seq)
        if msg.capabilities:
            # Trailing extension word: sent only toward capability-aware
            # peers (their Hello advertised bits); legacy HelloReply
            # consumers call dec.done() and must never see it.
            enc.pack_uint(msg.capabilities)
    elif isinstance(msg, Heartbeat):
        enc.pack_uint(MsgType.HEARTBEAT)
        enc.pack_uint(msg.exs_id)
    elif isinstance(msg, TimeRequest):
        enc.pack_uint(MsgType.TIME_REQ)
        enc.pack_uint(msg.probe_id)
    elif isinstance(msg, TimeReply):
        enc.pack_uint(MsgType.TIME_REPLY)
        enc.pack_uint(msg.probe_id)
        enc.pack_hyper(msg.slave_time)
    elif isinstance(msg, Adjust):
        enc.pack_uint(MsgType.ADJUST)
        enc.pack_hyper(msg.correction)
        enc.pack_uint(msg.round_id)
    elif isinstance(msg, Bye):
        enc.pack_uint(MsgType.BYE)
        enc.pack_string(msg.reason)
    elif isinstance(msg, SetFilter):
        enc.pack_uint(MsgType.SET_FILTER)
        enc.pack_bool(msg.allow_all_events)
        enc.pack_array(msg.allowed_events, enc.pack_uint)
        enc.pack_array(msg.blocked_events, enc.pack_uint)
        enc.pack_uint(msg.sample_every)
        if msg.filter_epoch or msg.target_exs_id or msg.field_tests:
            # Trailing steering extension (CAP_STEERING peers only).
            # XDR is positional: a later word forces the earlier ones out.
            enc.pack_uint(msg.filter_epoch)
        if msg.target_exs_id or msg.field_tests:
            enc.pack_uint(msg.target_exs_id)
        if msg.field_tests:
            enc.pack_uint(len(msg.field_tests))
            for test in msg.field_tests:
                enc.pack_uint(test.field_index)
                enc.pack_uint(FIELD_TEST_OPS.index(test.op))
                if isinstance(test.value, float):
                    enc.pack_uint(1)
                    enc.pack_double(test.value)
                else:
                    enc.pack_uint(0)
                    enc.pack_hyper(test.value)
    else:
        raise TypeError(f"not a protocol message: {msg!r}")
    return enc


def decode_message(
    payload: bytes | bytearray | memoryview,
    *,
    use_fastpath: bool = True,
    node_id: int = 0,
) -> Message:
    """Decode one record-marked payload into its message object.

    ``use_fastpath=False`` forces the seed per-field decode loop (the
    codec-guard benchmark and the byte-identity tests compare against it).

    *node_id* pre-stamps decoded batch records with the node the stream
    implies (the wire format does not carry node identity per record).
    The ISM pump passes each connection's Hello-advertised node so the
    manager's stamping pass finds records already stamped; a wrong hint
    is corrected there, so this is purely a fast path.
    """
    dec = XdrDecoder(payload)
    magic = dec.unpack_uint()
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:08X}")
    kind = dec.unpack_uint()
    if kind == MsgType.COMPRESSED:
        # Transparent unwrap: swap in the decompressed inner payload and
        # fall through to the normal dispatch on its message type.
        raw_len = dec.unpack_uint()
        if raw_len > MAX_DECOMPRESSED_BYTES:
            raise ProtocolError(
                f"compressed frame claims {raw_len} raw bytes"
            )
        try:
            raw = zlib.decompress(dec.unpack_opaque(), bufsize=raw_len or 64)
        except zlib.error as exc:
            raise ProtocolError(f"corrupt compressed frame: {exc}") from exc
        dec.done()
        if len(raw) != raw_len:
            raise ProtocolError(
                f"compressed frame declared {raw_len} raw bytes, "
                f"decompressed to {len(raw)}"
            )
        dec = XdrDecoder(raw)
        magic = dec.unpack_uint()
        if magic != MAGIC:
            raise ProtocolError(f"bad inner magic 0x{magic:08X}")
        kind = dec.unpack_uint()
        if kind == MsgType.COMPRESSED:
            raise ProtocolError("nested COMPRESSED frame")
    if kind == MsgType.BATCH:
        return _decode_batch(dec, use_fastpath=use_fastpath, node_id=node_id)
    if kind == MsgType.HELLO:
        msg = Hello(
            exs_id=dec.unpack_uint(),
            node_id=dec.unpack_uint(),
            advertised_rate=dec.unpack_uint(),
            wants_ack=dec.remaining >= 4 and bool(dec.unpack_uint()),
            capabilities=dec.unpack_uint() if dec.remaining >= 4 else 0,
        )
    elif kind == MsgType.ACK:
        msg = Ack(exs_id=dec.unpack_uint(), up_to_seq=dec.unpack_uint())
    elif kind == MsgType.ACK_BUNDLE:
        count = dec.unpack_uint()
        if count > 65536:
            raise ProtocolError(f"ack bundle claims {count} entries")
        msg = AckBundle(
            acks=tuple(
                (dec.unpack_uint(), dec.unpack_uint()) for _ in range(count)
            ),
        )
    elif kind == MsgType.HELLO_REPLY:
        msg = HelloReply(
            exs_id=dec.unpack_uint(),
            last_seq=dec.unpack_int(),
            capabilities=dec.unpack_uint() if dec.remaining >= 4 else 0,
        )
    elif kind == MsgType.HEARTBEAT:
        msg = Heartbeat(exs_id=dec.unpack_uint())
    elif kind == MsgType.TIME_REQ:
        msg = TimeRequest(probe_id=dec.unpack_uint())
    elif kind == MsgType.TIME_REPLY:
        msg = TimeReply(probe_id=dec.unpack_uint(), slave_time=dec.unpack_hyper())
    elif kind == MsgType.ADJUST:
        msg = Adjust(correction=dec.unpack_hyper(), round_id=dec.unpack_uint())
    elif kind == MsgType.BYE:
        msg = Bye(reason=dec.unpack_string(max_length=4096))
    elif kind == MsgType.SET_FILTER:
        msg = SetFilter(
            allow_all_events=dec.unpack_bool(),
            allowed_events=tuple(
                dec.unpack_array(dec.unpack_uint, max_length=65536)
            ),
            blocked_events=tuple(
                dec.unpack_array(dec.unpack_uint, max_length=65536)
            ),
            sample_every=dec.unpack_uint(),
            filter_epoch=dec.unpack_uint() if dec.remaining >= 4 else 0,
            target_exs_id=dec.unpack_uint() if dec.remaining >= 4 else 0,
            field_tests=_decode_field_tests(dec) if dec.remaining >= 4 else (),
        )
    else:
        raise ProtocolError(f"unknown message type {kind}")
    dec.done()
    return msg


def decode_messages(
    payloads: Sequence[bytes | bytearray | memoryview],
    *,
    use_fastpath: bool = True,
    node_id: int = 0,
) -> list[Message]:
    """Decode a list of record-marked payloads, in order.

    The staged receive path's decode stage: one framing pass hands every
    complete payload here in a single call.  Raises on the first malformed
    payload — callers that must keep the prefix decode incrementally.
    """
    return [
        decode_message(p, use_fastpath=use_fastpath, node_id=node_id)
        for p in payloads
    ]
