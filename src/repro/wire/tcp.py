"""TCP transport binding for the BRISK message layer.

The paper sends batches "to the ISM over a TCP stream socket"; in-order
delivery of batches per EXS is guaranteed by the stream, which is what lets
the ISM keep simple FIFO queues.  This module wraps a socket with RFC 5531
record marking and the message codec so both the real runtime and the
throughput benchmarks (E3/E5) exchange :class:`repro.wire.protocol.Message`
objects directly.

The paper also notes that the worst-case record latency was bounded below by
"waiting ``select`` system calls ... up to 40 ms"; :meth:`MessageConnection.
recv` exposes the same ``select``-with-timeout structure so benchmark E4 can
reproduce that behaviour against the real kernel primitive.
"""

from __future__ import annotations

import select
import socket
from typing import Any, Iterator, Sequence

from repro.wire import protocol
from repro.xdr import RecordMarkingReader, XdrDecodeError, frame_header

#: Default select timeout (seconds) — the paper's 40 ms worst case.
DEFAULT_SELECT_TIMEOUT = 0.040

#: Default receive-buffer ("frame buffer") size: one kernel drain per
#: readiness wakeup up to this many bytes.
_RECV_CHUNK = 256 * 1024

#: Stay safely under typical IOV_MAX when vector-sending many frames.
_MAX_SEND_VECTORS = 512


class ConnectionClosed(ConnectionError):
    """The peer closed the stream (possibly mid-message)."""


class MessageConnection:
    """A framed, message-typed wrapper around one connected TCP socket.

    The receive side is staged: :meth:`recv_frames` drains the kernel into
    one reusable ``recv_into`` buffer and slices out *every* complete frame
    per readiness wakeup (no per-message ``select``), returning raw payload
    bytes for a separate decode stage.  :meth:`recv` /
    :meth:`recv_available` decode on top of the same machinery for callers
    that want :class:`~repro.wire.protocol.Message` objects directly.

    *recv_buffer_bytes* is the frame-buffer knob: how many bytes one
    wakeup pulls from the kernel before handing off to decode.
    """

    def __init__(
        self, sock: socket.socket, recv_buffer_bytes: int = _RECV_CHUNK
    ) -> None:
        if recv_buffer_bytes < 4096:
            raise ValueError("recv_buffer_bytes must be >= 4096")
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._sendmsg = getattr(sock, "sendmsg", None)
        self._reader = RecordMarkingReader()
        self._inbox: list[protocol.Message] = []
        # Reusable receive buffer: recv_into avoids allocating a fresh
        # bytes object per kernel drain; the deframer copies out only the
        # completed frame payloads.
        self._rbuf = bytearray(recv_buffer_bytes)
        self._rview = memoryview(self._rbuf)
        self._eof = False
        #: Bytes sent/received, for the throughput benches.
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Frames sent/received — with the byte counters these give the
        #: observability layer mean frame sizes without touching payloads.
        self.frames_sent = 0
        self.frames_received = 0

    # ------------------------------------------------------------------
    def send(self, msg: protocol.Message, **batch_opts: Any) -> None:
        """Encode, frame, and send one message (blocking until queued).

        The encoded payload travels as a zero-copy :class:`memoryview`
        over the encoder's buffer; header and payload go out in one
        vectored ``sendmsg`` so framing never copies the payload.
        """
        self._send_frames([protocol.encode_message_view(msg, **batch_opts)])

    def send_raw(self, encoded: bytes | memoryview) -> None:
        """Send a pre-encoded message payload (EXS hot path: the batch is
        encoded once and the framing header sent alongside it here)."""
        self._send_frames([encoded])

    def send_many(self, payloads: Sequence[bytes | memoryview]) -> None:
        """Send several pre-encoded payloads in one vectored syscall.

        The EXS ships every batch a poll produced this way: one
        ``sendmsg`` instead of one ``sendall`` per batch.
        """
        if payloads:
            self._send_frames(payloads)

    def _send_frames(self, payloads: Sequence[bytes | memoryview]) -> None:
        parts: list[bytes | memoryview] = []
        total = 0
        for payload in payloads:
            n = len(payload)
            parts.append(frame_header(n))
            parts.append(payload)
            total += 4 + n
        if self._sendmsg is None or len(parts) > _MAX_SEND_VECTORS:
            self._sock.sendall(b"".join(bytes(p) for p in parts))
        else:
            sent = self._sendmsg(parts)
            if sent < total:  # partial vectored send: flush the remainder
                joined = b"".join(bytes(p) for p in parts)
                self._sock.sendall(memoryview(joined)[sent:])
        self.bytes_sent += total
        self.frames_sent += len(payloads)

    # ------------------------------------------------------------------
    def recv_frames(
        self, timeout: float | None = 0.0, *, assume_ready: bool = False
    ) -> list[bytes]:
        """Drain the socket; return every complete frame payload read.

        One readiness wakeup pulls up to the receive buffer's worth of
        bytes out of the kernel and slices out all complete frames — the
        batch-oriented receive primitive the ISM's staged pipeline is
        built on.  Returns ``[]`` when *timeout* elapses with nothing to
        read.  *assume_ready* skips the initial ``select`` when the caller
        already multiplexed this socket as readable.

        Raises :class:`ConnectionClosed` once the peer has shut the stream
        down and every frame received before the EOF has been returned.
        """
        if self._eof:
            raise ConnectionClosed("peer closed connection")
        frames: list[bytes] = []
        while True:
            if not assume_ready:
                ready, _, _ = select.select([self._sock], [], [], timeout)
                if not ready:
                    return frames
            assume_ready = False
            timeout = 0.0
            n = self._sock.recv_into(self._rview)
            if n == 0:
                self._eof = True
                if frames:
                    return frames  # next call raises
                raise ConnectionClosed("peer closed connection")
            self.bytes_received += n
            before_frames = len(frames)
            try:
                frames.extend(self._reader.feed_frames(self._rview[:n]))
                self.frames_received += len(frames) - before_frames
            except XdrDecodeError:
                if frames:
                    # Deliver what deframed cleanly; the poisoned reader
                    # re-raises on the next call.
                    return frames
                raise
            if n < len(self._rbuf):
                # The kernel buffer is drained (a full read suggests more
                # is waiting; a short one that it is not) — hand what we
                # have to the decode stage instead of busy-polling.
                return frames

    def drain_inbox(self) -> list[protocol.Message]:
        """Take every already-decoded message buffered by :meth:`recv`."""
        if not self._inbox:
            return []
        msgs, self._inbox = self._inbox, []
        return msgs

    def recv(
        self, timeout: float | None = DEFAULT_SELECT_TIMEOUT
    ) -> protocol.Message | None:
        """Return the next message, or None if *timeout* elapses first.

        ``timeout=None`` blocks indefinitely.  Raises
        :class:`ConnectionClosed` when the peer has shut the stream down.
        """
        if self._inbox:
            return self._inbox.pop(0)
        while True:
            before = self.bytes_received
            frames = self.recv_frames(timeout)
            if frames:
                self._inbox.extend(protocol.decode_message(p) for p in frames)
                return self._inbox.pop(0)
            if self.bytes_received == before:
                return None  # the select timed out with nothing to read
            # Partial frame read: wait out another timeout for the rest.

    def recv_available(self) -> Iterator[protocol.Message]:
        """Drain every message that can be read without blocking.

        Buffered messages (and frames already sitting in the deframer) are
        yielded before the socket is touched again; the socket itself is
        polled once per kernel drain, not once per message.
        """
        while True:
            while self._inbox:
                yield self._inbox.pop(0)
            frames = self.recv_frames(timeout=0.0)
            if not frames:
                return
            self._inbox.extend(protocol.decode_message(p) for p in frames)

    # ------------------------------------------------------------------
    def fileno(self) -> int:
        """Expose the socket fd so the ISM can multiplex many connections."""
        return self._sock.fileno()

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "MessageConnection":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class MessageListener:
    """Listening endpoint for the ISM; accepts EXS connections.

    *recv_buffer_bytes* is handed to every accepted connection — the
    server-side frame-buffer knob.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = 16,
        recv_buffer_bytes: int = _RECV_CHUNK,
    ) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)
        self._recv_buffer_bytes = recv_buffer_bytes

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is kernel-chosen when 0 was asked."""
        return self._sock.getsockname()

    def fileno(self) -> int:
        """Expose the listening fd so the ISM's pump can multiplex accepts
        into the same ``select`` as the connection reads."""
        return self._sock.fileno()

    def accept(self, timeout: float | None = None) -> MessageConnection | None:
        """Accept one connection, or None if *timeout* elapses."""
        ready, _, _ = select.select([self._sock], [], [], timeout)
        if not ready:
            return None
        conn, _addr = self._sock.accept()
        return MessageConnection(conn, recv_buffer_bytes=self._recv_buffer_bytes)

    def close(self) -> None:
        """Stop listening (idempotent)."""
        self._sock.close()

    def __enter__(self) -> "MessageListener":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def connect(host: str, port: int, timeout: float = 5.0) -> MessageConnection:
    """Connect to an ISM listener and return the message connection."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return MessageConnection(sock)
