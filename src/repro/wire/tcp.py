"""TCP transport binding for the BRISK message layer.

The paper sends batches "to the ISM over a TCP stream socket"; in-order
delivery of batches per EXS is guaranteed by the stream, which is what lets
the ISM keep simple FIFO queues.  This module wraps a socket with RFC 5531
record marking and the message codec so both the real runtime and the
throughput benchmarks (E3/E5) exchange :class:`repro.wire.protocol.Message`
objects directly.

The paper also notes that the worst-case record latency was bounded below by
"waiting ``select`` system calls ... up to 40 ms"; :meth:`MessageConnection.
recv` exposes the same ``select``-with-timeout structure so benchmark E4 can
reproduce that behaviour against the real kernel primitive.
"""

from __future__ import annotations

import select
import socket
from typing import Iterator, Sequence

from repro.wire import protocol
from repro.xdr import RecordMarkingReader, frame_header, frame_record

#: Default select timeout (seconds) — the paper's 40 ms worst case.
DEFAULT_SELECT_TIMEOUT = 0.040

_RECV_CHUNK = 256 * 1024

#: Stay safely under typical IOV_MAX when vector-sending many frames.
_MAX_SEND_VECTORS = 512


class ConnectionClosed(ConnectionError):
    """The peer closed the stream (possibly mid-message)."""


class MessageConnection:
    """A framed, message-typed wrapper around one connected TCP socket."""

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._sendmsg = getattr(sock, "sendmsg", None)
        self._reader = RecordMarkingReader()
        self._inbox: list[protocol.Message] = []
        #: Bytes sent/received, for the throughput benches.
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    def send(self, msg: protocol.Message, **batch_opts) -> None:
        """Encode, frame, and send one message (blocking until queued).

        The encoded payload travels as a zero-copy :class:`memoryview`
        over the encoder's buffer; header and payload go out in one
        vectored ``sendmsg`` so framing never copies the payload.
        """
        self._send_frames([protocol.encode_message_view(msg, **batch_opts)])

    def send_raw(self, encoded: bytes | memoryview) -> None:
        """Send a pre-encoded message payload (EXS hot path: the batch is
        encoded once and the framing header sent alongside it here)."""
        self._send_frames([encoded])

    def send_many(self, payloads: Sequence[bytes | memoryview]) -> None:
        """Send several pre-encoded payloads in one vectored syscall.

        The EXS ships every batch a poll produced this way: one
        ``sendmsg`` instead of one ``sendall`` per batch.
        """
        if payloads:
            self._send_frames(payloads)

    def _send_frames(self, payloads: Sequence[bytes | memoryview]) -> None:
        parts: list[bytes | memoryview] = []
        total = 0
        for payload in payloads:
            n = len(payload)
            parts.append(frame_header(n))
            parts.append(payload)
            total += 4 + n
        if self._sendmsg is None or len(parts) > _MAX_SEND_VECTORS:
            self._sock.sendall(b"".join(bytes(p) for p in parts))
        else:
            sent = self._sendmsg(parts)
            if sent < total:  # partial vectored send: flush the remainder
                joined = b"".join(bytes(p) for p in parts)
                self._sock.sendall(memoryview(joined)[sent:])
        self.bytes_sent += total

    # ------------------------------------------------------------------
    def recv(self, timeout: float | None = DEFAULT_SELECT_TIMEOUT):
        """Return the next message, or None if *timeout* elapses first.

        ``timeout=None`` blocks indefinitely.  Raises
        :class:`ConnectionClosed` when the peer has shut the stream down.
        """
        if self._inbox:
            return self._inbox.pop(0)
        while True:
            ready, _, _ = select.select([self._sock], [], [], timeout)
            if not ready:
                return None
            chunk = self._sock.recv(_RECV_CHUNK)
            if not chunk:
                raise ConnectionClosed("peer closed connection")
            self.bytes_received += len(chunk)
            for payload in self._reader.feed(chunk):
                self._inbox.append(protocol.decode_message(payload))
            if self._inbox:
                return self._inbox.pop(0)

    def recv_available(self) -> Iterator[protocol.Message]:
        """Drain every message that can be read without blocking."""
        while True:
            msg = self.recv(timeout=0.0)
            if msg is None:
                return
            yield msg

    # ------------------------------------------------------------------
    def fileno(self) -> int:
        """Expose the socket fd so the ISM can multiplex many connections."""
        return self._sock.fileno()

    def close(self) -> None:
        """Close the underlying socket (idempotent)."""
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "MessageConnection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class MessageListener:
    """Listening endpoint for the ISM; accepts EXS connections."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, backlog: int = 16):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(backlog)

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — port is kernel-chosen when 0 was asked."""
        return self._sock.getsockname()

    def accept(self, timeout: float | None = None) -> MessageConnection | None:
        """Accept one connection, or None if *timeout* elapses."""
        ready, _, _ = select.select([self._sock], [], [], timeout)
        if not ready:
            return None
        conn, _addr = self._sock.accept()
        return MessageConnection(conn)

    def close(self) -> None:
        """Stop listening (idempotent)."""
        self._sock.close()

    def __enter__(self) -> "MessageListener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def connect(host: str, port: int, timeout: float = 5.0) -> MessageConnection:
    """Connect to an ISM listener and return the message connection."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return MessageConnection(sock)
