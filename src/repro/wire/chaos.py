"""Fault injection for the real-socket transport: a chaos TCP proxy.

:class:`ChaosProxy` sits between an EXS and the ISM listener and breaks
the connection on purpose — cutting the stream at a random *byte* offset
(so frames are severed mid-header or mid-payload, not politely between
records), delaying chunks, or refusing service entirely during a
partition.  The delivery-guarantee tests run real EXS/ISM processes
through it and assert that the acked, resumable transfer protocol turns
this hostile wire into exactly-once delivery.

The proxy is deliberately dumb about the protocol: it forwards opaque
byte chunks.  That is the point — the cut offsets are chosen against the
raw stream, so every alignment bug in the framing/resume path is fair
game.

All randomness flows from one seeded :class:`random.Random`, so a failing
chaos run replays exactly.
"""

from __future__ import annotations

import random
import socket
import threading

__all__ = ["ChaosConfig", "ChaosProxy"]

_CHUNK = 16 * 1024


class ChaosConfig:
    """Knobs for one :class:`ChaosProxy`.

    Attributes
    ----------
    cut_after_bytes:
        ``(lo, hi)`` — each proxied connection is severed after forwarding
        a number of upstream bytes drawn uniformly from this range.
        ``None`` disables cutting.
    delay_s:
        ``(lo, hi)`` — every forwarded chunk sleeps a uniform draw from
        this range first (latency/jitter injection).  ``None`` disables.
    seed:
        Seed for the proxy's private RNG (replayable chaos).
    """

    def __init__(
        self,
        cut_after_bytes: tuple[int, int] | None = None,
        delay_s: tuple[float, float] | None = None,
        seed: int = 0,
    ) -> None:
        if cut_after_bytes is not None:
            lo, hi = cut_after_bytes
            if lo < 1 or hi < lo:
                raise ValueError("cut_after_bytes must be (lo, hi) with 1 <= lo <= hi")
        if delay_s is not None:
            lo, hi = delay_s
            if lo < 0 or hi < lo:
                raise ValueError("delay_s must be (lo, hi) with 0 <= lo <= hi")
        self.cut_after_bytes = cut_after_bytes
        self.delay_s = delay_s
        self.seed = seed


class ChaosProxy:
    """A TCP proxy that injects faults between a client and *upstream*.

    Accepts on its own port, opens one upstream connection per client, and
    shuttles bytes both ways — until the configured cut budget for the
    connection is spent, at which point **both** sockets are torn down
    abruptly (mid-frame, no goodbye).  :meth:`partition` makes the proxy
    refuse (accept-then-close) new connections until :meth:`heal`.

    Counters (`connections_proxied`, `connections_cut`,
    `connections_refused`, `bytes_forwarded`) let tests assert the chaos
    actually happened — a chaos test whose faults never fired proves
    nothing.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        config: ChaosConfig | None = None,
        listen_host: str = "127.0.0.1",
    ) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.config = config if config is not None else ChaosConfig()
        self._rng = random.Random(self.config.seed)
        self._listener = socket.create_server((listen_host, 0))
        self._listener.settimeout(0.2)
        self._partitioned = threading.Event()
        self._stopping = threading.Event()
        self._lock = threading.Lock()  # guards _rng and the counters
        self._threads: list[threading.Thread] = []
        self._conn_sockets: list[socket.socket] = []
        self.connections_proxied = 0
        self.connections_cut = 0
        self.connections_refused = 0
        self.bytes_forwarded = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) clients should connect to instead of upstream."""
        return self._listener.getsockname()[:2]

    @property
    def port(self) -> int:
        return self.address[1]

    def partition(self) -> None:
        """Start refusing new connections (network partition)."""
        self._partitioned.set()

    def heal(self) -> None:
        """End the partition; new connections proxy normally again."""
        self._partitioned.clear()

    def stop(self) -> None:
        """Tear everything down; joins the worker threads."""
        self._stopping.set()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            sockets = list(self._conn_sockets)
        for sock in sockets:
            _hard_close(sock)
        self._accept_thread.join(timeout=2.0)
        for t in self._threads:
            t.join(timeout=2.0)

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed by stop()
            if self._partitioned.is_set():
                with self._lock:
                    self.connections_refused += 1
                _hard_close(client)
                continue
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=2.0
                )
            except OSError:
                with self._lock:
                    self.connections_refused += 1
                _hard_close(client)
                continue
            with self._lock:
                self.connections_proxied += 1
                self._conn_sockets.extend((client, upstream))
                cut = self.config.cut_after_bytes
                budget = self._rng.randint(*cut) if cut is not None else None
            # The cut budget is shared by both directions through one
            # mutable cell so the severed offset is a property of the
            # connection, wherever the bytes happen to be flowing.
            cell = _BudgetCell(budget)
            for src, dst, name in (
                (client, upstream, "chaos-up"),
                (upstream, client, "chaos-down"),
            ):
                t = threading.Thread(
                    target=self._shuttle,
                    args=(src, dst, cell),
                    name=name,
                    daemon=True,
                )
                t.start()
                self._threads.append(t)

    def _shuttle(
        self, src: socket.socket, dst: socket.socket, cell: "_BudgetCell"
    ) -> None:
        try:
            src.settimeout(0.2)
        except OSError:
            # The sibling shuttle already tore the connection down before
            # this thread got scheduled.
            _hard_close(dst)
            return
        while not self._stopping.is_set():
            try:
                chunk = src.recv(_CHUNK)
            except socket.timeout:
                continue
            except OSError:
                break
            if not chunk:
                break
            delay = self.config.delay_s
            if delay is not None:
                with self._lock:
                    pause = self._rng.uniform(*delay)
                if self._stopping.wait(pause):
                    break
            verdict = cell.spend(len(chunk))
            if verdict is not None:
                # Forward the prefix up to the budget, then sever both
                # sockets mid-stream: the receiver sees a torn frame.
                cut_at, first = verdict
                try:
                    if cut_at:
                        dst.sendall(chunk[:cut_at])
                except OSError:
                    pass
                with self._lock:
                    self.bytes_forwarded += cut_at
                    if first:
                        # One cut per connection, however many shuttles
                        # notice the spent budget.
                        self.connections_cut += 1
                break
            try:
                dst.sendall(chunk)
            except OSError:
                break
            with self._lock:
                self.bytes_forwarded += len(chunk)
        _hard_close(src)
        _hard_close(dst)


class _BudgetCell:
    """Thread-safe countdown shared by a connection's two shuttles.

    ``spend(n)`` returns None while budget remains after spending *n*,
    or ``(offset, first)`` once the budget runs out — *offset* is where
    within this chunk the cut lands (0 ≤ offset < n) and *first* is True
    only for the shuttle that actually exhausted the budget, so the cut
    is counted once per connection.  A ``None`` budget never cuts.
    """

    def __init__(self, budget: int | None) -> None:
        self._budget = budget
        self._cut = False
        self._lock = threading.Lock()

    def spend(self, n: int) -> tuple[int, bool] | None:
        with self._lock:
            if self._budget is None:
                return None
            if self._cut:
                return (0, False)
            if n < self._budget:
                self._budget -= n
                return None
            cut_at = self._budget
            self._budget = 0
            self._cut = True
            return (cut_at, True)


def _hard_close(sock: socket.socket) -> None:
    """Abrupt close: best-effort RST-ish teardown, never raises."""
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass
