"""Schema-specialized wire codecs: the NOTICE trick applied to the codec.

The paper's custom-``NOTICE``-macro utility specializes the *sensor* hot
path to a fixed schema; this module applies the same idea to the *wire*
layer.  For every distinct record schema whose fields are all fixed-size,
we compile a single :class:`struct.Struct` covering the complete record —
event id, the constant compressed meta word(s), the timestamp, and every
field payload — so a record encodes with **one** ``Struct.pack`` call and
decodes with **one** ``Struct.unpack_from`` against a ``memoryview``,
replacing one Python method call per four bytes with one C call per record.

Two caches cooperate:

* ``codec_for_types`` — encode side, keyed by the record's field-type
  tuple.  Returns ``None`` for schemas with variable-length fields
  (``X_STRING``/``X_OPAQUE``), which fall back to the dynamic per-field
  path in :mod:`repro.wire.protocol`.
* ``peek_codec`` — decode side, keyed by the raw compressed meta word(s)
  read straight out of the incoming buffer.  Because the meta word encodes
  the field count *and* every type nibble, the raw word is a complete
  schema key: no nibble parsing happens per record, only a dict lookup.

The specialized output is byte-for-byte identical to the dynamic codec's
(asserted by tests/test_fastcodec.py), so the fast path is invisible on
the wire.  Records whose meta words are non-canonical (garbage in unused
nibbles — legal for the tolerant dynamic decoder, never produced by our
encoder) and the ``delta_ts``/plain-meta ablation modes always take the
dynamic path, preserving the seed codec's exact semantics.
"""

from __future__ import annotations

import struct
from typing import Sequence

from repro.core.records import FIELD_TYPE_END, FieldType, intern_schema

#: struct format per fixed-size field type; mirrors the dynamic
#: ``_encode_field``/``_decode_field`` dispatch in ``protocol``.
_FIXED_FMT: dict[FieldType, str] = {
    FieldType.X_BYTE: "i",
    FieldType.X_UBYTE: "I",
    FieldType.X_SHORT: "i",
    FieldType.X_USHORT: "I",
    FieldType.X_INT: "i",
    FieldType.X_UINT: "I",
    FieldType.X_HYPER: "q",
    FieldType.X_UHYPER: "Q",
    FieldType.X_FLOAT: "f",
    FieldType.X_DOUBLE: "d",
    FieldType.X_TS: "q",
    FieldType.X_REASON: "I",
    FieldType.X_CONSEQ: "I",
}

#: Mirrors ``protocol.MAX_WIRE_FIELDS`` (kept local to avoid a cycle).
_MAX_WIRE_FIELDS = 255

_UNPACK_U32 = struct.Struct(">I").unpack_from

#: Backstop against an adversarial stream minting unbounded distinct
#: schemas/meta words; past the cap lookups still work, nothing is retained.
_CACHE_CAP = 1024

_MISS = object()          # codec-by-types cache miss sentinel
_DYNAMIC = object()       # decode cache: "valid meta, but no fast path"


def compressed_meta_words(types: Sequence[FieldType]) -> tuple[int, ...]:
    """The compressed meta header for *types* as u32 words.

    Same packing as ``protocol._encode_meta_compressed``: count byte plus
    six nibbles in word 0, eight nibbles per extension word, unused
    nibbles carrying the end sentinel.
    """
    n = len(types)
    word = n << 24
    for i, t in enumerate(types[:6]):
        word |= int(t) << (20 - 4 * i)
    words = [word]
    rest = types[6:]
    for base in range(0, len(rest), 8):
        chunk = rest[base : base + 8]
        word = 0
        for i, t in enumerate(chunk):
            word |= int(t) << (28 - 4 * i)
        for i in range(len(chunk), 8):
            word |= FIELD_TYPE_END << (28 - 4 * i)
        words.append(word)
    return tuple(words)


class SchemaCodec:
    """Precompiled codec for one fixed-size record schema.

    ``pack(event_id, *meta_words, timestamp, *values)`` produces the whole
    record; ``unpack_from(buf, off)`` yields ``(event_id, timestamp,
    *values)`` — the meta words are skipped with pad bytes on decode since
    the codec was *selected* by their exact value.
    """

    __slots__ = (
        "field_types",
        "meta_words",
        "size",
        "payload_size",
        "pack",
        "unpack_from",
    )

    def __init__(self, field_types: Sequence[FieldType]) -> None:
        schema = intern_schema(tuple(field_types))
        self.field_types = schema.field_types
        self.meta_words = compressed_meta_words(self.field_types)
        body = "".join(_FIXED_FMT[t] for t in self.field_types)
        enc = struct.Struct(">I" + "I" * len(self.meta_words) + "q" + body)
        dec = struct.Struct(">I" + "4x" * len(self.meta_words) + "q" + body)
        self.size = enc.size
        self.payload_size = enc.size - 4 - 4 * len(self.meta_words) - 8
        self.pack = enc.pack
        self.unpack_from = dec.unpack_from


_by_types: dict[tuple, SchemaCodec | None] = {}
_by_meta: dict[int | tuple[int, ...], object] = {}


def _meta_key(words: tuple[int, ...]) -> int | tuple[int, ...]:
    return words[0] if len(words) == 1 else words


def codec_for_types(field_types: tuple) -> SchemaCodec | None:
    """The specialized codec for this schema, or ``None`` when only the
    dynamic path applies (variable-length fields, over-wide records,
    malformed type tuples)."""
    codec = _by_types.get(field_types, _MISS)
    if codec is _MISS:
        codec = _build_for_types(field_types)
    return codec


def _build_for_types(field_types: tuple) -> SchemaCodec | None:
    codec: SchemaCodec | None = None
    if len(field_types) <= _MAX_WIRE_FIELDS:
        try:
            if all(t in _FIXED_FMT for t in field_types):
                codec = SchemaCodec(field_types)
        except (TypeError, ValueError, KeyError):
            codec = None  # non-FieldType entries: dynamic path decides
    if len(_by_types) < _CACHE_CAP:
        _by_types[field_types] = codec
        if codec is not None and len(_by_meta) < _CACHE_CAP:
            _by_meta.setdefault(_meta_key(codec.meta_words), codec)
    return codec


def peek_codec(mv: memoryview, pos: int, end: int) -> SchemaCodec | None:
    """Codec for the record starting at *pos*, or ``None`` for dynamic.

    Reads only the meta word(s); any irregularity (truncation, unknown
    nibbles, non-canonical spelling) defers to the dynamic decoder, which
    produces the canonical accept-or-error behaviour.
    """
    if pos + 8 > end:
        return None
    word = _UNPACK_U32(mv, pos + 4)[0]
    if (word >> 24) <= 6:
        key: int | tuple[int, ...] = word
    else:
        n_ext = -(-((word >> 24) - 6) // 8)
        if pos + 8 + 4 * n_ext > end:
            return None
        key = (word,) + tuple(
            _UNPACK_U32(mv, pos + 8 + 4 * i)[0] for i in range(n_ext)
        )
    entry = _by_meta.get(key)
    if entry is None:
        entry = _build_for_meta(key)
    return entry if type(entry) is SchemaCodec else None


def _build_for_meta(key: int | tuple[int, ...]) -> object:
    types = _parse_meta_words((key,) if type(key) is int else key)
    entry: object = _DYNAMIC
    if types is not None and compressed_meta_words(types) == (
        (key,) if type(key) is int else key
    ):
        codec = codec_for_types(types)
        if codec is not None:
            entry = codec
    if len(_by_meta) < _CACHE_CAP:
        _by_meta[key] = entry
    return entry


def _parse_meta_words(words: tuple[int, ...]) -> tuple[FieldType, ...] | None:
    """Decode meta words back to field types; ``None`` on any bad nibble."""
    n = words[0] >> 24
    types: list[FieldType] = []
    try:
        for i in range(min(n, 6)):
            nib = (words[0] >> (20 - 4 * i)) & 0xF
            if nib == FIELD_TYPE_END:
                return None
            types.append(FieldType(nib))
        remaining = n - len(types)
        for word in words[1:]:
            for i in range(min(remaining, 8)):
                nib = (word >> (28 - 4 * i)) & 0xF
                if nib == FIELD_TYPE_END:
                    return None
                types.append(FieldType(nib))
            remaining = n - len(types)
    except ValueError:
        return None
    if remaining != 0:
        return None
    return tuple(types)
