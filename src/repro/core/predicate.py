"""Compiled source-side filter predicates over packed native payloads.

The ISM pushes :class:`~repro.core.filtering.FilterSpec` down to external
sensors at runtime; this module is the compile step that makes the pushed
filter *cheap*.  A :class:`CompiledFilterState` evaluates the spec
directly on the packed ring payload — the EXS poll loop asks it **before**
decoding, so a dropped record never pays decode, clock correction, or XDR
encoding:

* the event and node ids are read with one ``struct`` peek from the fixed
  header offsets, and the identity decision (whitelist/blocklist/node) is
  memoized per id — steady state is a dict hit per record;
* field tests compile against the same per-schema body codecs the native
  decoder specializes (:mod:`repro.core.native`): one interleaved
  ``Struct.unpack_from`` yields every field value, the tag comparison
  proves the schema, and the precompiled ``(position, op, operand)`` plan
  runs over the tuple — no :class:`EventRecord` is ever built;
* variable-length schemas (strings/opaques) fall back to a full decode
  plus the shared Python evaluation, so the compiled decision is *exactly*
  :meth:`FilterSpec.matches` on the decoded record (property-tested).

Field tests see the record as the sensor wrote it: node-local values,
pre-correction timestamps.  That is the documented pushdown semantics —
the filter runs at the source, upstream of the EXS's stamping pass.
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.core import native
from repro.core.filtering import _OP_FNS, FieldTest, FilterSpec
from repro.core.records import EventRecord

__all__ = ["CompiledFilterState"]

#: ``event_id`` and ``node_id`` live at bytes 4..12 of the native header.
_EVENT_NODE = struct.Struct("<II")
#: One-shot header peek for the field-test path: ``total_length``,
#: ``event_id``, ``node_id``, ``n_fields`` — everything the schema key
#: and the identity decision need, in a single struct call.
_HEADER = struct.Struct("<IIIH")

#: Memo cap: an adversarial stream minting unbounded distinct event ids
#: (or schemas) must not grow the decision caches without bound.  Past
#: the cap the decision is recomputed per record (correct, just slower).
_MAX_STATIC_MEMO = 4096

#: Hoisted for the per-record hot path.
_HEADER_SIZE = native.HEADER_SIZE


def _compile_plan(
    tests: tuple[FieldTest, ...], field_types: tuple
) -> tuple[tuple[int, Callable[[Any, Any], bool], int | float], ...] | None:
    """Compile *tests* against one specialized body codec's schema.

    Returns ``(tuple_position, op_fn, operand)`` triples indexing into the
    codec's interleaved ``(tag, value, tag, value, ...)`` unpack output,
    or ``None`` when a test names a field the schema does not have — the
    schema can never pass, and the cached ``None`` plan fails it without
    unpack work.  Specialized codecs only exist for fixed-size schemas,
    whose field types are all numeric — so no type check is needed per
    value.
    """
    plan = []
    for test in tests:
        if test.field_index >= len(field_types):
            return None
        plan.append((1 + 2 * test.field_index, _OP_FNS[test.op], test.value))
    return tuple(plan)


class CompiledFilterState:
    """A :class:`FilterSpec` compiled to run on packed native payloads.

    Mirrors :class:`~repro.core.filtering.FilterState`'s surface
    (``spec``/``dropped``/``passed``/``admit``) and adds
    :meth:`admit_payload`, the pre-decode fast path the EXS drains
    through.  Sampling counters are shared between both entry points, so
    mixing them keeps the per-event-id modular arithmetic exact.
    """

    __slots__ = (
        "spec",
        "dropped",
        "passed",
        "admit_payload",
        "_counters",
        "_static",
        "_node_sensitive",
        "_tests",
        "_sample_every",
        "_schemas",
    )

    def __init__(self, spec: FilterSpec) -> None:
        self.spec = spec
        #: Records dropped by this filter.
        self.dropped = 0
        #: Records passed.
        self.passed = 0
        self._counters: dict[int, int] = {}
        #: Identity-decision memo: event_id -> bool, or
        #: (event_id, node_id) -> bool when the spec filters nodes.
        self._static: dict[Any, bool] = {}
        self._node_sensitive = spec.allowed_nodes is not None
        self._tests = spec.field_tests
        self._sample_every = spec.sample_every
        #: Per-schema compiled entries keyed ``total << 16 | n_fields``:
        #: a tuple of ``(unpack_from, tags, plan)`` per specialized codec
        #: in that bucket (plan ``None`` = schema can never pass).
        self._schemas: dict[int, tuple] = {}
        #: The per-record entry point, bound once: specs without field
        #: tests never branch on them in the hot loop.
        self.admit_payload = (
            self._admit_tests if spec.field_tests else self._admit_static
        )

    # ------------------------------------------------------------------
    def _static_admit(self, event_id: int, node_id: int) -> bool:
        spec = self.spec
        if spec.allowed_events is not None and event_id not in spec.allowed_events:
            return False
        if event_id in spec.blocked_events:
            return False
        if spec.allowed_nodes is not None and node_id not in spec.allowed_nodes:
            return False
        return True

    def _sample(self, event_id: int) -> bool:
        """Advance the per-event-id sampling counter; True = keep."""
        n = self._sample_every
        if n > 1:
            count = self._counters.get(event_id, 0)
            self._counters[event_id] = count + 1
            if count % n:
                self.dropped += 1
                return False
        self.passed += 1
        return True

    # ------------------------------------------------------------------
    # admit_payload is one of the two bound methods below, chosen once in
    # __init__ — the hot loop never branches on spec shape per record.
    # ------------------------------------------------------------------
    def _admit_static(self, payload: bytes) -> bool:
        """Payload decision for specs without field tests: one header
        peek, one memo hit, the sampling counter."""
        event_id, node_id = _EVENT_NODE.unpack_from(payload, 4)
        key = (event_id, node_id) if self._node_sensitive else event_id
        static = self._static.get(key)
        if static is None:
            static = self._static_admit(event_id, node_id)
            if len(self._static) < _MAX_STATIC_MEMO:
                self._static[key] = static
        if not static:
            self.dropped += 1
            return False
        # _sample, inlined: the sampling counter is the common tail of
        # every admitted record and a call frame per record is measurable.
        n = self._sample_every
        if n > 1:
            count = self._counters.get(event_id, 0)
            self._counters[event_id] = count + 1
            if count % n:
                self.dropped += 1
                return False
        self.passed += 1
        return True

    def _admit_tests(self, payload: bytes) -> bool:
        """Payload decision for specs with field tests: one header peek,
        one schema-cache hit, one interleaved unpack, the compiled plan."""
        total, event_id, node_id, n_fields = _HEADER.unpack_from(payload, 0)
        key = (event_id, node_id) if self._node_sensitive else event_id
        static = self._static.get(key)
        if static is None:
            static = self._static_admit(event_id, node_id)
            if len(self._static) < _MAX_STATIC_MEMO:
                self._static[key] = static
        if not static:
            self.dropped += 1
            return False
        schema_key = total << 16 | n_fields
        entries = self._schemas.get(schema_key)
        if entries is None:
            entries = self._compile_schema(schema_key, total, n_fields)
        for unpack_from, tags, plan in entries:
            vals = unpack_from(payload, _HEADER_SIZE)
            if vals[0::2] == tags:
                if plan is None:
                    self.dropped += 1
                    return False
                for pos, op_fn, operand in plan:
                    if not op_fn(vals[pos], operand):
                        self.dropped += 1
                        return False
                n = self._sample_every
                if n > 1:
                    count = self._counters.get(event_id, 0)
                    self._counters[event_id] = count + 1
                    if count % n:
                        self.dropped += 1
                        return False
                self.passed += 1
                return True
        return self._admit_tests_fallback(payload, event_id, total, n_fields, entries)

    def admit(self, record: EventRecord) -> bool:
        """Decoded-record entry point, identical in effect to
        :meth:`FilterState.admit <repro.core.filtering.FilterState.admit>`."""
        if not self.spec.matches(record):
            self.dropped += 1
            return False
        return self._sample(record.event_id)

    # ------------------------------------------------------------------
    def _compile_schema(self, schema_key: int, total: int, n_fields: int):
        """Build (and cache) the compiled entries for one schema bucket."""
        bucket = native._SPECIALIZED.get((total, n_fields), ())
        entries = tuple(
            (codec.unpack_from, codec.tags,
             _compile_plan(self._tests, codec.field_types))
            for codec in bucket
        )
        if len(self._schemas) < _MAX_STATIC_MEMO:
            self._schemas[schema_key] = entries
        return entries

    def _admit_tests_fallback(
        self, payload: bytes, event_id: int, total: int, n_fields: int, entries
    ) -> bool:
        """Variable-length (or not-yet-specialized) schema: decode once
        and share the reference evaluation.  ``unpack_record`` registers
        a specialized codec for fixed-size schemas as a side effect; when
        that grows the bucket past the cached snapshot, the snapshot is
        invalidated so the next record of this schema takes the compiled
        path."""
        record, _ = native.unpack_record(payload)
        bucket = native._SPECIALIZED.get((total, n_fields))
        if bucket is not None and len(bucket) != len(entries):
            self._schemas.pop(total << 16 | n_fields, None)
        for test in self._tests:
            if not test.evaluate(record.values):
                self.dropped += 1
                return False
        return self._sample(event_id)
