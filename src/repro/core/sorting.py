"""On-line sorting of instrumentation records (§3.5–3.6).

The ISM keeps one FIFO queue per external sensor (in-order arrival within a
queue is guaranteed by the TCP stream) and merges the queues with "a heap
having one entry for each queue".  Merging alone is not enough: a record
from a slow or quiet node may *arrive* after records with larger timestamps
have already been delivered.  BRISK therefore delays every record for a
**time frame** ``T`` after its creation before releasing it, and adapts
``T`` on-line:

* when two successively extracted records from *different* external sensors
  come out in decreasing timestamp order, the time frame was too small:
  ``T`` is increased (to at least the observed lateness);
* otherwise ``T`` decays exponentially, shrinking the amount of data parked
  in ISM memory.

The resulting trade-off — event ordering versus delivery latency — is the
subject of evaluation E7, which the paper explored "by varying four
quantitative and qualitative parameters"; :class:`SorterConfig` exposes the
same four knobs (initial frame, growth factor, decay constant, memory
bound).

A held-record bound reproduces the "event dropping" box of Figure 1: under
overload the sorter force-releases the oldest records rather than letting
ISM memory grow without bound.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.core.records import EventRecord
from repro.util.stats import RunningStats


@dataclass(frozen=True, slots=True)
class SorterConfig:
    """The on-line sorter's tuning knobs (the four parameters of E7).

    Attributes
    ----------
    initial_frame_us:
        Starting value of the time frame ``T``.
    min_frame_us:
        Floor that the exponential decay approaches; 0 means "decay toward
        releasing immediately".
    max_frame_us:
        Cap on ``T`` so one pathological straggler cannot freeze delivery.
    growth_factor:
        Multiplier applied to the observed lateness when growing ``T``
        (1.0 sets ``T`` to exactly the lateness that was just observed —
        the strategy the paper recommends for latency-critical uses).
    growth_signal:
        Which lateness measurement drives growth — a qualitative E7 knob:

        * ``"arrival"`` (default, the paper's recommended strategy): a
          record arriving behind the release watermark grows ``T`` to its
          *arrival lateness* ``now − ts``, the delay it would have needed
          to be merged in order;
        * ``"watermark"``: growth uses the timestamp regression observed at
          extraction (``watermark_ts − ts``), a weaker signal that adapts
          more slowly but holds ``T`` lower.
    decay_lambda:
        Exponential decay rate per second: between releases ``T`` shrinks
        by ``exp(-decay_lambda · Δt)`` toward ``min_frame_us``.  A *small*
        constant (long half-life) is what the paper found helps in
        non-latency-critical applications.
    max_held:
        Bound on records parked in the sorter; beyond it the oldest are
        force-released ("event dropping" from Figure 1 — nothing is lost,
        but ordering may suffer).
    """

    initial_frame_us: int = 10_000
    min_frame_us: int = 0
    max_frame_us: int = 10_000_000
    growth_factor: float = 1.0
    decay_lambda: float = 0.1
    max_held: int = 1_000_000
    growth_signal: str = "arrival"

    def __post_init__(self) -> None:
        if self.initial_frame_us < 0 or self.min_frame_us < 0:
            raise ValueError("time frames must be non-negative")
        if self.max_frame_us < self.min_frame_us:
            raise ValueError("max_frame_us < min_frame_us")
        if self.growth_factor <= 0:
            raise ValueError("growth_factor must be positive")
        if self.decay_lambda < 0:
            raise ValueError("decay_lambda must be non-negative")
        if self.max_held < 1:
            raise ValueError("max_held must be >= 1")
        if self.growth_signal not in ("arrival", "watermark"):
            raise ValueError("growth_signal must be 'arrival' or 'watermark'")


@dataclass
class SorterStats:
    """Counters and distributions the sorter maintains as it runs."""

    pushed: int = 0
    released: int = 0
    #: Out-of-order extractions observed (consecutive releases from
    #: different sources with decreasing timestamps).
    out_of_order: int = 0
    #: Records force-released by the ``max_held`` bound.
    forced: int = 0
    #: Distribution of time spent parked in the sorter (µs).
    hold_time_us: RunningStats = field(default_factory=RunningStats)
    #: Distribution of observed lateness at out-of-order extractions (µs).
    lateness_us: RunningStats = field(default_factory=RunningStats)


class OnlineSorter:
    """Heap merge of per-source queues with an adaptive release time frame.

    Time never comes from a wall clock here: callers pass ``now`` (ISM time,
    microseconds) into :meth:`push` and :meth:`extract`, which makes the
    sorter equally usable from the real ISM loop, the simulator, and
    deterministic tests.
    """

    def __init__(self, config: SorterConfig = SorterConfig()) -> None:
        self.config = config
        self.frame_us: float = float(config.initial_frame_us)
        self.stats = SorterStats()
        # exs_id → FIFO of (record, arrival_now); heads are mirrored in the
        # heap as (timestamp, node, event, exs_id) entries.
        self._queues: dict[int, deque[tuple[EventRecord, int]]] = {}
        self._heap: list[tuple[tuple[int, int, int], int]] = []
        # Running count of parked records: maintained on push/pop so the
        # `held` property (read per extract iteration under overload) is
        # O(1) instead of a sum over every queue.
        self._held = 0
        # exs_id → records released so far.  The sharded ISM's ack
        # watermark advances only once a batch's records have *left* the
        # sorter (released downstream), so a shard killed mid-hold still
        # gets the parked records retransmitted; this per-source count is
        # what lets it map "released so far" back onto batch seqs.
        self.released_by_source: dict[int, int] = {}
        self._last_released_ts: int | None = None
        self._last_released_source: int | None = None
        self._last_decay_now: int | None = None

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def add_source(self, exs_id: int) -> None:
        """Register a source queue (idempotent)."""
        self._queues.setdefault(exs_id, deque())

    @property
    def sources(self) -> tuple[int, ...]:
        """Registered source identifiers."""
        return tuple(self._queues)

    @property
    def held(self) -> int:
        """Records currently parked across all queues (O(1))."""
        return self._held

    def push(self, exs_id: int, record: EventRecord, now: int) -> None:
        """Enqueue one record that just arrived from *exs_id* at ISM time
        *now*."""
        queue = self._queues.setdefault(exs_id, deque())
        was_empty = not queue
        queue.append((record, now))
        self._held += 1
        self.stats.pushed += 1
        if was_empty:
            heapq.heappush(self._heap, (record.sort_key(), exs_id))
        if (
            self.config.growth_signal == "arrival"
            and self._last_released_ts is not None
            and record.timestamp < self._last_released_ts
            and exs_id != self._last_released_source
        ):
            # This record is already behind the release watermark: it will
            # be extracted out of order.  Grow T to the delay that would
            # have held the watermark back long enough ("as large as the
            # latest late event's lateness").
            self._grow(now - record.timestamp)

    def push_many(
        self,
        exs_id: int,
        records: Sequence[EventRecord],
        now: int,
    ) -> None:
        """Enqueue a whole batch with batch-level bookkeeping.

        Equivalent, record for record, to calling :meth:`push` in a loop —
        the property tests assert the released sequence *and* the adapted
        time frame are identical — but the deque extend, held/pushed
        counters, heap maintenance, and the arrival-lateness growth signal
        all run once per batch instead of once per record:

        * at most one heap push happens (the queue head can only go from
          absent to present once per batch);
        * the growth signal reduces to a single :meth:`_grow` with the
          batch's worst lateness, because ``_grow`` is a monotone max and
          the release watermark cannot move while records are only pushed.
        """
        if not records:
            return
        queue = self._queues.get(exs_id)
        if queue is None:
            queue = self._queues.setdefault(exs_id, deque())
        was_empty = not queue
        queue.extend((record, now) for record in records)
        n = len(records)
        self._held += n
        self.stats.pushed += n
        if was_empty:
            heapq.heappush(self._heap, (records[0].sort_key(), exs_id))
        last_ts = self._last_released_ts
        if (
            self.config.growth_signal == "arrival"
            and last_ts is not None
            and exs_id != self._last_released_source
        ):
            min_ts = min(record.timestamp for record in records)
            if min_ts < last_ts:
                self._grow(now - min_ts)

    def push_batch(
        self, exs_id: int, records: Iterator[EventRecord] | list[EventRecord], now: int
    ) -> None:
        """Enqueue a whole batch (the ISM's per-message entry point)."""
        if type(records) is not list and type(records) is not tuple:
            records = list(records)
        self.push_many(exs_id, records, now)

    # ------------------------------------------------------------------
    # release
    # ------------------------------------------------------------------
    def extract(self, now: int) -> list[EventRecord]:
        """Release every record whose time frame has expired, in merge order.

        Returns the released records, oldest timestamp first.  Also applies
        the ``max_held`` overload bound and advances the decay of ``T``.

        Heap maintenance is batch-aware: while a single source holds every
        parked record (the common single-stream case) due records drain
        straight off its FIFO with no heap traffic at all, and in the
        multi-source merge a release costs one ``heapreplace`` sift instead
        of a pop + push.  Heap keys end in the source id, so entry order is
        strict and both spellings release the exact per-record sequence.
        """
        self._decay(now)
        released: list[EventRecord] = []
        append = released.append
        heap = self._heap
        queues = self._queues
        max_held = self.config.max_held
        account = self._account_release
        overload = self._held > max_held
        while heap:
            key, exs_id = heap[0]
            if not overload and now < key[0] + int(self.frame_us):
                break
            queue = queues[exs_id]
            if len(heap) == 1:
                # Single active source: its FIFO is the merge order.
                while queue:
                    record, arrival = queue[0]
                    if not overload and now < record.timestamp + int(self.frame_us):
                        break
                    queue.popleft()
                    self._held -= 1
                    account(record, exs_id, arrival, now, forced=overload)
                    append(record)
                    if overload:
                        overload = self._held > max_held
                if queue:
                    heap[0] = (queue[0][0].sort_key(), exs_id)
                else:
                    heap.pop()
                continue
            record, arrival = queue.popleft()
            self._held -= 1
            if queue:
                heapq.heapreplace(heap, (queue[0][0].sort_key(), exs_id))
            else:
                heapq.heappop(heap)
            account(record, exs_id, arrival, now, forced=overload)
            append(record)
            if overload:
                overload = self._held > max_held
        return released

    def extract_ready_batch(self, now: int) -> list[EventRecord]:
        """Alias for :meth:`extract` naming the staged-pipeline contract:
        one call releases the whole due batch with batch-level heap and
        frame-decay bookkeeping."""
        return self.extract(now)

    def flush(self, now: int) -> list[EventRecord]:
        """Release everything immediately (shutdown path)."""
        released: list[EventRecord] = []
        while self._heap:
            _, exs_id = heapq.heappop(self._heap)
            queue = self._queues[exs_id]
            record, arrival = queue.popleft()
            self._held -= 1
            if queue:
                heapq.heappush(self._heap, (queue[0][0].sort_key(), exs_id))
            self._account_release(record, exs_id, arrival, now, forced=False)
            released.append(record)
        return released

    # ------------------------------------------------------------------
    # adaptation
    # ------------------------------------------------------------------
    def _account_release(
        self, record: EventRecord, exs_id: int, arrival: int, now: int, *, forced: bool
    ) -> None:
        self.stats.released += 1
        counts = self.released_by_source
        counts[exs_id] = counts.get(exs_id, 0) + 1
        if forced:
            self.stats.forced += 1
        self.stats.hold_time_us.add(now - arrival)
        last_ts = self._last_released_ts
        if (
            last_ts is not None
            and record.timestamp < last_ts
            and exs_id != self._last_released_source
        ):
            lateness = last_ts - record.timestamp
            self.stats.out_of_order += 1
            self.stats.lateness_us.add(lateness)
            if self.config.growth_signal == "watermark":
                self._grow(lateness)
        # Track the maximum released timestamp so one straggler's release
        # does not reset the high-water mark used for disorder detection.
        if last_ts is None or record.timestamp > last_ts:
            self._last_released_ts = record.timestamp
            self._last_released_source = exs_id

    def _grow(self, lateness_us: int) -> None:
        if lateness_us <= 0:
            return
        grown = lateness_us * self.config.growth_factor
        self.frame_us = min(
            float(self.config.max_frame_us), max(self.frame_us, grown)
        )

    def _decay(self, now: int) -> None:
        last = self._last_decay_now
        self._last_decay_now = now
        if last is None or now <= last or self.config.decay_lambda == 0:
            return
        dt_seconds = (now - last) / 1_000_000
        factor = math.exp(-self.config.decay_lambda * dt_seconds)
        floor = float(self.config.min_frame_us)
        self.frame_us = floor + (self.frame_us - floor) * factor
