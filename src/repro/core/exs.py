"""The external sensor (EXS) — the shipping half of the LIS (§3.2, §3.4).

The EXS "runs as another process on the same node and may be assigned a
lower priority".  Each poll cycle it:

1. **drains** the ring buffer the internal sensors write into,
2. applies the **delta-ts** correction — the clock-synchronization
   correction value it maintains — to every record's timestamp (the
   sensors stamp raw local ``gettimeofday`` time; the correction is added
   "before sending the record to the ISM"),
3. stamps its node identity,
4. **batches** records under the configured latency control, and
5. XDR-encodes batches for the transfer protocol.

This class is transport- and scheduler-agnostic: :meth:`poll` consumes the
ring and returns encoded batch payloads; the caller (the real runtime's
process loop, or the simulator's EXS node) moves the bytes.  That split is
what lets benchmarks measure the EXS's pure CPU cost (E2) separately from
transport effects (E3/E4).

The EXS is also the clock-sync *slave* endpoint: :meth:`on_time_request`
answers Cristian probes with the corrected clock, and :meth:`on_adjust`
applies advance-only corrections.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.clocksync.clocks import CorrectedClock
from repro.core import native
from repro.core.filtering import FilterState
from repro.core.predicate import CompiledFilterState
from repro.core.records import EventRecord
from repro.core.ringbuffer import RingBuffer
from repro.wire import protocol
from repro.xdr import XdrEncoder


@dataclass(frozen=True, slots=True)
class ExsConfig:
    """External-sensor tuning knobs (§2: "batching, latency control").

    Attributes
    ----------
    batch_max_records:
        Ship a batch as soon as it holds this many records (throughput
        knob: bigger batches amortize headers and syscalls).
    batch_max_bytes:
        Approximate payload cap per batch; a batch closes when exceeded.
    flush_timeout_us:
        Latency control: a non-empty pending batch is shipped once its
        oldest record has waited this long, even if under-full.
    drain_limit:
        Max records pulled from the ring per poll, bounding the EXS's CPU
        burst so a lower-priority EXS stays preemptible.
    compress_meta / delta_ts:
        Wire-format knobs forwarded to the transfer protocol (A1/E8).
    """

    batch_max_records: int = 256
    batch_max_bytes: int = 32 * 1024
    flush_timeout_us: int = 40_000
    drain_limit: int = 4096
    compress_meta: bool = True
    delta_ts: bool = False

    def __post_init__(self) -> None:
        if self.batch_max_records < 1:
            raise ValueError("batch_max_records must be >= 1")
        if self.batch_max_bytes < 64:
            raise ValueError("batch_max_bytes must be >= 64")
        if self.flush_timeout_us < 0:
            raise ValueError("flush_timeout_us must be non-negative")
        if self.drain_limit < 1:
            raise ValueError("drain_limit must be >= 1")


@dataclass
class ExsStats:
    """Shipping counters."""

    records_drained: int = 0
    records_shipped: int = 0
    records_filtered: int = 0
    batches_shipped: int = 0
    bytes_shipped: int = 0
    timeout_flushes: int = 0


class ExternalSensor:
    """Drain → correct → batch → encode pipeline for one node.

    ``ring`` may be a single ring buffer or a sequence of them — the paper
    has "multiple user processes ... using internal sensors" on each node,
    each application process owning its own shared segment; the EXS drains
    them all and merges the drained records by timestamp before batching.
    """

    def __init__(
        self,
        exs_id: int,
        node_id: int,
        ring: RingBuffer | Sequence[RingBuffer],
        clock: CorrectedClock,
        config: ExsConfig = ExsConfig(),
        metrics=None,
    ) -> None:
        self.exs_id = exs_id
        self.node_id = node_id
        self.rings: list[RingBuffer] = (
            [ring] if isinstance(ring, RingBuffer) else list(ring)
        )
        if not self.rings:
            raise ValueError("external sensor needs at least one ring")
        self.clock = clock
        self.config = config
        self.stats = ExsStats()
        #: Source-side filter pushed down by the ISM (None = keep all).
        #: Installed via :meth:`on_set_filter` as a compiled predicate;
        #: a plain :class:`FilterState` is also honored (post-decode).
        self.filter: CompiledFilterState | FilterState | None = None
        #: Version of the installed filter (0 = none / legacy install).
        #: Epochs make the ISM's re-apply-on-reconnect idempotent: a
        #: re-sent spec neither resets sampling counters nor can an
        #: out-of-order older spec overwrite a newer one.
        self.filter_epoch = 0
        self._seq = 0
        self._pending: list[EventRecord] = []
        self._pending_bytes = 0
        self._pending_oldest_local: int | None = None
        # One encoder per sensor, reset per batch: batches reuse the same
        # buffer allocation instead of growing a fresh bytearray each time.
        self._encoder = XdrEncoder()
        #: Optional :class:`repro.obs.metrics.MetricsRegistry`.  When None
        #: (the default) the data path carries zero observability cost —
        #: every hot-path hook is behind one ``is not None`` check.
        self.metrics = metrics
        self._poll_timer = None
        self._drain_hist = None
        if metrics is not None:
            from repro.obs import collect

            collect.wire_exs(metrics, self)
            # Self-time per poll (intrusion accounting) and per-drain
            # latency: how long records sat in the EXS before a batch
            # closed is visible in ``exs.drain_us``'s mean/max.
            self._poll_timer = metrics.timer("exs.poll_us")
            self._drain_hist = metrics.histogram("exs.drain_us")

    @property
    def ring(self) -> RingBuffer:
        """The first ring (single-ring deployments' natural accessor)."""
        return self.rings[0]

    @property
    def next_seq(self) -> int:
        """Sequence number the next closed batch will carry.

        The acked transfer protocol reads it right after :meth:`poll` to
        label the just-encoded payloads: a poll that produced ``k``
        batches used sequences ``next_seq - k .. next_seq - 1``.
        """
        return self._seq

    def resume_from(self, next_seq: int) -> None:
        """Fast-forward the batch sequence counter (never backwards).

        A restarted EXS resuming into an ISM that remembers a higher
        admitted seq adopts ``last_admitted + 1`` so its fresh batches
        are not mistaken for retransmits of delivered ones.
        """
        if next_seq > self._seq:
            self._seq = next_seq

    def add_ring(self, ring: RingBuffer) -> None:
        """Attach another application process's ring buffer."""
        self.rings.append(ring)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def hello(self) -> protocol.Hello:
        """The connection preamble this EXS sends first."""
        return protocol.Hello(exs_id=self.exs_id, node_id=self.node_id)

    def poll(self, now_local: int | None = None) -> list[bytes]:
        """Run one poll cycle; return encoded batch payloads ready to send.

        *now_local* is this node's corrected-clock reading; defaults to
        reading the clock (passed explicitly by the simulator so a poll is
        deterministic).
        """
        if now_local is None:
            now_local = self.clock.read()
        correction = self.clock.correction_us
        out: list[bytes] = []
        timer = self._poll_timer
        t0 = timer.start() if timer is not None else 0
        drained = self._drain_all()
        if timer is not None and drained:
            self._drain_hist.observe((time.perf_counter_ns() - t0) / 1_000.0)
        self.stats.records_drained += len(drained)
        # Hot-loop hoists: attribute lookups and config reads happen once
        # per poll, not once per record.
        node_id = self.node_id
        record_filter = self.filter
        # A compiled filter decides on the packed payload *before* decode
        # (a dropped record never pays decode/correction/encode); a plain
        # FilterState decides on the decoded record, as before.
        admit_payload = (
            record_filter.admit_payload
            if isinstance(record_filter, CompiledFilterState)
            else None
        )
        admit_record = record_filter.admit if admit_payload is None and record_filter is not None else None
        config = self.config
        compress_meta = config.compress_meta
        delta_ts = config.delta_ts
        batch_max_records = config.batch_max_records
        batch_max_bytes = config.batch_max_bytes
        unpack_stamped = native.unpack_record_stamped
        wire_size = protocol.record_wire_size
        for payload in drained:
            if admit_payload is not None and not admit_payload(payload):
                self.stats.records_filtered += 1
                continue
            # Decode + correction + node stamping fused into one trusted
            # construction: the payload was validated when the sensor
            # packed it, so the validated-copy constructors are pure
            # overhead here.  Records embedding X_TS user fields keep the
            # slow path inside the fused decoder — those field values must
            # shift with the timestamp.
            corrected = unpack_stamped(payload, node_id, correction)
            if admit_record is not None and not admit_record(corrected):
                self.stats.records_filtered += 1
                continue
            self._pending.append(corrected)
            self._pending_bytes += wire_size(
                corrected, compress_meta=compress_meta, delta_ts=delta_ts
            )
            if self._pending_oldest_local is None:
                self._pending_oldest_local = now_local
            if (
                len(self._pending) >= batch_max_records
                or self._pending_bytes >= batch_max_bytes
            ):
                out.append(self._close_batch())
        # Latency control: ship a lingering partial batch.
        if (
            self._pending
            and self._pending_oldest_local is not None
            and now_local - self._pending_oldest_local >= self.config.flush_timeout_us
        ):
            self.stats.timeout_flushes += 1
            out.append(self._close_batch())
        # Record self-time only for polls that did work: empty polls run
        # at select-loop frequency, and observing each would cost more
        # than the poll itself (the metrics-off/on ≤5% benchmark guard
        # polices exactly this).
        if timer is not None and (drained or out):
            timer.stop(t0)
        return out

    def flush(self) -> list[bytes]:
        """Ship whatever is pending regardless of the knobs (shutdown)."""
        out: list[bytes] = []
        while any(self.rings):
            out.extend(self.poll())
        if self._pending:
            out.append(self._close_batch())
        return out

    def _drain_all(self) -> list[bytes]:
        """Pull up to the drain limit across all rings, merged by time.

        With several application rings the drained records interleave;
        sorting the drain by (embedded raw) timestamp keeps this EXS's
        outgoing stream per-source-ordered, which the ISM's per-queue
        merge relies on.  Native payloads carry the timestamp at a fixed
        offset, so the sort key is read without full decoding.
        """
        limit = self.config.drain_limit
        if len(self.rings) == 1:
            return self.rings[0].drain_bytes(limit)
        per_ring = max(1, limit // len(self.rings))
        drained: list[bytes] = []
        for ring in self.rings:
            drained.extend(ring.drain_bytes(per_ring))
        # Second pass: an even split starves a busy ring whenever its
        # siblings are idle — their unused quota went nowhere.  Hand the
        # leftover to rings that still hold records, in order, so the poll
        # always moves up to the full drain limit when the data exists.
        leftover = limit - len(drained)
        if leftover > 0:
            for ring in self.rings:
                more = ring.drain_bytes(leftover)
                if more:
                    drained.extend(more)
                    leftover -= len(more)
                    if leftover <= 0:
                        break
        drained.sort(key=native.timestamp_of)
        return drained

    def _close_batch(self) -> bytes:
        records = self._pending
        self._pending = []
        self._pending_bytes = 0
        self._pending_oldest_local = None
        encoded = protocol.encode_batch_records(
            self.exs_id,
            self._seq,
            records,
            compress_meta=self.config.compress_meta,
            delta_ts=self.config.delta_ts,
            enc=self._encoder,
        )
        self._seq += 1
        self.stats.records_shipped += len(records)
        self.stats.batches_shipped += 1
        self.stats.bytes_shipped += len(encoded)
        return encoded

    # ------------------------------------------------------------------
    # clock-sync slave endpoint
    # ------------------------------------------------------------------
    def on_time_request(self, msg: protocol.TimeRequest) -> protocol.TimeReply:
        """Answer a Cristian probe with the corrected clock reading."""
        return protocol.TimeReply(probe_id=msg.probe_id, slave_time=self.clock.read())

    def on_adjust(self, msg: protocol.Adjust) -> None:
        """Apply a master correction (advance-only, per §3.3)."""
        self.clock.advance(msg.correction)

    def on_set_filter(self, msg: "protocol.SetFilter") -> None:
        """Install (or clear) the ISM-pushed source-side filter.

        Epoch discipline (steering extension): a message older than the
        installed epoch is ignored (it was reordered past a newer spec),
        and a re-send of the installed epoch is a no-op — the ISM re-sends
        the desired spec after every reconnect, and the no-op is what
        keeps sampling counters (and therefore which records a
        ``sample_every`` keeps) stable across the resume.  Legacy frames
        (epoch 0) install unconditionally, as before.
        """
        epoch = msg.filter_epoch
        if epoch:
            if epoch <= self.filter_epoch:
                return
            self.filter_epoch = epoch
        spec = msg.to_spec()
        self.filter = None if spec.is_pass_through else CompiledFilterState(spec)


def run_exs_loop(
    exs: ExternalSensor,
    send: Callable[[bytes], None],
    should_stop: Callable[[], bool],
    sleep: Callable[[float], None],
    poll_interval_s: float = 0.040,
) -> None:
    """Reference EXS driver loop for real deployments.

    Polls at *poll_interval_s* (defaulting to the 40 ms ``select`` wait the
    paper measured as the worst-case latency floor), shipping each encoded
    batch through *send*.  Extracted as a function so the multiprocessing
    runtime and the tests drive identical logic.
    """
    while not should_stop():
        batches = exs.poll()
        for encoded in batches:
            send(encoded)
        if not batches:
            sleep(poll_interval_s)
    for encoded in exs.flush():
        send(encoded)
