"""The shared-memory ring buffer between internal sensors and the EXS.

In BRISK the ``NOTICE`` macros "write a data record ... to a ring-buffer data
structure in memory", and the external sensor — a separate, possibly
lower-priority process on the same node — reads it.  The ring therefore has
to work over a plain byte region so it can be backed either by a local
``bytearray`` (single process, simulation) or by
``multiprocessing.shared_memory`` (real two-process runtime,
:mod:`repro.runtime.shm`).

Design
------
Single-producer / single-consumer byte ring with a fixed header:

======  =====  =======================================================
offset  size   field
======  =====  =======================================================
0       8      ``head`` — total bytes ever written (monotonic, u64)
8       8      ``tail`` — total bytes ever consumed (monotonic, u64)
16      8      ``dropped`` — records rejected because the ring was full
24      8      ``wrapped`` — records discarded by the overwrite policy
======  =====  =======================================================

Monotonic head/tail counters (rather than wrapping offsets) make the
occupancy computation race-tolerant for the SPSC case: the producer only
writes ``head``, the consumer only writes ``tail``, and each reads the
other's counter at worst stale, which errs on the safe side (producer sees
the ring fuller than it is, consumer sees it emptier).

Records are written length-prefixed via :mod:`repro.core.native`; a record
never wraps — if it does not fit in the remaining contiguous region a *skip
marker* (length ``0xFFFFFFFF``) is written and the record starts back at
offset zero, mirroring how fixed-slot C rings burn the slack at the end.

Overflow policy (a §2 "tuning knob" — intrusion vs completeness):

* ``DROP_NEW`` — the producer drops the incoming record and counts it; the
  application never blocks, bounding intrusion (BRISK's default posture).
* ``OVERWRITE_OLD`` — the producer advances the tail over the oldest
  records.  Only safe when producer and consumer live in one process (the
  simulator); the shared-memory runtime refuses this policy.
"""

from __future__ import annotations

import struct
from enum import Enum
from typing import Iterator

from repro.core import native
from repro.core.records import EventRecord

_HEADER = struct.Struct("<QQQQ")
HEADER_SIZE = _HEADER.size  # 32 bytes
_LEN = struct.Struct("<I")
_SKIP_MARKER = 0xFFFF_FFFF
_LEN_SIZE = 4


class OverflowPolicy(Enum):
    """What the producer does when the ring cannot take the next record."""

    DROP_NEW = "drop_new"
    OVERWRITE_OLD = "overwrite_old"


class RingBufferFull(RuntimeError):
    """Raised by :meth:`RingBuffer.push` in ``DROP_NEW`` mode only when the
    caller asked for ``raise_on_full=True`` (tests, strict applications)."""


class RingBuffer:
    """SPSC byte ring over an arbitrary writable buffer.

    Parameters
    ----------
    buffer:
        A writable buffer (``bytearray``, ``memoryview``, shared-memory
        ``buf``).  The first :data:`HEADER_SIZE` bytes hold the control
        header; the rest is the data region.
    policy:
        Overflow behaviour; see :class:`OverflowPolicy`.
    attach:
        When True, adopt the existing header state in *buffer* (the consumer
        side of a shared-memory ring); when False, initialize a fresh ring.
    """

    def __init__(
        self,
        buffer,
        policy: OverflowPolicy = OverflowPolicy.DROP_NEW,
        *,
        attach: bool = False,
    ) -> None:
        self._view = memoryview(buffer)
        if self._view.readonly:
            raise ValueError("ring buffer requires a writable buffer")
        self._data_size = len(self._view) - HEADER_SIZE
        if self._data_size < 64:
            raise ValueError(
                f"buffer too small: need > {HEADER_SIZE + 64} bytes"
            )
        self.policy = policy
        if not attach:
            _HEADER.pack_into(self._view, 0, 0, 0, 0, 0)

    # ------------------------------------------------------------------
    # header accessors (each field has a single writer)
    # ------------------------------------------------------------------
    @property
    def head(self) -> int:
        """Total bytes ever written (producer-owned)."""
        return struct.unpack_from("<Q", self._view, 0)[0]

    def _set_head(self, value: int) -> None:
        struct.pack_into("<Q", self._view, 0, value)

    @property
    def tail(self) -> int:
        """Total bytes ever consumed (consumer-owned)."""
        return struct.unpack_from("<Q", self._view, 8)[0]

    def _set_tail(self, value: int) -> None:
        struct.pack_into("<Q", self._view, 8, value)

    @property
    def dropped(self) -> int:
        """Records rejected because the ring was full (``DROP_NEW``)."""
        return struct.unpack_from("<Q", self._view, 16)[0]

    def _set_dropped(self, value: int) -> None:
        struct.pack_into("<Q", self._view, 16, value)

    @property
    def overwritten(self) -> int:
        """Records discarded by ``OVERWRITE_OLD`` to make room."""
        return struct.unpack_from("<Q", self._view, 24)[0]

    def _set_overwritten(self, value: int) -> None:
        struct.pack_into("<Q", self._view, 24, value)

    # ------------------------------------------------------------------
    # occupancy
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Data-region size in bytes."""
        return self._data_size

    @property
    def used(self) -> int:
        """Bytes currently occupied (including skip-marker slack)."""
        return self.head - self.tail

    @property
    def free(self) -> int:
        """Bytes currently available to the producer."""
        return self._data_size - self.used

    def __bool__(self) -> bool:
        return self.used > 0

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------
    def push(self, record: EventRecord, *, raise_on_full: bool = False) -> bool:
        """Append *record*; returns False when dropped (``DROP_NEW``).

        The serialized record is written with a four-byte length prefix.  A
        record larger than half the data region is rejected outright — such
        a record could starve the ring permanently.
        """
        payload = native.pack_record(record)
        return self.push_bytes(payload, raise_on_full=raise_on_full)

    def push_bytes(self, payload: bytes, *, raise_on_full: bool = False) -> bool:
        """Append an already-serialized native record (sensor fast path)."""
        need = _LEN_SIZE + len(payload)
        if need > self._data_size // 2:
            raise ValueError(
                f"record of {len(payload)} bytes exceeds half the ring "
                f"({self._data_size} bytes)"
            )
        head = self.head
        offset = head % self._data_size
        contiguous = self._data_size - offset
        slack = 0
        if contiguous < need:
            # Burn the tail of the region with a skip marker and wrap.
            slack = contiguous
            need += slack
        while self._data_size - (head - self.tail) < need:
            if self.policy is OverflowPolicy.DROP_NEW:
                self._set_dropped(self.dropped + 1)
                if raise_on_full:
                    raise RingBufferFull(
                        f"ring full: need {need}, free {self.free}"
                    )
                return False
            self._evict_oldest()
        if slack:
            if contiguous >= _LEN_SIZE:
                _LEN.pack_into(self._view, HEADER_SIZE + offset, _SKIP_MARKER)
            # (if fewer than 4 bytes remain the consumer wraps implicitly)
            head += slack
            offset = 0
        base = HEADER_SIZE + offset
        _LEN.pack_into(self._view, base, len(payload))
        self._view[base + _LEN_SIZE : base + _LEN_SIZE + len(payload)] = payload
        self._set_head(head + _LEN_SIZE + len(payload))
        return True

    def _evict_oldest(self) -> None:
        """Advance the tail past one record (``OVERWRITE_OLD`` only)."""
        consumed = self._consume_one(peek=False)
        if consumed is None:  # pragma: no cover - cannot happen when full
            raise RuntimeError("evict on empty ring")
        self._set_overwritten(self.overwritten + 1)

    # ------------------------------------------------------------------
    # consumer side
    # ------------------------------------------------------------------
    def pop(self) -> EventRecord | None:
        """Remove and return the oldest record, or None when empty."""
        payload = self.pop_bytes()
        if payload is None:
            return None
        record, _ = native.unpack_record(payload)
        return record

    def pop_bytes(self) -> bytes | None:
        """Remove and return the oldest serialized record (EXS fast path)."""
        return self._consume_one(peek=False)

    def peek_bytes(self) -> bytes | None:
        """Return the oldest serialized record without consuming it."""
        return self._consume_one(peek=True)

    def _consume_one(self, *, peek: bool) -> bytes | None:
        tail = self.tail
        head = self.head
        if tail == head:
            return None
        offset = tail % self._data_size
        contiguous = self._data_size - offset
        if contiguous < _LEN_SIZE:
            # Producer could not even fit a skip marker here; wrap.
            tail += contiguous
            offset = 0
        else:
            (length,) = _LEN.unpack_from(self._view, HEADER_SIZE + offset)
            if length == _SKIP_MARKER:
                tail += contiguous
                offset = 0
        base = HEADER_SIZE + offset
        (length,) = _LEN.unpack_from(self._view, base)
        payload = bytes(
            self._view[base + _LEN_SIZE : base + _LEN_SIZE + length]
        )
        if not peek:
            self._set_tail(tail + _LEN_SIZE + length)
        return payload

    def drain(self, limit: int | None = None) -> list[EventRecord]:
        """Pop up to *limit* records (all, when None) as decoded records."""
        out: list[EventRecord] = []
        while limit is None or len(out) < limit:
            record = self.pop()
            if record is None:
                break
            out.append(record)
        return out

    def drain_bytes(self, limit: int | None = None) -> list[bytes]:
        """Pop up to *limit* serialized records without decoding them.

        This is the EXS hot path: the external sensor re-encodes to XDR from
        the serialized form, so decoding into :class:`EventRecord` objects
        here would be pure overhead.

        The whole drain runs against one head snapshot and publishes the
        consumed tail once at the end: records pushed mid-drain are picked
        up by the next poll, and the header round-trips (a shared-memory
        struct unpack/pack pair per record on the per-record path) collapse
        to one per drain.  Safe under both policies: with ``DROP_NEW`` the
        producer never moves the tail, and ``OVERWRITE_OLD`` is restricted
        to single-process rings where no concurrent producer exists.
        """
        if limit is not None and limit <= 0:
            return []
        out: list[bytes] = []
        view = self._view
        data_size = self._data_size
        unpack_len = _LEN.unpack_from
        tail = self.tail
        head = self.head
        while tail != head:
            offset = tail % data_size
            contiguous = data_size - offset
            if contiguous < _LEN_SIZE:
                tail += contiguous
                offset = 0
            else:
                (length,) = unpack_len(view, HEADER_SIZE + offset)
                if length == _SKIP_MARKER:
                    tail += contiguous
                    offset = 0
            base = HEADER_SIZE + offset
            (length,) = unpack_len(view, base)
            out.append(bytes(view[base + _LEN_SIZE : base + _LEN_SIZE + length]))
            tail += _LEN_SIZE + length
            if limit is not None and len(out) >= limit:
                break
        if out:
            self._set_tail(tail)
        return out

    def __iter__(self) -> Iterator[EventRecord]:
        """Destructively iterate records until the ring is empty."""
        while True:
            record = self.pop()
            if record is None:
                return
            yield record


def ring_for_records(
    approx_records: int,
    approx_record_bytes: int = 96,
    policy: OverflowPolicy = OverflowPolicy.DROP_NEW,
) -> RingBuffer:
    """Allocate a local (bytearray-backed) ring sized for a workload.

    A convenience used by examples and tests; the real runtime sizes its
    shared-memory segment the same way.
    """
    size = HEADER_SIZE + max(4096, approx_records * (approx_record_bytes + 4))
    return RingBuffer(bytearray(size), policy)
