"""BRISK core: the instrumentation-system kernel itself.

The subpackage follows the paper's three-component model:

* **LIS** (local instrumentation server): :mod:`repro.core.sensor`
  (internal sensors / ``notice``), :mod:`repro.core.ringbuffer` (the shared
  memory between application and external sensor), and :mod:`repro.core.exs`
  (the external sensor that drains, corrects, batches).
* **ISM** (instrumentation system manager): :mod:`repro.core.ism` composed
  from :mod:`repro.core.sorting` (heap merge + adaptive time frame),
  :mod:`repro.core.cre` (causally-related event matching) and
  :mod:`repro.core.consumers` (memory buffer / PICL log / visual objects).
* **TP** (transfer protocol) lives in :mod:`repro.wire`.
"""

from repro.core.records import (
    FieldType,
    EventRecord,
    RecordSchema,
    SYSTEM_FIELD_TYPES,
)
from repro.core.ringbuffer import RingBuffer, OverflowPolicy
from repro.core.sensor import Sensor, compile_notice
from repro.core.exs import ExternalSensor, ExsConfig
from repro.core.sorting import OnlineSorter, SorterConfig
from repro.core.cre import CausalMatcher, CreConfig
from repro.core.ism import InstrumentationManager, IsmConfig
from repro.core.consumers import (
    Consumer,
    MemoryBufferConsumer,
    PiclFileConsumer,
    VisualObjectConsumer,
    CallbackConsumer,
)
from repro.core.filtering import FilterSpec, FilteringConsumer
from repro.core.catalog import EventCatalog

__all__ = [
    "FieldType",
    "EventRecord",
    "RecordSchema",
    "SYSTEM_FIELD_TYPES",
    "RingBuffer",
    "OverflowPolicy",
    "Sensor",
    "compile_notice",
    "ExternalSensor",
    "ExsConfig",
    "OnlineSorter",
    "SorterConfig",
    "CausalMatcher",
    "CreConfig",
    "InstrumentationManager",
    "IsmConfig",
    "Consumer",
    "MemoryBufferConsumer",
    "PiclFileConsumer",
    "VisualObjectConsumer",
    "CallbackConsumer",
    "FilterSpec",
    "FilteringConsumer",
    "EventCatalog",
]
