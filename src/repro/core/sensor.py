"""Internal sensors: the ``NOTICE`` entry point of the LIS.

BRISK applications call ``NOTICE`` macros that write a dynamically typed
record into the node's ring buffer; the raw local time comes from
``gettimeofday`` inside the macro (the EXS adds the clock-sync correction
later, before shipment).  The paper stresses two flexibility/performance
points that this module reproduces:

* **dynamic typing for convenience** — :meth:`Sensor.notice` takes
  ``(FieldType, value)`` pairs and validates them, like the stock
  eight-field macros;
* **on-demand specialization for speed** — the paper ships a utility tool
  that generates custom ``NOTICE`` macros for a user schema ("an on-demand
  partial evaluation/specialization of sensors that results in smaller and
  faster code").  :func:`compile_notice` is that tool: given a
  :class:`RecordSchema` it *generates and compiles* a packing function
  specialized to the schema, bypassing per-field dispatch and validation.
  Benchmark E1/A2 measures the gap.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Sequence

from repro.core import native
from repro.core.records import (
    DEFAULT_MAX_FIELDS,
    EventRecord,
    FieldType,
    RecordSchema,
    validate_field,
)
from repro.core.ringbuffer import RingBuffer
from repro.util.timebase import now_micros

ClockFn = Callable[[], int]


class Sensor:
    """A node-local internal sensor writing into a ring buffer.

    Parameters
    ----------
    ring:
        The LIS ring buffer shared with the external sensor.
    node_id:
        Identifier of this LIS; stamped into every record.
    clock:
        Microsecond clock; defaults to the real ``gettimeofday``
        (:func:`repro.util.timebase.now_micros`).  The simulator passes a
        :class:`repro.clocksync.clocks.DriftingClock` read instead.
    max_fields:
        Dynamic-notice field limit (eight, per the paper's stock macros).
        Specialized notices compiled for an explicit schema may exceed it,
        exactly as the paper's custom-macro tool may.
    """

    __slots__ = ("ring", "node_id", "clock", "max_fields", "emitted", "dropped")

    def __init__(
        self,
        ring: RingBuffer,
        node_id: int = 0,
        clock: ClockFn = now_micros,
        max_fields: int = DEFAULT_MAX_FIELDS,
    ) -> None:
        self.ring = ring
        self.node_id = node_id
        self.clock = clock
        self.max_fields = max_fields
        #: Records successfully written to the ring.
        self.emitted = 0
        #: Records the ring rejected (DROP_NEW overflow).
        self.dropped = 0

    # ------------------------------------------------------------------
    # dynamic NOTICE
    # ------------------------------------------------------------------
    def notice(self, event_id: int, *fields: tuple[FieldType, Any]) -> bool:
        """Emit one event with dynamically typed fields.

        ``fields`` are ``(FieldType, value)`` pairs.  Returns True when the
        record was written, False when the ring dropped it (so callers can
        account for intrusion-vs-completeness trade-offs without exceptions
        on the hot path).
        """
        if len(fields) > self.max_fields:
            raise ValueError(
                f"dynamic notice limited to {self.max_fields} fields; "
                f"use compile_notice() for wider records"
            )
        field_types: list[FieldType] = []
        values: list[Any] = []
        for ftype, value in fields:
            validate_field(ftype, value)
            field_types.append(ftype)
            values.append(value)
        record = EventRecord(
            event_id=event_id,
            timestamp=self.clock(),
            field_types=tuple(field_types),
            values=tuple(values),
            node_id=self.node_id,
        )
        return self._push(native.pack_record(record))

    def notice_record(self, record: EventRecord) -> bool:
        """Emit a pre-built record (timestamp and node stamped here)."""
        stamped = record.with_node(self.node_id).with_timestamp(self.clock())
        return self._push(native.pack_record(stamped))

    # ------------------------------------------------------------------
    # convenience typed notices (the stock macro family)
    # ------------------------------------------------------------------
    def notice_ints(self, event_id: int, *values: int) -> bool:
        """Emit an all-``X_INT`` record — the paper's benchmark workload
        ("simple looping applications using sensors having six fields of
        type integer")."""
        return self.notice(
            event_id, *((FieldType.X_INT, v) for v in values)
        )

    def notice_reason(self, event_id: int, reason_id: int, *fields) -> bool:
        """Emit a record providing causal identifier *reason_id*."""
        return self.notice(
            event_id, (FieldType.X_REASON, reason_id), *fields
        )

    def notice_conseq(self, event_id: int, conseq_id: int, *fields) -> bool:
        """Emit a record depending on causal identifier *conseq_id*."""
        return self.notice(
            event_id, (FieldType.X_CONSEQ, conseq_id), *fields
        )

    # ------------------------------------------------------------------
    def _push(self, payload: bytes) -> bool:
        if self.ring.push_bytes(payload):
            self.emitted += 1
            return True
        self.dropped += 1
        return False


# ----------------------------------------------------------------------
# specialization tool
# ----------------------------------------------------------------------

_STRUCT_CODES: dict[FieldType, str] = {
    FieldType.X_BYTE: "b",
    FieldType.X_UBYTE: "B",
    FieldType.X_SHORT: "h",
    FieldType.X_USHORT: "H",
    FieldType.X_INT: "i",
    FieldType.X_UINT: "I",
    FieldType.X_HYPER: "q",
    FieldType.X_UHYPER: "Q",
    FieldType.X_FLOAT: "f",
    FieldType.X_DOUBLE: "d",
    FieldType.X_TS: "q",
    FieldType.X_REASON: "I",
    FieldType.X_CONSEQ: "I",
}


def compile_notice(
    schema: RecordSchema | Sequence[FieldType],
) -> Callable[[Sensor, int, Any], bool]:
    """Generate a packing function specialized to *schema*.

    This reproduces the paper's custom-NOTICE utility: for a fixed field
    layout the entire native record (header + field tags + payload) is
    emitted by **one** precompiled ``struct`` pack call — no per-field
    dispatch, no validation, no intermediate :class:`EventRecord`.  The
    returned callable has the signature ``fast_notice(sensor, event_id,
    *values) -> bool``.

    Schemas containing variable-length fields (``X_STRING``/``X_OPAQUE``)
    cannot be fully pre-sized; for those the specialized function falls back
    to a two-part pack that is still substantially cheaper than the dynamic
    path.
    """
    if not isinstance(schema, RecordSchema):
        schema = RecordSchema(tuple(schema))
    types = schema.field_types
    has_var = any(
        t in (FieldType.X_STRING, FieldType.X_OPAQUE) for t in types
    )
    flags = native.FLAG_CAUSAL if schema.is_causal else 0
    n_fields = len(types)

    if not has_var:
        # One flat struct: header, then (tag, payload) per field.
        fmt = "<IIIHHq"
        for t in types:
            fmt += "B" + _STRUCT_CODES[t]
        packer = struct.Struct(fmt)
        total = packer.size
        tags = tuple(int(t) for t in types)

        def fast_notice(sensor: Sensor, event_id: int, *values: Any) -> bool:
            # Interleave tags and values without a Python-level loop body
            # per field: zip + chain is the cheapest portable spelling.
            interleaved: list[Any] = [None] * (2 * n_fields)
            interleaved[0::2] = tags
            interleaved[1::2] = values
            payload = packer.pack(
                total,
                event_id,
                sensor.node_id,
                n_fields,
                flags,
                sensor.clock(),
                *interleaved,
            )
            if sensor.ring.push_bytes(payload):
                sensor.emitted += 1
                return True
            sensor.dropped += 1
            return False

        fast_notice.__name__ = f"notice_{'_'.join(t.name[2:].lower() for t in types)}"
        fast_notice.schema = schema  # type: ignore[attr-defined]
        fast_notice.wire_struct = packer  # type: ignore[attr-defined]
        return fast_notice

    # Variable-length schema: pre-compile the fixed prefix between
    # variable fields and splice in the encoded strings at call time.
    def flexible_notice(sensor: Sensor, event_id: int, *values: Any) -> bool:
        parts: list[bytes] = []
        for ftype, value in zip(types, values):
            code = _STRUCT_CODES.get(ftype)
            if code is not None:
                parts.append(struct.pack("<B" + code, ftype, value))
            elif ftype is FieldType.X_STRING:
                data = value.encode("utf-8")
                parts.append(struct.pack("<BI", ftype, len(data)) + data)
            else:
                data = bytes(value)
                parts.append(struct.pack("<BI", ftype, len(data)) + data)
        body = b"".join(parts)
        header = native.HEADER.pack(
            native.HEADER_SIZE + len(body),
            event_id,
            sensor.node_id,
            n_fields,
            flags,
            sensor.clock(),
        )
        if sensor.ring.push_bytes(header + body):
            sensor.emitted += 1
            return True
        sensor.dropped += 1
        return False

    flexible_notice.schema = schema  # type: ignore[attr-defined]
    return flexible_notice
