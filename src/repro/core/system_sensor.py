"""Generic external sensors: system-level metrics (the JEWEL heritage).

§1: "we have based the BRISK LIS implementation on JEWEL's internal and
*generic external* sensors."  JEWEL's generic external sensors sample the
*environment* — CPU load, memory, process accounting — rather than
application events, so a trace can correlate application behaviour with
the machine state underneath it.

:class:`SystemMetricsSensor` reproduces that role: it samples Linux
``/proc`` counters and emits ordinary BRISK records through the node's
internal sensor, with catalog definitions announced in-band so consumers
see named series.  Sampling is pull-based (``sample()``), so the caller —
an EXS loop, a simulator tick, a thread — owns the cadence, keeping the
component schedulable like every other BRISK piece (§2).

Event ids (also announced via the catalog):

======  =======================  =========================================
id      name                     fields
======  =======================  =========================================
0xE10   sys.loadavg              X_DOUBLE load1, X_DOUBLE load5
0xE11   sys.memory               X_UHYPER total_kb, X_UHYPER available_kb
0xE12   proc.cpu                 X_DOUBLE utime_s, X_DOUBLE stime_s
0xE13   proc.rss                 X_UHYPER resident_kb
======  =======================  =========================================
"""

from __future__ import annotations

import os
import pathlib

from repro.core.catalog import EventCatalog
from repro.core.records import FieldType, RecordSchema
from repro.core.sensor import Sensor

EV_LOADAVG = 0xE10
EV_MEMORY = 0xE11
EV_PROC_CPU = 0xE12
EV_PROC_RSS = 0xE13


def build_catalog() -> EventCatalog:
    """Catalog entries for the system-metric event family."""
    catalog = EventCatalog()
    catalog.define(
        EV_LOADAVG, "sys.loadavg",
        RecordSchema((FieldType.X_DOUBLE, FieldType.X_DOUBLE)),
    )
    catalog.define(
        EV_MEMORY, "sys.memory",
        RecordSchema((FieldType.X_UHYPER, FieldType.X_UHYPER)),
    )
    catalog.define(
        EV_PROC_CPU, "proc.cpu",
        RecordSchema((FieldType.X_DOUBLE, FieldType.X_DOUBLE)),
    )
    catalog.define(
        EV_PROC_RSS, "proc.rss",
        RecordSchema((FieldType.X_UHYPER,)),
    )
    return catalog


class SystemMetricsSensor:
    """Sample host/process counters into BRISK records.

    Parameters
    ----------
    sensor:
        The internal sensor to emit through.
    proc_root:
        Filesystem root of procfs — overridable so tests (and non-Linux
        hosts) can point at a synthetic tree.
    announce:
        Emit the catalog definitions on construction (default True).
    """

    def __init__(
        self,
        sensor: Sensor,
        proc_root: str | os.PathLike = "/proc",
        announce: bool = True,
    ) -> None:
        self.sensor = sensor
        self.proc_root = pathlib.Path(proc_root)
        #: Samples emitted per metric family.
        self.emitted: dict[int, int] = {}
        #: Read failures per metric family (missing/foreign procfs).
        self.errors: dict[int, int] = {}
        self._clock_ticks = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100
        self._page_kb = (
            os.sysconf("SC_PAGE_SIZE") // 1024 if hasattr(os, "sysconf") else 4
        )
        if announce:
            build_catalog().announce(sensor)

    # ------------------------------------------------------------------
    def sample(self) -> int:
        """Sample every available metric family; returns records emitted."""
        emitted = 0
        emitted += self._try(EV_LOADAVG, self._sample_loadavg)
        emitted += self._try(EV_MEMORY, self._sample_memory)
        emitted += self._try(EV_PROC_CPU, self._sample_proc_cpu)
        emitted += self._try(EV_PROC_RSS, self._sample_proc_rss)
        return emitted

    def _try(self, event_id: int, fn) -> int:
        try:
            fn()
        except (OSError, ValueError, IndexError):
            # A monitoring component must not take the application down
            # because procfs looks unfamiliar; count and continue.
            self.errors[event_id] = self.errors.get(event_id, 0) + 1
            return 0
        self.emitted[event_id] = self.emitted.get(event_id, 0) + 1
        return 1

    # ------------------------------------------------------------------
    def _sample_loadavg(self) -> None:
        text = (self.proc_root / "loadavg").read_text()
        load1, load5 = (float(x) for x in text.split()[:2])
        self.sensor.notice(
            EV_LOADAVG,
            (FieldType.X_DOUBLE, load1),
            (FieldType.X_DOUBLE, load5),
        )

    def _sample_memory(self) -> None:
        total_kb = available_kb = None
        with open(self.proc_root / "meminfo") as stream:
            for line in stream:
                if line.startswith("MemTotal:"):
                    total_kb = int(line.split()[1])
                elif line.startswith("MemAvailable:"):
                    available_kb = int(line.split()[1])
                if total_kb is not None and available_kb is not None:
                    break
        if total_kb is None or available_kb is None:
            raise ValueError("meminfo missing MemTotal/MemAvailable")
        self.sensor.notice(
            EV_MEMORY,
            (FieldType.X_UHYPER, total_kb),
            (FieldType.X_UHYPER, available_kb),
        )

    def _stat_fields(self) -> list[str]:
        text = (self.proc_root / "self" / "stat").read_text()
        # The comm field may contain spaces; it is parenthesized, so split
        # after the closing paren.
        return text[text.rindex(")") + 2 :].split()

    def _sample_proc_cpu(self) -> None:
        fields = self._stat_fields()
        # Post-comm indices: utime=11, stime=12 (0-based after state).
        utime = int(fields[11]) / self._clock_ticks
        stime = int(fields[12]) / self._clock_ticks
        self.sensor.notice(
            EV_PROC_CPU,
            (FieldType.X_DOUBLE, utime),
            (FieldType.X_DOUBLE, stime),
        )

    def _sample_proc_rss(self) -> None:
        fields = self._stat_fields()
        rss_pages = int(fields[21])
        self.sensor.notice(
            EV_PROC_RSS,
            (FieldType.X_UHYPER, max(0, rss_pages) * self._page_kb),
        )
