"""Native binary record layout.

This is the reproduction of "the same binary structure used by the NOTICE
macros": the compact, *node-local* representation that internal sensors write
into the shared-memory ring buffer and that the ISM writes into its output
memory buffer for consumer tools.  It is deliberately distinct from the XDR
wire format — memory transfers between processes on one node do not pay for
heterogeneity, so this layout is little-endian with natural field sizes and
no alignment padding.

Layout of one record::

    u32  total_length      (bytes, including this header)
    u32  event_id
    u32  node_id
    u16  n_fields
    u16  flags             (bit 0: record carries causal markers)
    i64  timestamp         (microseconds UTC)
    then per field:
      u8   field type      (FieldType value)
      payload              (native size; strings/opaque: u32 length + bytes)
"""

from __future__ import annotations

import struct
from typing import Any

from repro.core.records import EventRecord, FieldType, intern_schema

HEADER = struct.Struct("<IIIHHq")
HEADER_SIZE = HEADER.size  # 24 bytes

FLAG_CAUSAL = 0x0001

# (struct code, size) per fixed-size field type.
_FIELD_CODECS: dict[FieldType, struct.Struct] = {
    FieldType.X_BYTE: struct.Struct("<b"),
    FieldType.X_UBYTE: struct.Struct("<B"),
    FieldType.X_SHORT: struct.Struct("<h"),
    FieldType.X_USHORT: struct.Struct("<H"),
    FieldType.X_INT: struct.Struct("<i"),
    FieldType.X_UINT: struct.Struct("<I"),
    FieldType.X_HYPER: struct.Struct("<q"),
    FieldType.X_UHYPER: struct.Struct("<Q"),
    FieldType.X_FLOAT: struct.Struct("<f"),
    FieldType.X_DOUBLE: struct.Struct("<d"),
    FieldType.X_TS: struct.Struct("<q"),
    FieldType.X_REASON: struct.Struct("<I"),
    FieldType.X_CONSEQ: struct.Struct("<I"),
}

_LEN = struct.Struct("<I")
_TYPE = struct.Struct("<B")


class NativeCodecError(ValueError):
    """A buffer does not hold a valid native-layout record."""


def pack_record(record: EventRecord) -> bytes:
    """Serialize *record* into the native node-local layout."""
    parts: list[bytes] = []
    for ftype, value in zip(record.field_types, record.values):
        parts.append(_TYPE.pack(ftype))
        codec = _FIELD_CODECS.get(ftype)
        if codec is not None:
            parts.append(codec.pack(value))
        elif ftype is FieldType.X_STRING:
            data = value.encode("utf-8")
            parts.append(_LEN.pack(len(data)))
            parts.append(data)
        else:  # X_OPAQUE
            data = bytes(value)
            parts.append(_LEN.pack(len(data)))
            parts.append(data)
    body = b"".join(parts)
    flags = FLAG_CAUSAL if record.is_causal else 0
    header = HEADER.pack(
        HEADER_SIZE + len(body),
        record.event_id,
        record.node_id,
        len(record.field_types),
        flags,
        record.timestamp,
    )
    return header + body


def packed_size(record: EventRecord) -> int:
    """Size in bytes :func:`pack_record` would produce, without packing."""
    size = HEADER_SIZE
    for ftype, value in zip(record.field_types, record.values):
        size += 1
        codec = _FIELD_CODECS.get(ftype)
        if codec is not None:
            size += codec.size
        elif ftype is FieldType.X_STRING:
            size += 4 + len(value.encode("utf-8"))
        else:
            size += 4 + len(value)
    return size


def unpack_record(buf, offset: int = 0) -> tuple[EventRecord, int]:
    """Deserialize one record from *buf* at *offset*.

    Returns ``(record, next_offset)``.  Raises :class:`NativeCodecError` on
    truncation or an unknown field type.
    """
    view = memoryview(buf)
    if offset + HEADER_SIZE > len(view):
        raise NativeCodecError("truncated record header")
    total, event_id, node_id, n_fields, _flags, timestamp = HEADER.unpack_from(
        view, offset
    )
    end = offset + total
    if total < HEADER_SIZE or end > len(view):
        raise NativeCodecError(f"record length {total} out of bounds")
    pos = offset + HEADER_SIZE
    field_types: list[FieldType] = []
    values: list[Any] = []
    for _ in range(n_fields):
        if pos + 1 > end:
            raise NativeCodecError("truncated field type tag")
        code = view[pos]
        pos += 1
        try:
            ftype = FieldType(code)
        except ValueError as exc:
            raise NativeCodecError(f"unknown field type {code}") from exc
        codec = _FIELD_CODECS.get(ftype)
        if codec is not None:
            if pos + codec.size > end:
                raise NativeCodecError("truncated fixed field payload")
            (value,) = codec.unpack_from(view, pos)
            pos += codec.size
        else:
            if pos + 4 > end:
                raise NativeCodecError("truncated length prefix")
            (length,) = _LEN.unpack_from(view, pos)
            pos += 4
            if pos + length > end:
                raise NativeCodecError("truncated variable field payload")
            data = bytes(view[pos : pos + length])
            pos += length
            value = data.decode("utf-8") if ftype is FieldType.X_STRING else data
        field_types.append(ftype)
        values.append(value)
    if pos != end:
        raise NativeCodecError(f"{end - pos} stray bytes inside record")
    # Interning gives every record of one schema the same field-type tuple
    # (so the wire codec's identity checks hit), and the struct widths above
    # already bound every value — from_wire skips the redundant revalidation
    # on this per-record EXS hot path.
    record = EventRecord.from_wire(
        event_id,
        timestamp,
        intern_schema(tuple(field_types)).field_types,
        tuple(values),
        node_id,
    )
    return record, end


#: Byte offset of the timestamp inside the native header (<IIIHHq).
_TS_OFFSET = 16
_TS = struct.Struct("<q")


def timestamp_of(payload: bytes) -> int:
    """Read a packed record's timestamp without decoding the record.

    The EXS's multi-ring merge sorts drained payloads by this key; full
    decoding happens later (once) on the batching path.
    """
    if len(payload) < HEADER_SIZE:
        raise NativeCodecError("truncated record header")
    return _TS.unpack_from(payload, _TS_OFFSET)[0]


def unpack_all(buf) -> list[EventRecord]:
    """Deserialize every record packed back-to-back in *buf*."""
    records: list[EventRecord] = []
    offset = 0
    view = memoryview(buf)
    while offset < len(view):
        record, offset = unpack_record(view, offset)
        records.append(record)
    return records
