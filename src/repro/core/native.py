"""Native binary record layout.

This is the reproduction of "the same binary structure used by the NOTICE
macros": the compact, *node-local* representation that internal sensors write
into the shared-memory ring buffer and that the ISM writes into its output
memory buffer for consumer tools.  It is deliberately distinct from the XDR
wire format — memory transfers between processes on one node do not pay for
heterogeneity, so this layout is little-endian with natural field sizes and
no alignment padding.

Layout of one record::

    u32  total_length      (bytes, including this header)
    u32  event_id
    u32  node_id
    u16  n_fields
    u16  flags             (bit 0: record carries causal markers)
    i64  timestamp         (microseconds UTC)
    then per field:
      u8   field type      (FieldType value)
      payload              (native size; strings/opaque: u32 length + bytes)
"""

from __future__ import annotations

import struct
from typing import Any

from repro.core.records import EventRecord, FieldType, intern_schema

HEADER = struct.Struct("<IIIHHq")
HEADER_SIZE = HEADER.size  # 24 bytes

FLAG_CAUSAL = 0x0001

# (struct code, size) per fixed-size field type.
_FIELD_CODECS: dict[FieldType, struct.Struct] = {
    FieldType.X_BYTE: struct.Struct("<b"),
    FieldType.X_UBYTE: struct.Struct("<B"),
    FieldType.X_SHORT: struct.Struct("<h"),
    FieldType.X_USHORT: struct.Struct("<H"),
    FieldType.X_INT: struct.Struct("<i"),
    FieldType.X_UINT: struct.Struct("<I"),
    FieldType.X_HYPER: struct.Struct("<q"),
    FieldType.X_UHYPER: struct.Struct("<Q"),
    FieldType.X_FLOAT: struct.Struct("<f"),
    FieldType.X_DOUBLE: struct.Struct("<d"),
    FieldType.X_TS: struct.Struct("<q"),
    FieldType.X_REASON: struct.Struct("<I"),
    FieldType.X_CONSEQ: struct.Struct("<I"),
}

_LEN = struct.Struct("<I")
_TYPE = struct.Struct("<B")


class NativeCodecError(ValueError):
    """A buffer does not hold a valid native-layout record."""


class _BodyCodec:
    """Precompiled decoder for one fixed-size schema's record body.

    The per-field decode loop pays a ``FieldType`` enum construction and a
    dict lookup per field; for a fixed-size schema the whole body layout is
    known, so one interleaved ``struct`` (tag byte + payload per field)
    unpacks everything in a single call.  The unpacked tag bytes are
    compared against the schema's expected tags — a full match proves the
    body *is* this schema (parsing is deterministic left-to-right), so
    same-(total, n_fields) schemas can never be confused.
    """

    __slots__ = ("unpack_from", "tags", "field_types")

    def __init__(self, field_types: tuple[FieldType, ...]) -> None:
        fmt = "<" + "".join(
            "B" + _FIELD_CODECS[ftype].format[-1] for ftype in field_types
        )
        self.unpack_from = struct.Struct(fmt).unpack_from
        self.tags = tuple(int(ftype) for ftype in field_types)
        self.field_types = field_types


#: Specialized body decoders, bucketed by (total_length, n_fields) — the two
#: header fields that are free to read.  Several fixed-size schemas can share
#: a bucket; the tag comparison in the fast path picks the right one.
_SPECIALIZED: dict[tuple[int, int], list[_BodyCodec]] = {}
_MAX_SPECIALIZED_BUCKETS = 1024
_MAX_CODECS_PER_BUCKET = 8


def _maybe_specialize(
    total: int, n_fields: int, field_types: tuple[FieldType, ...]
) -> None:
    """Register a fast decoder for a schema the slow path just parsed."""
    for ftype in field_types:
        if ftype not in _FIELD_CODECS:
            return  # variable-size field: layout not determined by schema
    key = (total, n_fields)
    bucket = _SPECIALIZED.get(key)
    if bucket is None:
        if len(_SPECIALIZED) >= _MAX_SPECIALIZED_BUCKETS:
            return
        bucket = _SPECIALIZED[key] = []
    elif len(bucket) >= _MAX_CODECS_PER_BUCKET:
        return
    for codec in bucket:
        if codec.field_types == field_types:
            return
    bucket.append(_BodyCodec(field_types))


def pack_record(record: EventRecord) -> bytes:
    """Serialize *record* into the native node-local layout."""
    parts: list[bytes] = []
    for ftype, value in zip(record.field_types, record.values):
        parts.append(_TYPE.pack(ftype))
        codec = _FIELD_CODECS.get(ftype)
        if codec is not None:
            parts.append(codec.pack(value))
        elif ftype is FieldType.X_STRING:
            data = value.encode("utf-8")
            parts.append(_LEN.pack(len(data)))
            parts.append(data)
        else:  # X_OPAQUE
            data = bytes(value)
            parts.append(_LEN.pack(len(data)))
            parts.append(data)
    body = b"".join(parts)
    flags = FLAG_CAUSAL if record.is_causal else 0
    header = HEADER.pack(
        HEADER_SIZE + len(body),
        record.event_id,
        record.node_id,
        len(record.field_types),
        flags,
        record.timestamp,
    )
    return header + body


def packed_size(record: EventRecord) -> int:
    """Size in bytes :func:`pack_record` would produce, without packing."""
    size = HEADER_SIZE
    for ftype, value in zip(record.field_types, record.values):
        size += 1
        codec = _FIELD_CODECS.get(ftype)
        if codec is not None:
            size += codec.size
        elif ftype is FieldType.X_STRING:
            size += 4 + len(value.encode("utf-8"))
        else:
            size += 4 + len(value)
    return size


def unpack_record(buf, offset: int = 0) -> tuple[EventRecord, int]:
    """Deserialize one record from *buf* at *offset*.

    Returns ``(record, next_offset)``.  Raises :class:`NativeCodecError` on
    truncation or an unknown field type.

    Records whose schema has been seen before (and holds only fixed-size
    fields) decode through a precompiled whole-body struct instead of the
    per-field loop — the EXS drains thousands of same-schema records per
    poll, so the specialized path dominates in steady state.
    """
    buf_len = len(buf)
    if offset + HEADER_SIZE > buf_len:
        raise NativeCodecError("truncated record header")
    total, event_id, node_id, n_fields, _flags, timestamp = HEADER.unpack_from(
        buf, offset
    )
    end = offset + total
    if total < HEADER_SIZE or end > buf_len:
        raise NativeCodecError(f"record length {total} out of bounds")
    bucket = _SPECIALIZED.get((total, n_fields))
    if bucket is not None:
        body_at = offset + HEADER_SIZE
        for codec in bucket:
            # end <= buf_len and the codec's struct size is exactly
            # total - HEADER_SIZE (both derive from the same fixed-size
            # schema), so unpack_from cannot overrun.
            vals = codec.unpack_from(buf, body_at)
            if vals[0::2] == codec.tags:
                record = EventRecord.from_wire(
                    event_id, timestamp, codec.field_types, vals[1::2], node_id
                )
                return record, end
    view = memoryview(buf)
    pos = offset + HEADER_SIZE
    field_types: list[FieldType] = []
    values: list[Any] = []
    for _ in range(n_fields):
        if pos + 1 > end:
            raise NativeCodecError("truncated field type tag")
        code = view[pos]
        pos += 1
        try:
            ftype = FieldType(code)
        except ValueError as exc:
            raise NativeCodecError(f"unknown field type {code}") from exc
        codec = _FIELD_CODECS.get(ftype)
        if codec is not None:
            if pos + codec.size > end:
                raise NativeCodecError("truncated fixed field payload")
            (value,) = codec.unpack_from(view, pos)
            pos += codec.size
        else:
            if pos + 4 > end:
                raise NativeCodecError("truncated length prefix")
            (length,) = _LEN.unpack_from(view, pos)
            pos += 4
            if pos + length > end:
                raise NativeCodecError("truncated variable field payload")
            data = bytes(view[pos : pos + length])
            pos += length
            value = data.decode("utf-8") if ftype is FieldType.X_STRING else data
        field_types.append(ftype)
        values.append(value)
    if pos != end:
        raise NativeCodecError(f"{end - pos} stray bytes inside record")
    # Interning gives every record of one schema the same field-type tuple
    # (so the wire codec's identity checks hit), and the struct widths above
    # already bound every value — from_wire skips the redundant revalidation
    # on this per-record EXS hot path.
    interned = intern_schema(tuple(field_types)).field_types
    _maybe_specialize(total, n_fields, interned)
    record = EventRecord.from_wire(
        event_id,
        timestamp,
        interned,
        tuple(values),
        node_id,
    )
    return record, end


def unpack_record_stamped(
    buf, node_id: int, correction: int = 0
) -> EventRecord:
    """Decode one whole-buffer record with node and clock stamping fused in.

    The EXS poll loop decodes a ring payload and immediately rebuilds the
    record with the clock correction applied and its node identity stamped;
    fusing both into the decode constructs each record once instead of
    twice.  Records carrying :attr:`FieldType.X_TS` user fields under a
    non-zero correction take the validated copy path — their field values
    must shift with the timestamp.
    """
    buf_len = len(buf)
    if HEADER_SIZE > buf_len:
        raise NativeCodecError("truncated record header")
    total, event_id, _node, n_fields, _flags, timestamp = HEADER.unpack_from(buf, 0)
    if HEADER_SIZE <= total <= buf_len:
        bucket = _SPECIALIZED.get((total, n_fields))
        if bucket is not None:
            for codec in bucket:
                vals = codec.unpack_from(buf, HEADER_SIZE)
                if vals[0::2] == codec.tags:
                    field_types = codec.field_types
                    if correction and FieldType.X_TS in field_types:
                        break  # X_TS values must shift: full path below
                    return EventRecord.from_wire(
                        event_id,
                        timestamp + correction,
                        field_types,
                        vals[1::2],
                        node_id,
                    )
    record, _ = unpack_record(buf)
    if correction and FieldType.X_TS in record.field_types:
        shifted = record.with_timestamp(record.timestamp + correction)
        if shifted.node_id != node_id:
            shifted = shifted.with_node(node_id)
        return shifted
    return EventRecord.from_wire(
        record.event_id,
        record.timestamp + correction,
        record.field_types,
        record.values,
        node_id,
    )


#: Byte offset of the timestamp inside the native header (<IIIHHq).
_TS_OFFSET = 16
_TS = struct.Struct("<q")


def timestamp_of(payload: bytes) -> int:
    """Read a packed record's timestamp without decoding the record.

    The EXS's multi-ring merge sorts drained payloads by this key; full
    decoding happens later (once) on the batching path.
    """
    if len(payload) < HEADER_SIZE:
        raise NativeCodecError("truncated record header")
    return _TS.unpack_from(payload, _TS_OFFSET)[0]


def unpack_all(buf) -> list[EventRecord]:
    """Deserialize every record packed back-to-back in *buf*."""
    records: list[EventRecord] = []
    offset = 0
    view = memoryview(buf)
    while offset < len(view):
        record, offset = unpack_record(view, offset)
        records.append(record)
    return records
