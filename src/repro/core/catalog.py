"""Event catalogs: self-describing traces.

Event identifiers are integers on the wire (cheap), but humans and tools
want names and declared schemas.  The paper's custom-macro utility writes
generated NOTICE definitions "into the header file" — the catalog is that
registry made first-class and shipped *in-band*: definitions travel as
ordinary records under a reserved event id, so any consumer of a trace
can reconstruct the catalog without side channels (the same pattern the
function tracer uses for its name table).

Definition record layout (event id :data:`CATALOG_EVENT_ID`)::

    X_UINT    defined event id
    X_STRING  name
    X_STRING  schema as comma-separated FieldType names ("" = unspecified)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.records import EventRecord, FieldType, RecordSchema
from repro.core.sensor import Sensor

#: Reserved event id carrying catalog definitions.
CATALOG_EVENT_ID = 0xF0E


@dataclass(frozen=True, slots=True)
class EventDefinition:
    """One catalog entry."""

    event_id: int
    name: str
    schema: RecordSchema | None = None


def _schema_to_text(schema: RecordSchema | None) -> str:
    if schema is None:
        return ""
    return ",".join(t.name for t in schema.field_types)


def _schema_from_text(text: str) -> RecordSchema | None:
    if not text:
        return None
    return RecordSchema(tuple(FieldType[name] for name in text.split(",")))


class EventCatalog:
    """Registry of event definitions, announcable through a sensor.

    Producer side::

        catalog = EventCatalog()
        catalog.define(42, "cache.miss", RecordSchema((FieldType.X_INT,)))
        catalog.announce(sensor)        # ships the definitions in-band

    Consumer side::

        catalog = EventCatalog.from_trace(records)
        catalog.name_of(42)             # "cache.miss"
    """

    def __init__(self) -> None:
        self._defs: dict[int, EventDefinition] = {}

    # ------------------------------------------------------------------
    def define(
        self,
        event_id: int,
        name: str,
        schema: RecordSchema | None = None,
    ) -> EventDefinition:
        """Register (or redefine) one event type."""
        if event_id == CATALOG_EVENT_ID:
            raise ValueError(
                f"event id 0x{CATALOG_EVENT_ID:X} is reserved for the catalog"
            )
        definition = EventDefinition(event_id, name, schema)
        self._defs[event_id] = definition
        return definition

    def __len__(self) -> int:
        return len(self._defs)

    def __contains__(self, event_id: int) -> bool:
        return event_id in self._defs

    @property
    def definitions(self) -> tuple[EventDefinition, ...]:
        """All entries, ordered by event id."""
        return tuple(self._defs[k] for k in sorted(self._defs))

    def name_of(self, event_id: int, default: str | None = None) -> str:
        """Resolve an event id to its name (``default`` or ``event <id>``
        when undefined)."""
        if event_id == CATALOG_EVENT_ID:
            return "catalog.define"
        definition = self._defs.get(event_id)
        if definition is not None:
            return definition.name
        return default if default is not None else f"event {event_id}"

    def schema_of(self, event_id: int) -> RecordSchema | None:
        """Declared schema, if any."""
        definition = self._defs.get(event_id)
        return definition.schema if definition else None

    # ------------------------------------------------------------------
    # in-band transport
    # ------------------------------------------------------------------
    def announce(self, sensor: Sensor) -> int:
        """Emit every definition through *sensor*; returns records sent."""
        sent = 0
        for definition in self.definitions:
            ok = sensor.notice(
                CATALOG_EVENT_ID,
                (FieldType.X_UINT, definition.event_id),
                (FieldType.X_STRING, definition.name),
                (FieldType.X_STRING, _schema_to_text(definition.schema)),
            )
            sent += 1 if ok else 0
        return sent

    def fold(self, record: EventRecord) -> bool:
        """Absorb one record if it is a catalog definition.

        Returns True when the record was a definition (callers typically
        hide those from their event views).
        """
        if record.event_id != CATALOG_EVENT_ID or len(record.values) != 3:
            return False
        event_id, name, schema_text = record.values
        try:
            schema = _schema_from_text(schema_text)
        except KeyError:
            schema = None  # unknown type name from a newer producer
        self._defs[event_id] = EventDefinition(event_id, name, schema)
        return True

    @classmethod
    def from_trace(cls, records) -> "EventCatalog":
        """Rebuild a catalog from any iterable of records."""
        catalog = cls()
        for record in records:
            catalog.fold(record)
        return catalog

    # ------------------------------------------------------------------
    def validate(self, record: EventRecord) -> bool:
        """Check a record against its declared schema (True when valid or
        undeclared — the catalog is advisory, not an admission filter)."""
        schema = self.schema_of(record.event_id)
        if schema is None:
            return True
        return schema.field_types == record.field_types
