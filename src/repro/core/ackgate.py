"""The ack gate — when is a batch safe to acknowledge upstream?

An ack is a promise: *the EXS may drop this batch from its outbox*.
PR 6's shard workers learned the careful version of that promise —
admit, wait until every record of the batch has actually left the
pipeline, stage the ack, and only treat it as quotable once a commit
covers it.  The durable commit log (PR 8) needs the identical state
machine with one more gate in the chain (fsync before commit), so the
bookkeeping lives here, shared by :class:`repro.runtime.shard.ShardWorker`
and the durable-mode paths in :mod:`repro.runtime.ism_proc`.

The gate tracks, per source:

* a FIFO of ``(batch seq, cumulative admitted record count)`` for
  batches admitted but not yet fully released downstream;
* the **acked** watermark — the highest seq whose records have all been
  released (safe to put on the wire *only* if losing the process loses
  nothing, e.g. the single-process in-memory ISM);
* the **committed** watermark — the highest seq covered by the caller's
  commit point (shard COMMIT record, or a durable log sync).  Resume
  paths (HelloReply) must quote this one: an acked-but-uncommitted batch
  dies with the process, so telling the EXS about it would let the
  outbox drop batches that still need retransmission.

Callers drive it: :meth:`on_admitted` per fresh batch,
:meth:`advance` once per cycle with the sorter's released counts,
:meth:`commit` after their commit point succeeds, :meth:`take_dirty`
to learn which sources need a (re-)ack on the wire.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Mapping, Optional, Set

__all__ = ["AckGate"]


class AckGate:
    """Per-source ack watermark bookkeeping (pure state, no I/O)."""

    def __init__(self, resume: Optional[Mapping[int, int]] = None) -> None:
        seed = dict(resume) if resume else {}
        self._pending: Dict[int, Deque[tuple[int, int]]] = {}
        self._admitted_records: Dict[int, int] = {}
        self._acked: Dict[int, int] = dict(seed)
        self._committed: Dict[int, int] = dict(seed)
        self._dirty: Set[int] = set()

    # ------------------------------------------------------------------
    # admission side
    # ------------------------------------------------------------------
    def on_admitted(self, source: int, seq: int, n_records: int) -> None:
        """A fresh (non-duplicate) batch was admitted to the pipeline."""
        cum = self._admitted_records.get(source, 0) + n_records
        self._admitted_records[source] = cum
        self._pending.setdefault(source, deque()).append((seq, cum))

    def mark_dirty(self, source: int) -> None:
        """Request a re-ack of the current watermark (duplicate batch:
        a resumed EXS retransmitting acked batches must converge instead
        of waiting for new data)."""
        self._dirty.add(source)

    # ------------------------------------------------------------------
    # release side
    # ------------------------------------------------------------------
    def advance(
        self, released_by_source: Mapping[int, int], parked_now: int
    ) -> bool:
        """Move ack watermarks over batches whose records all left the
        pipeline; returns True if any watermark advanced.

        Requires the causal matcher to be empty (*parked_now* == 0):
        released-by-source counts come from the sorter, and a record
        parked in the CRE has left the sorter without reaching the sink.
        """
        if parked_now != 0:
            return False
        moved = False
        for source, pending in self._pending.items():
            done = released_by_source.get(source, 0)
            advanced = False
            while pending and pending[0][1] <= done:
                seq, _ = pending.popleft()
                self._acked[source] = seq
                advanced = True
            if advanced:
                self._dirty.add(source)
                moved = True
        return moved

    def commit(self) -> None:
        """The caller's commit point covers everything acked so far."""
        self._committed = dict(self._acked)

    # ------------------------------------------------------------------
    # wire side
    # ------------------------------------------------------------------
    def take_dirty(self) -> list[int]:
        """Sources whose watermark should be (re-)quoted, sorted; clears."""
        out = sorted(self._dirty)
        self._dirty.clear()
        return out

    @property
    def has_dirty(self) -> bool:
        return bool(self._dirty)

    @property
    def has_pending(self) -> bool:
        """Any admitted batch not yet fully released?"""
        return any(self._pending.values())

    def acked(self, source: int) -> Optional[int]:
        """Highest fully-released batch seq for *source*."""
        return self._acked.get(source)

    def committed(self, source: int) -> Optional[int]:
        """Highest commit-covered batch seq for *source* — what resume
        paths (HelloReply) must quote."""
        return self._committed.get(source)

    def acked_watermarks(self) -> Dict[int, int]:
        return dict(self._acked)

    def committed_watermarks(self) -> Dict[int, int]:
        return dict(self._committed)
