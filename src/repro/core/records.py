"""Event records and their dynamic field-type system.

BRISK's internal sensors write *dynamically typed* records: each field
carries its own type tag, chosen from "over ten basic types ... ranging from
bytes, to floats, to null-terminated strings", plus three *system* types used
for coordination between BRISK, the application, and analysis tools:

* ``X_TS`` — embeds BRISK's internal timestamp (eight-byte microseconds UTC),
* ``X_REASON`` / ``X_CONSEQ`` — mark causally-related events by a ``u_long``
  identifier so the ISM can enforce reason-before-consequence ordering even
  when clock synchronization leaves tachyons.

Type codes fit in four bits, which is what makes the transfer protocol's
*compressed meta-information header* possible (two field types per byte; see
:mod:`repro.wire.protocol`).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Iterator, Sequence

from repro.util.timebase import check_timestamp

_U32_MAX = 2**32 - 1


class FieldType(IntEnum):
    """Wire type tags for record fields.

    The numeric values are part of the wire format: they are packed two per
    byte into the compressed meta header, so they must stay within a nibble
    (0..14; 15 is the header's end-of-fields sentinel).
    """

    # --- basic data types (the paper's "over ten basic types") ----------
    X_BYTE = 0       #: signed 8-bit integer
    X_UBYTE = 1      #: unsigned 8-bit integer
    X_SHORT = 2      #: signed 16-bit integer
    X_USHORT = 3     #: unsigned 16-bit integer
    X_INT = 4        #: signed 32-bit integer
    X_UINT = 5       #: unsigned 32-bit integer
    X_HYPER = 6      #: signed 64-bit integer
    X_UHYPER = 7     #: unsigned 64-bit integer
    X_FLOAT = 8      #: IEEE-754 single precision
    X_DOUBLE = 9     #: IEEE-754 double precision
    X_STRING = 10    #: null-terminated string (length-prefixed on the wire)
    X_OPAQUE = 11    #: raw bytes
    # --- system types ----------------------------------------------------
    X_TS = 12        #: embedded BRISK timestamp (microseconds UTC, int64)
    X_REASON = 13    #: causal "reason" marker (u_long identifier)
    X_CONSEQ = 14    #: causal "consequence" marker (u_long identifier)


#: The coordination types of §3.2; everything else is application data.
SYSTEM_FIELD_TYPES = frozenset(
    {FieldType.X_TS, FieldType.X_REASON, FieldType.X_CONSEQ}
)

#: Meta-header sentinel: "no more fields".  Never a valid FieldType.
FIELD_TYPE_END = 15

#: Default NOTICE macros support up to eight dynamically typed fields; the
#: specialization tool (``compile_notice``) can exceed this, mirroring the
#: paper's custom-macro utility.
DEFAULT_MAX_FIELDS = 8

# Integer range per integral field type, used for eager validation so a bad
# value is rejected in the application (cheap, debuggable) instead of
# corrupting a batch at the EXS.
_INT_RANGES: dict[FieldType, tuple[int, int]] = {
    FieldType.X_BYTE: (-(2**7), 2**7 - 1),
    FieldType.X_UBYTE: (0, 2**8 - 1),
    FieldType.X_SHORT: (-(2**15), 2**15 - 1),
    FieldType.X_USHORT: (0, 2**16 - 1),
    FieldType.X_INT: (-(2**31), 2**31 - 1),
    FieldType.X_UINT: (0, 2**32 - 1),
    FieldType.X_HYPER: (-(2**63), 2**63 - 1),
    FieldType.X_UHYPER: (0, 2**64 - 1),
    FieldType.X_TS: (-(2**63), 2**63 - 1),
    FieldType.X_REASON: (0, 2**32 - 1),
    FieldType.X_CONSEQ: (0, 2**32 - 1),
}

# XDR-encoded payload size per field type; strings/opaques are 4 (length)
# plus padded data, handled specially.
_FIXED_WIRE_SIZES: dict[FieldType, int] = {
    FieldType.X_BYTE: 4,
    FieldType.X_UBYTE: 4,
    FieldType.X_SHORT: 4,
    FieldType.X_USHORT: 4,
    FieldType.X_INT: 4,
    FieldType.X_UINT: 4,
    FieldType.X_HYPER: 8,
    FieldType.X_UHYPER: 8,
    FieldType.X_FLOAT: 4,
    FieldType.X_DOUBLE: 8,
    FieldType.X_TS: 8,
    FieldType.X_REASON: 4,
    FieldType.X_CONSEQ: 4,
}


def validate_field(ftype: FieldType, value: Any) -> None:
    """Raise :class:`TypeError`/:class:`ValueError` unless *value* is a
    legal payload for *ftype*."""
    if ftype in _INT_RANGES:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeError(f"{ftype.name} field requires int, got {type(value).__name__}")
        lo, hi = _INT_RANGES[ftype]
        if not lo <= value <= hi:
            raise ValueError(f"{ftype.name} value {value} outside [{lo}, {hi}]")
    elif ftype in (FieldType.X_FLOAT, FieldType.X_DOUBLE):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise TypeError(f"{ftype.name} field requires float, got {type(value).__name__}")
    elif ftype is FieldType.X_STRING:
        if not isinstance(value, str):
            raise TypeError(f"X_STRING field requires str, got {type(value).__name__}")
        if "\x00" in value:
            # The C representation is null-terminated; an embedded NUL would
            # silently truncate for C consumers, so reject it here.
            raise ValueError("X_STRING value contains an embedded NUL")
    elif ftype is FieldType.X_OPAQUE:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise TypeError(f"X_OPAQUE field requires bytes, got {type(value).__name__}")
    else:  # pragma: no cover - exhaustive over FieldType
        raise TypeError(f"unknown field type {ftype!r}")


@dataclass(frozen=True, slots=True)
class RecordSchema:
    """An ordered tuple of field types describing one kind of event record.

    Schemas are what the paper's custom-``NOTICE``-macro utility produces:
    a sensor specialized to a schema skips per-field dynamic dispatch.  A
    schema is hashable so the ISM and consumers can key statistics by it.
    """

    field_types: tuple[FieldType, ...]

    def __post_init__(self) -> None:
        for ftype in self.field_types:
            if not isinstance(ftype, FieldType):
                raise TypeError(f"schema entries must be FieldType, got {ftype!r}")

    def __len__(self) -> int:
        return len(self.field_types)

    def __iter__(self) -> Iterator[FieldType]:
        return iter(self.field_types)

    @property
    def has_embedded_ts(self) -> bool:
        """True when the schema embeds an ``X_TS`` user field."""
        return FieldType.X_TS in self.field_types

    @property
    def is_causal(self) -> bool:
        """True when the schema carries any causal marker field."""
        return (
            FieldType.X_REASON in self.field_types
            or FieldType.X_CONSEQ in self.field_types
        )

    def validate(self, values: Sequence[Any]) -> None:
        """Validate one value tuple against the schema."""
        if len(values) != len(self.field_types):
            raise ValueError(
                f"schema has {len(self.field_types)} fields, "
                f"got {len(values)} values"
            )
        for ftype, value in zip(self.field_types, values):
            validate_field(ftype, value)

    def payload_wire_size(self, values: Sequence[Any]) -> int:
        """XDR payload bytes for *values* (excludes meta header/timestamp)."""
        total = 0
        for ftype, value in zip(self.field_types, values):
            fixed = _FIXED_WIRE_SIZES.get(ftype)
            if fixed is not None:
                total += fixed
            elif ftype is FieldType.X_STRING:
                n = len(value.encode("utf-8"))
                total += 4 + n + (4 - n % 4) % 4
            else:  # X_OPAQUE
                n = len(value)
                total += 4 + n + (4 - n % 4) % 4
        return total


#: Interned schemas, keyed by their (canonical) field-type tuple.  Interning
#: makes ``EventRecord.schema`` O(1) after first use and gives the wire
#: layer's per-schema codec cache a stable identity to key on.  The cap is a
#: backstop against an adversarial stream minting unbounded distinct schemas;
#: past it schemas are still built, just not retained.
_SCHEMA_CACHE: dict[tuple[FieldType, ...], RecordSchema] = {}
_SCHEMA_CACHE_CAP = 4096


def intern_schema(field_types: Sequence[FieldType]) -> RecordSchema:
    """Return the canonical :class:`RecordSchema` for *field_types*.

    Equal field-type tuples yield the *same* schema object, and the
    returned schema's ``field_types`` is the canonical tuple — callers on
    hot paths (the EXS drain loop, the wire decoder) substitute it for
    their own copy so later identity checks short-circuit.
    """
    ft = field_types if type(field_types) is tuple else tuple(field_types)
    schema = _SCHEMA_CACHE.get(ft)
    if schema is None:
        schema = RecordSchema(ft)
        if len(_SCHEMA_CACHE) < _SCHEMA_CACHE_CAP:
            _SCHEMA_CACHE[schema.field_types] = schema
    return schema


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One instrumentation event.

    Attributes mirror what the NOTICE macro writes into the ring buffer plus
    the identity the EXS attaches before shipment:

    * ``event_id`` — the application-chosen event/sensor identifier,
    * ``timestamp`` — microseconds UTC.  At the sensor this is the raw local
      ``gettimeofday``; the external sensor adds its clock-sync correction
      before the record leaves the node (:meth:`with_timestamp`),
    * ``node_id`` — which LIS produced the record (0 until the EXS stamps it),
    * ``field_types`` / ``values`` — the dynamically typed payload.
    """

    event_id: int
    timestamp: int
    field_types: tuple[FieldType, ...] = ()
    values: tuple[Any, ...] = ()
    node_id: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.event_id <= _U32_MAX:
            raise ValueError(f"event_id {self.event_id} outside u32 range")
        if not 0 <= self.node_id <= _U32_MAX:
            raise ValueError(f"node_id {self.node_id} outside u32 range")
        check_timestamp(self.timestamp)
        if len(self.field_types) != len(self.values):
            raise ValueError(
                f"{len(self.field_types)} field types but {len(self.values)} values"
            )

    # ------------------------------------------------------------------
    # construction from trusted sources
    # ------------------------------------------------------------------
    @classmethod
    def from_wire(
        cls,
        event_id: int,
        timestamp: int,
        field_types: tuple[FieldType, ...],
        values: tuple[Any, ...],
        node_id: int = 0,
    ) -> "EventRecord":
        """Build a record from already-validated data, skipping validation.

        Decoded wire payloads were validated once at the sensor and again
        structurally by the codec (field widths bound every integral value,
        so range checks cannot fail); re-running ``__post_init__`` per
        record is pure overhead on the ISM's decode hot path.  Only use
        this with values that came out of a codec — hand-built records must
        go through the normal constructor.
        """
        rec = object.__new__(cls)
        _set = object.__setattr__
        _set(rec, "event_id", event_id)
        _set(rec, "timestamp", timestamp)
        _set(rec, "field_types", field_types)
        _set(rec, "values", values)
        _set(rec, "node_id", node_id)
        return rec

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def schema(self) -> RecordSchema:
        """The record's schema (types only, not values), interned."""
        return intern_schema(self.field_types)

    def fields_of_type(self, ftype: FieldType) -> tuple[Any, ...]:
        """All values whose field type equals *ftype*, in order."""
        return tuple(
            v for t, v in zip(self.field_types, self.values) if t is ftype
        )

    @property
    def reason_ids(self) -> tuple[int, ...]:
        """Causal identifiers this record *provides* (X_REASON fields)."""
        return self.fields_of_type(FieldType.X_REASON)

    @property
    def conseq_ids(self) -> tuple[int, ...]:
        """Causal identifiers this record *depends on* (X_CONSEQ fields)."""
        return self.fields_of_type(FieldType.X_CONSEQ)

    @property
    def is_causal(self) -> bool:
        """True when the record carries any causal marker."""
        return bool(self.reason_ids) or bool(self.conseq_ids)

    # ------------------------------------------------------------------
    # functional updates (records are frozen; the pipeline rewrites them)
    # ------------------------------------------------------------------
    def with_timestamp(self, timestamp: int) -> "EventRecord":
        """Return a copy with a corrected timestamp.

        Used by the EXS (clock-sync correction before shipment) and the
        ISM's causal matcher (tachyon override, §3.6).  Any embedded
        ``X_TS`` user fields holding the old timestamp are shifted by the
        same delta so the record stays self-consistent.
        """
        delta = timestamp - self.timestamp
        if delta == 0:
            return self
        if FieldType.X_TS in self.field_types:
            values = tuple(
                v + delta if t is FieldType.X_TS else v
                for t, v in zip(self.field_types, self.values)
            )
        else:
            values = self.values
        return EventRecord(
            event_id=self.event_id,
            timestamp=check_timestamp(timestamp),
            field_types=self.field_types,
            values=values,
            node_id=self.node_id,
        )

    def with_node(self, node_id: int) -> "EventRecord":
        """Return a copy stamped with the producing node's identifier."""
        if node_id == self.node_id:
            return self
        return EventRecord(
            event_id=self.event_id,
            timestamp=self.timestamp,
            field_types=self.field_types,
            values=self.values,
            node_id=node_id,
        )

    def sort_key(self) -> tuple[int, int, int]:
        """Total-order key used by the ISM's on-line sorter.

        Primary key is the corrected timestamp; node and event identifiers
        break ties deterministically so replays of the same trace always
        produce the same output order.
        """
        return (self.timestamp, self.node_id, self.event_id)
