"""Watermark-driven k-way merge of per-shard ordered streams.

The sharded ISM runs one :class:`~repro.core.sorting.OnlineSorter` per
shard, so each shard emits records that are (best-effort) ordered *within
the shard* but interleave arbitrarily *across* shards.  Consumers that
asked for the single-process ISM's globally ordered stream get it back
from this stage: a k-way heap merge over per-shard FIFO queues, gated by
per-shard **watermarks**.

A watermark is a shard's promise — carried on its commit records — that
every record it will ever emit from now on has ``timestamp >=
watermark``.  The merge may therefore release the globally smallest
queued record as soon as every shard with an *empty* queue has a
watermark at or above it; shards with queued records compete through the
heap directly.  Until every shard has reported at least one watermark
nothing is released (a silent shard could still hold the global minimum);
:meth:`close_shard` and :meth:`flush` lift that gate for shutdown.

Like the sorter, the merge is best-effort rather than blocking: a record
arriving *below* the emitted high-water mark (a shard broke its watermark
promise, e.g. after a forced release under overload) is passed through
immediately and counted in ``stats.regressions`` instead of stalling the
pipeline.

Everything here is pure data-structure code — no clocks, no entropy —
so the stage is byte-deterministic for a given push/advance sequence.

The merge is generic over anything carrying a record-style sort key
(:class:`SortKeyed`): the sharded ISM merges
:class:`~repro.core.records.EventRecord` streams, and the relay tier
merges whole batch envelopes (one item per downstream batch, keyed by its
first record) so pre-sorting never has to split or re-encode a batch.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass
from typing import Generic, Protocol, Sequence, TypeVar

#: Sort key type mirrored from ``EventRecord.sort_key()``.
_Key = tuple[int, int, int]


class SortKeyed(Protocol):
    """Anything orderable by a record-style ``(ts, node, event)`` key."""

    def sort_key(self) -> _Key:
        """Total-order key; ties broken upstream by shard id."""
        ...  # pragma: no cover - protocol stub


ItemT = TypeVar("ItemT", bound=SortKeyed)


@dataclass
class MergeStats:
    """Counters the merge stage maintains as it runs."""

    #: Records accepted from shards.
    pushed: int = 0
    #: Records released downstream.
    emitted: int = 0
    #: Records emitted below the high-water mark (a shard regressed past
    #: its own watermark; passed through, not reordered).
    regressions: int = 0


class OrderedMerger(Generic[ItemT]):
    """K-way merge of per-shard streams by timestamp watermark.

    Shards are registered up front with :meth:`add_shard`; thereafter the
    caller alternates :meth:`push` (records drained from a shard, in that
    shard's emission order) and :meth:`advance` (the watermark carried on
    the shard's commit record), calling :meth:`emit` to take whatever has
    become safe to release.  The single-shard configuration degenerates to
    a pure pass-through in shard order, which is what keeps the 1-shard
    sharded ISM byte-identical to the single-process ISM.
    """

    def __init__(self) -> None:
        self.stats = MergeStats()
        self._queues: dict[int, deque[ItemT]] = {}
        # shard_id → highest watermark declared; None until first advance.
        self._watermarks: dict[int, int | None] = {}
        self._closed: set[int] = set()
        # Heap over queue heads: (sort_key, shard_id).  Only shards whose
        # queue is non-empty appear; ties break on shard id so the merge
        # order is strict and deterministic.
        self._heap: list[tuple[_Key, int]] = []
        self._high_water: _Key | None = None
        self._held = 0

    # ------------------------------------------------------------------
    def add_shard(self, shard_id: int) -> None:
        """Register a shard (idempotent).  A registered shard gates
        emission until it declares a watermark or is closed."""
        self._queues.setdefault(shard_id, deque())
        self._watermarks.setdefault(shard_id, None)

    @property
    def shards(self) -> tuple[int, ...]:
        """Registered shard identifiers."""
        return tuple(self._queues)

    @property
    def held(self) -> int:
        """Records currently parked in the merge (O(1))."""
        return self._held

    def push(self, shard_id: int, records: Sequence[ItemT]) -> None:
        """Append records a shard emitted, in the shard's own order."""
        if not records:
            return
        queue = self._queues[shard_id]
        was_empty = not queue
        queue.extend(records)
        n = len(records)
        self._held += n
        self.stats.pushed += n
        if was_empty:
            heapq.heappush(self._heap, (records[0].sort_key(), shard_id))

    def advance(self, shard_id: int, watermark_ts: int) -> None:
        """Raise *shard_id*'s watermark (monotone: lower values ignored)."""
        current = self._watermarks[shard_id]
        if current is None or watermark_ts > current:
            self._watermarks[shard_id] = watermark_ts

    def close_shard(self, shard_id: int) -> None:
        """Mark a shard as finished: it no longer gates emission.  Its
        queued records remain mergeable.  A restarted shard reopens with
        :meth:`reopen_shard`."""
        self._closed.add(shard_id)

    def reopen_shard(self, shard_id: int) -> None:
        """Bring a closed (restarted) shard back into the gating set with
        a fresh, undeclared watermark."""
        self._closed.discard(shard_id)
        self._queues.setdefault(shard_id, deque())
        self._watermarks[shard_id] = None

    def low_watermark(self) -> int | None:
        """Minimum declared watermark over open shards, or None while any
        open shard has not declared one yet.

        Every record with a timestamp at or below this has already been
        emitted (or sits at the head of the heap and will be on the next
        :meth:`emit`) — it is the bound the durable ack path uses to
        decide when an ack held for merge ordering may be released.
        """
        low: int | None = None
        for shard_id, mark in self._watermarks.items():
            if shard_id in self._closed:
                continue
            if mark is None:
                return None
            if low is None or mark < low:
                low = mark
        return low

    # ------------------------------------------------------------------
    def _empty_gate(self) -> tuple[bool, int | None]:
        """The release bound imposed by open shards with empty queues.

        Returns ``(blocked, gate)``: *blocked* when some open, empty shard
        has not declared a watermark yet (nothing may be released); else
        *gate* is the minimum watermark over open empty shards, or None
        when every open shard has queued records (no bound — the heap
        itself arbitrates).
        """
        gate: int | None = None
        for shard_id, queue in self._queues.items():
            if queue or shard_id in self._closed:
                continue
            mark = self._watermarks[shard_id]
            if mark is None:
                return True, None
            if gate is None or mark < gate:
                gate = mark
        return False, gate

    def emit(self) -> list[ItemT]:
        """Release every record that is safe under current watermarks, in
        merge order (oldest sort key first)."""
        released: list[ItemT] = []
        heap = self._heap
        queues = self._queues
        blocked, gate = self._empty_gate()
        while heap and not blocked:
            key, shard_id = heap[0]
            if gate is not None and key[0] > gate:
                break
            queue = queues[shard_id]
            record = queue.popleft()
            self._held -= 1
            if queue:
                heapq.heapreplace(heap, (queue[0].sort_key(), shard_id))
            else:
                heapq.heappop(heap)
                # This shard's queue just drained: its watermark now
                # gates further release.
                blocked, gate = self._empty_gate()
            self._account(record)
            released.append(record)
        return released

    def flush(self) -> list[ItemT]:
        """Release everything still queued, in merge order (shutdown)."""
        released: list[ItemT] = []
        heap = self._heap
        queues = self._queues
        while heap:
            key, shard_id = heap[0]
            queue = queues[shard_id]
            record = queue.popleft()
            self._held -= 1
            if queue:
                heapq.heapreplace(heap, (queue[0].sort_key(), shard_id))
            else:
                heapq.heappop(heap)
            self._account(record)
            released.append(record)
        return released

    def _account(self, record: ItemT) -> None:
        self.stats.emitted += 1
        key = record.sort_key()
        high = self._high_water
        if high is not None and key < high:
            self.stats.regressions += 1
        else:
            self._high_water = key
