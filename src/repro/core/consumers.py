"""Instrumentation-data consumers — the ISM's output side (§3.1, §3.5).

"The default output mode of the ISM is writing to a memory buffer, which is
then read by instrumentation data consumer tools.  Besides writing to
memory, the BRISK ISM may log instrumentation data to trace files in the
PICL ASCII format, or it may pass instrumentation data to a list of
CORBA-enabled visual objects."

Three consumers reproduce those modes:

* :class:`MemoryBufferConsumer` — appends records in the *native* binary
  layout ("the same binary structure used by the NOTICE macros") to a
  growable buffer that tools read with :func:`repro.core.native.unpack_all`;
* :class:`PiclFileConsumer` — the PICL ASCII trace log;
* :class:`VisualObjectConsumer` — the CORBA path, substituted per DESIGN.md
  §2 by in-process *visual objects*: any object with a
  ``process_picl(line: str)`` method, called per record with the same PICL
  string payload MICO would have carried.

:class:`CallbackConsumer` is the generic extension point for
"independently-built tools" (§2).
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol, Sequence, TextIO, runtime_checkable

from repro.core import native
from repro.core.records import EventRecord
from repro.picl.format import PiclWriter, TimestampMode, picl_to_line, record_to_picl


@runtime_checkable
class Consumer(Protocol):
    """What the ISM requires of an output sink."""

    def deliver(self, record: EventRecord) -> None:
        """Accept one sorted, causally-ordered record."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


# Consumers may additionally expose ``deliver_many(records)`` — the ISM's
# staged delivery path hands such consumers a whole released slice in one
# call (one try/except, one method dispatch) instead of looping ``deliver``.
# The contract: ``deliver_many(rs)`` must be observably equivalent to
# ``for r in rs: deliver(r)`` on success; on failure the ISM charges one
# error strike per failed *slice* rather than per record.


class MemoryBufferConsumer:
    """The default output mode: native-layout records in a memory buffer.

    The buffer is append-only while open; consumer tools either snapshot it
    with :meth:`snapshot` / :meth:`records` or, in the shared-memory
    runtime, attach to the same segment and decode incrementally.
    """

    def __init__(self, buffer: bytearray | None = None) -> None:
        self.buffer = buffer if buffer is not None else bytearray()
        self.delivered = 0

    def deliver(self, record: EventRecord) -> None:
        """Append one record to the buffer in native layout."""
        self.buffer += native.pack_record(record)
        self.delivered += 1

    def deliver_many(self, records: Sequence[EventRecord]) -> None:
        """Append a slice of records in one buffer extension."""
        self.buffer += b"".join(map(native.pack_record, records))
        self.delivered += len(records)

    def close(self) -> None:
        """Nothing to release; present for the protocol."""

    def snapshot(self) -> bytes:
        """Copy of the raw buffer contents."""
        return bytes(self.buffer)

    def records(self) -> list[EventRecord]:
        """Decode every record currently in the buffer."""
        return native.unpack_all(self.buffer)

    def clear(self) -> None:
        """Reset the buffer (tools call this after consuming a snapshot)."""
        del self.buffer[:]


class PiclFileConsumer:
    """PICL ASCII trace logging.

    *fsync_on_flush* makes every delivered slice durable before the
    pipeline moves on (``flush`` + ``fsync`` per slice) — a killed ISM
    then loses at most the slice that was mid-write, and that torn tail is
    exactly what :class:`~repro.picl.format.PiclReader`'s
    ``tolerate_torn_tail`` accepts.  For whole-file atomicity use
    :meth:`open_durable`, which writes to ``<path>.part`` and renames into
    place on close, so *path* either does not exist yet or is a complete,
    parseable trace.
    """

    def __init__(
        self,
        stream: TextIO,
        mode: TimestampMode = TimestampMode.UTC_MICROS,
        epoch_us: int = 0,
        *,
        close_stream: bool = False,
        fsync_on_flush: bool = False,
    ) -> None:
        self._writer = PiclWriter(stream, mode, epoch_us)
        self._stream = stream
        self._close_stream = close_stream
        self._fsync_on_flush = fsync_on_flush
        self._part_path: str | None = None
        self._final_path: str | None = None
        self._closed = False

    @classmethod
    def open_durable(
        cls,
        path,
        mode: TimestampMode = TimestampMode.UTC_MICROS,
        epoch_us: int = 0,
        *,
        fsync_on_flush: bool = True,
    ) -> "PiclFileConsumer":
        """Crash-safe trace file: tmp + fsync + atomic rename on close."""
        import os

        final_path = os.fspath(path)
        part_path = final_path + ".part"
        stream = open(part_path, "w", encoding="ascii")
        consumer = cls(
            stream,
            mode,
            epoch_us,
            close_stream=True,
            fsync_on_flush=fsync_on_flush,
        )
        consumer._part_path = part_path
        consumer._final_path = final_path
        return consumer

    @property
    def delivered(self) -> int:
        """Trace lines written so far."""
        return self._writer.lines_written

    def deliver(self, record: EventRecord) -> None:
        """Write one record as a PICL trace line."""
        if self._closed:
            raise RuntimeError("consumer is closed")
        self._writer.write(record)
        if self._fsync_on_flush:
            self._writer.sync()

    def deliver_many(self, records: Sequence[EventRecord]) -> None:
        """Write a slice of records as one buffered stream write."""
        if self._closed:
            raise RuntimeError("consumer is closed")
        self._writer.write_all(records)
        if self._fsync_on_flush:
            self._writer.sync()

    def close(self) -> None:
        """Flush (and optionally close) the trace stream; a durable
        consumer then renames the ``.part`` file into its final place."""
        if self._closed:
            return
        self._closed = True
        if self._final_path is not None:
            self._writer.sync()
        else:
            self._stream.flush()
        if self._close_stream:
            self._stream.close()
        if self._final_path is not None and self._part_path is not None:
            # Make the rename itself durable, not just the bytes: the
            # shared helper renames and then fsyncs the containing
            # directory (same machinery as the commit log's segment roll
            # and checkpoint writes).
            from repro.util.durability import durable_replace

            durable_replace(self._part_path, self._final_path)


@runtime_checkable
class VisualObject(Protocol):
    """The remote-visual-object interface (§3.5, CORBA substitution).

    The real system invokes a CORBA method with the record rendered as a
    PICL string; a visual object here is anything exposing the same method
    in-process.
    """

    def process_picl(self, line: str) -> None:
        """Handle one record, delivered as its PICL line."""


class VisualObjectConsumer:
    """Fans each record out to a list of visual objects as PICL strings.

    A failing visual object is detached after ``max_errors`` consecutive
    failures rather than wedging the ISM output stage — the CORBA analogue
    is a dead remote object.
    """

    def __init__(
        self,
        visual_objects: Iterable[VisualObject] = (),
        mode: TimestampMode = TimestampMode.RELATIVE_SECONDS,
        epoch_us: int = 0,
        max_errors: int = 3,
    ) -> None:
        self._objects: list[VisualObject] = list(visual_objects)
        self._errors: dict[int, int] = {}
        self.mode = mode
        self.epoch_us = epoch_us
        self.max_errors = max_errors
        self.delivered = 0
        self.detached = 0

    def attach(self, obj: VisualObject) -> None:
        """Register another visual object."""
        self._objects.append(obj)

    @property
    def attached_count(self) -> int:
        """Currently registered (not detached) visual objects."""
        return len(self._objects)

    def deliver(self, record: EventRecord) -> None:
        """Render the record as PICL and fan it out to every object."""
        line = picl_to_line(record_to_picl(record, self.mode, self.epoch_us))
        self.delivered += 1
        dead: list[VisualObject] = []
        for obj in self._objects:
            try:
                obj.process_picl(line)
                self._errors.pop(id(obj), None)
            except Exception:
                count = self._errors.get(id(obj), 0) + 1
                self._errors[id(obj)] = count
                if count >= self.max_errors:
                    dead.append(obj)
        for obj in dead:
            self._objects.remove(obj)
            self._errors.pop(id(obj), None)
            self.detached += 1

    def close(self) -> None:
        """Detach every visual object."""
        self._objects.clear()


class CallbackConsumer:
    """Adapter for arbitrary per-record callables."""

    def __init__(self, callback: Callable[[EventRecord], None]) -> None:
        self._callback = callback
        self.delivered = 0

    def deliver(self, record: EventRecord) -> None:
        """Invoke the callback with the record."""
        self._callback(record)
        self.delivered += 1

    def close(self) -> None:
        """Nothing to release; present for the protocol."""


class CollectingConsumer(CallbackConsumer):
    """Collects records into a list — the workhorse of tests and examples."""

    def __init__(self) -> None:
        self.records: list[EventRecord] = []
        super().__init__(self.records.append)

    def deliver_many(self, records: Sequence[EventRecord]) -> None:
        """Collect a whole slice in one list extension."""
        self.records.extend(records)
        self.delivered += len(records)


class RecentWindowConsumer:
    """Keeps only the most recent records — a live dashboard's backing store.

    Bounded two ways: at most ``max_records``, and nothing older than
    ``window_us`` relative to the newest record's timestamp.  Visual
    objects that redraw periodically read :meth:`snapshot` instead of
    accumulating the whole run.
    """

    def __init__(self, window_us: int = 10_000_000, max_records: int = 100_000):
        if window_us < 1 or max_records < 1:
            raise ValueError("window and record bound must be positive")
        from collections import deque

        self.window_us = window_us
        self._window: deque[EventRecord] = deque(maxlen=max_records)
        self.delivered = 0
        self.evicted = 0

    def deliver(self, record: EventRecord) -> None:
        """Add the record and evict everything now out of the window."""
        before = len(self._window)
        at_capacity = before == self._window.maxlen
        self._window.append(record)
        if at_capacity:
            self.evicted += 1  # deque dropped the oldest for us
        self.delivered += 1
        horizon = record.timestamp - self.window_us
        while self._window and self._window[0].timestamp < horizon:
            self._window.popleft()
            self.evicted += 1

    def close(self) -> None:
        """Drop the window."""
        self._window.clear()

    def snapshot(self) -> list[EventRecord]:
        """The current window, oldest first."""
        return list(self._window)

    def __len__(self) -> int:
        return len(self._window)


class QueuedConsumer:
    """Hands delivery slices to an inner consumer on a writer thread.

    The ISM delivery stage must not stall behind a slow sink (a disk
    flush, a chatty visual object); this wrapper queues each delivered
    slice on a *bounded* queue drained by a background thread.  The bound
    is the backpressure knob: when the sink falls ``max_queued_batches``
    slices behind, :meth:`deliver_many` blocks the pipeline rather than
    letting the queue grow without limit.

    A sink failure is surfaced on the *next* delivery call (the writer
    thread cannot raise into the pipeline), where the ISM's strike
    accounting sees it like any other consumer error; the worker keeps
    draining after a failure so a blocked producer is never deadlocked.
    """

    def __init__(self, inner: Consumer, max_queued_batches: int = 64) -> None:
        if max_queued_batches < 1:
            raise ValueError("max_queued_batches must be >= 1")
        import queue
        import threading

        self._inner = inner
        self._queue: queue.Queue = queue.Queue(maxsize=max_queued_batches)
        self._error: BaseException | None = None
        self._closed = False
        self.delivered = 0
        self._worker = threading.Thread(
            target=self._run, name="brisk-queued-consumer", daemon=True
        )
        self._worker.start()

    def _run(self) -> None:
        inner = self._inner
        deliver_many = getattr(inner, "deliver_many", None)
        q = self._queue
        while True:
            batch = q.get()
            if batch is None:
                return
            try:
                if deliver_many is not None:
                    deliver_many(batch)
                else:
                    for record in batch:
                        inner.deliver(record)
            except BaseException as exc:  # surfaced on the next deliver
                self._error = exc

    def _raise_pending(self) -> None:
        if self._error is not None:
            exc, self._error = self._error, None
            raise exc

    def deliver(self, record: EventRecord) -> None:
        """Queue one record for the writer thread."""
        self.deliver_many((record,))

    def deliver_many(self, records: Sequence[EventRecord]) -> None:
        """Queue a slice for the writer thread (blocks when the bound is
        hit — that is the backpressure)."""
        if self._closed:
            raise RuntimeError("consumer is closed")
        self._raise_pending()
        if not records:
            return
        self._queue.put(list(records))
        self.delivered += len(records)

    def pending_batches(self) -> int:
        """Slices queued but not yet handed to the sink (approximate)."""
        return self._queue.qsize()

    def close(self) -> None:
        """Drain the queue, stop the worker, close the inner consumer.

        A sink error from the final queued slices must survive the inner
        close — even one that itself raises — or the very failure most
        worth hearing about (the last writes before shutdown) vanishes.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)  # sentinel: processed after queued slices
        self._worker.join()
        try:
            self._inner.close()
        finally:
            self._raise_pending()


class LogConsumer:
    """Delivery sink that appends released records to a commit log.

    Duck-typed over anything exposing ``append_many`` / ``sync`` /
    ``close`` / ``source_watermarks`` (in practice a
    :class:`repro.log.CommitLog`; the indirection keeps ``repro.core``
    free of a dependency on ``repro.log``).  The ISM's durable mode
    (``runtime/ism_proc.py``) recognizes this sink, seeds its dedup
    watermarks from :meth:`source_watermarks`, and gates upstream acks
    on :meth:`sync` — which is what turns "delivered to the log" into
    "safe to drop from the EXS outbox".

    A log write failure propagates out of ``deliver``/``deliver_many``
    (the commit log poisons itself); the ISM's consumer strike
    accounting and the durable ack path both see it, so a full disk
    stops acks rather than silently dropping records.

    ``close_log=False`` (the default) leaves closing the log to whoever
    opened it — the server epilogue still needs one final sync after
    the manager has flushed its consumers.
    """

    def __init__(self, log, *, close_log: bool = False) -> None:
        self.log = log
        self._close_log = close_log
        self.delivered = 0

    def deliver(self, record: EventRecord) -> None:
        """Append one record to the log."""
        self.log.append(record)
        self.delivered += 1

    def deliver_many(self, records: Sequence[EventRecord]) -> None:
        """Append a whole released slice as one framed write."""
        self.log.append_many(records)
        self.delivered += len(records)

    def sync(self, sources=None) -> int:
        """Durability barrier — see ``CommitLog.sync``."""
        return self.log.sync(sources)

    def source_watermarks(self) -> dict[int, int]:
        """Per-source acked seqs from the log's checkpoint."""
        return self.log.source_watermarks()

    def close(self) -> None:
        """Close the underlying log only when this sink owns it."""
        if self._close_log:
            self.log.close()
