"""Event filtering: "users can only specify what to monitor" (§2).

A :class:`FilterSpec` declares *what* to keep — by event id, node, and a
sampling ratio — and is enforceable at two altitudes:

* **at the external sensor** (the interesting case): the ISM pushes a
  spec to an EXS over the control channel
  (:class:`repro.wire.protocol.SetFilter`), and records that fail it are
  dropped *before* XDR encoding and transfer — the §2 trade of
  completeness against transfer volume, applied at the source;
* **at a consumer** (:class:`FilteringConsumer`): a local view for one
  tool without affecting what other consumers see.

Sampling (``sample_every=N``) keeps every N-th record *per event id*, so
a rare event is not starved by a chatty one sharing the stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.records import EventRecord


@dataclass(frozen=True)
class FilterSpec:
    """A declarative record filter.

    Attributes
    ----------
    allowed_events:
        When not None, only these event ids pass (whitelist).
    blocked_events:
        These event ids never pass (applied after the whitelist).
    allowed_nodes:
        When not None, only records from these nodes pass.
    sample_every:
        Keep one record in every ``sample_every`` per event id (1 = all).
    """

    allowed_events: frozenset[int] | None = None
    blocked_events: frozenset[int] = frozenset()
    allowed_nodes: frozenset[int] | None = None
    sample_every: int = 1

    def __post_init__(self) -> None:
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        # Normalize plain iterables so callers can pass sets/lists.
        for name in ("allowed_events", "allowed_nodes"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, frozenset):
                object.__setattr__(self, name, frozenset(value))
        if not isinstance(self.blocked_events, frozenset):
            object.__setattr__(
                self, "blocked_events", frozenset(self.blocked_events)
            )

    @property
    def is_pass_through(self) -> bool:
        """True when the spec cannot drop anything."""
        return (
            self.allowed_events is None
            and not self.blocked_events
            and self.allowed_nodes is None
            and self.sample_every == 1
        )

    def admits(self, record: EventRecord) -> bool:
        """Static (non-sampling) part of the filter."""
        if self.allowed_events is not None and record.event_id not in self.allowed_events:
            return False
        if record.event_id in self.blocked_events:
            return False
        if self.allowed_nodes is not None and record.node_id not in self.allowed_nodes:
            return False
        return True


class FilterState:
    """A :class:`FilterSpec` plus the per-event sampling counters.

    Separate from the spec so the spec stays a hashable value object that
    can travel over the wire.
    """

    def __init__(self, spec: FilterSpec) -> None:
        self.spec = spec
        self._counters: dict[int, int] = {}
        #: Records dropped by this filter.
        self.dropped = 0
        #: Records passed.
        self.passed = 0

    def admit(self, record: EventRecord) -> bool:
        """Full filter decision, advancing sampling state."""
        if not self.spec.admits(record):
            self.dropped += 1
            return False
        n = self.spec.sample_every
        if n > 1:
            count = self._counters.get(record.event_id, 0)
            self._counters[record.event_id] = count + 1
            if count % n != 0:
                self.dropped += 1
                return False
        self.passed += 1
        return True


class FilteringConsumer:
    """Wrap a consumer with a local filter view."""

    def __init__(self, inner, spec: FilterSpec) -> None:
        self.inner = inner
        self.state = FilterState(spec)

    def deliver(self, record: EventRecord) -> None:
        """Forward the record to the inner consumer when admitted."""
        if self.state.admit(record):
            self.inner.deliver(record)

    def close(self) -> None:
        """Close the wrapped consumer."""
        self.inner.close()
